//! Numerical verification of the Gottlieb–Turkel 2-4 MacCormack solver:
//! exact-solution transport, convergence under grid refinement, wave speeds
//! and conservation.

use ns_core::config::{Regime, SolverConfig};
use ns_core::driver::Solver;
use ns_numerics::gas::Primitive;
use ns_numerics::Grid;

/// A uniform-background config whose inflow matches the background state
/// (so the Dirichlet boundary is exact).
fn uniform_cfg(grid: Grid, u0: f64) -> SolverConfig {
    let mut cfg = SolverConfig::paper(grid, Regime::Euler);
    cfg.excitation.enabled = false;
    cfg.jet.u_c = u0;
    cfg.jet.u_inf = u0;
    cfg.jet.t_c = 1.0;
    cfg.jet.t_inf = 1.0;
    cfg.jet.mach_c = 0.0;
    cfg
}

/// Overwrite the solver state with a smooth entropy (density) pulse riding
/// on uniform `(u0, p0)` — an exact solution of the Euler equations that
/// advects unchanged at speed `u0`.
fn set_entropy_pulse(s: &mut Solver, u0: f64, x0: f64, sigma: f64, amp: f64) {
    let gas = *s.gas();
    let p0 = gas.pressure(1.0, 1.0);
    for i in 0..s.field.nxl() {
        let x = s.field.patch.x(i);
        let rho = 1.0 + amp * (-((x - x0) / sigma).powi(2)).exp();
        for j in 0..s.field.nr() {
            s.field.set_primitive(i, j, &gas, &Primitive { rho, u: u0, v: 0.0, p: p0 });
        }
    }
}

/// L2 error of the density field against the exactly advected pulse,
/// evaluated away from the boundaries.
fn pulse_error(s: &Solver, u0: f64, x0: f64, sigma: f64, amp: f64) -> f64 {
    let gas = *s.gas();
    let mut err2 = 0.0;
    let mut n = 0usize;
    for i in 0..s.field.nxl() {
        let x = s.field.patch.x(i);
        if !(3.0..=47.0).contains(&x) {
            continue;
        }
        let exact = 1.0 + amp * (-((x - x0 - u0 * s.t) / sigma).powi(2)).exp();
        let w = s.field.primitive(i, 2, &gas);
        err2 += (w.rho - exact).powi(2);
        n += 1;
    }
    (err2 / n as f64).sqrt()
}

#[test]
fn entropy_pulse_advects_at_flow_speed() {
    let u0 = 0.4;
    let grid = Grid::new(201, 10, 50.0, 5.0);
    let mut s = Solver::new(uniform_cfg(grid, u0));
    set_entropy_pulse(&mut s, u0, 15.0, 2.0, 0.05);
    s.run(300);
    assert!(s.healthy());
    let gas = *s.gas();
    let mut best = (0usize, 0.0);
    for i in 0..s.field.nxl() {
        let rho = s.field.primitive(i, 2, &gas).rho;
        if rho > best.1 {
            best = (i, rho);
        }
    }
    let x_peak = s.field.patch.x(best.0);
    let expected = 15.0 + u0 * s.t;
    assert!((x_peak - expected).abs() < 0.5, "peak at {x_peak}, expected {expected}");
    assert!((best.1 - 1.05).abs() < 5e-3, "amplitude {}", best.1);
}

#[test]
fn entropy_pulse_converges_under_refinement() {
    let u0 = 0.4;
    let run = |nx: usize| {
        let grid = Grid::new(nx, 8, 50.0, 5.0);
        let mut cfg = uniform_cfg(grid, u0);
        cfg.dt_override = Some(0.004); // fixed dt isolates the spatial order
        let mut s = Solver::new(cfg);
        set_entropy_pulse(&mut s, u0, 15.0, 2.5, 0.04);
        s.run(500); // t = 2
        pulse_error(&s, u0, 15.0, 2.5, 0.04)
    };
    let e1 = run(126);
    let e2 = run(251);
    let order = (e1 / e2).log2();
    assert!(order > 2.0, "observed spatial order {order:.2} (e1 = {e1:.2e}, e2 = {e2:.2e})");
}

#[test]
fn acoustic_pulse_travels_at_u_plus_c() {
    let u0 = 0.3;
    // radially deep domain: the far-field row pins p = p_inf, which is
    // inconsistent with an r-uniform pulse and radiates a disturbance
    // inward at speed c; with L_r = 20 it cannot reach the measurement row
    // within the test window
    let grid = Grid::new(251, 16, 50.0, 20.0);
    let mut s = Solver::new(uniform_cfg(grid, u0));
    let gas = *s.gas();
    let p0 = gas.pressure(1.0, 1.0);
    let c0 = gas.sound_speed(1.0, p0);
    // right-going simple wave: p' = rho c u'
    for i in 0..s.field.nxl() {
        let x = s.field.patch.x(i);
        let du = 0.01 * (-((x - 10.0) / 1.5f64).powi(2)).exp();
        let dp = c0 * du;
        let drho = dp / (c0 * c0);
        for j in 0..s.field.nr() {
            s.field.set_primitive(i, j, &gas, &Primitive { rho: 1.0 + drho, u: u0 + du, v: 0.0, p: p0 + dp });
        }
    }
    s.run(200);
    assert!(s.healthy());
    let mut best = (0usize, 0.0f64);
    for i in 0..s.field.nxl() {
        let w = s.field.primitive(i, 2, &gas);
        let dp = w.p - p0;
        if dp > best.1 {
            best = (i, dp);
        }
    }
    let x_peak = s.field.patch.x(best.0);
    let expected = 10.0 + (u0 + c0) * s.t;
    // tolerance covers grid quantization and the weak nonlinear steepening
    // of a finite-amplitude simple wave ((gamma+1)/2 * du ~ 1% of c); the
    // wrong wave families would land ~4 units away
    assert!((x_peak - expected).abs() < 1.0, "acoustic peak at {x_peak}, expected {expected} (t={})", s.t);
}

#[test]
fn outflow_lets_a_pulse_leave_quietly() {
    let u0 = 0.8;
    let grid = Grid::new(101, 8, 50.0, 5.0);
    let mut s = Solver::new(uniform_cfg(grid, u0));
    set_entropy_pulse(&mut s, u0, 42.0, 1.5, 0.05);
    let steps = (25.0 / s.dt()) as u64; // pulse center ends far outside
    s.run(steps);
    assert!(s.healthy());
    let gas = *s.gas();
    let mut max_dev = 0.0f64;
    for i in 5..s.field.nxl() - 2 {
        let w = s.field.primitive(i, 3, &gas);
        max_dev = max_dev.max((w.rho - 1.0).abs());
    }
    assert!(max_dev < 6e-3, "residual reflection {max_dev}");
}

#[test]
fn long_uniform_run_stays_exactly_uniform() {
    let grid = Grid::new(80, 24, 50.0, 5.0);
    let mut s = Solver::new(uniform_cfg(grid, 0.5));
    let m0 = s.invariants();
    s.run(200);
    let m1 = s.invariants();
    assert!(((m1.mass - m0.mass) / m0.mass).abs() < 1e-12, "uniform flow conserves mass exactly");
    assert!(((m1.energy - m0.energy) / m0.energy).abs() < 1e-12);
    assert!(m1.r_momentum.abs() < 1e-10);
}

#[test]
fn viscous_shear_layer_diffuses_monotonically() {
    let grid = Grid::new(60, 40, 50.0, 5.0);
    let mut cfg = uniform_cfg(grid, 0.5);
    cfg.regime = Regime::NavierStokes;
    cfg.gas = ns_numerics::GasModel::air(2e3, 1.5); // Re_D = 2000
    let mut s = Solver::new(cfg);
    let gas = *s.gas();
    let p0 = gas.pressure(1.0, 1.0);
    for i in 0..s.field.nxl() {
        for j in 0..s.field.nr() {
            let r = s.field.patch.r(j);
            let u = if r < 2.0 { 0.6 } else { 0.4 };
            s.field.set_primitive(i, j, &gas, &Primitive { rho: 1.0, u, v: 0.0, p: p0 });
        }
    }
    let shear = |s: &Solver| {
        let gas = *s.gas();
        let mut m = 0.0f64;
        let i = s.field.nxl() / 2;
        for j in 1..s.field.nr() - 1 {
            let a = s.field.primitive(i, j + 1, &gas).u;
            let b = s.field.primitive(i, j - 1, &gas).u;
            m = m.max((a - b).abs());
        }
        m
    };
    let s0 = shear(&s);
    s.run(150);
    assert!(s.healthy());
    let s1 = shear(&s);
    assert!(s1 < s0, "shear must diffuse: {s0} -> {s1}");
}

/// Ablation: the Gottlieb–Turkel 2-4 scheme against the classic 2-2
/// MacCormack baseline on the advected entropy pulse — the higher-order
/// one-sided differences must cut the transport error by a large factor at
/// identical cost structure (this is the reason the paper's code uses it).
#[test]
fn two_four_beats_two_two_on_smooth_transport() {
    use ns_core::config::SchemeOrder;
    let u0 = 0.4;
    let run = |order: SchemeOrder| {
        let grid = Grid::new(201, 8, 50.0, 5.0);
        let mut cfg = uniform_cfg(grid, u0);
        cfg.scheme = order;
        cfg.dt_override = Some(0.004);
        let mut s = Solver::new(cfg);
        set_entropy_pulse(&mut s, u0, 15.0, 2.5, 0.04);
        s.run(500);
        assert!(s.healthy(), "{order:?} stays healthy");
        pulse_error(&s, u0, 15.0, 2.5, 0.04)
    };
    let e24 = run(SchemeOrder::TwoFour);
    let e22 = run(SchemeOrder::TwoTwo);
    assert!(e24 * 5.0 < e22, "2-4 error {e24:.2e} must be well below 2-2 error {e22:.2e}");
}

/// The 2-2 baseline still converges (at its lower order).
#[test]
fn two_two_scheme_is_consistent() {
    use ns_core::config::SchemeOrder;
    let u0 = 0.4;
    let run = |nx: usize| {
        let grid = Grid::new(nx, 8, 50.0, 5.0);
        let mut cfg = uniform_cfg(grid, u0);
        cfg.scheme = SchemeOrder::TwoTwo;
        cfg.dt_override = Some(0.004);
        let mut s = Solver::new(cfg);
        set_entropy_pulse(&mut s, u0, 15.0, 2.5, 0.04);
        s.run(500);
        pulse_error(&s, u0, 15.0, 2.5, 0.04)
    };
    let e1 = run(126);
    let e2 = run(251);
    let order = (e1 / e2).log2();
    assert!(order > 1.5, "2-2 observed order {order:.2}");
}

#[test]
fn euler_and_ns_diverge_only_by_viscous_terms() {
    // at astronomically large Reynolds number N-S must track Euler closely
    let grid = Grid::new(60, 24, 50.0, 5.0);
    let mk = |regime: Regime| {
        let mut cfg = SolverConfig::paper(grid.clone(), regime);
        cfg.excitation.enabled = false;
        let mut s = Solver::new(cfg);
        s.run(30);
        s
    };
    let ns = mk(Regime::NavierStokes);
    let eu = mk(Regime::Euler);
    let d = ns.field.max_diff(&eu.field);
    let scale = eu.field.q[3].max_abs();
    assert!(d / scale < 1e-4, "Re = 1.2e6: N-S ~ Euler over short times (rel diff {})", d / scale);
    assert!(d > 0.0, "but not identical");
}
