//! End-to-end integration across all crates: the live solver feeds the
//! workload model, the workload model feeds the platform simulator, and the
//! measured runtime statistics must line up with both.

use ns_archsim::{simulate, Platform, SimConfig};
use ns_core::config::{Regime, SolverConfig};
use ns_core::driver::Solver;
use ns_core::workload;
use ns_experiments::{all_reports, fig_flow};
use ns_numerics::Grid;
use ns_runtime::{run_parallel, CommVersion};

#[test]
fn live_runtime_and_simulator_agree_on_protocol_counts() {
    // the same (regime, P) must produce identical start-up and byte counts
    // in the real thread runtime and in the discrete-event simulator
    let grid = Grid::new(64, 24, 50.0, 5.0);
    for regime in [Regime::NavierStokes, Regime::Euler] {
        let cfg = SolverConfig::paper(grid.clone(), regime);
        let steps = 4u64;
        let live = run_parallel(&cfg, 4, steps, CommVersion::V5);

        let mut sim_cfg = SimConfig::paper(Platform::lace560_allnode_s(), 4, regime);
        sim_cfg.grid = grid.clone();
        sim_cfg.report_steps = steps;
        sim_cfg.sim_steps = steps;
        let sim = simulate(&sim_cfg);

        for rank in 0..4 {
            assert_eq!(
                live.ranks[rank].stats.sends + live.ranks[rank].stats.recvs,
                sim.startups[rank],
                "{regime:?} rank {rank} start-ups"
            );
            assert_eq!(live.ranks[rank].stats.bytes_sent, sim.bytes_sent[rank], "{regime:?} rank {rank} bytes");
        }
    }
}

#[test]
fn workload_model_matches_live_message_sizes() {
    let grid = Grid::new(64, 24, 50.0, 5.0);
    let cfg = SolverConfig::paper(grid.clone(), Regime::NavierStokes);
    let live = run_parallel(&cfg, 4, 3, CommVersion::V5);
    let w = workload::step_workload(Regime::NavierStokes, &grid, grid.nx / 4);
    assert_eq!(live.ranks[1].stats.bytes_sent, w.bytes_sent_per_step(2) * 3);
}

#[test]
fn ledger_flops_feed_the_simulator_consistently() {
    // per-step interior flops measured by the solver == the flops the
    // simulator charges per step (same constants, by construction — this
    // guards against the two drifting apart)
    let grid = Grid::new(64, 24, 50.0, 5.0);
    let cfg = SolverConfig::paper(grid.clone(), Regime::Euler);
    let mut s = Solver::new(cfg);
    s.run(1);
    let before = s.ledger;
    s.run(2);
    let measured = (s.ledger.prims + s.ledger.flux + s.ledger.source + s.ledger.update)
        - (before.prims + before.flux + before.source + before.update);
    let model = workload::step_workload(Regime::Euler, &grid, grid.nx).compute_flops() * 2;
    let rel = (measured as f64 - model as f64).abs() / model as f64;
    assert!(rel < 0.01, "ledger vs model: {rel}");
}

#[test]
fn every_report_renders_with_data() {
    for r in all_reports() {
        assert!(!r.series.is_empty(), "{}: has series", r.title);
        for s in &r.series {
            assert!(!s.points.is_empty(), "{} / {}: has points", r.title, s.label);
            for &(x, y) in &s.points {
                assert!(x.is_finite() && y.is_finite(), "{} / {}: finite data", r.title, s.label);
            }
        }
        let text = r.render();
        assert!(text.contains(&r.title), "rendered report carries its title");
    }
}

#[test]
fn excited_jet_contour_is_renderable_from_parallel_run() {
    // gather a distributed run and render its momentum plane: the full
    // Figure 1 pipeline through the runtime crate
    let grid = Grid::new(64, 24, 50.0, 5.0);
    let cfg = SolverConfig::paper(grid, Regime::Euler);
    let run = run_parallel(&cfg, 4, 30, CommVersion::V5);
    let field = run.gather_field();
    let gas = cfg.effective_gas();
    let momentum = ns_core::diag::axial_momentum(&field, &gas);
    let ascii = ns_experiments::contour::ascii(&momentum, 64, 16);
    assert!(ascii.contains("range:"));
    // jet core must be visibly hotter than the coflow
    let core = momentum[(32, 0)];
    let ambient = momentum[(32, 22)];
    assert!(core > ambient, "core {core} vs ambient {ambient}");
}

#[test]
fn quick_excited_jet_matches_serial_reference() {
    let grid = Grid::new(48, 20, 50.0, 5.0);
    let flow = fig_flow::excited_jet(grid.clone(), 25, Regime::Euler, 0.0);
    let mut s = Solver::new(SolverConfig::paper(grid, Regime::Euler));
    s.run(25);
    let gas = *s.gas();
    let reference = ns_core::diag::axial_momentum(&s.field, &gas);
    let d = ns_numerics::norms::linf_diff(&flow.momentum, &reference);
    assert_eq!(d, 0.0, "fig_flow wraps the same solver");
}

#[test]
fn adaptive_checkpoint_probe_pipeline() {
    // a production-style session: adaptive stepping, probes attached,
    // checkpoint mid-run, resume, and the resumed run's probe samples line
    // up with an uninterrupted reference
    use ns_core::checkpoint::Checkpoint;
    use ns_core::probe::ProbeArray;
    let grid = Grid::new(48, 20, 50.0, 5.0);
    let mut cfg = SolverConfig::paper(grid, Regime::Euler);
    cfg.adaptive_dt = true;

    let mut reference = Solver::new(cfg.clone());
    let gas = *reference.gas();
    let mut ref_probes = ProbeArray::new(&reference.field, &[(5.0, 1.0)]);
    for _ in 0..12 {
        reference.step();
        ref_probes.sample(&reference.field, &gas, reference.t);
    }

    let mut first = Solver::new(cfg);
    let mut probes = ProbeArray::new(&first.field, &[(5.0, 1.0)]);
    for _ in 0..5 {
        first.step();
        probes.sample(&first.field, &gas, first.t);
    }
    let bytes = Checkpoint::capture(&first).to_bytes().unwrap();
    let mut resumed = Checkpoint::from_bytes(&bytes).unwrap().restore();
    for _ in 0..7 {
        resumed.step();
        probes.sample(&resumed.field, &gas, resumed.t);
    }
    assert_eq!(resumed.field.max_diff(&reference.field), 0.0, "restart transparent under adaptive dt");
    assert_eq!(probes.len(), ref_probes.len());
    for (a, b) in probes.series[0].p.iter().zip(&ref_probes.series[0].p) {
        assert_eq!(a.to_bits(), b.to_bits(), "probe histories identical");
    }
}

#[test]
fn simulator_handles_every_platform_at_every_p() {
    for platform in Platform::all() {
        for p in [1usize, 3, 16] {
            let mut cfg = SimConfig::paper(platform, p, Regime::Euler);
            cfg.sim_steps = 3;
            let r = simulate(&cfg);
            assert!(r.total > 0.0, "{} P={p}", platform.name);
            assert_eq!(r.busy.len(), p);
            // busy time dominates over pure waiting on all healthy setups
            assert!(r.mean_busy() > 0.0);
        }
    }
}
