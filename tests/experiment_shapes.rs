//! Paper-claim regression suite: every qualitative statement the paper's
//! Results section makes must hold in the regenerated tables and figures.
//! Each test names the paper passage it checks.

use ns_core::config::Regime;
use ns_experiments::{fig_lace, fig_msglib, fig_platforms, fig_versions, tables};

/// "All these optimizations yielded an overall improvement of roughly 80%
/// (from 9.3 MFLOPS to 16.0 MFLOPS)" — Section 6 / Figure 2.
#[test]
fn claim_80_percent_single_cpu_improvement() {
    let r = fig_versions::simulated_1995();
    for label in ["Navier-Stokes", "Euler"] {
        let s = r.series(label).unwrap();
        let gain = s.at(1.0).unwrap() / s.at(5.0).unwrap();
        assert!(gain > 1.55 && gain < 1.95, "{label}: V1/V5 = {gain}");
    }
}

/// "The modified program, called Version 3 ... running faster by
/// approximately 50%, compared to Version 2" — Section 6.
#[test]
fn claim_loop_interchange_dominates() {
    let r = fig_versions::simulated_1995();
    let s = r.series("Navier-Stokes").unwrap();
    let gain = s.at(2.0).unwrap() / s.at(3.0).unwrap();
    assert!(gain > 1.25, "V2/V3 = {gain} (paper ~1.5)");
    // and it is the single largest step
    for k in [1.0, 3.0, 4.0] {
        let step = s.at(k).unwrap() / s.at(k + 1.0).unwrap();
        assert!(gain >= step - 1e-12, "V2->V3 ({gain}) >= V{k}->V{} ({step})", k + 1.0);
    }
}

/// "Euler has roughly 50% of the computation and roughly 75% of the
/// communication requirements of Navier-Stokes" — Section 5 / Table 1.
#[test]
fn claim_euler_fractions() {
    let ns = tables::characteristics(Regime::NavierStokes);
    let eu = tables::characteristics(Regime::Euler);
    let comp = eu.flops_scaled / ns.flops_scaled;
    let startups = eu.startups_per_proc as f64 / ns.startups_per_proc as f64;
    let volume = eu.volume_per_proc as f64 / ns.volume_per_proc as f64;
    assert!(comp > 0.45 && comp < 0.70, "compute fraction {comp} (paper 0.53)");
    assert!((startups - 0.75).abs() < 1e-12, "start-up fraction {startups} (paper 0.75)");
    assert!(volume > 0.65 && volume < 0.95, "volume fraction {volume} (paper 0.76)");
}

/// "Ethernet performance reaches its peak at 8 processors for Navier-Stokes
/// and at 10 processors for Euler. Beyond this, the communication
/// requirements of the application overwhelm the network" — Section 7.1.
#[test]
fn claim_ethernet_peaks_then_degrades() {
    for (regime, peak_by) in [(Regime::NavierStokes, 8.0), (Regime::Euler, 12.0)] {
        let r = fig_lace::fig3_4(regime);
        let e = r.series("LACE/560 Ethernet").unwrap();
        let best = e.points.iter().cloned().min_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap();
        assert!(best.0 <= peak_by, "{regime:?}: Ethernet best at P={} (paper <= {peak_by})", best.0);
        assert!(e.at(16.0).unwrap() > best.1, "{regime:?}: degradation past the peak");
        // Euler's lighter communication sustains at least as many processors
    }
    let ns_best = {
        let r = fig_lace::fig3_4(Regime::NavierStokes);
        r.series("LACE/560 Ethernet")
            .unwrap()
            .points
            .iter()
            .cloned()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0
    };
    let eu_best = {
        let r = fig_lace::fig3_4(Regime::Euler);
        r.series("LACE/560 Ethernet")
            .unwrap()
            .points
            .iter()
            .cloned()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0
    };
    assert!(eu_best >= ns_best, "Euler's peak ({eu_best}) at least N-S's ({ns_best})");
}

/// "ALLNODE-F is about 70%-80% faster than ALLNODE-S" — Section 7.1.
#[test]
fn claim_allnode_f_vs_s_gap() {
    let r = fig_lace::fig3_4(Regime::NavierStokes);
    let f = r.series("ALLNODE-F").unwrap();
    let s = r.series("ALLNODE-S").unwrap();
    for &p in &[2.0, 8.0, 16.0] {
        let gain = s.at(p).unwrap() / f.at(p).unwrap() - 1.0;
        assert!(gain > 0.25 && gain < 1.0, "P={p}: gain {gain} (paper 0.7-0.8)");
    }
}

/// "The execution time falls almost linearly with increasing number of
/// processors with ALLNODE — sublinearity effects begin to show, however,
/// beyond 12 processors" — Section 7.1.
#[test]
fn claim_allnode_scaling_with_knee() {
    let r = fig_lace::fig3_4(Regime::NavierStokes);
    let s = r.series("ALLNODE-S").unwrap();
    let eff = |p: f64| s.at(1.0).unwrap() / (p * s.at(p).unwrap());
    assert!(eff(4.0) > 0.85, "efficient at 4: {}", eff(4.0));
    assert!(eff(8.0) > 0.8, "efficient at 8: {}", eff(8.0));
    assert!(eff(16.0) < eff(8.0), "knee past 12: {} vs {}", eff(16.0), eff(8.0));
}

/// "With Ethernet, the non-overlapped communication time increases
/// superlinearly with the number of processors" — Section 7.1.
#[test]
fn claim_ethernet_wait_superlinear() {
    let r = fig_lace::fig5_6(Regime::NavierStokes);
    let w = r.series("Non-overlapped Comm. (Ethernet)").unwrap();
    let w4 = w.at(4.0).unwrap();
    let w8 = w.at(8.0).unwrap();
    let w16 = w.at(16.0).unwrap();
    assert!(w8 > 1.4 * w4, "growing 4->8: {w4} -> {w8}");
    assert!(w16 > 2.0 * w8, "superlinear 8->16: {w8} -> {w16}");
    assert!(w16 > 4.0 * w4, "superlinear overall: {w4} -> {w16}");
}

/// "Surprisingly, LACE, even with ALLNODE-S, outperforms SP" — Section 7.2.
#[test]
fn claim_lace_beats_sp() {
    for regime in [Regime::NavierStokes, Regime::Euler] {
        let r = fig_platforms::fig9_10(regime);
        let sp = r.series("IBM SP (RS6K/370)").unwrap();
        let aln = r.series("ALLNODE-S").unwrap();
        for &(p, t) in &aln.points {
            assert!(t < sp.at(p).unwrap(), "{regime:?} P={p}");
        }
    }
}

/// "Another surprising result is the relatively poor performance of Cray
/// T3D which is consistently worse than ALLNODE-F and is worse than
/// ALLNODE-S for less than 8 processors" — Section 7.2.
#[test]
fn claim_t3d_orderings() {
    let r = fig_platforms::fig9_10(Regime::NavierStokes);
    let t3d = r.series("Cray T3D").unwrap();
    let f = r.series("ALLNODE-F").unwrap();
    let s = r.series("ALLNODE-S").unwrap();
    for &(p, t) in &t3d.points {
        assert!(t > f.at(p).unwrap(), "consistently worse than ALLNODE-F (P={p})");
    }
    for &p in &[1.0, 2.0, 4.0] {
        assert!(t3d.at(p).unwrap() > s.at(p).unwrap(), "worse than ALLNODE-S below 8 (P={p})");
    }
    for &p in &[12.0, 16.0] {
        assert!(t3d.at(p).unwrap() < s.at(p).unwrap(), "better than ALLNODE-S beyond 8 (P={p})");
    }
}

/// "Both T3D and SP exhibit very good speedup characteristics, with an
/// almost linear drop in the execution time" — Section 7.2.
#[test]
fn claim_t3d_and_sp_scale_well() {
    let r = fig_platforms::fig9_10(Regime::NavierStokes);
    for name in ["Cray T3D", "IBM SP (RS6K/370)"] {
        let s = r.series(name).unwrap();
        let eff16 = s.at(1.0).unwrap() / (16.0 * s.at(16.0).unwrap());
        assert!(eff16 > 0.75, "{name}: 16-proc efficiency {eff16}");
    }
}

/// "Cray Y-MP has by far the best performance ... The performance of
/// LACE/590 with 16 processors is comparable to the single node performance
/// of the Y-MP" — Section 7.2.
#[test]
fn claim_ymp_dominance_and_lace_comparability() {
    let r = fig_platforms::fig9_10(Regime::NavierStokes);
    let ymp = r.series("Cray Y-MP").unwrap();
    assert!(ymp.at(1.0).unwrap() < r.series("ALLNODE-F").unwrap().at(8.0).unwrap(), "one Y-MP CPU beats 8 LACE/590s");
    let ratio = r.series("ALLNODE-F").unwrap().at(16.0).unwrap() / ymp.at(1.0).unwrap();
    assert!(ratio > 0.4 && ratio < 1.6, "LACE/590 x16 ~ Y-MP x1: ratio {ratio}");
    // and the Y-MP scales well to its 8 CPUs
    let eff8 = ymp.at(1.0).unwrap() / (8.0 * ymp.at(8.0).unwrap());
    assert!(eff8 > 0.6, "Y-MP efficiency at 8: {eff8}");
}

/// "MPL is consistently faster than PVMe by approximately 75% for
/// Navier-Stokes and approximately 40% for Euler" — Section 7.3.
#[test]
fn claim_mpl_vs_pvme_gaps() {
    let ns = fig_msglib::fig11_12(Regime::NavierStokes);
    let gap_ns = ns.series("Processor busy time with PVMe").unwrap().at(16.0).unwrap()
        / ns.series("Processor busy time with MPL").unwrap().at(16.0).unwrap();
    assert!(gap_ns > 1.35, "N-S PVMe/MPL {gap_ns} (paper ~1.75)");
    let eu = fig_msglib::fig11_12(Regime::Euler);
    let gap_eu = eu.series("Processor busy time with PVMe").unwrap().at(16.0).unwrap()
        / eu.series("Processor busy time with MPL").unwrap().at(16.0).unwrap();
    assert!(gap_eu > 1.2, "Euler PVMe/MPL {gap_eu} (paper ~1.4)");
}

/// "the amount of non-overlapped communication is not only negligibly small
/// but ... decreases with the number of processors" — Section 7.3.
#[test]
fn claim_sp_wait_small_and_decreasing() {
    let r = fig_msglib::fig11_12(Regime::NavierStokes);
    let busy = r.series("Processor busy time with MPL").unwrap();
    let wait = r.series("Non overlapped comm with MPL").unwrap();
    // our 250/16 block-remainder imbalance leaves the lighter ranks waiting
    // ~10% of busy; the paper's bars hide this below its log axis
    assert!(wait.at(16.0).unwrap() < 0.15 * busy.at(16.0).unwrap(), "small");
    assert!(wait.at(16.0).unwrap() < wait.at(4.0).unwrap() * 1.5, "does not blow up with P");
}

/// "we were able to achieve almost perfect load balancing" — Section 7.4.
#[test]
fn claim_load_balance() {
    let r = fig_platforms::fig13();
    let s = &r.series[0];
    let mean = s.points.iter().map(|&(_, y)| y).sum::<f64>() / s.points.len() as f64;
    for &(k, y) in &s.points {
        assert!((y - mean).abs() / mean < 0.15, "processor {k}: busy {y} vs mean {mean}");
    }
}

/// Table 2's halving structure and the back-of-envelope Ethernet argument
/// ("with 8 processors ... approximately 9 Mbps from all the 8 processors;
/// Ethernet is capable of supporting 10 Mbps peak") — Sections 5, 7.1.
#[test]
fn claim_table2_supports_saturation_argument() {
    let ns = tables::characteristics(Regime::NavierStokes);
    // offered load at 8 processors, assuming the paper's 20 MFLOPS rate:
    // bits/s = (volume/proc / run_flops/proc) * 20e6 flops/s * 8 procs * 8 bits
    let per_proc_flops = ns.flops_scaled / 8.0;
    let bytes_per_flop = ns.volume_per_proc as f64 / per_proc_flops;
    let offered_bps = bytes_per_flop * 20e6 * 8.0 * 8.0;
    assert!(
        offered_bps > 5e6 && offered_bps < 25e6,
        "offered load at 8 procs ~ Ethernet capacity (paper: ~9 Mbps): {offered_bps:.2e}"
    );
}
