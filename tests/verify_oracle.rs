//! The ns-verify differential oracle as a tier-1 test, plus its
//! negative paths.
//!
//! The quick matrix here *is* the promoted form of the former ad-hoc
//! equivalence tests (serial vs parallel vs chaos, V5 vs V6, comm-protocol
//! neutrality) that used to live scattered across `crates/core` and
//! `tests/parallel_consistency.rs`. The negative-path tests prove the
//! instruments can fail: an oracle that stays green under a deliberate
//! perturbation verifies nothing.

use ns_core::config::{Regime, SchemeOrder, SolverConfig};
use ns_core::diag::ConservationLedger;
use ns_core::driver::Solver;
use ns_core::mms;
use ns_numerics::Grid;
use ns_verify::oracle::{self, OracleConfig, Perturb};
use ns_verify::snapshot::{GoldenFile, SCHEMA};

#[test]
fn quick_matrix_is_green_and_golden_self_diff_passes() {
    let report = oracle::run_matrix(&OracleConfig::standard(true));
    let failing: Vec<_> = report.cells.iter().filter(|c| !c.pass).map(|c| c.key.clone()).collect();
    assert!(failing.is_empty(), "oracle cells failed: {failing:?}");
    // quick matrix shape: per regime, {V6,V7}-vs-V5 serial (2) +
    // {V5,V6,V7} x {1,4} x {parallel,chaos} (12) +
    // V5 x {1x4,2x2} x {pencil,chaos-pencil} (4) + comm V6 (1)
    assert_eq!(report.cells.len(), 38);
    assert_eq!(report.snapshots.len(), 2, "one serial V5 reference per regime");

    // the snapshots round-trip into a golden file that diffs clean against
    // itself, and a tampered hash is caught
    let golden =
        GoldenFile { schema: SCHEMA, grid: report.grid, steps: report.steps, entries: report.snapshots.clone() };
    assert!(golden.diff(&golden).pass);
    let mut tampered = golden.clone();
    tampered.entries.get_mut("euler/serial/V5").unwrap().hash = "0000000000000000".into();
    assert!(!golden.diff(&tampered).pass);
}

#[test]
fn oracle_catches_single_ulp_serial_perturbation() {
    let mut oc = OracleConfig::standard(true);
    oc.perturb = Some(Perturb { key: "euler/V6/serial".into(), component: 2, i: 20, j: 7 });
    let report = oracle::run_matrix(&oc);
    assert!(!report.pass(), "a single-ulp flip must break a bitwise cell");
    let failing: Vec<_> = report.cells.iter().filter(|c| !c.pass).map(|c| c.key.as_str()).collect();
    assert!(failing.contains(&"euler/V6/serial"), "failing cells: {failing:?}");
    // the perturbed serial field is also the baseline for V6's distributed
    // cells — every failure must trace back to it, nothing else
    assert!(failing.iter().all(|k| k.starts_with("euler/V6/")), "unrelated cells failed: {failing:?}");
}

#[test]
fn oracle_catches_single_ulp_parallel_perturbation() {
    let mut oc = OracleConfig::standard(true);
    oc.perturb = Some(Perturb { key: "euler/V5/parallel/p4".into(), component: 0, i: 33, j: 11 });
    let report = oracle::run_matrix(&oc);
    let failing: Vec<_> = report.cells.iter().filter(|c| !c.pass).map(|c| c.key.as_str()).collect();
    // the perturbed run fails against serial, and the chaos run (compared
    // against it) fails too
    assert_eq!(failing, vec!["euler/V5/parallel/p4", "euler/V5/chaos/p4"], "failing: {failing:?}");
}

#[test]
fn conservation_ledger_flags_unexplained_drift() {
    let cfg = SolverConfig::paper(Grid::small(), Regime::Euler);
    let mut solver = Solver::new(cfg);
    let gas = *solver.gas();
    let mut ledger = ConservationLedger::open(&solver.field, &gas);
    for _ in 0..40 {
        solver.step();
        ledger.record(&solver.field, &gas, solver.dt());
    }
    let clean = ledger.close(&solver.field);
    assert!(
        clean.residual_rel.iter().all(|&r| r <= ns_verify::conservation::TOL_JET),
        "clean run residuals {:?}",
        clean.residual_rel
    );

    // inject mass the boundary budget cannot explain: 1% on the density
    // component everywhere
    let mut bad = solver.field.clone();
    for i in 0..bad.nxl() {
        for j in 0..bad.nr() {
            let v = bad.at(0, i as isize, j as isize);
            bad.set(0, i as isize, j as isize, v * 1.01);
        }
    }
    let dirty = ledger.close(&bad);
    assert!(
        dirty.residual_rel[0] > ns_verify::conservation::TOL_JET,
        "a 1% mass injection must exceed the jet tolerance: residual {:?}",
        dirty.residual_rel
    );
    assert!(dirty.residual_rel[0] > 100.0 * clean.residual_rel[0]);
}

#[test]
fn mms_norms_detect_a_perturbed_solution() {
    let (cfg, steps) = ns_verify::mms::level_config(Regime::Euler, SchemeOrder::TwoFour, 0);
    let spec = cfg.mms.unwrap();
    let mut solver = Solver::new(cfg);
    solver.run(steps);
    let gas = *solver.gas();
    let exact = mms::exact_field(&spec, solver.field.patch.clone(), &gas);
    let (l2_clean, linf_clean) = ns_verify::mms::error_norms(&solver.field, &exact);
    assert!(l2_clean < 1e-4, "level-0 interior error should be converged: {l2_clean}");

    let mut bad = solver.field.clone();
    let v = bad.at(1, 30, 8);
    bad.set(1, 30, 8, v + 1.0);
    let (_, linf_bad) = ns_verify::mms::error_norms(&bad, &exact);
    assert!(
        linf_bad > 10.0 * linf_clean.max(1e-6),
        "a perturbed cell must dominate the max-norm: {linf_bad} vs clean {linf_clean}"
    );
}
