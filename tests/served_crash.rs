//! Chaos tests of the `jetns served` daemon as a real child process: a
//! `kill -9` mid-campaign must restart into the same queue state — the
//! journal replays unfinished jobs, finished cells are served from the
//! spill without recompute — and the completed campaign's final-field
//! fingerprints must match an uninterrupted run bit for bit (payload
//! byte-identity for *re-served* results is covered by the serve crate's
//! daemon_e2e tests; across independent runs the payload embeds wall
//! times). A SIGTERM drain must finish every admitted job and journal a
//! clean shutdown.

use ns_core::config::{Regime, SolverConfig};
use ns_numerics::Grid;
use ns_serve::job::{Backend, JobDesc, JobSpec};
use ns_serve::wal::Wal;
use ns_serve::{Client, Response};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn scratch(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("served-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The campaign: distinct serial cells, long enough that a two-worker
/// daemon is still mid-flight when we pull the plug.
fn campaign() -> Vec<JobSpec> {
    (0..6u64)
        .map(|i| {
            let cfg = SolverConfig::paper(Grid::new(32, 12, 50.0, 5.0), Regime::Euler);
            let mut spec = JobSpec::new(cfg, 20 + i, 1);
            spec.backend = Backend::Serial;
            spec.label = format!("campaign/{i}");
            spec
        })
        .collect()
}

fn spawn_served(state: &Path, workers: usize) -> Child {
    Command::new(env!("CARGO_BIN_EXE_jetns"))
        .args(["served", "--state", state.to_str().unwrap(), "--workers", &workers.to_string(), "--depth", "16"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn jetns served")
}

fn connect(state: &Path) -> Client {
    let socket = state.join("served.sock");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if socket.exists() {
            if let Ok(c) = Client::connect(&socket) {
                return c;
            }
        }
        assert!(Instant::now() < deadline, "daemon socket never came up at {}", socket.display());
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Submit the campaign, returning each job's canonical key.
fn submit_all(client: &mut Client, jobs: &[JobSpec]) -> Vec<String> {
    jobs.iter()
        .map(|spec| match client.submit_with_retry(&JobDesc::from_spec(spec), Duration::from_secs(60)).unwrap() {
            Response::Admitted { key, .. } => key,
            Response::Done { key, .. } => key,
            other => panic!("campaign job {} must be admitted: {other:?}", spec.label),
        })
        .collect()
}

/// Wait out every key, returning key → (cache disposition, field hash).
fn collect_all(client: &mut Client, keys: &[String]) -> BTreeMap<String, (String, String)> {
    let mut out = BTreeMap::new();
    for key in keys {
        match client.wait(key, Duration::from_secs(300)).unwrap() {
            Response::Done { key, cache, field_hash, .. } => {
                out.insert(key, (cache, field_hash));
            }
            other => panic!("campaign job {key} must complete: {other:?}"),
        }
    }
    out
}

fn wait_exit(child: &mut Child, budget: Duration) -> std::process::ExitStatus {
    let deadline = Instant::now() + budget;
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            return status;
        }
        assert!(Instant::now() < deadline, "daemon did not exit within {budget:?}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn kill_dash_nine_mid_campaign_restarts_to_byte_identical_results() {
    let jobs = campaign();

    // the uninterrupted reference run
    let ref_state = scratch("reference");
    let mut daemon = spawn_served(&ref_state, 2);
    let mut client = connect(&ref_state);
    let keys = submit_all(&mut client, &jobs);
    let reference = collect_all(&mut client, &keys);
    client.drain().unwrap();
    drop(client);
    assert!(wait_exit(&mut daemon, Duration::from_secs(60)).success(), "reference daemon drains clean");

    // the chaos run: same campaign, daemon SIGKILLed mid-flight
    let state = scratch("chaos");
    let mut victim = spawn_served(&state, 2);
    let mut client = connect(&state);
    let keys = submit_all(&mut client, &jobs);
    // let some (not all) of the campaign finish, then pull the plug
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let completed = client.status().unwrap().stats.completed;
        if completed >= 2 {
            break;
        }
        assert!(Instant::now() < deadline, "campaign never made progress");
        std::thread::sleep(Duration::from_millis(10));
    }
    victim.kill().unwrap(); // SIGKILL: no drain, no CleanShutdown
    victim.wait().unwrap();
    drop(client);

    // restart in the same state dir: journal replay + spill serving
    let mut revived = spawn_served(&state, 2);
    let mut client = connect(&state);
    let results = collect_all(&mut client, &keys);
    let stats = client.status().unwrap().stats;
    client.drain().unwrap();
    drop(client);
    assert!(wait_exit(&mut revived, Duration::from_secs(60)).success(), "revived daemon drains clean");

    assert_eq!(results.len(), reference.len(), "every campaign job completed after the crash");
    // the solver is deterministic, so the final-field fingerprint of every
    // cell must match the uninterrupted run's bit for bit — crash, replay
    // and spill-serving change nothing about the physics
    for (key, (_, expected)) in &reference {
        let (_, got) = &results[key];
        assert_eq!(got, expected, "field fingerprint for {key} must match the uninterrupted run");
    }
    // work finished before the kill is served from the spill, not redone:
    // strictly fewer cold computes after restart than jobs in the campaign
    let durable = results.values().filter(|(cache, _)| cache == "durable").count();
    assert!(durable >= 1, "at least the pre-kill completions are served durably, got {results:?}");
    assert!(
        (stats.cache_misses as usize) < jobs.len(),
        "restart must not recompute the whole campaign ({} cold of {})",
        stats.cache_misses,
        jobs.len()
    );
}

#[test]
fn sigterm_drains_gracefully_losing_zero_admitted_jobs() {
    let jobs = campaign();
    let state = scratch("drain");
    let mut daemon = spawn_served(&state, 2);
    let mut client = connect(&state);
    let keys = submit_all(&mut client, &jobs);
    drop(client);

    // SIGTERM while the campaign is still in flight
    let term = Command::new("kill").args(["-TERM", &daemon.id().to_string()]).status().unwrap();
    assert!(term.success(), "kill -TERM delivered");
    let status = wait_exit(&mut daemon, Duration::from_secs(300));
    assert!(status.success(), "graceful drain exits zero");

    // the journal ends in CleanShutdown with nothing pending: every
    // admitted job settled before exit
    let (_, replay) = Wal::open(state.join("jobs.wal"), false).unwrap();
    assert!(replay.clean_shutdown, "drain journals CleanShutdown");
    assert!(replay.pending.is_empty(), "graceful drain loses zero admitted jobs: {:?}", replay.pending);
    assert!(replay.completed >= keys.len() as u64, "all {} campaign cells completed", keys.len());

    // and a restarted daemon serves the whole campaign durably
    let mut revived = spawn_served(&state, 2);
    let mut client = connect(&state);
    let results = collect_all(&mut client, &keys);
    assert!(results.values().all(|(cache, _)| cache == "durable"), "drained results all serve from the spill");
    client.drain().unwrap();
    drop(client);
    assert!(wait_exit(&mut revived, Duration::from_secs(60)).success());
}
