//! Cross-crate parallel-consistency suite: the serial solver, the
//! thread-backed message-passing solver and the Rayon shared-memory solver
//! must agree on the same physics for every processor count and protocol.

use ns_core::config::{Regime, SolverConfig, Version};
use ns_core::driver::Solver;
use ns_core::shared::SharedSolver;
use ns_numerics::Grid;
use ns_runtime::{run_parallel, CommVersion};

fn grid() -> Grid {
    Grid::new(64, 24, 50.0, 5.0)
}

#[test]
fn euler_is_bitwise_reproducible_across_all_drivers() {
    let cfg = SolverConfig::paper(grid(), Regime::Euler);
    let steps = 8;
    let mut serial = Solver::new(cfg.clone());
    serial.run(steps);
    // distributed over several rank counts
    for p in [2, 4, 7] {
        let run = run_parallel(&cfg, p, steps, CommVersion::V5);
        assert_eq!(serial.field.max_diff(&run.gather_field()), 0.0, "p={p}");
    }
    // shared memory with several thread counts
    for t in [1, 3, 8] {
        let mut sh = SharedSolver::new(cfg.clone(), t);
        sh.run(steps);
        assert_eq!(serial.field.max_diff(&sh.field), 0.0, "threads={t}");
    }
}

#[test]
fn navier_stokes_agrees_to_viscous_truncation_level() {
    let cfg = SolverConfig::paper(grid(), Regime::NavierStokes);
    let steps = 8;
    let mut serial = Solver::new(cfg.clone());
    serial.run(steps);
    let scale = serial.field.q[3].max_abs();
    for p in [2, 4, 7] {
        let run = run_parallel(&cfg, p, steps, CommVersion::V5);
        let d = serial.field.max_diff(&run.gather_field());
        assert!(d / scale < 1e-8, "p={p}: rel diff {}", d / scale);
    }
}

#[test]
fn rank_count_does_not_change_distributed_results() {
    // the distributed answers for different P must agree with each other
    // (bitwise for Euler)
    let cfg = SolverConfig::paper(grid(), Regime::Euler);
    let a = run_parallel(&cfg, 2, 6, CommVersion::V5).gather_field();
    let b = run_parallel(&cfg, 5, 6, CommVersion::V5).gather_field();
    assert_eq!(a.max_diff(&b), 0.0);
}

#[test]
fn comm_protocol_version_is_physics_neutral() {
    let cfg = SolverConfig::paper(grid(), Regime::NavierStokes);
    let v5 = run_parallel(&cfg, 4, 6, CommVersion::V5).gather_field();
    let v6 = run_parallel(&cfg, 4, 6, CommVersion::V6).gather_field();
    let v7 = run_parallel(&cfg, 4, 6, CommVersion::V7).gather_field();
    assert_eq!(v5.max_diff(&v7), 0.0, "V7 moves identical data in smaller pieces");
    assert_eq!(v5.max_diff(&v6), 0.0, "V6 overlaps the same exchange — identical physics");
}

#[test]
fn v6_overlap_matches_serial_and_keeps_protocol_counts() {
    // the live Version 6: identical results, identical start-ups — only the
    // waiting moves (the paper found no speedup; here we prove no harm)
    let cfg = SolverConfig::paper(grid(), Regime::Euler);
    let mut serial = Solver::new(cfg.clone());
    serial.run(5);
    let run = run_parallel(&cfg, 4, 5, CommVersion::V6);
    assert_eq!(serial.field.max_diff(&run.gather_field()), 0.0);
    assert_eq!(run.ranks[1].stats.startups(), 12 * 5, "same start-ups as V5");
}

#[test]
fn kernel_version_changes_only_rounding() {
    let mut cfg = SolverConfig::paper(grid(), Regime::NavierStokes);
    let mut reference = Solver::new(cfg.clone());
    reference.run(6);
    for v in Version::ALL {
        cfg.version = v;
        let mut s = Solver::new(cfg.clone());
        s.run(6);
        let d = s.field.max_diff(&reference.field);
        let scale = reference.field.q[3].max_abs();
        assert!(d / scale < 1e-10, "{v:?}: rel diff {}", d / scale);
    }
}

#[test]
fn parallel_solver_runs_versioned_kernels_too() {
    // the distributed driver must work with the unoptimized kernels as well
    let mut cfg = SolverConfig::paper(grid(), Regime::Euler);
    cfg.version = Version::V1;
    let mut serial = Solver::new(cfg.clone());
    serial.run(4);
    let run = run_parallel(&cfg, 3, 4, CommVersion::V5);
    let d = serial.field.max_diff(&run.gather_field());
    let scale = serial.field.q[3].max_abs();
    assert!(d / scale < 1e-12, "V1 parallel rel diff {}", d / scale);
}

#[test]
fn adaptive_dt_is_identical_serial_and_parallel() {
    // the global max-reduction must give every rank the serial dt, so the
    // Euler solution stays bitwise identical
    let mut cfg = SolverConfig::paper(grid(), Regime::Euler);
    cfg.adaptive_dt = true;
    let mut serial = Solver::new(cfg.clone());
    serial.run(6);
    for p in [2, 5] {
        let run = run_parallel(&cfg, p, 6, CommVersion::V5);
        assert_eq!(serial.field.max_diff(&run.gather_field()), 0.0, "p={p}");
    }
    // shared-memory driver too
    let mut sh = SharedSolver::new(cfg, 4);
    sh.run(6);
    assert_eq!(serial.field.max_diff(&sh.field), 0.0);
}

#[test]
fn per_rank_accounting_is_consistent() {
    let cfg = SolverConfig::paper(grid(), Regime::NavierStokes);
    let steps = 5;
    let run = run_parallel(&cfg, 4, steps, CommVersion::V5);
    // paper protocol: interior ranks 16 start-ups/step, edges 8
    assert_eq!(run.ranks[0].stats.startups(), 8 * steps);
    assert_eq!(run.ranks[1].stats.startups(), 16 * steps);
    assert_eq!(run.ranks[2].stats.startups(), 16 * steps);
    assert_eq!(run.ranks[3].stats.startups(), 8 * steps);
    // conservation of messages: total sends == total recvs
    let t = run.total_stats();
    assert_eq!(t.sends, t.recvs);
    assert_eq!(t.bytes_sent, t.bytes_recvd);
    // every rank spent some time computing
    for r in &run.ranks {
        assert!(r.busy.as_nanos() > 0, "rank {} busy", r.rank);
    }
}

#[test]
fn gathered_field_covers_every_column_exactly_once() {
    let cfg = SolverConfig::paper(grid(), Regime::Euler);
    let run = run_parallel(&cfg, 5, 2, CommVersion::V5);
    let g = run.gather_field();
    assert!(g.interior_finite());
    // spot check: each rank's first column landed at its global offset
    for r in &run.ranks {
        let gi = r.field.patch.i0;
        for c in 0..4 {
            assert_eq!(g.at(c, gi as isize, 3), r.field.at(c, 0, 3), "rank {} comp {c}", r.rank);
        }
    }
}
