//! Parallel-consistency coverage the ns-verify oracle does NOT subsume:
//! the Rayon shared-memory driver, adaptive-dt reduction, per-rank message
//! accounting and gather layout.
//!
//! The former serial-vs-distributed, cross-P, cross-kernel-version and
//! comm-protocol equivalence tests that lived here were promoted into the
//! ns-verify differential oracle (`crates/verify/src/oracle.rs`), which
//! runs the full V1-V6 x P x driver x protocol matrix under `jetns verify`
//! and `tests/verify_oracle.rs`.

use ns_core::config::{Regime, SolverConfig};
use ns_core::driver::Solver;
use ns_core::shared::SharedSolver;
use ns_numerics::Grid;
use ns_runtime::{run_parallel, CommVersion};

fn grid() -> Grid {
    Grid::new(64, 24, 50.0, 5.0)
}

#[test]
fn shared_memory_driver_is_bitwise_serial() {
    // the Rayon driver is not in the oracle matrix — keep its own check
    let cfg = SolverConfig::paper(grid(), Regime::Euler);
    let steps = 8;
    let mut serial = Solver::new(cfg.clone());
    serial.run(steps);
    for t in [1, 3, 8] {
        let mut sh = SharedSolver::new(cfg.clone(), t);
        sh.run(steps);
        assert_eq!(serial.field.max_diff(&sh.field), 0.0, "threads={t}");
    }
}

#[test]
fn v6_overlap_keeps_protocol_counts() {
    // the live Version 6: identical start-ups — only the waiting moves (the
    // paper found no speedup; physics neutrality is asserted by the oracle)
    let cfg = SolverConfig::paper(grid(), Regime::Euler);
    let run = run_parallel(&cfg, 4, 5, CommVersion::V6);
    assert_eq!(run.ranks[1].stats.startups(), 12 * 5, "same start-ups as V5");
}

#[test]
fn adaptive_dt_is_identical_serial_and_parallel() {
    // the global max-reduction must give every rank the serial dt, so the
    // Euler solution stays bitwise identical
    let mut cfg = SolverConfig::paper(grid(), Regime::Euler);
    cfg.adaptive_dt = true;
    let mut serial = Solver::new(cfg.clone());
    serial.run(6);
    for p in [2, 5] {
        let run = run_parallel(&cfg, p, 6, CommVersion::V5);
        assert_eq!(serial.field.max_diff(&run.gather_field()), 0.0, "p={p}");
    }
    // shared-memory driver too
    let mut sh = SharedSolver::new(cfg, 4);
    sh.run(6);
    assert_eq!(serial.field.max_diff(&sh.field), 0.0);
}

#[test]
fn per_rank_accounting_is_consistent() {
    let cfg = SolverConfig::paper(grid(), Regime::NavierStokes);
    let steps = 5;
    let run = run_parallel(&cfg, 4, steps, CommVersion::V5);
    // paper protocol: interior ranks 16 start-ups/step, edges 8
    assert_eq!(run.ranks[0].stats.startups(), 8 * steps);
    assert_eq!(run.ranks[1].stats.startups(), 16 * steps);
    assert_eq!(run.ranks[2].stats.startups(), 16 * steps);
    assert_eq!(run.ranks[3].stats.startups(), 8 * steps);
    // conservation of messages: total sends == total recvs
    let t = run.total_stats();
    assert_eq!(t.sends, t.recvs);
    assert_eq!(t.bytes_sent, t.bytes_recvd);
    // every rank spent some time computing
    for r in &run.ranks {
        assert!(r.busy.as_nanos() > 0, "rank {} busy", r.rank);
    }
}

#[test]
fn gathered_field_covers_every_column_exactly_once() {
    let cfg = SolverConfig::paper(grid(), Regime::Euler);
    let run = run_parallel(&cfg, 5, 2, CommVersion::V5);
    let g = run.gather_field();
    assert!(g.interior_finite());
    // spot check: each rank's first column landed at its global offset
    for r in &run.ranks {
        let gi = r.field.patch.i0;
        for c in 0..4 {
            assert_eq!(g.at(c, gi as isize, 3), r.field.at(c, 0, 3), "rank {} comp {c}", r.rank);
        }
    }
}
