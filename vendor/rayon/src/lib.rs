//! Offline shim for `rayon`: genuinely parallel `par_iter`/`par_iter_mut`
//! (with `zip` + `for_each`) executed on `std::thread::scope` chunks, and a
//! `ThreadPool` whose `install` sets the parallelism degree for the
//! enclosed region. The work partitioning is deterministic, so numerical
//! results are bitwise reproducible for a fixed thread count.

use std::cell::Cell;

thread_local! {
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn effective_threads() -> usize {
    let n = CURRENT_THREADS.with(|c| c.get());
    if n > 0 {
        n
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Error building a thread pool (this shim never actually fails).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}
impl std::error::Error for ThreadPoolBuildError {}

/// Builder for [`ThreadPool`].
#[derive(Default, Debug)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building a pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the parallelism degree (0 = number of cores).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A parallelism context. Threads are spawned per parallel region (scoped),
/// not kept resident; `install` fixes the degree used inside the closure.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's parallelism degree.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        CURRENT_THREADS.with(|c| {
            let prev = c.replace(self.num_threads);
            let out = op();
            c.set(prev);
            out
        })
    }

    /// The pool's parallelism degree.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// The parallelism degree in effect at the call site.
pub fn current_num_threads() -> usize {
    effective_threads()
}

fn run_parallel<T: Send, F: Fn(T) + Sync>(items: Vec<T>, f: F) {
    let n = effective_threads().max(1);
    if n == 1 || items.len() <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let chunk = items.len().div_ceil(n);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(n);
    let mut rest = items;
    while rest.len() > chunk {
        let tail = rest.split_off(chunk);
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    chunks.push(rest);
    std::thread::scope(|s| {
        let f = &f;
        for ch in chunks {
            s.spawn(move || {
                for item in ch {
                    f(item);
                }
            });
        }
    });
}

/// Core parallel-iterator trait (eager shim: items are materialized, then
/// dispatched over scoped threads in deterministic contiguous chunks).
pub trait ParallelIterator: Sized {
    /// Item yielded to `for_each`.
    type Item: Send;

    /// Materialize the items in order.
    fn into_items(self) -> Vec<Self::Item>;

    /// Pair up with another parallel iterator (truncates to the shorter).
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Apply `f` to every item, in parallel.
    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F) {
        run_parallel(self.into_items(), f);
    }
}

/// Zipped pair of parallel iterators.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    fn into_items(self) -> Vec<Self::Item> {
        self.a.into_items().into_iter().zip(self.b.into_items()).collect()
    }
}

/// Parallel iterator over `&mut T` items.
pub struct IterMut<'a, T: Send> {
    items: Vec<&'a mut T>,
}

impl<'a, T: Send> ParallelIterator for IterMut<'a, T> {
    type Item = &'a mut T;
    fn into_items(self) -> Vec<Self::Item> {
        self.items
    }
}

/// Parallel iterator over `&T` items.
pub struct Iter<'a, T: Sync> {
    items: Vec<&'a T>,
}

impl<'a, T: Sync> ParallelIterator for Iter<'a, T> {
    type Item = &'a T;
    fn into_items(self) -> Vec<Self::Item> {
        self.items
    }
}

/// `par_iter_mut` provider.
pub trait IntoParallelRefMutIterator<'a> {
    /// The produced iterator.
    type Iter: ParallelIterator;
    /// Iterate mutably in parallel.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Iter = IterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> IterMut<'a, T> {
        IterMut { items: self.iter_mut().collect() }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Iter = IterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> IterMut<'a, T> {
        IterMut { items: self.iter_mut().collect() }
    }
}

/// `par_iter` provider.
pub trait IntoParallelRefIterator<'a> {
    /// The produced iterator.
    type Iter: ParallelIterator;
    /// Iterate in parallel.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = Iter<'a, T>;
    fn par_iter(&'a self) -> Iter<'a, T> {
        Iter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = Iter<'a, T>;
    fn par_iter(&'a self) -> Iter<'a, T> {
        Iter { items: self.iter().collect() }
    }
}

/// The customary glob import.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn zip_for_each_runs_every_item() {
        let mut a: Vec<u64> = (0..100).collect();
        let mut b: Vec<u64> = (0..100).map(|x| x * 2).collect();
        let pool = crate::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            a.par_iter_mut().zip(b.par_iter_mut()).for_each(|(x, y)| {
                *x += *y;
            });
        });
        for (i, v) in a.iter().enumerate() {
            assert_eq!(*v, i as u64 * 3);
        }
    }
}
