//! Offline shim for `criterion`: a minimal but genuine timing harness.
//! Benchmarks are warmed up, then measured over a fixed wall-clock budget,
//! and results print as `<group>/<id> ... <mean> per iter` lines. There are
//! no statistics beyond mean/min, and no HTML reports.

use std::time::{Duration, Instant};

/// Re-export for convenience (benches in this workspace use
/// `std::hint::black_box` directly, but upstream offers it here too).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier, `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{function}/{parameter}") }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// Anything usable as a benchmark id.
pub trait IntoBenchmarkId {
    /// Render to the printed id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}
impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}
impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    /// Mean seconds per iteration of the last `iter` call.
    mean_secs: f64,
    iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Self { mean_secs: 0.0, iters: 0 }
    }

    /// Time `f`, storing the mean cost per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: at least 3 iterations or 20 ms.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 3 || warm_start.elapsed() < Duration::from_millis(20) {
            std::hint::black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        // Measurement: run until the budget elapses.
        let budget = Duration::from_millis(120);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget {
            std::hint::black_box(f());
            iters += 1;
        }
        let total = start.elapsed().as_secs_f64();
        self.iters = iters.max(1);
        self.mean_secs = total / self.iters as f64;
    }
}

fn fmt_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn fmt_rate(throughput: Option<Throughput>, secs: f64) -> String {
    match throughput {
        Some(Throughput::Elements(n)) if secs > 0.0 => {
            format!("  ({:.2} Melem/s)", n as f64 / secs / 1e6)
        }
        Some(Throughput::Bytes(n)) if secs > 0.0 => {
            format!("  ({:.2} MiB/s)", n as f64 / secs / (1024.0 * 1024.0))
        }
        _ => String::new(),
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count (accepted for API compatibility; the shim's
    /// budget-based measurement ignores it).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        println!(
            "bench {:<50} {:>12}/iter{}",
            format!("{}/{}", self.name, id.into_id()),
            fmt_duration(b.mean_secs),
            fmt_rate(self.throughput, b.mean_secs),
        );
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        println!(
            "bench {:<50} {:>12}/iter{}",
            format!("{}/{}", self.name, id.into_id()),
            fmt_duration(b.mean_secs),
            fmt_rate(self.throughput, b.mean_secs),
        );
        self
    }

    /// Finish the group (prints nothing extra in the shim).
    pub fn finish(self) {}
}

/// The benchmark manager.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _criterion: self }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        println!(
            "bench {:<50} {:>12}/iter",
            id.into_id(),
            fmt_duration(b.mean_secs),
        );
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
