//! Offline shim for `crossbeam-channel`: unbounded MPSC channels backed by
//! `std::sync::mpsc`, exposing the crossbeam API surface the workspace uses
//! (`unbounded`, cloneable `Sender`, `recv`/`recv_timeout`/`try_recv`).

use std::sync::mpsc;
use std::time::Duration;

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender { inner: tx }, Receiver { inner: rx })
}

/// The sending half (cloneable).
pub struct Sender<T> {
    inner: mpsc::Sender<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Self { inner: self.inner.clone() }
    }
}

impl<T> Sender<T> {
    /// Send a message; errors if all receivers are gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        self.inner.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
    }
}

/// The receiving half.
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
}

impl<T> Receiver<T> {
    /// Block until a message arrives or all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv().map_err(|_| RecvError)
    }

    /// Block for at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.inner.recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
        })
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.inner.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }
}

/// Send failed: all receivers dropped. Carries the unsent message.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Receive failed: all senders dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Timed receive failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived within the timeout.
    Timeout,
    /// All senders dropped and the queue is empty.
    Disconnected,
}

/// Non-blocking receive failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Queue currently empty.
    Empty,
    /// All senders dropped and the queue is empty.
    Disconnected,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_send_recv_and_timeout() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), 2);
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Timeout));
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Disconnected));
    }
}
