//! Offline shim for `serde`.
//!
//! Instead of the upstream visitor architecture, this shim funnels
//! everything through a JSON-like [`Value`] tree: `Serialize` renders a
//! value *to* a [`Value`], `Deserialize` reads one *from* a [`Value`].
//! `serde_json` (the sibling shim) converts `Value` to/from JSON text.
//! The `derive` feature re-exports the `serde_derive` proc macros, which
//! generate impls against this model for plain structs and enums.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like dynamic value: the interchange tree for this shim.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` (also the serialization of non-finite floats).
    Null,
    /// Boolean.
    Bool(bool),
    /// Negative integer (parsed from a `-` literal without `.`/`e`).
    I64(i64),
    /// Non-negative integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object (insertion-ordered).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as an object's entry list.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as an array.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Build from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Self { msg: m.into() }
    }

    /// "expected X while deserializing Y".
    pub fn expected(what: &str, ctx: &str) -> Self {
        Self::msg(format!("expected {what} while deserializing {ctx}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}
impl std::error::Error for DeError {}

/// Render `self` to a [`Value`].
pub trait Serialize {
    /// Produce the value tree.
    fn serialize(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`].
pub trait Deserialize: Sized {
    /// Parse the value tree.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

/// Fetch a required object field (helper for derived impls).
pub fn map_field<'a>(map: &'a [(String, Value)], name: &str, ty: &str) -> Result<&'a Value, DeError> {
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::msg(format!("missing field `{name}` while deserializing {ty}")))
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg(format!("integer {n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg(format!("integer {n} out of range for {}", stringify!($t)))),
                    _ => Err(DeError::expected("unsigned integer", stringify!($t))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg(format!("integer {n} out of range for {}", stringify!($t)))),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg(format!("integer {n} out of range for {}", stringify!($t)))),
                    _ => Err(DeError::expected("integer", stringify!($t))),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    // Null is how non-finite floats serialize; refusing it on
                    // the way back is what makes NaN checkpoints unrestorable.
                    _ => Err(DeError::expected("number", stringify!($t))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Deserialize for &'static str {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        // `&'static str` fields (catalog names) can only be rebuilt by
        // interning; the leak is bounded by the number of distinct names.
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(DeError::expected("string", "&str")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("array", "Vec"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::deserialize(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| DeError::msg(format!("expected array of length {N}, found {n}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Seq(vec![self.0.serialize(), self.1.serialize()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let s = v.as_seq().ok_or_else(|| DeError::expected("array", "tuple"))?;
        if s.len() != 2 {
            return Err(DeError::expected("2-element array", "tuple"));
        }
        Ok((A::deserialize(&s[0])?, B::deserialize(&s[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Seq(vec![self.0.serialize(), self.1.serialize(), self.2.serialize()])
    }
}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let s = v.as_seq().ok_or_else(|| DeError::expected("array", "tuple"))?;
        if s.len() != 3 {
            return Err(DeError::expected("3-element array", "tuple"));
        }
        Ok((A::deserialize(&s[0])?, B::deserialize(&s[1])?, C::deserialize(&s[2])?))
    }
}

impl<K: AsRef<str> + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.as_ref().to_string(), v.serialize())).collect())
    }
}
impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::expected("object", "BTreeMap"))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::deserialize(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
