//! Offline shim for `serde_json`: JSON text <-> the serde shim's [`Value`].
//!
//! Finite `f64`s are written with Rust's shortest-round-trip `Display`, so
//! every finite float survives text round-trips **bitwise** (the behaviour
//! the upstream `float_roundtrip` feature guarantees). Non-finite floats
//! serialize to `null`, and `null` refuses to parse back as a number — the
//! checkpoint tests rely on exactly this pair of properties.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// (De)serialization error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}
impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

// ---------------------------------------------------------------- writing

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // Rust's `{}` prints the shortest decimal that parses back to the
        // same bits; `str::parse::<f64>` is correctly rounded. Together
        // they give bitwise round-trips for every finite double.
        out.push_str(&format!("{x}"));
    } else {
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(out, indent.map(|d| d + 1));
                write_value(out, item, indent.map(|d| d + 1));
            }
            if !items.is_empty() {
                newline_indent(out, indent);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (k, (key, val)) in entries.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(out, indent.map(|d| d + 1));
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent.map(|d| d + 1));
            }
            if !entries.is_empty() {
                newline_indent(out, indent);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>) {
    if let Some(depth) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None);
    Ok(out)
}

/// Serialize to an indented JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(0));
    Ok(out)
}

/// Serialize to JSON bytes.
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("expected null"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("expected true"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("expected false"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':', "expected `:`")?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    if b == b'.' || b == b'e' || b == b'E' {
                        is_float = true;
                    }
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>().map(Value::F64).map_err(|_| self.err("invalid number"))
        } else if let Some(stripped) = text.strip_prefix('-') {
            if stripped.chars().all(|c| c == '0') {
                // Preserve the sign of negative zero for bitwise round-trips.
                Ok(Value::F64(-0.0))
            } else {
                text.parse::<i64>().map(Value::I64).map_err(|_| self.err("integer out of range"))
            }
        } else {
            text.parse::<u64>().map(Value::U64).map_err(|_| self.err("integer out of range"))
        }
    }
}

/// Parse JSON text into a [`Value`].
pub fn value_from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    Ok(T::deserialize(&value_from_str(s)?)?)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|_| Error::new("invalid UTF-8"))?;
    from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_bitwise_roundtrip() {
        for x in [0.0, -0.0, 1.5, 1.0e300, 5.0e-324, -2.2250738585072014e-308, 0.1 + 0.2] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{s}");
        }
    }

    #[test]
    fn nan_serializes_to_null_and_fails_to_parse_as_number() {
        let s = to_string(&f64::NAN).unwrap();
        assert_eq!(s, "null");
        assert!(from_str::<f64>(&s).is_err());
    }

    #[test]
    fn nested_values() {
        let v: Vec<Vec<u64>> = from_str("[[1,2],[3]]").unwrap();
        assert_eq!(v, vec![vec![1, 2], vec![3]]);
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[3]]");
    }

    #[test]
    fn string_escapes() {
        let s = to_string(&String::from("a\"b\\c\nd")).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, "a\"b\\c\nd");
    }
}
