//! Offline shim for `proptest`: the `proptest!` macro plus the strategy
//! combinators the workspace's property tests use (numeric ranges,
//! `bool::ANY`, `f64::NORMAL`/`ANY`, `collection::vec`, `sample::subsequence`,
//! `prop_map`, `prop_filter`). Cases are generated from a deterministic
//! xorshift generator seeded by the test name, so failures are reproducible;
//! there is no shrinking.

pub mod test_runner {
    /// Per-test configuration (`cases` = accepted cases to run).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Modest default so `cargo test -q` stays fast; tests that need
            // more coverage override via `with_cases`.
            Self { cases: 48 }
        }
    }

    /// Marker for a case rejected by `prop_assume!`.
    #[derive(Debug, Clone, Copy)]
    pub struct Rejected;

    /// Deterministic xorshift64* generator.
    #[derive(Clone, Debug)]
    pub struct Rng {
        state: u64,
    }

    impl Rng {
        /// Seed from a test name (FNV-1a hash).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            Self { state: h | 1 }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform usize in `[0, n)` (n > 0).
        pub fn next_below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod strategy {
    use crate::test_runner::Rng;

    /// A source of random values (shim: direct generation, no value trees).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut Rng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Discard values failing `keep` (regenerates, up to a retry cap).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: impl Into<String>,
            keep: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, whence: whence.into(), keep }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut Rng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        keep: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut Rng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.keep)(&v) {
                    return v;
                }
            }
            panic!("prop_filter `{}` rejected 1000 consecutive values", self.whence)
        }
    }

    /// Always yields clones of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut Rng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + (rng.next_u64() % span) as i64) as $t
                }
            }
        )*};
    }
    impl_signed_range!(i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut Rng) -> f64 {
            self.start + rng.next_unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut Rng) -> f32 {
            self.start + (rng.next_unit_f64() as f32) * (self.end - self.start)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut Rng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut Rng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;

    /// Either boolean, uniformly.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The `prop::bool::ANY` strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Numeric strategies.
pub mod num {
    /// f64 strategies.
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::test_runner::Rng;

        /// Normal (finite, non-subnormal) doubles of either sign.
        #[derive(Clone, Copy, Debug)]
        pub struct Normal;

        /// The `prop::num::f64::NORMAL` strategy.
        pub const NORMAL: Normal = Normal;

        impl Strategy for Normal {
            type Value = f64;
            fn generate(&self, rng: &mut Rng) -> f64 {
                // Exponents around 1.0 (2^-50 .. 2^52) so downstream
                // arithmetic like `v % 1.0` keeps fractional structure.
                let exp: u64 = 973 + rng.next_u64() % 103;
                let mantissa = rng.next_u64() & ((1u64 << 52) - 1);
                let sign = (rng.next_u64() & 1) << 63;
                f64::from_bits(sign | (exp << 52) | mantissa)
            }
        }

        /// Any bit pattern, including NaN and infinities.
        #[derive(Clone, Copy, Debug)]
        pub struct AnyF64;

        /// The `prop::num::f64::ANY` strategy.
        pub const ANY: AnyF64 = AnyF64;

        impl Strategy for AnyF64 {
            type Value = f64;
            fn generate(&self, rng: &mut Rng) -> f64 {
                f64::from_bits(rng.next_u64())
            }
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;

    /// Length specification for [`vec`]: a fixed size or a `Range<usize>`.
    pub trait IntoSizeRange {
        /// Inclusive lower, exclusive upper bound.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// Strategy for `Vec`s with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    /// Vectors of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty size range for collection::vec");
        VecStrategy { element, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let len = self.lo + rng.next_below(self.hi - self.lo);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;

    /// Strategy for order-preserving subsequences.
    pub struct Subsequence<T: Clone> {
        values: Vec<T>,
        size: usize,
    }

    /// A random subsequence of `values` of exactly `size` elements,
    /// preserving the original order.
    pub fn subsequence<T: Clone>(values: Vec<T>, size: usize) -> Subsequence<T> {
        assert!(size <= values.len(), "subsequence size exceeds the pool");
        Subsequence { values, size }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut Rng) -> Vec<T> {
            let n = self.values.len();
            let mut idx: Vec<usize> = (0..n).collect();
            // Partial Fisher-Yates, then restore order.
            for k in 0..self.size {
                let j = k + rng.next_below(n - k);
                idx.swap(k, j);
            }
            let mut chosen = idx[..self.size].to_vec();
            chosen.sort_unstable();
            chosen.into_iter().map(|i| self.values[i].clone()).collect()
        }
    }
}

/// The customary glob import.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Strategy module aliases (`prop::collection::vec` etc.).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::num;
        pub use crate::sample;
    }
}

/// Reject the current case unless `cond` holds (it is regenerated).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// Assert within a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Assert equality within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Assert inequality within a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::Rng::from_name(stringify!($name));
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __config.cases.saturating_mul(20).max(200);
            while __accepted < __config.cases && __attempts < __max_attempts {
                __attempts += 1;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::Rejected> =
                    (move || {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                if __outcome.is_ok() {
                    __accepted += 1;
                }
            }
            if __accepted < __config.cases {
                panic!(
                    "proptest: only {} of {} cases accepted (too many prop_assume rejections)",
                    __accepted, __config.cases
                );
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    (($cfg:expr)) => {};
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}
