//! Offline shim for the `bytes` crate: reference-counted immutable byte
//! buffers (`Bytes`), growable buffers (`BytesMut`), and the `Buf`/`BufMut`
//! cursor traits, covering the surface the jetns workspace uses.

use std::sync::Arc;

/// A cheaply cloneable, immutable view of a byte buffer.
///
/// Reading through [`Buf`] advances the view (shrinking `len()`), exactly
/// like the upstream crate. The backing store is an `Arc<Vec<u8>>` so a
/// uniquely-held buffer can be recovered for reuse via
/// [`Bytes::try_into_mut`] without copying.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self { data: Arc::new(Vec::new()), start: 0, end: 0 }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        let end = src.len();
        Self { data: Arc::new(src.to_vec()), start: 0, end }
    }

    /// Remaining bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The remaining bytes as a slice.
    pub fn as_ref_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Shorten the view to its first `len` bytes without touching the
    /// shared storage (mirrors the upstream API; a no-op when the view is
    /// already shorter). This is what lets a frame trailer be stripped
    /// zero-copy even while the sender's retransmit cache holds a clone.
    pub fn truncate(&mut self, len: usize) {
        self.end = self.start + len.min(self.len());
    }

    /// Recover the backing storage as a [`BytesMut`] when this is the only
    /// handle to it (mirrors the upstream API). The buffer's capacity is
    /// preserved, so a pool can recycle received payloads into future send
    /// buffers with no allocation; bytes outside the current view are
    /// discarded. Returns the buffer unchanged when other clones are still
    /// alive.
    pub fn try_into_mut(self) -> Result<BytesMut, Bytes> {
        let (start, end) = (self.start, self.end);
        match Arc::try_unwrap(self.data) {
            Ok(mut vec) => {
                vec.truncate(end);
                vec.drain(..start);
                Ok(BytesMut { inner: vec })
            }
            Err(data) => Err(Bytes { data, start, end }),
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_ref_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref_slice() == other.as_ref_slice()
    }
}
impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self { data: Arc::new(v), start: 0, end }
    }
}

/// A growable byte buffer.
#[derive(Default, Debug, Clone)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        Self { inner: Vec::with_capacity(cap) }
    }

    /// Reserve space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Discard all contents, keeping capacity.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Shorten the buffer to `len` bytes, keeping capacity. A no-op when
    /// the buffer is already shorter (mirrors the upstream API).
    pub fn truncate(&mut self, len: usize) {
        self.inner.truncate(len);
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        let end = self.inner.len();
        Bytes { data: Arc::new(self.inner), start: 0, end }
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

/// Read cursor over a byte buffer (subset of the upstream trait).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advance the cursor by `cnt` bytes. Panics past the end.
    fn advance(&mut self, cnt: usize);

    /// True when at least one byte is unread.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Read a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Read a little-endian f64 (bit pattern preserved).
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_ref_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }
}

/// Write cursor over a growable byte buffer (subset of the upstream trait).
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian f64 (bit pattern preserved).
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_into_mut_recovers_unique_buffers_with_capacity() {
        let mut b = BytesMut::with_capacity(64);
        b.put_u32_le(7);
        let frozen = b.freeze();
        let recovered = frozen.try_into_mut().expect("unique handle");
        assert_eq!(recovered.len(), 4);
        assert!(recovered.inner.capacity() >= 64, "capacity survives the round trip");

        let shared = Bytes::copy_from_slice(&[1, 2, 3]);
        let clone = shared.clone();
        let back = shared.try_into_mut().expect_err("clone still alive");
        assert_eq!(back, clone);
    }

    #[test]
    fn roundtrip_f64_bits() {
        let mut b = BytesMut::with_capacity(16);
        b.put_f64_le(f64::NAN);
        b.put_f64_le(-0.0);
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 16);
        assert_eq!(frozen.get_f64_le().to_bits(), f64::NAN.to_bits());
        assert_eq!(frozen.get_f64_le().to_bits(), (-0.0f64).to_bits());
        assert!(!frozen.has_remaining());
    }
}
