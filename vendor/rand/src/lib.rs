//! Offline shim for `rand`. The workspace declares rand as a dev-dependency
//! but does not currently use it; this shim keeps the manifest resolvable
//! and offers a tiny deterministic generator should a test want one.

/// Minimal random-source trait.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform f64 in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Deterministic xorshift64* generator.
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Seed the generator (zero is remapped to a fixed odd constant).
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed } }
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

/// A process-global deterministic generator (not actually thread-local
/// entropy — this shim favours reproducibility).
pub fn thread_rng() -> SmallRng {
    SmallRng::seed_from_u64(0x853C49E6748FEA9B)
}
