//! Offline shim for `serde_derive`.
//!
//! Walks the raw `proc_macro::TokenStream` directly (no syn/quote in this
//! environment) and emits impls of the shim `serde::Serialize` /
//! `serde::Deserialize` traits. Supports what the workspace uses:
//!
//! * structs with named fields,
//! * enums with unit and struct (named-field) variants — externally tagged:
//!   unit variants serialize as `"Name"`, struct variants as
//!   `{"Name": {..fields..}}`.
//!
//! Unsupported shapes (generics, tuple structs/variants, `#[serde(..)]`
//! attributes) panic at expansion time with a clear message rather than
//! silently producing wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Struct(Vec<String>),
    Enum(Vec<(String, Option<Vec<String>>)>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

/// Skip `#[...]` attributes and visibility modifiers at `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then a bracketed group
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Parse the named fields of a brace-delimited body into field names.
fn parse_named_fields(body: &[TokenTree], ctx: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs_and_vis(body, i);
        if i >= body.len() {
            break;
        }
        let name = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive shim: expected field name in {ctx}, found `{other}`"),
        };
        i += 1;
        match &body[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde derive shim: expected `:` after field `{name}` in {ctx}, found `{other}` (tuple fields unsupported)"),
        }
        // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut angle = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

fn parse_enum_variants(body: &[TokenTree], ctx: &str) -> Vec<(String, Option<Vec<String>>)> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs_and_vis(body, i);
        if i >= body.len() {
            break;
        }
        let name = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive shim: expected variant name in {ctx}, found `{other}`"),
        };
        i += 1;
        let mut fields = None;
        if let Some(TokenTree::Group(g)) = body.get(i) {
            match g.delimiter() {
                Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    fields = Some(parse_named_fields(&inner, ctx));
                    i += 1;
                }
                Delimiter::Parenthesis => {
                    panic!("serde derive shim: tuple variant `{name}` in {ctx} unsupported")
                }
                _ => {}
            }
        }
        // Optional discriminant `= expr` then optional comma.
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push((name, fields));
    }
    variants
}

fn parse_input(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive shim: expected `struct` or `enum`, found `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive shim: expected type name, found `{other}`"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive shim: generic type `{name}` unsupported");
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            g.stream().into_iter().collect::<Vec<_>>()
        }
        _ => panic!("serde derive shim: `{name}` has no brace body (tuple/unit types unsupported)"),
    };
    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_named_fields(&body, &name)),
        "enum" => Shape::Enum(parse_enum_variants(&body, &name)),
        other => panic!("serde derive shim: unsupported item kind `{other}`"),
    };
    Parsed { name, shape }
}

/// Derive the shim `Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let p = parse_input(input);
    let name = &p.name;
    let mut out = String::new();
    out.push_str(&format!("impl ::serde::Serialize for {name} {{\n"));
    out.push_str("    fn serialize(&self) -> ::serde::Value {\n");
    match &p.shape {
        Shape::Struct(fields) => {
            out.push_str("        let mut m: Vec<(String, ::serde::Value)> = Vec::new();\n");
            for f in fields {
                out.push_str(&format!(
                    "        m.push((String::from(\"{f}\"), ::serde::Serialize::serialize(&self.{f})));\n"
                ));
            }
            out.push_str("        ::serde::Value::Map(m)\n");
        }
        Shape::Enum(variants) => {
            out.push_str("        match self {\n");
            for (v, fields) in variants {
                match fields {
                    None => out.push_str(&format!(
                        "            {name}::{v} => ::serde::Value::Str(String::from(\"{v}\")),\n"
                    )),
                    Some(fs) => {
                        let pat = fs.join(", ");
                        out.push_str(&format!("            {name}::{v} {{ {pat} }} => {{\n"));
                        out.push_str(
                            "                let mut m: Vec<(String, ::serde::Value)> = Vec::new();\n",
                        );
                        for f in fs {
                            out.push_str(&format!(
                                "                m.push((String::from(\"{f}\"), ::serde::Serialize::serialize({f})));\n"
                            ));
                        }
                        out.push_str(&format!(
                            "                ::serde::Value::Map(vec![(String::from(\"{v}\"), ::serde::Value::Map(m))])\n"
                        ));
                        out.push_str("            }\n");
                    }
                }
            }
            out.push_str("        }\n");
        }
    }
    out.push_str("    }\n}\n");
    out.parse().expect("serde derive shim: generated Serialize impl failed to parse")
}

/// Derive the shim `Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let p = parse_input(input);
    let name = &p.name;
    let mut out = String::new();
    out.push_str(&format!("impl ::serde::Deserialize for {name} {{\n"));
    out.push_str(
        "    fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {\n",
    );
    match &p.shape {
        Shape::Struct(fields) => {
            out.push_str(&format!(
                "        let m = v.as_map().ok_or_else(|| ::serde::DeError::expected(\"map\", \"{name}\"))?;\n"
            ));
            out.push_str(&format!("        ::std::result::Result::Ok({name} {{\n"));
            for f in fields {
                out.push_str(&format!(
                    "            {f}: ::serde::Deserialize::deserialize(::serde::map_field(m, \"{f}\", \"{name}\")?)?,\n"
                ));
            }
            out.push_str("        })\n");
        }
        Shape::Enum(variants) => {
            out.push_str("        match v {\n");
            out.push_str("            ::serde::Value::Str(s) => match s.as_str() {\n");
            for (vname, fields) in variants {
                if fields.is_none() {
                    out.push_str(&format!(
                        "                \"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    ));
                }
            }
            out.push_str(&format!(
                "                other => ::std::result::Result::Err(::serde::DeError::msg(format!(\"unknown variant `{{other}}` for {name}\"))),\n"
            ));
            out.push_str("            },\n");
            out.push_str("            ::serde::Value::Map(entries) if entries.len() == 1 => {\n");
            out.push_str("                let (tag, inner) = &entries[0];\n");
            out.push_str("                match tag.as_str() {\n");
            for (vname, fields) in variants {
                if let Some(fs) = fields {
                    out.push_str(&format!("                    \"{vname}\" => {{\n"));
                    out.push_str(&format!(
                        "                        let m = inner.as_map().ok_or_else(|| ::serde::DeError::expected(\"map\", \"{name}::{vname}\"))?;\n"
                    ));
                    out.push_str(&format!(
                        "                        ::std::result::Result::Ok({name}::{vname} {{\n"
                    ));
                    for f in fs {
                        out.push_str(&format!(
                            "                            {f}: ::serde::Deserialize::deserialize(::serde::map_field(m, \"{f}\", \"{name}::{vname}\")?)?,\n"
                        ));
                    }
                    out.push_str("                        })\n");
                    out.push_str("                    }\n");
                }
            }
            out.push_str(&format!(
                "                    other => ::std::result::Result::Err(::serde::DeError::msg(format!(\"unknown variant `{{other}}` for {name}\"))),\n"
            ));
            out.push_str("                }\n");
            out.push_str("            }\n");
            out.push_str(&format!(
                "            _ => ::std::result::Result::Err(::serde::DeError::expected(\"string or single-key map\", \"{name}\")),\n"
            ));
            out.push_str("        }\n");
        }
    }
    out.push_str("    }\n}\n");
    out.parse().expect("serde derive shim: generated Deserialize impl failed to parse")
}
