//! Offline shim for `parking_lot`: `Mutex`/`RwLock` wrappers over
//! `std::sync` with the parking_lot API (no lock poisoning — a poisoned
//! std lock is treated as acquired, matching parking_lot semantics).

/// Mutual exclusion lock.
#[derive(Default, Debug)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Acquire the lock (never poisons).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Reader-writer lock.
#[derive(Default, Debug)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

/// Read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::RwLock::new(value) }
    }

    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}
