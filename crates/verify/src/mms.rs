//! Manufactured-solution grid-refinement sweeps.
//!
//! Protocol: start each run *on* the exact manufactured state, advance a
//! fixed physical time `T` with `dt` scaled as `h^2` (so the temporal error
//! of the second-order-in-time scheme refines at the same fourth-order rate
//! as the spatial interior error), and measure the departure from the exact
//! state. Step counts are kept even so every run ends on a completed
//! `L1`/`L2` alternation — the one-sided predictor/corrector truncation
//! terms only cancel to fourth order over the symmetric pair.
//!
//! Two norms are tracked per refinement level:
//!
//! * the **interior** combined-RMS error over `x in [5, 45]`, `r <= 3.75`
//!   (well away from the Dirichlet inflow/outflow columns and the
//!   second-order top-boundary extrapolation), which must observe the
//!   scheme's design order;
//! * the **global** max-norm error over the whole domain including
//!   boundaries, which the issue requires to observe at least ~2nd order.

use ns_core::config::{Regime, SchemeOrder, SolverConfig};
use ns_core::driver::Solver;
use ns_core::mms::{self, MmsSpec};
use ns_core::Field;
use ns_numerics::{norms, Grid};
use serde::Serialize;

/// Interior-region bounds for the order measurement (axial window and
/// radial cap, in physical units on the 50 x 5 domain).
const INTERIOR_X: (f64, f64) = (5.0, 45.0);
const INTERIOR_R: f64 = 3.75;

/// One refinement sweep: a scheme/regime pair measured over a ladder of
/// grids, with the observed orders and the pass verdict.
#[derive(Clone, Debug, Serialize)]
pub struct MmsCase {
    /// Case label, e.g. `"euler/2-4"`.
    pub name: String,
    /// Governing equations.
    pub regime: String,
    /// Scheme variant (`"2-4"` or `"2-2"`).
    pub scheme: String,
    /// Grid sizes per level.
    pub grids: Vec<[usize; 2]>,
    /// Time step per level (`dt ~ h^2`).
    pub dts: Vec<f64>,
    /// Interior combined-RMS error per level.
    pub interior_l2: Vec<f64>,
    /// Global max-norm error per level.
    pub global_linf: Vec<f64>,
    /// Observed interior order between consecutive levels.
    pub interior_orders: Vec<f64>,
    /// Observed global order between consecutive levels.
    pub global_orders: Vec<f64>,
    /// Minimum acceptable interior order.
    pub order_floor: f64,
    /// Maximum acceptable interior order (`Some` only for the 2-2 control
    /// case, which must *not* reach fourth order).
    pub order_ceiling: Option<f64>,
    /// Minimum acceptable global (boundary-limited) order.
    pub global_floor: f64,
    /// Verdict.
    pub pass: bool,
}

/// Run the MMS verification sweeps. `quick` runs the 2-4 Euler ladder only
/// (two levels); the full suite adds Navier-Stokes and the 2-2 control.
pub fn run_sweeps(quick: bool) -> Vec<MmsCase> {
    if quick {
        vec![run_case("euler/2-4", Regime::Euler, SchemeOrder::TwoFour, 2, 3.5, None, 1.8)]
    } else {
        vec![
            run_case("euler/2-4", Regime::Euler, SchemeOrder::TwoFour, 3, 3.5, None, 1.8),
            run_case("navier-stokes/2-4", Regime::NavierStokes, SchemeOrder::TwoFour, 3, 3.5, None, 1.8),
            // Control: the instrument must distinguish schemes. The 2-2
            // MacCormack variant must observe ~2nd order, NOT 4th.
            run_case("euler/2-2-control", Regime::Euler, SchemeOrder::TwoTwo, 2, 1.5, Some(3.0), 1.2),
        ]
    }
}

/// Configuration for one MMS level (exposed so the negative-path tests can
/// run single levels directly).
pub fn level_config(regime: Regime, scheme: SchemeOrder, level: usize) -> (SolverConfig, u64) {
    let spec = MmsSpec::standard();
    let nx = 50 * (1 << level) + 1;
    let nr = 16 * (1 << level);
    let grid = Grid::new(nx, nr, 50.0, 5.0);
    let mut cfg = SolverConfig::paper(grid, regime);
    cfg.excitation.enabled = false;
    cfg.scheme = scheme;
    cfg.mms = Some(spec);
    // dt ~ h^2: halving h quarters dt, so T = 0.32 is reached in 8 * 4^l
    // (always even) steps and the O(dt^2) temporal error refines like h^4.
    let dt = 0.04 / (1 << (2 * level)) as f64;
    cfg.dt_override = Some(dt);
    let steps = 8 * (1 << (2 * level)) as u64;
    (cfg, steps)
}

fn run_case(
    name: &str,
    regime: Regime,
    scheme: SchemeOrder,
    levels: usize,
    order_floor: f64,
    order_ceiling: Option<f64>,
    global_floor: f64,
) -> MmsCase {
    let mut grids = Vec::new();
    let mut dts = Vec::new();
    let mut interior_l2 = Vec::new();
    let mut global_linf = Vec::new();
    for level in 0..levels {
        let (cfg, steps) = level_config(regime, scheme, level);
        grids.push([cfg.grid.nx, cfg.grid.nr]);
        dts.push(cfg.time_step());
        let spec = cfg.mms.unwrap();
        let mut solver = Solver::new(cfg);
        solver.run(steps);
        let gas = *solver.gas();
        let exact = mms::exact_field(&spec, solver.field.patch.clone(), &gas);
        let (l2, linf) = error_norms(&solver.field, &exact);
        interior_l2.push(l2);
        global_linf.push(linf);
    }
    let interior_orders: Vec<f64> = interior_l2.windows(2).map(|w| norms::observed_order(w[0], w[1])).collect();
    let global_orders: Vec<f64> = global_linf.windows(2).map(|w| norms::observed_order(w[0], w[1])).collect();
    let pass = interior_orders.iter().all(|&o| o >= order_floor)
        && order_ceiling.is_none_or(|c| interior_orders.iter().all(|&o| o <= c))
        && global_orders.iter().all(|&o| o >= global_floor)
        && interior_l2.windows(2).all(|w| w[1] < w[0]);
    MmsCase {
        name: name.to_string(),
        regime: regime.name().to_string(),
        scheme: match scheme {
            SchemeOrder::TwoFour => "2-4",
            SchemeOrder::TwoTwo => "2-2",
        }
        .to_string(),
        grids,
        dts,
        interior_l2,
        global_linf,
        interior_orders,
        global_orders,
        order_floor,
        order_ceiling,
        global_floor,
        pass,
    }
}

/// Interior combined-RMS and global max-norm of the (unweighted
/// conservative) error between a computed field and the exact state.
pub fn error_norms(num: &Field, exact: &Field) -> (f64, f64) {
    let mut ss = 0.0;
    let mut n = 0usize;
    let mut linf = 0.0f64;
    for i in 0..num.nxl() {
        let x = num.patch.x(i);
        for j in 0..num.nr() {
            let r = num.patch.r(j);
            let qn = num.qvec_unweighted(i, j);
            let qe = exact.qvec_unweighted(i, j);
            for c in 0..4 {
                let e = (qn[c] - qe[c]).abs();
                linf = linf.max(e);
                if x >= INTERIOR_X.0 && x <= INTERIOR_X.1 && r <= INTERIOR_R {
                    ss += e * e;
                    n += 1;
                }
            }
        }
    }
    ((ss / n as f64).sqrt(), linf)
}
