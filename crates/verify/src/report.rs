//! Aggregate verification report: runs all three pillars and renders the
//! outcome for humans (terminal) and machines (JSON artifact).

use serde::Serialize;

use crate::conservation::{self, ConservationCase};
use crate::mms::{self, MmsCase};
use crate::oracle::{self, OracleConfig, OracleReport};
use crate::snapshot::GoldenDiff;

/// What to run.
#[derive(Clone, Copy, Debug)]
pub struct VerifyConfig {
    /// Quick mode: the CI-gate subset (one MMS ladder, two conservation
    /// cases, the V5/V6/V7 x {1,4} oracle corner). Full mode is the issue's
    /// exhaustive matrix.
    pub quick: bool,
}

/// The complete verification outcome.
#[derive(Clone, Debug, Serialize)]
pub struct VerifyReport {
    /// Mode the report was produced in.
    pub quick: bool,
    /// MMS refinement sweeps.
    pub mms: Vec<MmsCase>,
    /// Conservation ledgers.
    pub conservation: Vec<ConservationCase>,
    /// Differential-oracle matrix.
    pub oracle: OracleReport,
    /// Golden-snapshot diff (absent when blessing or when skipped).
    pub golden: Option<GoldenDiff>,
}

impl VerifyReport {
    /// Overall verdict.
    pub fn pass(&self) -> bool {
        self.mms.iter().all(|c| c.pass)
            && self.conservation.iter().all(|c| c.pass)
            && self.oracle.pass()
            && self.golden.as_ref().is_none_or(|g| g.pass)
    }

    /// Serialize for the CI artifact.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mark = |ok: bool| if ok { "ok " } else { "FAIL" };
        out.push_str("== MMS order verification ==\n");
        for c in &self.mms {
            out.push_str(&format!(
                "[{}] {:24} interior orders {:?} (floor {}), global orders {:?} (floor {})\n",
                mark(c.pass),
                c.name,
                c.interior_orders.iter().map(|o| (o * 100.0).round() / 100.0).collect::<Vec<_>>(),
                c.order_floor,
                c.global_orders.iter().map(|o| (o * 100.0).round() / 100.0).collect::<Vec<_>>(),
                c.global_floor,
            ));
        }
        out.push_str("== Conservation ledgers ==\n");
        for c in &self.conservation {
            let max_res = c.residual_rel.iter().cloned().fold(0.0f64, f64::max);
            let max_drift = c.drift_rel.iter().cloned().fold(0.0f64, f64::max);
            out.push_str(&format!(
                "[{}] {:24} {} steps: max residual {max_res:.2e} (tol {:.0e}), max raw drift {max_drift:.2e}\n",
                mark(c.pass),
                c.name,
                c.steps,
                c.tolerance,
            ));
        }
        out.push_str("== Differential oracle ==\n");
        let failed: Vec<_> = self.oracle.cells.iter().filter(|c| !c.pass).collect();
        out.push_str(&format!(
            "[{}] {} cells on {}x{} grid, {} steps ({} bitwise, {} tolerance-bounded)\n",
            mark(failed.is_empty()),
            self.oracle.cells.len(),
            self.oracle.grid[0],
            self.oracle.grid[1],
            self.oracle.steps,
            self.oracle.cells.iter().filter(|c| c.expected.starts_with("bitwise")).count(),
            self.oracle.cells.iter().filter(|c| c.expected.starts_with("rel")).count(),
        ));
        for c in failed {
            out.push_str(&format!(
                "  FAIL {} vs {}: expected {}, max abs diff {:.3e} (rel {:.3e})\n",
                c.key, c.baseline, c.expected, c.max_abs_diff, c.rel_diff
            ));
        }
        if let Some(g) = &self.golden {
            out.push_str("== Golden snapshots ==\n");
            out.push_str(&format!("[{}] {} golden entries checked\n", mark(g.pass), g.checked));
            for m in &g.mismatches {
                out.push_str(&format!("  FAIL {m}\n"));
            }
        }
        out.push_str(&format!("verify: {}\n", if self.pass() { "PASS" } else { "FAIL" }));
        out
    }
}

/// Run the full verification suite (golden diff left to the caller, which
/// knows the file location).
pub fn run(cfg: &VerifyConfig) -> VerifyReport {
    let mms = mms::run_sweeps(cfg.quick);
    let conservation = conservation::run_cases(cfg.quick);
    let oracle = oracle::run_matrix(&OracleConfig::standard(cfg.quick));
    VerifyReport { quick: cfg.quick, mms, conservation, oracle, golden: None }
}
