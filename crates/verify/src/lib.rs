#![warn(missing_docs)]

//! # ns-verify
//!
//! Correctness as a first-class, CI-gated artifact for the jetns solver.
//! Three pillars (see `DESIGN.md` §11):
//!
//! 1. **Method of Manufactured Solutions** ([`mms`]) — grid-refinement
//!    sweeps against the analytic forced solution from `ns_core::mms`,
//!    asserting the observed convergence order of the 2-4 scheme with
//!    machine-readable tolerances (and that the 2-2 scheme, as a control,
//!    observes a *lower* order — proof the instrument can tell schemes
//!    apart).
//! 2. **Conservation ledgers** ([`conservation`]) — per-step invariant
//!    integrals reconciled against time-integrated boundary-flux budgets
//!    from `ns_core::diag::boundary_budget`, asserting the unexplained
//!    residual stays below tolerance over long runs.
//! 3. **Differential oracle** ([`oracle`]) — one harness running the same
//!    configuration across every kernel `Version` rung, processor counts,
//!    serial vs `run_parallel` vs `run_parallel_chaos` (fault-free plan) and
//!    comm protocol versions, asserting bitwise equality where the design
//!    guarantees it and truncation-level agreement where it doesn't, plus
//!    committed golden snapshots ([`snapshot`]) that future PRs regress
//!    against.
//!
//! The `jetns verify` subcommand drives all three and emits a
//! machine-readable JSON report ([`report`]).

pub mod conservation;
pub mod mms;
pub mod oracle;
pub mod report;
pub mod snapshot;

pub use report::{run, VerifyConfig, VerifyReport};
