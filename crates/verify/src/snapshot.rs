//! Compact field snapshots and the committed golden file.
//!
//! A [`FieldSnapshot`] is an FNV-1a 64-bit hash over the exact bit patterns
//! of every interior value (so any single-ulp change flips it) plus
//! per-component RMS/max norms (so a mismatch is triaged at a glance:
//! hash-only differences are rounding-level, norm differences are real).
//!
//! Golden policy (`DESIGN.md` §11): the committed `GOLDEN_verify.json` pins
//! the serial V5 reference state per regime for the oracle's fixed
//! configuration. Bit-exactness of `f64` arithmetic is guaranteed by IEEE
//! 754 for `+ - * /` and `sqrt`, but the transcendental functions used by
//! the jet profile and gas model (`exp`, `tanh`, `powf`) come from the
//! platform libm, so golden hashes are stable per platform/toolchain, not
//! universally. When a *deliberate* numerics change or a toolchain move
//! shifts them, regenerate with `jetns verify --bless` and commit the diff
//! alongside an explanation; the norms in the file bound how large the
//! shift was.

use std::collections::BTreeMap;

use ns_core::Field;
use serde::{Deserialize, Serialize};

/// Schema version of the golden file.
pub const SCHEMA: u32 = 1;

/// FNV-1a 64-bit hash over the interior values' bit patterns, in component
///-major, then row-major (axial-outer) order.
pub fn field_hash(field: &Field) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for c in 0..4 {
        for i in 0..field.nxl() {
            for j in 0..field.nr() {
                for b in field.at(c, i as isize, j as isize).to_bits().to_le_bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
        }
    }
    h
}

/// The canonical textual form of a field fingerprint — the 16-hex-digit
/// encoding the golden file stores and every cross-checker (the oracle,
/// the serve cache-correctness check) must compare with. One definition so
/// the formats cannot drift apart.
pub fn hash_hex(h: u64) -> String {
    format!("{h:016x}")
}

/// Compact summary of one field: bit-exact hash plus per-component norms.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FieldSnapshot {
    /// FNV-1a 64 over the interior bit patterns, as 16 hex digits.
    pub hash: String,
    /// Per-component RMS of the (r-weighted) conservative variables.
    pub l2: [f64; 4],
    /// Per-component max-norm.
    pub linf: [f64; 4],
}

/// Snapshot a field.
pub fn of(field: &Field) -> FieldSnapshot {
    let mut l2 = [0.0f64; 4];
    let mut linf = [0.0f64; 4];
    let n = (field.nxl() * field.nr()) as f64;
    for c in 0..4 {
        let mut ss = 0.0;
        for i in 0..field.nxl() {
            for j in 0..field.nr() {
                let v = field.at(c, i as isize, j as isize);
                ss += v * v;
                linf[c] = linf[c].max(v.abs());
            }
        }
        l2[c] = (ss / n).sqrt();
    }
    FieldSnapshot { hash: hash_hex(field_hash(field)), l2, linf }
}

/// The committed golden-snapshot file.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GoldenFile {
    /// Schema version.
    pub schema: u32,
    /// Oracle grid (nx, nr) the snapshots were taken on.
    pub grid: [usize; 2],
    /// Steps advanced before snapshotting.
    pub steps: u64,
    /// Reference snapshots by key (e.g. `"euler/serial/V5"`).
    pub entries: BTreeMap<String, FieldSnapshot>,
}

/// Outcome of diffing freshly computed snapshots against the golden file.
#[derive(Clone, Debug, Serialize)]
pub struct GoldenDiff {
    /// Number of golden entries checked.
    pub checked: usize,
    /// Human-readable mismatch descriptions (empty on success).
    pub mismatches: Vec<String>,
    /// Verdict.
    pub pass: bool,
}

impl GoldenFile {
    /// Load from disk, refusing a file whose schema version is not exactly
    /// [`SCHEMA`] — a version bump means the layout changed, and silently
    /// diffing against it would produce nonsense mismatch reports.
    pub fn load(path: &str) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let golden: Self = serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))?;
        if golden.schema != SCHEMA {
            return Err(format!("{path}: golden schema {} != supported {SCHEMA}", golden.schema));
        }
        Ok(golden)
    }

    /// Write to disk (pretty-printed, stable key order via `BTreeMap`).
    pub fn save(&self, path: &str) -> Result<(), String> {
        let text = serde_json::to_string_pretty(self).map_err(|e| format!("serialize: {e}"))?;
        std::fs::write(path, text + "\n").map_err(|e| format!("write {path}: {e}"))
    }

    /// Compare this (committed) golden file against freshly computed
    /// snapshots. Every golden entry must be present and hash-identical;
    /// keys the fresh run produced that the golden file lacks are also
    /// mismatches (they mean the matrix grew — re-bless deliberately).
    pub fn diff(&self, current: &GoldenFile) -> GoldenDiff {
        let mut mismatches = Vec::new();
        if self.schema != current.schema {
            mismatches.push(format!("schema {} vs current {}", self.schema, current.schema));
        }
        if self.grid != current.grid || self.steps != current.steps {
            mismatches.push(format!(
                "oracle configuration changed: golden {:?}x{} steps, current {:?}x{} steps",
                self.grid, self.steps, current.grid, current.steps
            ));
        }
        for (key, want) in &self.entries {
            match current.entries.get(key) {
                None => mismatches.push(format!("{key}: missing from current run")),
                Some(got) if got.hash != want.hash => mismatches.push(format!(
                    "{key}: hash {} != golden {} (linf {:?} vs {:?})",
                    got.hash, want.hash, got.linf, want.linf
                )),
                Some(_) => {}
            }
        }
        for key in current.entries.keys() {
            if !self.entries.contains_key(key) {
                mismatches.push(format!("{key}: not in golden file (run --bless to adopt)"));
            }
        }
        GoldenDiff { checked: self.entries.len(), pass: mismatches.is_empty(), mismatches }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ns_core::field::Patch;
    use ns_core::Field;
    use ns_numerics::gas::Primitive;
    use ns_numerics::{GasModel, Grid};

    fn sample_field() -> Field {
        let gas = GasModel::air(1.2e6, 1.5);
        Field::from_primitives(Patch::whole(Grid::small()), &gas, |x, r| Primitive {
            rho: 1.0 + 0.01 * (0.3 * x).sin(),
            u: 0.5 + 0.05 * (0.2 * r).cos(),
            v: 0.01 * r,
            p: gas.pressure(1.0, 1.0),
        })
    }

    #[test]
    fn hash_is_sensitive_to_one_ulp() {
        let a = sample_field();
        let mut b = a.clone();
        let v = b.at(2, 7, 3);
        b.set(2, 7, 3, f64::from_bits(v.to_bits() ^ 1));
        assert_ne!(field_hash(&a), field_hash(&b), "a single-ulp flip must change the hash");
        assert_eq!(field_hash(&a), field_hash(&a.clone()), "hash must be deterministic");
    }

    #[test]
    fn golden_roundtrip_and_diff() {
        let snap = of(&sample_field());
        let mut entries = BTreeMap::new();
        entries.insert("euler/serial/V5".to_string(), snap.clone());
        let golden = GoldenFile { schema: SCHEMA, grid: [50, 20], steps: 4, entries };
        let text = serde_json::to_string_pretty(&golden).unwrap();
        let back: GoldenFile = serde_json::from_str(&text).unwrap();
        assert_eq!(golden, back, "golden file must round-trip through JSON");
        assert!(golden.diff(&back).pass);

        // a perturbed entry must be flagged
        let mut other = golden.clone();
        other.entries.get_mut("euler/serial/V5").unwrap().hash = "deadbeefdeadbeef".into();
        let d = golden.diff(&other);
        assert!(!d.pass && d.mismatches.len() == 1);

        // an extra entry in the fresh run must be flagged too
        let mut grown = golden.clone();
        grown.entries.insert("euler/serial/V9".to_string(), snap);
        assert!(!golden.diff(&grown).pass);
    }

    #[test]
    fn load_rejects_a_foreign_schema_version() {
        let mut golden = GoldenFile { schema: SCHEMA + 1, grid: [50, 20], steps: 4, entries: BTreeMap::new() };
        let dir = std::env::temp_dir().join(format!("ns-golden-schema-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("GOLDEN_bad.json");
        let path = path.to_str().unwrap();
        golden.save(path).unwrap();
        let err = GoldenFile::load(path).unwrap_err();
        assert!(err.contains("schema"), "{err}");
        golden.schema = SCHEMA;
        golden.save(path).unwrap();
        assert!(GoldenFile::load(path).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
