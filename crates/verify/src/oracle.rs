//! The cross-version / cross-P / cross-driver differential oracle.
//!
//! One fixed configuration (66 x 24 grid, excited jet, 6 steps — even, so
//! runs end on a completed `L1`/`L2` alternation) is executed across the
//! whole equivalence matrix:
//!
//! * every kernel `Version` rung V1-V7, serially;
//! * `run_parallel` over processor counts P (each rank running the same
//!   versioned kernels);
//! * `run_parallel_chaos` with a fault-free plan (the recovery machinery
//!   must be a perfect no-op when nothing fails);
//! * the comm-protocol versions V5/V6/V7 (physics-neutral by design).
//!
//! Each cell asserts the *strongest* property the design guarantees:
//! bitwise identity for V5<->V6<->V7 (plus identical FLOP ledgers — the
//! fused and SoA rungs re-order memory, never arithmetic), for Euler
//! serial<->parallel, for chaos<->parallel and for comm protocols;
//! truncation-level agreement (documented tolerance) for V1-V4 (different
//! operation orderings round differently) and for Navier-Stokes
//! serial<->parallel (the radial operator's one-sided viscous
//! cross-derivative stencils at internal patch edges).

use std::collections::BTreeMap;

use ns_core::config::{Regime, SolverConfig, Version};
use ns_core::driver::Solver;
use ns_core::Field;
use ns_numerics::Grid;
use ns_runtime::{
    run_parallel, run_parallel_cart, run_parallel_chaos, run_parallel_chaos_cart, CartTopology, ChaosOptions,
    CommVersion, FaultPlan,
};
use serde::Serialize;

use crate::snapshot::{self, FieldSnapshot};

/// Tolerance for cross-kernel-version comparisons (V1-V4 vs V5): pure
/// rounding-level reassociation differences.
pub const TOL_VERSION: f64 = 1e-9;
/// Tolerance for Navier-Stokes serial-vs-parallel: truncation-level viscous
/// edge stencils, still far below any physical scale.
pub const TOL_NS_PARALLEL: f64 = 1e-8;

/// What a cell is allowed to differ by from its baseline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Expect {
    /// Bitwise identity (max abs diff must be exactly zero).
    Bitwise,
    /// Relative agreement: `max_diff / scale <= tol`.
    Rel(f64),
}

/// A deliberate single-ulp perturbation of one run, used by the oracle's
/// own negative-path tests to prove the harness can fail.
#[derive(Clone, Debug)]
pub struct Perturb {
    /// Cell key whose field to perturb (e.g. `"euler/V6/serial"`).
    pub key: String,
    /// Component to touch.
    pub component: usize,
    /// Interior indices.
    pub i: usize,
    /// Interior indices.
    pub j: usize,
}

/// Oracle configuration: the run matrix and the fixed run shape.
#[derive(Clone, Debug)]
pub struct OracleConfig {
    /// Grid (identical for every cell; golden snapshots pin it).
    pub grid: Grid,
    /// Steps per run (even, fixed across quick/full so goldens match).
    pub steps: u64,
    /// Kernel versions to cover (must include V5, the baseline).
    pub versions: Vec<Version>,
    /// Processor counts for the distributed drivers.
    pub procs: Vec<usize>,
    /// 2-D pencil shapes `(px, pr)` for the Cartesian drivers (run on the
    /// V5 baseline kernel, the rung radial splits support).
    pub pencil_shapes: Vec<(usize, usize)>,
    /// Governing equations to cover.
    pub regimes: Vec<Regime>,
    /// Non-baseline comm protocols to cover (baseline is V5).
    pub comm_versions: Vec<CommVersion>,
    /// Fault injection for negative-path tests (`None` in production).
    pub perturb: Option<Perturb>,
}

impl OracleConfig {
    /// The standard matrix. `quick` trims to the corners that catch nearly
    /// everything (V5/V6/V7, P in {1,4}, comm V6) for the CI gate; the full
    /// matrix is the issue's exhaustive V1-V7 x {1,2,4,8,16} x all drivers.
    pub fn standard(quick: bool) -> Self {
        let grid = Grid::new(66, 24, 50.0, 5.0);
        let regimes = vec![Regime::Euler, Regime::NavierStokes];
        if quick {
            Self {
                grid,
                steps: 6,
                versions: vec![Version::V5, Version::V6, Version::V7],
                procs: vec![1, 4],
                pencil_shapes: vec![(1, 4), (2, 2)],
                regimes,
                comm_versions: vec![CommVersion::V6],
                perturb: None,
            }
        } else {
            Self {
                grid,
                steps: 6,
                versions: Version::ALL.to_vec(),
                procs: vec![1, 2, 4, 8, 16],
                pencil_shapes: vec![(1, 4), (4, 1), (2, 2), (4, 2)],
                regimes,
                comm_versions: vec![CommVersion::V6, CommVersion::V7],
                perturb: None,
            }
        }
    }
}

/// One comparison in the matrix.
#[derive(Clone, Debug, Serialize)]
pub struct OracleCell {
    /// Cell key, e.g. `"euler/V3/parallel/p4"`.
    pub key: String,
    /// Key of the run this cell was compared against.
    pub baseline: String,
    /// The asserted property (`"bitwise"` or `"rel<=..."`).
    pub expected: String,
    /// Measured max abs difference over the interior.
    pub max_abs_diff: f64,
    /// Measured relative difference (max_abs_diff / baseline scale).
    pub rel_diff: f64,
    /// Verdict.
    pub pass: bool,
}

/// The whole matrix outcome plus the reference snapshots for the golden
/// file.
#[derive(Clone, Debug, Serialize)]
pub struct OracleReport {
    /// Oracle grid.
    pub grid: [usize; 2],
    /// Steps per run.
    pub steps: u64,
    /// Every comparison made.
    pub cells: Vec<OracleCell>,
    /// Serial V5 reference snapshots per regime (the golden entries).
    pub snapshots: BTreeMap<String, FieldSnapshot>,
}

impl OracleReport {
    /// True when every cell passed.
    pub fn pass(&self) -> bool {
        self.cells.iter().all(|c| c.pass)
    }
}

fn regime_key(regime: Regime) -> &'static str {
    match regime {
        Regime::Euler => "euler",
        Regime::NavierStokes => "navier-stokes",
    }
}

fn comm_key(v: CommVersion) -> &'static str {
    match v {
        CommVersion::V5 => "commV5",
        CommVersion::V6 => "commV6",
        CommVersion::V7 => "commV7",
    }
}

fn base_cfg(oc: &OracleConfig, regime: Regime, version: Version) -> SolverConfig {
    let mut cfg = SolverConfig::paper(oc.grid.clone(), regime);
    cfg.version = version;
    cfg
}

/// Fault-free chaos options: recovery machinery armed (checkpoint cadence
/// shorter than the run) but no faults planned.
fn chaos_opts() -> ChaosOptions {
    ChaosOptions { plan: FaultPlan::none(42), checkpoint_every: 3, ..Default::default() }
}

fn maybe_perturb(oc: &OracleConfig, key: &str, field: &mut Field) {
    if let Some(p) = &oc.perturb {
        if p.key == key {
            let v = field.at(p.component, p.i as isize, p.j as isize);
            field.set(p.component, p.i as isize, p.j as isize, f64::from_bits(v.to_bits() ^ 1));
        }
    }
}

/// Max interior magnitude of the baseline, the scale for relative diffs.
fn field_scale(field: &Field) -> f64 {
    let mut m = 0.0f64;
    for c in 0..4 {
        for i in 0..field.nxl() {
            for j in 0..field.nr() {
                m = m.max(field.at(c, i as isize, j as isize).abs());
            }
        }
    }
    m
}

fn compare(key: &str, baseline: &str, a: &Field, b: &Field, expect: Expect) -> OracleCell {
    let max_abs_diff = a.max_diff(b);
    let scale = field_scale(b).max(f64::MIN_POSITIVE);
    let rel_diff = max_abs_diff / scale;
    let (expected, pass) = match expect {
        Expect::Bitwise => ("bitwise".to_string(), max_abs_diff == 0.0),
        Expect::Rel(tol) => (format!("rel<={tol:e}"), rel_diff <= tol),
    };
    OracleCell { key: key.to_string(), baseline: baseline.to_string(), expected, max_abs_diff, rel_diff, pass }
}

/// Run the full differential-oracle matrix.
pub fn run_matrix(oc: &OracleConfig) -> OracleReport {
    assert!(oc.versions.contains(&Version::V5), "the oracle baseline is V5");
    assert!(oc.steps.is_multiple_of(2), "runs must end on a completed L1/L2 alternation");
    let mut cells = Vec::new();
    let mut snapshots = BTreeMap::new();
    for &regime in &oc.regimes {
        let rk = regime_key(regime);

        // --- serial ladder ------------------------------------------------
        let mut serial: Vec<(Version, Field, ns_core::opcount::FlopLedger)> = Vec::new();
        for &v in &oc.versions {
            let mut solver = Solver::new(base_cfg(oc, regime, v));
            solver.run(oc.steps);
            let mut field = solver.field.clone();
            maybe_perturb(oc, &format!("{rk}/{v:?}/serial"), &mut field);
            serial.push((v, field, solver.ledger));
        }
        let (v5_field, v5_ledger) = {
            let e = serial.iter().find(|(v, _, _)| *v == Version::V5).unwrap();
            (e.1.clone(), e.2)
        };
        snapshots.insert(format!("{rk}/serial/V5"), snapshot::of(&v5_field));

        let v5_key = format!("{rk}/V5/serial");
        for (v, field, ledger) in &serial {
            if *v == Version::V5 {
                continue;
            }
            let key = format!("{rk}/{v:?}/serial");
            let bitwise_rung = matches!(*v, Version::V6 | Version::V7);
            let expect = if bitwise_rung { Expect::Bitwise } else { Expect::Rel(TOL_VERSION) };
            let mut cell = compare(&key, &v5_key, field, &v5_field, expect);
            if bitwise_rung && *ledger != v5_ledger {
                // the fused/SoA paths must also account identical FLOPs
                cell.pass = false;
                cell.expected = "bitwise+ledger".to_string();
            }
            cells.push(cell);
        }

        // --- distributed drivers ------------------------------------------
        for (v, serial_field, _) in &serial {
            let cfg = base_cfg(oc, regime, *v);
            let serial_key = format!("{rk}/{v:?}/serial");
            let par_expect = match regime {
                Regime::Euler => Expect::Bitwise,
                Regime::NavierStokes => Expect::Rel(TOL_NS_PARALLEL),
            };
            for &p in &oc.procs {
                let par_key = format!("{rk}/{v:?}/parallel/p{p}");
                let mut par = run_parallel(&cfg, p, oc.steps, CommVersion::V5).gather_field();
                maybe_perturb(oc, &par_key, &mut par);
                cells.push(compare(&par_key, &serial_key, &par, serial_field, par_expect));

                // fault-free chaos must be a bitwise no-op on the parallel run
                let chaos_key = format!("{rk}/{v:?}/chaos/p{p}");
                let mut chaos = run_parallel_chaos(&cfg, p, oc.steps, CommVersion::V5, &chaos_opts()).gather_field();
                maybe_perturb(oc, &chaos_key, &mut chaos);
                cells.push(compare(&chaos_key, &par_key, &chaos, &par, Expect::Bitwise));
            }
        }

        // --- 2-D pencil decompositions (V5 kernels, grouped comm) ---------
        // Euler pencils are bitwise against serial for every shape; N-S is
        // bitwise only for pure radial splits (px = 1), where no one-sided
        // viscous axial stencils appear at internal edges.
        let cfg = base_cfg(oc, regime, Version::V5);
        for &(px, pr) in &oc.pencil_shapes {
            let topo = CartTopology::new(px, pr).unwrap_or_else(|e| panic!("pencil shape {px}x{pr}: {e}"));
            let expect = match regime {
                Regime::Euler => Expect::Bitwise,
                Regime::NavierStokes if px == 1 => Expect::Bitwise,
                Regime::NavierStokes => Expect::Rel(TOL_NS_PARALLEL),
            };
            let key = format!("{rk}/V5/pencil/{px}x{pr}");
            let run = run_parallel_cart(&cfg, topo, oc.steps, CommVersion::V5)
                .unwrap_or_else(|e| panic!("pencil {px}x{pr}: {e}"));
            let mut par = run.gather_field();
            maybe_perturb(oc, &key, &mut par);
            cells.push(compare(&key, &v5_key, &par, &v5_field, expect));

            // fault-free chaos over the same topology is a bitwise no-op
            let chaos_key = format!("{rk}/V5/chaos-pencil/{px}x{pr}");
            let chaos_run = run_parallel_chaos_cart(&cfg, topo, oc.steps, CommVersion::V5, &chaos_opts())
                .unwrap_or_else(|e| panic!("chaos pencil {px}x{pr}: {e}"));
            let mut chaos = chaos_run.gather_field();
            maybe_perturb(oc, &chaos_key, &mut chaos);
            cells.push(compare(&chaos_key, &key, &chaos, &par, Expect::Bitwise));
        }

        // --- comm-protocol versions (physics-neutral, V5 kernels, P=4) ----
        let cfg = base_cfg(oc, regime, Version::V5);
        let baseline = run_parallel(&cfg, 4, oc.steps, CommVersion::V5).gather_field();
        let base_key = format!("{rk}/V5/parallel/p4");
        for &cv in &oc.comm_versions {
            let key = format!("{rk}/V5/parallel/p4/{}", comm_key(cv));
            let mut f = run_parallel(&cfg, 4, oc.steps, cv).gather_field();
            maybe_perturb(oc, &key, &mut f);
            cells.push(compare(&key, &base_key, &f, &baseline, Expect::Bitwise));
        }
    }
    OracleReport { grid: [oc.grid.nx, oc.grid.nr], steps: oc.steps, cells, snapshots }
}
