//! Conservation ledgers: invariant drift reconciled against boundary-flux
//! budgets.
//!
//! The mechanics live in [`ns_core::diag::ConservationLedger`] (so the
//! production drivers can audit runs too); this module owns the
//! verification *cases* — which configurations to audit, for how long, and
//! what unexplained residual is acceptable.

use ns_core::config::{Regime, SolverConfig};
use ns_core::diag::ConservationLedger;
use ns_core::driver::Solver;
use ns_numerics::Grid;
use serde::Serialize;

/// Tolerance on the relative unexplained residual for a uniform stream
/// (exact cancellation up to rounding accumulation).
pub const TOL_UNIFORM: f64 = 1e-10;
/// Tolerance on the relative unexplained residual for evolving jet flow:
/// the budget quadrature is O(h^2) at the surfaces, so the residual is
/// truncation-level, not rounding-level. Calibrated with ~10x headroom over
/// the measured residuals (see `EXPERIMENTS.md`).
pub const TOL_JET: f64 = 2e-3;

/// One conservation case: a configuration run for `steps` with the ledger
/// open, and its verdict against `tolerance`.
#[derive(Clone, Debug, Serialize)]
pub struct ConservationCase {
    /// Case label.
    pub name: String,
    /// Governing equations.
    pub regime: String,
    /// Steps run.
    pub steps: u64,
    /// Relative raw drift (mass, x-momentum, r-momentum, energy).
    pub drift_rel: [f64; 4],
    /// Relative unexplained residual (same order).
    pub residual_rel: [f64; 4],
    /// Residual tolerance.
    pub tolerance: f64,
    /// Verdict: every residual component below tolerance.
    pub pass: bool,
}

/// A uniform free stream: every budget term cancels analytically, so the
/// residual is pure rounding accumulation.
fn uniform_cfg(regime: Regime) -> SolverConfig {
    let mut cfg = SolverConfig::paper(Grid::new(64, 24, 50.0, 5.0), regime);
    cfg.excitation.enabled = false;
    cfg.jet.u_c = 0.4;
    cfg.jet.u_inf = 0.4;
    cfg.jet.t_c = 1.0;
    cfg.jet.t_inf = 1.0;
    cfg.jet.mach_c = 0.0;
    cfg
}

/// The excited jet on the small grid: the forced shear layer rolls up, so
/// the boundary fluxes are large and evolving and the ledger is exercised
/// for real (the unexcited jet is a near-equilibrium of the tanh profile —
/// its drift is rounding-level and audits nothing).
fn jet_cfg(regime: Regime) -> SolverConfig {
    SolverConfig::paper(Grid::small(), regime)
}

/// Run one case.
pub fn run_case(name: &str, cfg: SolverConfig, steps: u64, tolerance: f64) -> ConservationCase {
    let regime = cfg.regime.name().to_string();
    let mut solver = Solver::new(cfg);
    let gas = *solver.gas();
    let mut ledger = ConservationLedger::open(&solver.field, &gas);
    for _ in 0..steps {
        solver.step();
        ledger.record(&solver.field, &gas, solver.dt());
    }
    let closed = ledger.close(&solver.field);
    let pass = closed.residual_rel.iter().all(|&r| r <= tolerance);
    ConservationCase {
        name: name.to_string(),
        regime,
        steps: closed.steps,
        drift_rel: closed.drift_rel,
        residual_rel: closed.residual_rel,
        tolerance,
        pass,
    }
}

/// Run the conservation suite. `quick` trims to one uniform and one jet
/// case; the full suite covers both regimes of each.
pub fn run_cases(quick: bool) -> Vec<ConservationCase> {
    let long = 240;
    if quick {
        vec![
            run_case("uniform/euler", uniform_cfg(Regime::Euler), long, TOL_UNIFORM),
            run_case("jet/euler", jet_cfg(Regime::Euler), long, TOL_JET),
        ]
    } else {
        vec![
            run_case("uniform/euler", uniform_cfg(Regime::Euler), long, TOL_UNIFORM),
            run_case("uniform/navier-stokes", uniform_cfg(Regime::NavierStokes), long, TOL_UNIFORM),
            run_case("jet/euler", jet_cfg(Regime::Euler), long, TOL_JET),
            run_case("jet/navier-stokes", jet_cfg(Regime::NavierStokes), long, TOL_JET),
        ]
    }
}
