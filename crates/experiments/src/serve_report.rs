//! Human-readable rendering of a `jetns loadgen` run: the serving summary
//! (latency percentiles, throughput, cache behaviour, golden cross-checks,
//! the overload burst) and the per-job table.

use ns_serve::LoadgenReport;
use std::fmt::Write;

/// Render the loadgen report as the table `jetns loadgen` prints.
pub fn render(r: &LoadgenReport) -> String {
    let mut out = String::new();
    let sweep = if r.quick { "quick" } else { "full" };
    let _ = writeln!(
        out,
        "## Serve loadgen ({sweep} sweep, {} workers, queue depth {}, {})",
        r.workers, r.queue_depth, r.mode
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "jobs: {} submitted, {} completed, {} failed  |  throughput {:.1} jobs/s",
        r.jobs_submitted, r.jobs_completed, r.jobs_failed, r.throughput_jobs_per_sec
    );
    let _ = writeln!(
        out,
        "latency: p50 {:.1} ms, p99 {:.1} ms, mean {:.1} ms, max {:.1} ms",
        r.latency.p50_ms, r.latency.p99_ms, r.latency.mean_ms, r.latency.max_ms
    );
    let _ = writeln!(
        out,
        "cache: {} hits / {} cold ({:.0}% hit rate, {} coalesced)  |  duplicates byte-identical: {}",
        r.cache_hits,
        r.cache_misses,
        r.cache_hit_rate * 100.0,
        r.cache_coalesced,
        if r.duplicates_byte_identical { "yes" } else { "NO" }
    );
    let _ = writeln!(out, "golden cross-checks: {} checked, {} mismatched", r.golden_checked, r.golden_mismatches);
    let _ = writeln!(
        out,
        "burst: {} submitted -> {} admitted, {} rejected (min retry-after {:.0} ms), {} shed, {} completed",
        r.burst.submitted,
        r.burst.admitted,
        r.burst.rejected,
        r.burst.min_retry_after_ms,
        r.burst.shed,
        r.burst.completed
    );
    let _ = writeln!(out);
    let label_w = r.rows.iter().map(|row| row.label.len()).max().unwrap_or(5).max(5);
    let _ = writeln!(
        out,
        "{:<label_w$}  {:>8}  {:>5}  {:>9}  {:>8}  {:>9}",
        "label", "priority", "cache", "queue ms", "run ms", "total ms"
    );
    for row in &r.rows {
        let _ = writeln!(
            out,
            "{:<label_w$}  {:>8}  {:>5}  {:>9.2}  {:>8.2}  {:>9.2}",
            row.label, row.priority, row.cache, row.queue_ms, row.run_ms, row.total_ms
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "acceptance: {}", if r.pass() { "PASS" } else { "FAIL" });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ns_serve::{run_loadgen, LoadgenOptions};

    #[test]
    fn renders_the_quick_sweep() {
        let report = run_loadgen(&LoadgenOptions { quick: true, workers: 2, queue_depth: 64 });
        let text = render(&report);
        assert!(text.contains("acceptance: PASS"), "quick sweep renders as passing:\n{text}");
        assert!(text.contains("p99"));
        assert!(text.contains("burst:"));
        assert!(text.lines().count() > report.rows.len(), "one line per job plus the summary");
    }
}
