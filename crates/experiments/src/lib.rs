#![warn(missing_docs)]

//! # ns-experiments
//!
//! The experiment harness: one generator per table and figure of the paper,
//! each returning a [`report::Report`] that prints the same rows/series the
//! paper plots, annotated with the paper's reference values.
//!
//! | Paper artifact | Generator |
//! |---|---|
//! | Table 1 | [`tables::table1`] |
//! | Table 2 | [`tables::table2`] |
//! | Figure 1 | [`fig_flow::excited_jet`] |
//! | Figure 2 | [`fig_versions::simulated_1995`] / [`fig_versions::measured_host`] |
//! | Figures 3-4 | [`fig_lace::fig3_4`] |
//! | Figures 5-6 | [`fig_lace::fig5_6`] |
//! | Figures 7-8 | [`fig_lace::fig7_8`] |
//! | Figures 9-10 | [`fig_platforms::fig9_10`] |
//! | Figures 11-12 | [`fig_msglib::fig11_12`] |
//! | Figure 13 | [`fig_platforms::fig13`] |
//!
//! [`speedup`] adds the modern real-host scalability check, [`validation`]
//! pins the analytic workload model to the live solver, and [`extensions`]
//! runs the studies the paper's conclusion names as future work (radial
//! decomposition, larger machines, weak scaling).

pub mod acoustics;
pub mod bench_report;
pub mod chaos;
pub mod contour;
pub mod extensions;
pub mod fig_flow;
pub mod fig_lace;
pub mod fig_msglib;
pub mod fig_platforms;
pub mod fig_versions;
pub mod report;
pub mod scaling;
pub mod serve_report;
pub mod speedup;
pub mod tables;
pub mod validation;

pub use report::{Report, Series};

/// Regenerate every simulated table/figure report (Figure 1 and the host
/// measurements are excluded: they run the live solver and are exposed as
/// examples/benches).
pub fn all_reports() -> Vec<Report> {
    use ns_core::config::Regime::{Euler, NavierStokes};
    vec![
        tables::table1(),
        tables::table2(),
        fig_versions::simulated_1995(),
        fig_lace::fig3_4(NavierStokes),
        fig_lace::fig3_4(Euler),
        fig_lace::fig5_6(NavierStokes),
        fig_lace::fig5_6(Euler),
        fig_lace::fig7_8(NavierStokes),
        fig_lace::fig7_8(Euler),
        fig_platforms::fig9_10(NavierStokes),
        fig_platforms::fig9_10(Euler),
        fig_msglib::fig11_12(NavierStokes),
        fig_msglib::fig11_12(Euler),
        fig_platforms::fig13(),
    ]
}
