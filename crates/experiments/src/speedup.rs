//! Real-host parallel speedup measurement: the live thread-backed runtime
//! (distributed-memory style) and the Rayon shared-memory driver, both
//! running the actual solver. This is the modern sanity check behind the
//! paper's scalability story — the same decomposition, real messages, real
//! wall clock.

use crate::report::{Report, Series};
use ns_core::config::{Regime, SolverConfig};
use ns_core::driver::Solver;
use ns_core::shared::SharedSolver;
use ns_numerics::Grid;
use ns_runtime::{run_parallel, CommVersion};
use std::time::Instant;

/// Measure wall-clock speedup of the thread-backed message-passing solver.
pub fn message_passing_speedup(grid: Grid, steps: u64, procs: &[usize], regime: Regime) -> Report {
    let cfg = SolverConfig::paper(grid, regime);
    let mut r = Report::new(format!("Host speedup, message-passing runtime ({})", regime.name()), "ranks", "seconds");
    let t0 = Instant::now();
    let mut serial = Solver::new(cfg.clone());
    serial.run(steps);
    let t_serial = t0.elapsed().as_secs_f64();
    let mut pts = vec![(1.0, t_serial)];
    for &p in procs {
        if p < 2 {
            continue;
        }
        let run = run_parallel(&cfg, p, steps, CommVersion::V5);
        pts.push((p as f64, run.elapsed.as_secs_f64()));
    }
    r.series.push(Series::new("wall time", pts));
    r
}

/// Measure wall-clock speedup of the Rayon shared-memory solver.
pub fn shared_memory_speedup(grid: Grid, steps: u64, threads: &[usize], regime: Regime) -> Report {
    let cfg = SolverConfig::paper(grid, regime);
    let mut r = Report::new(
        format!("Host speedup, shared-memory (DOALL-style) solver ({})", regime.name()),
        "threads",
        "seconds",
    );
    let mut pts = Vec::new();
    for &t in threads {
        let mut s = SharedSolver::new(cfg.clone(), t);
        s.run(2); // warm-up
        let t0 = Instant::now();
        s.run(steps);
        pts.push((t as f64, t0.elapsed().as_secs_f64()));
    }
    r.series.push(Series::new("wall time", pts));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke test only — CI machines make timing assertions flaky, so we
    /// assert structure, not speedup.
    #[test]
    fn speedup_reports_have_all_points() {
        let r = message_passing_speedup(Grid::small(), 2, &[2, 3], Regime::Euler);
        assert_eq!(r.series[0].points.len(), 3);
        let s = shared_memory_speedup(Grid::small(), 2, &[1, 2], Regime::Euler);
        assert_eq!(s.series[0].points.len(), 2);
        for (_, y) in s.series[0].points.iter().chain(&r.series[0].points) {
            assert!(*y > 0.0);
        }
    }
}
