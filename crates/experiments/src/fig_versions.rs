//! Figure 2: single-processor execution time of the optimization versions.
//!
//! Two complementary reproductions:
//!
//! * [`simulated_1995`] — the calibrated RS6000/560 model's wall time for
//!   each version on the paper's full problem (matches Figure 2's absolute
//!   scale by construction of the two anchors);
//! * [`measured_host`] — real wall-clock of the actual Rust kernels, per
//!   version, on this machine (the *shape* — loop interchange dominating,
//!   V5 fastest — must and does survive three decades of hardware).

use crate::report::{Report, Series};
use ns_archsim::{Calibration, CpuSpec};
use ns_core::config::{Regime, SolverConfig, Version};
use ns_core::driver::Solver;
use ns_core::workload;
use ns_numerics::Grid;
use std::time::Instant;

/// Simulated 1995 execution times (seconds, 5000 steps, 250x100) per
/// version, for both applications.
pub fn simulated_1995() -> Report {
    let cal = Calibration::standard();
    let cpu = CpuSpec::rs6000_560();
    let grid = Grid::paper();
    let mut r =
        Report::new("Figure 2: Execution time on a single processor (RS6000/560)", "version", "seconds (5000 steps)");
    for (regime, label) in [(Regime::NavierStokes, "Navier-Stokes"), (Regime::Euler, "Euler")] {
        let flops = workload::step_workload(regime, &grid, grid.nx).compute_flops() * 5000;
        let pts = Version::ALL
            .iter()
            .map(|&v| (v.index() as f64, cal.seconds_for(&cpu, v, grid.nx, grid.nr, flops)))
            .collect();
        r.series.push(Series::new(label, pts));
    }
    r.notes.push("paper anchors: N-S V1 ~15600 s (9.3 MFLOPS), V5 ~9060 s (16.0 MFLOPS)".into());
    r
}

/// Measured wall time of the real Rust solver per version on the host
/// (small grid, `steps` steps, scaled to per-step milliseconds).
pub fn measured_host(grid: Grid, steps: u64) -> Report {
    let mut r = Report::new("Figure 2 (host): measured Rust kernel time per version", "version", "ms per step");
    for (regime, label) in [(Regime::NavierStokes, "Navier-Stokes"), (Regime::Euler, "Euler")] {
        let mut pts = Vec::new();
        for &v in &Version::ALL {
            let mut cfg = SolverConfig::paper(grid.clone(), regime);
            cfg.version = v;
            let mut s = Solver::new(cfg);
            s.run(2); // warm up
            let t0 = Instant::now();
            s.run(steps);
            let dt = t0.elapsed().as_secs_f64();
            pts.push((v.index() as f64, dt / steps as f64 * 1e3));
        }
        r.series.push(Series::new(label, pts));
    }
    r.notes.push("measured on this machine; absolute values are not comparable to 1995, the ordering is".into());
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_times_decrease_with_version() {
        let r = simulated_1995();
        for s in &r.series {
            for w in s.points.windows(2) {
                assert!(w[1].1 <= w[0].1 + 1e-9, "{}: {:?}", s.label, s.points);
            }
        }
    }

    #[test]
    fn simulated_ns_v1_and_v5_match_paper_scale() {
        let r = simulated_1995();
        let ns = r.series("Navier-Stokes").unwrap();
        let v1 = ns.at(1.0).unwrap();
        let v5 = ns.at(5.0).unwrap();
        assert!((v1 - 15591.0).abs() / 15591.0 < 0.02, "V1 {v1}");
        assert!((v5 - 9062.0).abs() / 9062.0 < 0.02, "V5 {v5}");
        // ~80% overall improvement
        assert!(v1 / v5 > 1.6 && v1 / v5 < 1.9);
    }

    #[test]
    fn euler_is_cheaper_at_every_version() {
        let r = simulated_1995();
        let ns = r.series("Navier-Stokes").unwrap();
        let eu = r.series("Euler").unwrap();
        for k in 1..=6 {
            assert!(eu.at(k as f64).unwrap() < ns.at(k as f64).unwrap());
        }
    }
}
