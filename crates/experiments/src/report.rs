//! Report formatting: series tables and ASCII log-log charts, so every
//! regenerated figure prints both the numbers and the paper's visual shape.
//! Also the telemetry renderers: per-rank [`phase_breakdown`] tables and the
//! ASCII [`gantt`] timeline over a merged [`TraceEvent`] stream.

use ns_telemetry::{EventKind, TraceEvent};
use std::collections::BTreeMap;

/// One curve of a figure.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Legend label (matches the paper's legends).
    pub label: String,
    /// `(x, y)` points, x ascending.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Build from a label and points.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self { label: label.into(), points }
    }

    /// y value at a given x, if present.
    pub fn at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|(px, _)| (px - x).abs() < 1e-9).map(|&(_, y)| y)
    }
}

/// A regenerated table or figure.
#[derive(Clone, Debug)]
pub struct Report {
    /// e.g. "Figure 3: Navier-Stokes execution time on LACE".
    pub title: String,
    /// x-axis label.
    pub xlabel: String,
    /// y-axis label.
    pub ylabel: String,
    /// The curves.
    pub series: Vec<Series>,
    /// Free-form notes: paper-vs-measured commentary, substitutions.
    pub notes: Vec<String>,
}

impl Report {
    /// New empty report.
    pub fn new(title: impl Into<String>, xlabel: impl Into<String>, ylabel: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            xlabel: xlabel.into(),
            ylabel: ylabel.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Find a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Render the numeric table.
    pub fn table(&self) -> String {
        let mut xs: Vec<f64> = self.series.iter().flat_map(|s| s.points.iter().map(|&(x, _)| x)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let mut header = format!("{:>12}", self.xlabel);
        for s in &self.series {
            header.push_str(&format!(" | {:>18}", truncate(&s.label, 18)));
        }
        out.push_str(&header);
        out.push('\n');
        out.push_str(&"-".repeat(header.len()));
        out.push('\n');
        for &x in &xs {
            let mut row = format!("{:>12}", trim_num(x));
            for s in &self.series {
                match s.at(x) {
                    Some(y) => row.push_str(&format!(" | {:>18}", trim_num(y))),
                    None => row.push_str(&format!(" | {:>18}", "-")),
                }
            }
            out.push_str(&row);
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Render an ASCII log-log chart (the paper plots everything log-log).
    pub fn loglog_chart(&self, width: usize, height: usize) -> String {
        let pts: Vec<(f64, f64)> =
            self.series.iter().flat_map(|s| s.points.iter().copied()).filter(|&(x, y)| x > 0.0 && y > 0.0).collect();
        if pts.is_empty() {
            return String::from("(no positive data)\n");
        }
        let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
        for &(x, y) in &pts {
            x0 = x0.min(x.ln());
            x1 = x1.max(x.ln());
            y0 = y0.min(y.ln());
            y1 = y1.max(y.ln());
        }
        if (x1 - x0).abs() < 1e-12 {
            x1 = x0 + 1.0;
        }
        if (y1 - y0).abs() < 1e-12 {
            y1 = y0 + 1.0;
        }
        let mut grid = vec![vec![b' '; width]; height];
        let marks = [b'*', b'o', b'+', b'x', b'#', b'@', b'%', b'&'];
        for (si, s) in self.series.iter().enumerate() {
            let m = marks[si % marks.len()];
            for &(x, y) in &s.points {
                if x <= 0.0 || y <= 0.0 {
                    continue;
                }
                let cx = (((x.ln() - x0) / (x1 - x0)) * (width - 1) as f64).round() as usize;
                let cy = (((y.ln() - y0) / (y1 - y0)) * (height - 1) as f64).round() as usize;
                grid[height - 1 - cy][cx] = m;
            }
        }
        let mut out = String::new();
        out.push_str(&format!("{} (log-log; y: {})\n", self.title, self.ylabel));
        for row in grid {
            out.push('|');
            out.push_str(std::str::from_utf8(&row).unwrap());
            out.push('\n');
        }
        out.push('+');
        out.push_str(&"-".repeat(width));
        out.push('\n');
        for (si, s) in self.series.iter().enumerate() {
            out.push_str(&format!("  {} {}\n", marks[si % marks.len()] as char, s.label));
        }
        out
    }

    /// Full render: table plus chart.
    pub fn render(&self) -> String {
        format!("{}\n{}", self.table(), self.loglog_chart(60, 18))
    }
}

/// Per-rank phase-breakdown table. Each column is one `(name, label →
/// seconds)` pair — typically `rank 0` … `rank P-1` from
/// `ParallelRun::rank_phase_seconds`, optionally followed by a simulated
/// reference column built from `SimResult::phase_seconds` (both use the
/// same label vocabulary, which is the whole point). Cells show the time
/// and each label's share of its column's total.
pub fn phase_breakdown(title: &str, columns: &[(String, BTreeMap<String, f64>)]) -> String {
    let mut labels: Vec<&str> = Vec::new();
    for (_, col) in columns {
        for l in col.keys() {
            if !labels.iter().any(|x| x == l) {
                labels.push(l);
            }
        }
    }
    labels.sort_unstable();
    let totals: Vec<f64> = columns.iter().map(|(_, c)| c.values().sum()).collect();
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let mut header = format!("{:>14}", "phase");
    for (name, _) in columns {
        header.push_str(&format!(" | {:>18}", truncate(name, 18)));
    }
    out.push_str(&header);
    out.push('\n');
    out.push_str(&"-".repeat(header.len()));
    out.push('\n');
    for label in &labels {
        let mut row = format!("{label:>14}");
        for ((_, col), &total) in columns.iter().zip(&totals) {
            match col.get(*label) {
                Some(&v) => {
                    let pct = if total > 0.0 { 100.0 * v / total } else { 0.0 };
                    row.push_str(&format!(" | {:>11} {pct:>4.1}%", fmt_secs(v)));
                }
                None => row.push_str(&format!(" | {:>18}", "-")),
            }
        }
        out.push_str(&row);
        out.push('\n');
    }
    let mut row = format!("{:>14}", "TOTAL");
    for &total in &totals {
        row.push_str(&format!(" | {:>18}", fmt_secs(total)));
    }
    out.push_str(&row);
    out.push('\n');
    out
}

/// ASCII Gantt chart of a merged trace: one row per rank, `width` time
/// buckets across the trace's span. Each cell shows the activity that
/// dominates the slice:
///
/// * `r` — radial-operator phases (`r:*`)
/// * `x` — axial-operator phases (`x:*`)
/// * `#` — other phases (diagnostics, reductions, boundary work)
/// * `s` — message sends, including `comm:send` / `comm:stall` phases
/// * `w` — receive waits, including `comm:recv` phases
/// * space — idle (nothing recorded)
pub fn gantt<E: std::borrow::Borrow<TraceEvent>>(trace: &[E], nranks: usize, width: usize) -> String {
    if trace.is_empty() || nranks == 0 || width == 0 {
        return String::from("(empty trace)\n");
    }
    let t0 = trace.iter().map(|e| e.borrow().t_us).min().unwrap();
    let t1 = trace.iter().map(|e| e.borrow().t_us + e.borrow().dur_us).max().unwrap().max(t0 + 1);
    let span = (t1 - t0) as f64;
    let bucket = span / width as f64;
    const CHARS: [char; 5] = ['r', 'x', '#', 's', 'w'];
    // coverage[rank][bucket][class] = µs of that class inside the bucket
    let mut cov = vec![vec![[0.0f64; CHARS.len()]; width]; nranks];
    for e in trace {
        let e = e.borrow();
        if e.rank >= nranks {
            continue;
        }
        let class = match e.kind {
            EventKind::Send | EventKind::Fault => 3,
            EventKind::Recv => 4,
            EventKind::Phase if e.label.starts_with("r:") => 0,
            EventKind::Phase if e.label.starts_with("x:") => 1,
            EventKind::Phase if e.label == "comm:send" || e.label == "comm:stall" => 3,
            EventKind::Phase if e.label == "comm:recv" => 4,
            EventKind::Phase => 2,
        };
        let s = (e.t_us - t0) as f64;
        // zero-duration events still mark their slice
        let f = s + e.dur_us.max(1) as f64;
        let b0 = ((s / bucket) as usize).min(width - 1);
        let b1 = ((f / bucket).ceil() as usize).clamp(b0 + 1, width);
        for (b, row) in cov[e.rank].iter_mut().enumerate().take(b1).skip(b0) {
            let lo = b as f64 * bucket;
            row[class] += (f.min(lo + bucket) - s.max(lo)).max(0.0);
        }
    }
    let mut out = String::new();
    out.push_str(&format!("timeline: {} µs across {width} buckets ({:.1} µs each)\n", t1 - t0, bucket));
    for (rank, buckets) in cov.iter().enumerate() {
        out.push_str(&format!("rank {rank:>3} |"));
        for classes in buckets {
            let (best, &best_cov) = classes.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap();
            out.push(if best_cov > 0.0 { CHARS[best] } else { ' ' });
        }
        out.push_str("|\n");
    }
    out.push_str("legend: r radial ops, x axial ops, # other phases, s send, w recv wait\n");
    out
}

/// Human-readable seconds with an adaptive unit.
fn fmt_secs(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v >= 0.1 {
        format!("{v:.3} s")
    } else if v >= 1e-4 {
        format!("{:.3} ms", v * 1e3)
    } else {
        format!("{:.1} µs", v * 1e6)
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n - 1])
    }
}

/// Compact numeric formatting.
fn trim_num(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if a >= 1e6 {
        format!("{:.3e}", v)
    } else if a >= 100.0 {
        format!("{:.0}", v)
    } else if a >= 1.0 {
        format!("{:.2}", v)
    } else {
        format!("{:.4}", v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("Figure X", "P", "seconds");
        r.series.push(Series::new("a", vec![(1.0, 100.0), (2.0, 50.0), (4.0, 25.0)]));
        r.series.push(Series::new("b", vec![(1.0, 200.0), (4.0, 60.0)]));
        r.notes.push("shape holds".into());
        r
    }

    #[test]
    fn table_contains_all_rows_and_labels() {
        let t = sample().table();
        assert!(t.contains("Figure X"));
        assert!(t.contains("100"));
        assert!(t.contains("note: shape holds"));
        // series b has no x=2 point
        let row2: Vec<&str> = t.lines().filter(|l| l.trim_start().starts_with("2.00")).collect();
        assert_eq!(row2.len(), 1);
        assert!(row2[0].contains('-'));
    }

    #[test]
    fn chart_renders_marks_for_each_series() {
        let c = sample().loglog_chart(40, 10);
        assert!(c.contains('*'));
        assert!(c.contains('o'));
        assert!(c.contains("a\n") || c.contains(" a"));
    }

    #[test]
    fn series_lookup() {
        let r = sample();
        assert_eq!(r.series("a").unwrap().at(2.0), Some(50.0));
        assert!(r.series("missing").is_none());
    }

    #[test]
    fn phase_breakdown_lists_union_of_labels_with_totals() {
        let mut a = BTreeMap::new();
        a.insert("x:flux".to_string(), 0.2);
        a.insert("comm:recv".to_string(), 0.05);
        let mut b = BTreeMap::new();
        b.insert("x:flux".to_string(), 0.3);
        b.insert("r:prims".to_string(), 0.1);
        let t = phase_breakdown("phases", &[("rank 0".into(), a), ("LACE sim".into(), b)]);
        assert!(t.contains("x:flux"));
        assert!(t.contains("comm:recv"));
        assert!(t.contains("r:prims"));
        assert!(t.contains("TOTAL"));
        // rank 0 has no r:prims entry
        let row: Vec<&str> = t.lines().filter(|l| l.trim_start().starts_with("r:prims")).collect();
        assert_eq!(row.len(), 1);
        assert!(row[0].contains('-'));
        // x:flux is 80% of rank 0's total
        let flux: Vec<&str> = t.lines().filter(|l| l.trim_start().starts_with("x:flux")).collect();
        assert!(flux[0].contains("80.0%"), "{}", flux[0]);
    }

    #[test]
    fn gantt_marks_dominant_activity_per_bucket() {
        use ns_telemetry::EventKind;
        let ev = |t_us, dur_us, rank, kind, label: &str| TraceEvent {
            t_us,
            dur_us,
            rank,
            kind,
            label: label.to_string(),
            peer: None,
            bytes: 0,
            span: None,
        };
        let trace = vec![
            ev(0, 50, 0, EventKind::Phase, "x:flux"),
            ev(50, 50, 0, EventKind::Recv, "Flux1"),
            ev(0, 100, 1, EventKind::Phase, "r:prims"),
        ];
        let g = gantt(&trace, 2, 10);
        assert!(g.contains("rank   0 |xxxxxwwwww|"), "{g}");
        assert!(g.contains("rank   1 |rrrrrrrrrr|"), "{g}");
        assert!(g.contains("legend"));
        assert!(gantt::<TraceEvent>(&[], 2, 10).contains("empty trace"));
    }

    #[test]
    fn chart_handles_empty_and_degenerate() {
        let r = Report::new("empty", "x", "y");
        assert!(r.loglog_chart(20, 5).contains("no positive data"));
        let mut one = Report::new("one", "x", "y");
        one.series.push(Series::new("s", vec![(1.0, 1.0)]));
        let _ = one.loglog_chart(20, 5); // must not panic
    }
}
