//! The 2-D pencil strong-scaling study: `1 × P` / `P × 1` slabs versus the
//! near-square pencil on simulated large machines, written as the
//! schema-versioned `BENCH_scaling.json` and rendered by
//! `jetns scaling-report`.
//!
//! The paper decomposes along the axial direction only and names 2-D
//! blocking as the obvious next step once processor counts outgrow the
//! column count. This study runs that step on the calibrated simulator: a
//! 512 × 512 strong-scaling grid at P = 32/64/128 virtual ranks on two
//! projection fabrics (a 10 Gbps fat tree and a scaled-out T3D torus),
//! comparing both slab orientations against [`CartTopology::factor`]'s
//! surface-minimizing shape.

use ns_archsim::{simulate, Platform, SimConfig};
use ns_core::config::Regime;
use ns_numerics::Grid;
use ns_runtime::CartTopology;
use serde::{Deserialize, Serialize};

/// Schema tag of `BENCH_scaling.json`.
pub const SCALING_SCHEMA: &str = "ns-archsim/scaling/v1";

/// One simulated (platform, rank-shape) cell of the sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScalingCell {
    /// Platform display name.
    pub platform: String,
    /// Total virtual ranks (`px * pr`).
    pub procs: usize,
    /// Axial ranks.
    pub px: usize,
    /// Radial ranks.
    pub pr: usize,
    /// Wall-clock execution time of the slowest rank, seconds.
    pub total_seconds: f64,
    /// Mean per-rank busy time, seconds.
    pub busy_mean_seconds: f64,
    /// Communication time: blocked receives plus message software costs
    /// (`comm:send` / `comm:recv` / `comm:stall`), summed over ranks.
    pub comm_seconds: f64,
    /// Worst per-rank non-overlapped wait, seconds.
    pub wait_max_seconds: f64,
    /// Message start-ups, summed over ranks.
    pub startups: u64,
    /// Bytes sent, summed over ranks.
    pub bytes_sent: u64,
}

/// The whole sweep, the contents of `BENCH_scaling.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScalingData {
    /// Schema tag ([`SCALING_SCHEMA`]).
    pub schema: String,
    /// `"euler"` or `"navier-stokes"`.
    pub regime: String,
    /// Strong-scaling grid columns.
    pub nx: usize,
    /// Strong-scaling grid rows.
    pub nr: usize,
    /// Steps the times are scaled to.
    pub report_steps: u64,
    /// Steps actually simulated.
    pub sim_steps: u64,
    /// True for the CI smoke variant (P = 32 only).
    pub quick: bool,
    /// All simulated cells.
    pub cells: Vec<ScalingCell>,
}

/// The strong-scaling grid: square, so neither slab orientation is favored
/// by the domain shape, and large enough that P = 128 slabs stay feasible
/// (512 / 128 = 4 columns or rows, the decomposition minimum).
pub fn scaling_grid() -> Grid {
    Grid::new(512, 512, 50.0, 5.0)
}

fn cell(platform: Platform, grid: &Grid, px: usize, pr: usize) -> ScalingCell {
    let mut cfg = SimConfig::pencil(platform, grid.clone(), px, pr, Regime::NavierStokes);
    cfg.report_steps = 1000;
    cfg.sim_steps = 5;
    let r = simulate(&cfg);
    let comm: f64 = r.wait.iter().sum::<f64>()
        + ["comm:send", "comm:recv", "comm:stall"].iter().filter_map(|l| r.phase_seconds.get(l)).sum::<f64>();
    ScalingCell {
        platform: platform.name.to_string(),
        procs: px * pr,
        px,
        pr,
        total_seconds: r.total,
        busy_mean_seconds: r.mean_busy(),
        comm_seconds: comm,
        wait_max_seconds: r.max_wait(),
        startups: r.startups.iter().sum(),
        bytes_sent: r.bytes_sent.iter().sum(),
    }
}

/// The three shapes compared at each processor count: the pure radial slab,
/// the paper's axial slab, and the surface-minimizing near-square pencil.
pub fn shapes(p: usize, grid: &Grid) -> Vec<(usize, usize)> {
    let mut out = vec![(1, p), (p, 1)];
    if let Ok(t) = CartTopology::factor(p, grid.nx, grid.nr) {
        if !out.contains(&(t.px, t.pr)) {
            out.push((t.px, t.pr));
        }
    }
    out
}

/// Run the sweep. `quick` restricts to P = 32 (the CI smoke job); the full
/// sweep covers P = 32/64/128 on both projection fabrics.
pub fn sweep(quick: bool) -> ScalingData {
    let grid = scaling_grid();
    let procs: &[usize] = if quick { &[32] } else { &[32, 64, 128] };
    let mut cells = Vec::new();
    for platform in [Platform::cluster_fat_tree(), Platform::torus_cluster()] {
        for &p in procs {
            for (px, pr) in shapes(p, &grid) {
                cells.push(cell(platform, &grid, px, pr));
            }
        }
    }
    ScalingData {
        schema: SCALING_SCHEMA.to_string(),
        regime: "navier-stokes".to_string(),
        nx: grid.nx,
        nr: grid.nr,
        report_steps: 1000,
        sim_steps: 5,
        quick,
        cells,
    }
}

/// Parse the JSON text of `BENCH_scaling.json`.
pub fn parse(json: &str) -> Result<ScalingData, String> {
    let data: ScalingData = serde_json::from_str(json).map_err(|e| format!("BENCH_scaling.json: {e}"))?;
    if !data.schema.starts_with("ns-archsim/scaling/") {
        return Err(format!("unexpected schema `{}`", data.schema));
    }
    Ok(data)
}

/// Render the sweep as per-platform tables with a shape-versus-shape
/// verdict at each processor count.
pub fn render(data: &ScalingData) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Strong scaling, {} on {}x{}, {} steps ({} simulated){}\n\n",
        data.regime,
        data.nx,
        data.nr,
        data.report_steps,
        data.sim_steps,
        if data.quick { " [quick smoke: P=32 only]" } else { "" }
    ));
    let mut platforms: Vec<&str> = data.cells.iter().map(|c| c.platform.as_str()).collect();
    platforms.dedup();
    for platform in platforms {
        out.push_str(&format!("{platform}\n"));
        out.push_str("    P  shape      total(s)   busy(s)    comm(s)  max-wait(s)   startups        bytes\n");
        let cells: Vec<&ScalingCell> = data.cells.iter().filter(|c| c.platform == platform).collect();
        for c in &cells {
            out.push_str(&format!(
                "  {:>3}  {:<9}{:>10.3}{:>10.3}{:>11.3}{:>13.4}{:>11}{:>13}\n",
                c.procs,
                format!("{}x{}", c.px, c.pr),
                c.total_seconds,
                c.busy_mean_seconds,
                c.comm_seconds,
                c.wait_max_seconds,
                c.startups,
                c.bytes_sent,
            ));
        }
        // verdict per processor count: best pencil vs best slab on comm time
        let mut procs: Vec<usize> = cells.iter().map(|c| c.procs).collect();
        procs.dedup();
        for p in procs {
            let at = |f: &dyn Fn(&&&ScalingCell) -> bool| {
                cells.iter().filter(|c| c.procs == p).find(f).map(|c| (c.comm_seconds, c.px, c.pr))
            };
            let pencil = at(&|c| c.px > 1 && c.pr > 1);
            let radial = at(&|c| c.px == 1);
            if let (Some((pc, px, pr)), Some((rc, _, _))) = (pencil, radial) {
                out.push_str(&format!(
                    "  P={p}: {px}x{pr} pencil comm {pc:.3}s vs 1x{p} slab {rc:.3}s ({})\n",
                    if pc < rc { "pencil wins" } else { "slab wins" }
                ));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_has_all_shapes_and_serializes() {
        let data = sweep(true);
        // 2 platforms x 1 proc count x 3 shapes
        assert_eq!(data.cells.len(), 6);
        assert!(data.cells.iter().any(|c| c.px == 1 && c.pr == 32));
        assert!(data.cells.iter().any(|c| c.px == 32 && c.pr == 1));
        assert!(data.cells.iter().any(|c| c.px > 1 && c.pr > 1));
        let json = serde_json::to_string(&data).unwrap();
        let back = parse(&json).unwrap();
        assert_eq!(back.cells.len(), data.cells.len());
        let text = render(&back);
        assert!(text.contains("32x1") && text.contains("1x32"));
    }

    #[test]
    fn near_square_p64_beats_radial_slab_on_comm_time() {
        // the acceptance criterion of the pencil study, checked at the
        // source so the committed BENCH_scaling.json cannot silently rot
        let grid = scaling_grid();
        let fat = Platform::cluster_fat_tree();
        let square = cell(fat, &grid, 8, 8);
        let radial = cell(fat, &grid, 1, 64);
        assert!(
            square.comm_seconds < radial.comm_seconds,
            "8x8 comm {} must beat 1x64 comm {}",
            square.comm_seconds,
            radial.comm_seconds
        );
        assert!(square.bytes_sent < radial.bytes_sent, "smaller halo surface");
    }

    #[test]
    fn factored_shape_is_near_square_on_the_square_grid() {
        let grid = scaling_grid();
        assert_eq!(shapes(64, &grid), vec![(1, 64), (64, 1), (8, 8)]);
        assert_eq!(shapes(128, &grid), vec![(1, 128), (128, 1), (16, 8)]);
    }
}
