//! Figures 9, 10 and 13: the cross-platform comparison and load balance.

use crate::report::{Report, Series};
use ns_archsim::{simulate, Calibration, Platform, SimConfig, YmpModel};
use ns_core::config::Regime;
use ns_core::workload;
use ns_numerics::Grid;

/// Processor counts for the platform shootout.
pub const PROCS: [usize; 6] = [1, 2, 4, 8, 12, 16];

/// Figures 9 (N-S) and 10 (Euler): execution time on all platforms.
pub fn fig9_10(regime: Regime) -> Report {
    let fig = if regime == Regime::NavierStokes { 9 } else { 10 };
    let mut r = Report::new(
        format!("Figure {fig}: Execution time of {} on computing platforms", regime.name()),
        "processors",
        "seconds",
    );
    // Cray Y-MP: analytic shared-memory model, up to its 8 CPUs
    let cal = Calibration::standard();
    let grid = Grid::paper();
    let flops = workload::step_workload(regime, &grid, grid.nx).compute_flops() * 5000;
    let ymp = YmpModel::standard();
    let ymp_pts = [1usize, 2, 4, 8].iter().map(|&p| (p as f64, ymp.seconds_for(cal, p, flops))).collect();
    r.series.push(Series::new("Cray Y-MP", ymp_pts));

    for (platform, label) in [
        (Platform::ibm_sp_mpl(), "IBM SP (RS6K/370)"),
        (Platform::lace560_allnode_s(), "ALLNODE-S"),
        (Platform::cray_t3d(), "Cray T3D"),
        (Platform::lace590_allnode_f(), "ALLNODE-F"),
    ] {
        let pts = PROCS
            .iter()
            .map(|&p| {
                let res = simulate(&SimConfig::paper(platform, p, regime));
                (p as f64, res.total)
            })
            .collect();
        r.series.push(Series::new(label, pts));
    }
    r.notes.push(
        "paper: Y-MP fastest; LACE even with ALLNODE-S beats the SP; T3D always below ALLNODE-F, crosses ALLNODE-S near 8 procs; LACE/590 x16 ~ one Y-MP CPU".into(),
    );
    r
}

/// Figure 13: per-processor busy times (N-S, IBM SP, 16 processors).
pub fn fig13() -> Report {
    let mut r =
        Report::new("Figure 13: Processor busy times (Navier-Stokes; IBM SP, 16 procs)", "processor", "seconds");
    let res = simulate(&SimConfig::paper(Platform::ibm_sp_mpl(), 16, Regime::NavierStokes));
    let pts = res.busy.iter().enumerate().map(|(k, &b)| (k as f64 + 1.0, b)).collect();
    r.series.push(Series::new("busy time", pts));
    r.notes.push("paper: almost perfect load balancing; residual spread comes from the 250/16 block remainder and edge ranks' lighter message load".into());
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ymp_dominates_everything() {
        for regime in [Regime::NavierStokes, Regime::Euler] {
            let r = fig9_10(regime);
            let ymp8 = r.series("Cray Y-MP").unwrap().at(8.0).unwrap();
            for other in ["IBM SP (RS6K/370)", "ALLNODE-S", "Cray T3D", "ALLNODE-F"] {
                let t = r.series(other).unwrap().at(8.0).unwrap();
                assert!(ymp8 < t, "{regime:?}: Y-MP {ymp8} must beat {other} {t}");
            }
        }
    }

    #[test]
    fn allnode_s_beats_the_sp() {
        let r = fig9_10(Regime::NavierStokes);
        let sp = r.series("IBM SP (RS6K/370)").unwrap();
        let aln = r.series("ALLNODE-S").unwrap();
        for &p in &[4.0, 8.0, 16.0] {
            assert!(aln.at(p).unwrap() < sp.at(p).unwrap(), "ALLNODE-S faster than SP at {p}");
        }
    }

    #[test]
    fn t3d_crosses_allnode_s_near_eight() {
        let r = fig9_10(Regime::NavierStokes);
        let t3d = r.series("Cray T3D").unwrap();
        let aln = r.series("ALLNODE-S").unwrap();
        assert!(t3d.at(2.0).unwrap() > aln.at(2.0).unwrap(), "T3D worse below 8");
        assert!(t3d.at(4.0).unwrap() > aln.at(4.0).unwrap(), "T3D worse below 8");
        assert!(t3d.at(12.0).unwrap() < aln.at(12.0).unwrap(), "T3D better beyond 8");
        assert!(t3d.at(16.0).unwrap() < aln.at(16.0).unwrap(), "T3D better beyond 8");
    }

    #[test]
    fn t3d_never_beats_allnode_f() {
        let r = fig9_10(Regime::NavierStokes);
        let t3d = r.series("Cray T3D").unwrap();
        let f = r.series("ALLNODE-F").unwrap();
        for &(p, t) in &t3d.points {
            assert!(t > f.at(p).unwrap(), "ALLNODE-F always ahead at P={p}");
        }
    }

    #[test]
    fn lace590_at_16_is_comparable_to_one_ymp_cpu() {
        let r = fig9_10(Regime::NavierStokes);
        let f16 = r.series("ALLNODE-F").unwrap().at(16.0).unwrap();
        let ymp1 = r.series("Cray Y-MP").unwrap().at(1.0).unwrap();
        let ratio = f16 / ymp1;
        assert!(ratio > 0.4 && ratio < 2.0, "paper: 'comparable'; ratio {ratio}");
    }

    #[test]
    fn fig13_is_nearly_flat() {
        let r = fig13();
        let s = &r.series[0];
        let mn = s.points.iter().map(|&(_, y)| y).fold(f64::INFINITY, f64::min);
        let mx = s.points.iter().map(|&(_, y)| y).fold(0.0, f64::max);
        assert_eq!(s.points.len(), 16);
        assert!((mx - mn) / mx < 0.2, "spread {mn}..{mx}");
    }
}
