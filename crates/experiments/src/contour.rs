//! ASCII contour rendering and PGM export for flow-field planes
//! (Figure 1 of the paper shows axial-momentum contours).

use ns_numerics::Array2;

/// Render a field as an ASCII intensity map (`nx` across, `nr` up; the axis
/// at the bottom, like the paper's Figure 1 orientation).
pub fn ascii(field: &Array2, width: usize, height: usize) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let (lo, hi) = min_max(field);
    let span = if (hi - lo).abs() < 1e-300 { 1.0 } else { hi - lo };
    let (ni, nj) = (field.ni(), field.nj());
    let mut out = String::with_capacity((width + 2) * height);
    for row in 0..height {
        // top row = largest radius
        let j = (height - 1 - row) * (nj - 1) / height.max(1);
        out.push('|');
        for col in 0..width {
            let i = col * (ni - 1) / width.max(1);
            let v = (field[(i, j)] - lo) / span;
            let k = ((v * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[k] as char);
        }
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push_str("> x\n");
    out.push_str(&format!("range: [{lo:.4}, {hi:.4}]\n"));
    out
}

/// Export as a binary PGM image (portable graymap), radius increasing
/// upward.
pub fn pgm(field: &Array2) -> Vec<u8> {
    let (lo, hi) = min_max(field);
    let span = if (hi - lo).abs() < 1e-300 { 1.0 } else { hi - lo };
    let (ni, nj) = (field.ni(), field.nj());
    let mut out = format!("P5\n{} {}\n255\n", ni, nj).into_bytes();
    for j in (0..nj).rev() {
        for i in 0..ni {
            let v = ((field[(i, j)] - lo) / span * 255.0).round().clamp(0.0, 255.0) as u8;
            out.push(v);
        }
    }
    out
}

fn min_max(field: &Array2) -> (f64, f64) {
    let mut lo = f64::MAX;
    let mut hi = f64::MIN;
    for &v in field.as_slice() {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_maps_extremes_to_ramp_ends() {
        let f = Array2::from_fn(20, 10, |i, _| i as f64);
        let a = ascii(&f, 20, 5);
        let first_line = a.lines().next().unwrap();
        assert!(first_line.starts_with("| "), "low values blank: {first_line}");
        assert!(first_line.ends_with('@'), "high values dense: {first_line}");
    }

    #[test]
    fn ascii_reports_range() {
        let f = Array2::from_fn(5, 5, |i, j| (i + j) as f64);
        let a = ascii(&f, 10, 5);
        assert!(a.contains("range: [0.0000, 8.0000]"));
    }

    #[test]
    fn pgm_has_header_and_payload() {
        let f = Array2::from_fn(4, 3, |i, j| (i * j) as f64);
        let p = pgm(&f);
        assert!(p.starts_with(b"P5\n4 3\n255\n"));
        assert_eq!(p.len(), b"P5\n4 3\n255\n".len() + 12);
    }

    #[test]
    fn constant_field_does_not_divide_by_zero() {
        let f = Array2::filled(4, 4, 7.0);
        let _ = ascii(&f, 8, 4);
        let p = pgm(&f);
        assert!(p.iter().skip(11).all(|&b| b == 0));
    }
}
