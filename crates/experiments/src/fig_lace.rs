//! Figures 3-8: the LACE network study.
//!
//! * Figures 3/4 — execution time on ALLNODE-F, ALLNODE-S and Ethernet
//!   (ATM and FDDI tracked their switch-class twins in the paper; we emit
//!   them as extra series so the claim is checkable).
//! * Figures 5/6 — processor busy time vs non-overlapped communication.
//! * Figures 7/8 — communication variants (Versions 5/6/7) on ALLNODE-S and
//!   Ethernet.

use crate::report::{Report, Series};
use ns_archsim::{simulate, CommMode, Platform, SimConfig};
use ns_core::config::Regime;

/// Processor counts the paper sweeps on LACE.
pub const LACE_PROCS: [usize; 7] = [1, 2, 4, 6, 8, 12, 16];

fn total_series(platform: Platform, regime: Regime, label: &str) -> Series {
    let pts = LACE_PROCS
        .iter()
        .map(|&p| {
            let r = simulate(&SimConfig::paper(platform, p, regime));
            (p as f64, r.total)
        })
        .collect();
    Series::new(label, pts)
}

/// Figures 3 (N-S) and 4 (Euler): execution time on the LACE networks.
pub fn fig3_4(regime: Regime) -> Report {
    let fig = if regime == Regime::NavierStokes { 3 } else { 4 };
    let mut r = Report::new(format!("Figure {fig}: {} execution time on LACE", regime.name()), "processors", "seconds");
    r.series.push(total_series(Platform::lace590_allnode_f(), regime, "ALLNODE-F"));
    r.series.push(total_series(Platform::lace560_allnode_s(), regime, "ALLNODE-S"));
    r.series.push(total_series(Platform::lace560_ethernet(), regime, "LACE/560 Ethernet"));
    r.series.push(total_series(Platform::lace590_atm(), regime, "ATM (tracks ALLNODE-F)"));
    r.series.push(total_series(Platform::lace560_fddi(), regime, "FDDI (tracks ALLNODE-S)"));
    r.notes.push("paper: ALLNODE-F ~70-80% faster than ALLNODE-S; Ethernet peaks near 8-10 processors".into());
    r
}

/// Figures 5 (N-S) and 6 (Euler): components of execution time.
pub fn fig5_6(regime: Regime) -> Report {
    let fig = if regime == Regime::NavierStokes { 5 } else { 6 };
    let mut r = Report::new(
        format!("Figure {fig}: Components of execution time ({}; LACE)", regime.name()),
        "processors",
        "seconds",
    );
    let mut busy_f = Vec::new();
    let mut wait_f = Vec::new();
    let mut busy_s = Vec::new();
    let mut wait_s = Vec::new();
    let mut wait_e = Vec::new();
    for &p in &LACE_PROCS {
        let f = simulate(&SimConfig::paper(Platform::lace590_allnode_f(), p, regime));
        busy_f.push((p as f64, f.mean_busy()));
        wait_f.push((p as f64, f.max_wait().max(1e-3)));
        let s = simulate(&SimConfig::paper(Platform::lace560_allnode_s(), p, regime));
        busy_s.push((p as f64, s.mean_busy()));
        wait_s.push((p as f64, s.max_wait().max(1e-3)));
        let e = simulate(&SimConfig::paper(Platform::lace560_ethernet(), p, regime));
        wait_e.push((p as f64, e.max_wait().max(1e-3)));
    }
    r.series.push(Series::new("LACE/590 Processor busy time", busy_f));
    r.series.push(Series::new("ALLNODE-F Non-overlapped Comm.", wait_f));
    r.series.push(Series::new("LACE/560 Processor busy time", busy_s));
    r.series.push(Series::new("ALLNODE-S Non-overlapped Comm.", wait_s));
    r.series.push(Series::new("Non-overlapped Comm. (Ethernet)", wait_e));
    r.notes.push("paper: busy time falls linearly; Ethernet wait grows superlinearly; ALLNODE wait steady to ~10-12 procs then rises".into());
    r
}

/// Figures 7 (N-S) and 8 (Euler): communication optimization study.
pub fn fig7_8(regime: Regime) -> Report {
    let fig = if regime == Regime::NavierStokes { 7 } else { 8 };
    let mut r = Report::new(
        format!("Figure {fig}: Communication optimization ({}; LACE)", regime.name()),
        "processors",
        "seconds",
    );
    for (mode, mname) in [(CommMode::V5, "Version 5"), (CommMode::V6, "Version 6"), (CommMode::V7, "Version 7")] {
        for (platform, pname) in
            [(Platform::lace560_allnode_s(), "ALLNODE-S"), (Platform::lace560_ethernet(), "Ethernet")]
        {
            let pts = LACE_PROCS
                .iter()
                .map(|&p| {
                    let mut cfg = SimConfig::paper(platform, p, regime);
                    cfg.comm = mode;
                    (p as f64, simulate(&cfg).total)
                })
                .collect();
            r.series.push(Series::new(format!("{mname} {pname}"), pts));
        }
    }
    r.notes.push(
        "paper: V6 ~ V5 everywhere; V7 helps only Ethernet (fewer bursts) and hurts ALLNODE (more start-ups)".into(),
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_orderings_match_paper() {
        let r = fig3_4(Regime::NavierStokes);
        let f = r.series("ALLNODE-F").unwrap();
        let s = r.series("ALLNODE-S").unwrap();
        let e = r.series("LACE/560 Ethernet").unwrap();
        for &p in &[4.0, 8.0, 16.0] {
            assert!(f.at(p).unwrap() < s.at(p).unwrap(), "ALLNODE-F faster at P={p}");
            assert!(s.at(p).unwrap() <= e.at(p).unwrap() * 1.001, "ALLNODE-S beats Ethernet at P={p}");
        }
        // Ethernet degrades past its peak
        assert!(e.at(16.0).unwrap() > e.at(8.0).unwrap());
        // ALLNODE-F is 70-80% faster than ALLNODE-S in the paper; allow a
        // generous band around that
        let gain = s.at(8.0).unwrap() / f.at(8.0).unwrap();
        assert!(gain > 1.3 && gain < 2.3, "ALLNODE-F gain {gain}");
    }

    #[test]
    fn atm_and_fddi_track_their_twins() {
        let r = fig3_4(Regime::Euler);
        let f = r.series("ALLNODE-F").unwrap();
        let atm = r.series("ATM (tracks ALLNODE-F)").unwrap();
        for &p in &[2.0, 8.0, 16.0] {
            let rel = (atm.at(p).unwrap() - f.at(p).unwrap()).abs() / f.at(p).unwrap();
            assert!(rel < 0.15, "ATM within 15% of ALLNODE-F at P={p}: {rel}");
        }
    }

    #[test]
    fn fig5_busy_falls_linearly_and_ethernet_wait_explodes() {
        let r = fig5_6(Regime::NavierStokes);
        let busy = r.series("LACE/560 Processor busy time").unwrap();
        let ratio = busy.at(1.0).unwrap() / busy.at(8.0).unwrap();
        assert!(ratio > 6.0 && ratio < 9.5, "busy falls ~linearly: {ratio}");
        let we = r.series("Non-overlapped Comm. (Ethernet)").unwrap();
        assert!(we.at(16.0).unwrap() > 4.0 * we.at(4.0).unwrap(), "superlinear Ethernet wait");
    }

    #[test]
    fn fig7_v7_helps_ethernet_hurts_allnode() {
        let r = fig7_8(Regime::NavierStokes);
        let v5e = r.series("Version 5 Ethernet").unwrap().at(16.0).unwrap();
        let v7e = r.series("Version 7 Ethernet").unwrap().at(16.0).unwrap();
        let v5a = r.series("Version 5 ALLNODE-S").unwrap().at(16.0).unwrap();
        let v7a = r.series("Version 7 ALLNODE-S").unwrap().at(16.0).unwrap();
        // Deviation from the paper, documented in EXPERIMENTS.md: the paper
        // saw a *small improvement* from V7 on Ethernet (burstiness caused
        // UDP loss + PVM retransmission, which a FIFO bus model cannot
        // reproduce); in our model V7 is volume-neutral on Ethernet.
        assert!(v7e <= v5e * 1.02, "V7 ~ V5 on Ethernet: {v7e} vs {v5e}");
        assert!(v7a > v5a * 1.01, "V7 hurts ALLNODE-S: {v7a} vs {v5a}");
        let v6a = r.series("Version 6 ALLNODE-S").unwrap().at(8.0).unwrap();
        let rel = (v6a - r.series("Version 5 ALLNODE-S").unwrap().at(8.0).unwrap()).abs() / v6a;
        assert!(rel < 0.1, "V6 ~ V5: {rel}");
    }
}
