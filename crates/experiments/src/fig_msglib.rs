//! Figures 11 and 12: MPL vs PVMe on the IBM SP.

use crate::report::{Report, Series};
use ns_archsim::{simulate, Platform, SimConfig};
use ns_core::config::Regime;

/// Processor counts of the SP study.
pub const PROCS: [usize; 5] = [1, 2, 4, 8, 16];

/// Figures 11 (N-S) and 12 (Euler): busy time and non-overlapped
/// communication under the two libraries.
pub fn fig11_12(regime: Regime) -> Report {
    let fig = if regime == Regime::NavierStokes { 11 } else { 12 };
    let mut r = Report::new(
        format!("Figure {fig}: Comparison of MPL and PVMe ({}; IBM SP)", regime.name()),
        "processors",
        "seconds",
    );
    for (platform, lib) in [(Platform::ibm_sp_mpl(), "MPL"), (Platform::ibm_sp_pvme(), "PVMe")] {
        let mut busy = Vec::new();
        let mut wait = Vec::new();
        for &p in &PROCS {
            let res = simulate(&SimConfig::paper(platform, p, regime));
            busy.push((p as f64, res.mean_busy()));
            wait.push((p as f64, res.max_wait().max(1e-3)));
        }
        r.series.push(Series::new(format!("Processor busy time with {lib}"), busy));
        r.series.push(Series::new(format!("Non overlapped comm with {lib}"), wait));
    }
    r.notes.push(
        "paper: MPL ~75% (N-S) / ~40% (Euler) faster than PVMe; non-overlapped communication is negligibly small and decreases with P (library overheads are busy time)".into(),
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpl_beats_pvme_consistently() {
        for regime in [Regime::NavierStokes, Regime::Euler] {
            let r = fig11_12(regime);
            let mpl = r.series("Processor busy time with MPL").unwrap();
            let pvme = r.series("Processor busy time with PVMe").unwrap();
            for &p in &[2.0, 4.0, 8.0, 16.0] {
                assert!(pvme.at(p).unwrap() > mpl.at(p).unwrap(), "{regime:?} P={p}");
            }
        }
    }

    #[test]
    fn ns_gap_is_paper_sized() {
        let r = fig11_12(Regime::NavierStokes);
        let mpl = r.series("Processor busy time with MPL").unwrap().at(16.0).unwrap();
        let pvme = r.series("Processor busy time with PVMe").unwrap().at(16.0).unwrap();
        let gap = pvme / mpl;
        // paper: ~1.75 for N-S
        assert!(gap > 1.3 && gap < 2.3, "N-S PVMe/MPL gap {gap}");
    }

    #[test]
    fn non_overlapped_comm_is_small_on_the_sp() {
        let r = fig11_12(Regime::NavierStokes);
        let busy = r.series("Processor busy time with MPL").unwrap();
        let wait = r.series("Non overlapped comm with MPL").unwrap();
        for &p in &[4.0, 8.0, 16.0] {
            assert!(
                wait.at(p).unwrap() < 0.15 * busy.at(p).unwrap(),
                "SP wait stays small at P={p}: {} vs {}",
                wait.at(p).unwrap(),
                busy.at(p).unwrap()
            );
        }
    }

    #[test]
    fn libraries_converge_at_one_processor() {
        let r = fig11_12(Regime::Euler);
        let mpl = r.series("Processor busy time with MPL").unwrap().at(1.0).unwrap();
        let pvme = r.series("Processor busy time with PVMe").unwrap().at(1.0).unwrap();
        assert!((mpl - pvme).abs() / mpl < 1e-9, "no messages at P=1");
    }
}
