//! The chaos study: sweep injected fault rates across processor counts,
//! verify that the recovery stack reproduces the fault-free answer *bitwise*,
//! and measure what the healing cost in wall clock.
//!
//! Every cell of the sweep runs the same problem twice: once with the plain
//! in-process runtime ([`ns_runtime::run_parallel`], no framing, no faults)
//! as the reference, and once under [`ns_runtime::run_parallel_chaos`] with
//! a deterministic [`FaultPlan`] — message drops, bit corruption and
//! duplication at the given rate, plus (optionally) one hard rank crash
//! mid-run. The cell *survives* when the chaos run completes within its
//! rollback budget, and is *bitwise* when its gathered field equals the
//! reference field exactly (`max_diff == 0`). The paper's cluster runs
//! (Section 5) simply died on a lost PVM daemon; this is the experiment we
//! would have wanted to hand them.

use ns_core::config::SolverConfig;
use ns_metrics::FlightDump;
use ns_runtime::{run_parallel, run_parallel_chaos, ChaosOptions, CommVersion, CrashSpec, FaultPlan};
use ns_telemetry::RecoverySummary;
use serde::Serialize;

/// Schema version stamped into the chaos-sweep JSON artifact.
pub const CHAOS_SCHEMA: u32 = 1;

/// One `(fault rate, processor count)` cell of the sweep.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ChaosCell {
    /// Ranks in the universe.
    pub p: usize,
    /// Per-frame rate of each message fault (drop; corruption and
    /// duplication each run at half this).
    pub rate: f64,
    /// Whether one rank was crashed mid-run.
    pub crashed: bool,
    /// The chaos run completed within its rollback budget.
    pub survived: bool,
    /// The recovered field equals the fault-free field bitwise.
    pub bitwise: bool,
    /// Chaos wall clock over fault-free wall clock.
    pub overhead: f64,
    /// Fault-free wall clock, seconds.
    pub clean_seconds: f64,
    /// Chaos wall clock, seconds.
    pub chaos_seconds: f64,
    /// The recovery block of the chaos run.
    pub recovery: RecoverySummary,
}

/// The whole sweep, ready for rendering or the CI artifact.
#[derive(Clone, Debug, Serialize)]
pub struct ChaosSweep {
    /// Artifact schema version ([`CHAOS_SCHEMA`]).
    pub schema: u32,
    /// Grid of the swept problem.
    pub nx: usize,
    /// Radial points of the swept problem.
    pub nr: usize,
    /// Steps per run.
    pub nsteps: u64,
    /// Seed of the deterministic fault plans.
    pub seed: u64,
    /// The cells, rate-major.
    pub cells: Vec<ChaosCell>,
    /// Flight-recorder dumps collected across the chaos runs (crashed
    /// ranks, rolled-back generations), in sweep order; also written as
    /// individual `FLIGHT_<rank>.json` files by [`write_flight_dumps`].
    pub flight_dumps: Vec<FlightDump>,
}

/// The deterministic plan for one cell: drops at `rate`, corruption and
/// duplication at `rate / 2`, and — when `crash` — rank `p / 2` killed at
/// the middle step. The seed is folded with the cell coordinates so no two
/// cells replay the same fault stream.
pub fn cell_plan(seed: u64, rate: f64, p: usize, nsteps: u64, crash: bool) -> FaultPlan {
    FaultPlan {
        seed: seed ^ ((p as u64) << 48) ^ (rate.to_bits() >> 16),
        drop_rate: rate,
        corrupt_rate: rate / 2.0,
        dup_rate: rate / 2.0,
        crash: crash.then_some(CrashSpec { rank: p / 2, step: (nsteps / 2).max(1) }),
        ..FaultPlan::default()
    }
}

/// Run the sweep: `rates` × `procs`, `nsteps` steps each, on `cfg`'s grid.
///
/// `cfg.dissipation` must be 0 (the distributed protocol has no smoothing
/// halo) and every rank needs at least 4 interior columns.
pub fn sweep(cfg: &SolverConfig, procs: &[usize], rates: &[f64], nsteps: u64, seed: u64, crash: bool) -> ChaosSweep {
    let mut cells = Vec::new();
    let mut flight_dumps = Vec::new();
    for &rate in rates {
        for &p in procs {
            let clean_t = std::time::Instant::now();
            let reference = run_parallel(cfg, p, nsteps, CommVersion::V5);
            let clean_seconds = clean_t.elapsed().as_secs_f64();

            let opts = ChaosOptions { plan: cell_plan(seed, rate, p, nsteps, crash), ..ChaosOptions::default() };
            let chaos_t = std::time::Instant::now();
            let chaos = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_parallel_chaos(cfg, p, nsteps, CommVersion::V5, &opts)
            }))
            .ok();
            let chaos_seconds = chaos_t.elapsed().as_secs_f64();

            if let Some(run) = &chaos {
                flight_dumps.extend(run.flight_dumps().into_iter().cloned());
            }
            let (survived, bitwise, recovery) = match &chaos {
                Some(run) => (
                    true,
                    reference.gather_field().max_diff(&run.gather_field()) == 0.0,
                    run.recovery.as_ref().map(|r| r.to_summary(&run.total_stats())).unwrap_or_default(),
                ),
                // the rollback budget panicked: the cell is lost, not the sweep
                None => (false, false, RecoverySummary::default()),
            };
            cells.push(ChaosCell {
                p,
                rate,
                crashed: crash,
                survived,
                bitwise,
                overhead: if clean_seconds > 0.0 { chaos_seconds / clean_seconds } else { 0.0 },
                clean_seconds,
                chaos_seconds,
                recovery,
            });
        }
    }
    ChaosSweep { schema: CHAOS_SCHEMA, nx: cfg.grid.nx, nr: cfg.grid.nr, nsteps, seed, cells, flight_dumps }
}

/// Write every collected flight dump into `dir` under its canonical
/// `FLIGHT_<rank>.json` name (a rank that crashed in several cells keeps
/// its last dump). Returns the paths written.
pub fn write_flight_dumps(s: &ChaosSweep, dir: &str) -> Result<Vec<String>, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    let mut paths = Vec::new();
    for dump in &s.flight_dumps {
        let path = format!("{dir}/{}", FlightDump::file_name(dump.rank));
        std::fs::write(&path, dump.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
        if !paths.contains(&path) {
            paths.push(path);
        }
    }
    Ok(paths)
}

/// Render the survival/overhead table.
pub fn render(s: &ChaosSweep) -> String {
    let mut out = String::new();
    out.push_str(&format!("== Chaos sweep: {}x{} grid, {} steps, seed {} ==\n", s.nx, s.nr, s.nsteps, s.seed));
    out.push_str(&format!(
        "{:>6} {:>7} {:>6} {:>9} {:>8} {:>9} {:>6} {:>5} {:>7} {:>8} {:>7}\n",
        "rate", "p", "crash", "survived", "bitwise", "overhead", "gens", "rb", "faults", "retries", "recomp"
    ));
    for c in &s.cells {
        out.push_str(&format!(
            "{:>6} {:>7} {:>6} {:>9} {:>8} {:>8.2}x {:>6} {:>5} {:>7} {:>8} {:>7}\n",
            format!("{:.1}%", c.rate * 100.0),
            c.p,
            if c.crashed { "yes" } else { "no" },
            if c.survived { "yes" } else { "NO" },
            if c.bitwise { "yes" } else { "NO" },
            c.overhead,
            c.recovery.generations,
            c.recovery.rollbacks,
            c.recovery.faults_injected,
            c.recovery.retries,
            c.recovery.recomputed_steps,
        ));
    }
    let ok = s.cells.iter().filter(|c| c.survived && c.bitwise).count();
    out.push_str(&format!("{ok}/{} cells recovered bitwise\n", s.cells.len()));
    out
}

/// True when every cell both survived and recovered bitwise.
pub fn all_recovered(s: &ChaosSweep) -> bool {
    s.cells.iter().all(|c| c.survived && c.bitwise)
}

/// The machine-readable artifact (what CI uploads).
pub fn to_json(s: &ChaosSweep) -> String {
    serde_json::to_string_pretty(s).expect("sweep serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ns_core::config::Regime;
    use ns_numerics::Grid;

    fn tiny_cfg() -> SolverConfig {
        let mut cfg = SolverConfig::paper(Grid::new(24, 10, 8.0, 2.0), Regime::Euler);
        cfg.dissipation = 0.0;
        cfg
    }

    #[test]
    fn tiny_sweep_recovers_bitwise() {
        let sweep = sweep(&tiny_cfg(), &[2], &[0.0, 0.02], 4, 7, false);
        assert_eq!(sweep.cells.len(), 2);
        assert!(all_recovered(&sweep), "{}", render(&sweep));
        // the zero-rate cell must not have healed anything
        assert_eq!(sweep.cells[0].recovery.faults_injected, 0);
    }

    #[test]
    fn sweep_json_artifact_is_complete() {
        let sweep = sweep(&tiny_cfg(), &[2], &[0.01], 4, 7, true);
        let json = to_json(&sweep);
        for key in ["schema", "cells", "survived", "bitwise", "overhead", "recovery", "rollbacks", "flight_dumps"] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(sweep.schema, CHAOS_SCHEMA);
        assert!(sweep.cells[0].crashed);
    }

    #[test]
    fn crashing_sweep_collects_and_writes_flight_dumps() {
        let sweep = sweep(&tiny_cfg(), &[2], &[0.0], 4, 7, true);
        assert!(
            sweep.flight_dumps.iter().any(|d| d.reason == "rank-crash"),
            "a crashed cell must surface its rank-crash dump"
        );
        let dir = std::env::temp_dir().join(format!("ns-chaos-flight-{}", std::process::id()));
        let dir = dir.to_str().unwrap().to_string();
        let paths = write_flight_dumps(&sweep, &dir).unwrap();
        // crash spec kills rank p/2 = 1
        assert!(paths.iter().any(|p| p.ends_with("FLIGHT_1.json")), "{paths:?}");
        for p in &paths {
            let dump = FlightDump::from_json(&std::fs::read_to_string(p).unwrap()).unwrap();
            assert!(!dump.events.is_empty());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cell_plans_differ_across_cells() {
        let a = cell_plan(7, 0.01, 2, 8, false);
        let b = cell_plan(7, 0.01, 4, 8, false);
        let c = cell_plan(7, 0.02, 2, 8, false);
        assert_ne!(a.seed, b.seed);
        assert_ne!(a.seed, c.seed);
    }
}
