//! Figure 1: axial momentum in the excited axisymmetric jet.
//!
//! The paper's Figure 1 is a contour plot of `rho u` after 16,000 steps on
//! the 250x100 grid. The full run is reproducible here (see the
//! `excited_jet` example); this module provides a scaled-down default that
//! finishes in seconds and the rendering used by both.

use crate::contour;
use ns_core::config::{Regime, SolverConfig};
use ns_core::diag;
use ns_core::driver::Solver;
use ns_numerics::{Array2, Grid};

/// Result of a jet flow computation.
pub struct JetFlow {
    /// The axial momentum plane `rho u`.
    pub momentum: Array2,
    /// Steps taken.
    pub steps: u64,
    /// Physical end time.
    pub t_end: f64,
    /// Max Mach number at the end (health indicator).
    pub max_mach: f64,
}

/// Run the excited jet and return the momentum plane.
///
/// `grid` and `steps` control cost: `(Grid::paper(), 16000)` is the paper's
/// exact Figure 1 configuration; `(Grid::new(125, 50, 50.0, 5.0), 2000)` is
/// a quick look. A little fourth-difference smoothing of the fluctuation
/// about the base flow keeps the long strongly excited run stable
/// (documented substitution — the paper's scheme has none); `eps = 0.001`
/// is validated on the full paper configuration, and the smoother is only
/// stable for `eps` up to a few 1e-3 (see `ns_core::dissipation`).
pub fn excited_jet(grid: Grid, steps: u64, regime: Regime, dissipation: f64) -> JetFlow {
    let mut cfg = SolverConfig::paper(grid, regime);
    cfg.dissipation = dissipation;
    let mut solver = Solver::new(cfg);
    solver.run(steps);
    let gas = *solver.gas();
    JetFlow {
        momentum: diag::axial_momentum(&solver.field, &gas),
        steps,
        t_end: solver.t,
        max_mach: diag::max_mach(&solver.field, &gas),
    }
}

impl JetFlow {
    /// Render the Figure 1 style contour plot as ASCII.
    pub fn render_ascii(&self, width: usize, height: usize) -> String {
        let mut out =
            format!("Figure 1: X MOMENTUM, excited axisymmetric jet ({} steps, t = {:.1})\n", self.steps, self.t_end);
        out.push_str(&contour::ascii(&self.momentum, width, height));
        out
    }

    /// Export the plane as a PGM image.
    pub fn render_pgm(&self) -> Vec<u8> {
        contour::pgm(&self.momentum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_jet_is_healthy_and_jetlike() {
        let grid = Grid::new(60, 24, 50.0, 5.0);
        let flow = excited_jet(grid, 120, Regime::Euler, 0.002);
        assert!(flow.max_mach.is_finite());
        assert!(flow.max_mach < 3.0, "no blow-up: {}", flow.max_mach);
        // the jet core carries much more momentum than the coflow
        let core = flow.momentum[(30, 0)];
        let ambient = flow.momentum[(30, 22)];
        assert!(core > 1.8 * ambient, "core {core} vs ambient {ambient}");
    }

    #[test]
    fn render_produces_plot_and_image() {
        let grid = Grid::new(40, 16, 50.0, 5.0);
        let flow = excited_jet(grid, 40, Regime::Euler, 0.002);
        let a = flow.render_ascii(60, 12);
        assert!(a.contains("X MOMENTUM"));
        assert!(a.contains("range:"));
        let p = flow.render_pgm();
        assert!(p.starts_with(b"P5"));
    }
}
