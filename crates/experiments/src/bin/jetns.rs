//! `jetns` — command-line front end to the reproduction.
//!
//! ```text
//! jetns run        [--steps N] [--nx N] [--nr N] [--euler] [--eps E]   run the jet, print contour
//!                  [--cadence N] [--summary FILE]                      …with health sampling
//! jetns telemetry  [--ranks P] [--steps N] [--cadence N] [--out DIR]   instrumented parallel run:
//!                                                                      phase table, Gantt, traces
//! jetns figures    [--only NAME]                                       regenerate all tables/figures
//! jetns platforms                                                      Figures 9/10/13
//! jetns extensions                                                     future-work studies
//! jetns speedup    [--steps N]                                         host wall-clock scaling
//! jetns checkpoint --out FILE [--steps N]                              run and write a restart file
//! jetns resume     --from FILE [--steps N]                             continue from a restart file
//! jetns bench-report [--file PATH]                                     render the measured V1→V7
//!                                                                      MFLOPS ladder (Figure 2
//!                                                                      analogue) from BENCH_kernels.json
//! jetns bench-compare --candidate FILE [--baseline FILE]               bench regression gate:
//!                  [--tolerance X]                                     fresh medians vs committed
//!                                                                      BENCH_kernels.json
//! jetns scaling-sweep [--quick] [--out FILE]                           simulate the 2-D pencil
//!                                                                      strong-scaling sweep, write
//!                                                                      BENCH_scaling.json
//! jetns scaling-report [--file PATH]                                   render the committed sweep as
//!                                                                      per-platform tables
//! jetns chaos      [--steps N] [--nx N] [--nr N] [--seed S]            fault-injection sweep:
//!                  [--rates R1,R2,..] [--procs P1,P2,..] [--no-crash]  survival/overhead table,
//!                  [--json FILE] [--flight-dir DIR]                    bitwise-recovery check,
//!                                                                      FLIGHT_<rank>.json dumps
//! jetns verify     [--quick] [--bless] [--json FILE]                   correctness gate: MMS order
//!                  [--golden FILE]                                     sweeps, conservation ledgers,
//!                                                                      differential oracle, goldens
//! jetns serve      --jobs FILE [--workers N] [--depth N]               run a JSON job list through
//!                  [--golden FILE] [--out FILE]                        the sharded batch service
//! jetns loadgen    [--quick] [--workers N] [--depth N] [--out FILE]   replay the sweep through the
//!                  [--socket-mode]                                     service; report p50/p99,
//!                                                                      throughput, cache hit rate
//! jetns served     --state DIR [--socket PATH] [--workers N]           crash-durable daemon: WAL-
//!                  [--depth N] [--no-sync] [--golden FILE]             journaled jobs, spill-backed
//!                                                                      cache, SIGTERM graceful drain
//! jetns submit     --socket PATH (--jobs FILE [--wait] [--out FILE]    submit a JSON job list to a
//!                  | --status | --drain)                               running daemon over its socket
//! jetns metrics    [--ranks P] [--steps N] [--nx N] [--nr N]           short instrumented run, then
//!                  [--prom FILE] [--json FILE]                         the live registry window in
//!                                                                      Prometheus text / JSON
//! ```

use ns_core::checkpoint::Checkpoint;
use ns_core::config::{Regime, SolverConfig};
use ns_core::{diag, Solver};
use ns_experiments::{bench_report, contour, extensions, fig_platforms, report, speedup};
use ns_numerics::Grid;
use ns_runtime::{run_parallel_instrumented, CommVersion, TelemetryOptions};
use ns_telemetry::{to_chrome_trace, to_jsonl, HealthConfig, HealthMonitor};
use std::collections::BTreeMap;
use std::process::ExitCode;

struct Args {
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String]) -> Self {
        let mut flags = Vec::new();
        let mut k = 0;
        while k < raw.len() {
            if let Some(name) = raw[k].strip_prefix("--") {
                let value = raw.get(k + 1).filter(|v| !v.starts_with("--")).cloned();
                if value.is_some() {
                    k += 1;
                }
                flags.push((name.to_string(), value));
            }
            k += 1;
        }
        Self { flags }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags.iter().find(|(n, _)| n == name).and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.get(name).and_then(|v| v.parse().ok()).unwrap_or(default)
    }
}

/// Write a file with a contextual error instead of a bare panic; every
/// artifact the CLI produces goes through here so a full disk or a bad
/// path is a clean nonzero exit, not an unwrap backtrace.
fn write_file(path: &str, content: impl AsRef<[u8]>) -> Result<(), String> {
    std::fs::write(path, content).map_err(|e| format!("cannot write {path}: {e}"))
}

fn config(args: &Args) -> SolverConfig {
    let nx = args.num("nx", 125usize).max(8);
    let nr = args.num("nr", 50usize).max(8);
    let regime = if args.has("euler") { Regime::Euler } else { Regime::NavierStokes };
    let mut cfg = SolverConfig::paper(Grid::new(nx, nr, 50.0, 5.0), regime);
    cfg.dissipation = args.num("eps", 0.002f64);
    cfg
}

fn cmd_run(args: &Args) -> ExitCode {
    let cfg = config(args);
    let steps = args.num("steps", 500u64);
    println!("running {} on {}x{} for {steps} steps…", cfg.regime.name(), cfg.grid.nx, cfg.grid.nr);
    let mut s = Solver::new(cfg);
    s.enable_phase_timing();
    let health = HealthConfig { cadence: args.num("cadence", 50u64), ..HealthConfig::default() };
    let mut mon = HealthMonitor::new(health);
    let gas = *s.gas();
    let mut ledger = diag::ConservationLedger::open(&s.field, &gas);
    let metrics_before = ns_metrics::Registry::global().snapshot();
    let t0 = std::time::Instant::now();
    let mut taken = 0;
    let aborted_at_start = mon.due(s.nstep) && !mon.observe(s.health_sample());
    if !aborted_at_start {
        for _ in 0..steps {
            s.step();
            ledger.record(&s.field, &gas, s.dt());
            taken += 1;
            if mon.due(s.nstep) && !mon.observe(s.health_sample()) {
                break;
            }
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    println!(
        "t = {:.2}, healthy = {}, max Mach = {:.2} ({} health samples)",
        s.t,
        s.healthy(),
        diag::max_mach(&s.field, &gas),
        mon.samples.len()
    );
    if let Some(reason) = &mon.abort {
        eprintln!("early abort after {taken} steps: {reason}");
    }
    print!("{}", contour::ascii(&diag::axial_momentum(&s.field, &gas), 100, 20));
    if let Some(path) = args.get("summary") {
        let mut summary = serial_summary(&s, &mon, steps, taken, wall);
        summary.conservation = Some(ledger.close(&s.field).to_summary());
        let window = ns_metrics::Registry::global().snapshot().diff(&metrics_before);
        let metrics = ns_metrics::MetricsSummary::from_snapshot(&window);
        summary.metrics = (!metrics.is_empty()).then_some(metrics);
        if let Err(e) = write_file(path, summary.to_json()) {
            eprintln!("jetns run: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if s.healthy() && mon.abort.is_none() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Machine-readable summary of a serial (single-rank) run.
fn serial_summary(s: &Solver, mon: &HealthMonitor, requested: u64, taken: u64, wall: f64) -> ns_telemetry::RunSummary {
    let cfg = &s.cfg;
    let mut summary = ns_telemetry::RunSummary {
        schema_version: ns_telemetry::RUN_SUMMARY_SCHEMA,
        case: "jet-serial".to_string(),
        regime: match cfg.regime {
            Regime::Euler => "euler".to_string(),
            Regime::NavierStokes => "navier-stokes".to_string(),
        },
        nx: cfg.grid.nx,
        nr: cfg.grid.nr,
        ranks: 1,
        steps_requested: requested,
        steps_taken: taken,
        wall_seconds: wall,
        aborted: mon.abort.clone(),
        phase_seconds: BTreeMap::new(),
        comm: ns_telemetry::CommTotals::default(),
        recovery: None,
        conservation: None,
        serve: None,
        metrics: None,
        health: mon.samples.clone(),
    };
    summary.set_phases(s.phase_ledger());
    summary
}

fn cmd_telemetry(args: &Args) -> ExitCode {
    let ranks = args.num("ranks", 4usize).max(2);
    let steps = args.num("steps", 100u64);
    let outdir = args.get("out").unwrap_or("telemetry-out").to_string();
    let mut cfg = config(args);
    cfg.dissipation = 0.0; // artificial smoothing is serial-only; the parallel driver asserts this
    let health = HealthConfig { cadence: args.num("cadence", 10u64), ..HealthConfig::default() };
    println!(
        "instrumented {} run: {} ranks, {steps} steps, health cadence {}…",
        cfg.regime.name(),
        ranks,
        health.cadence
    );
    let opts = TelemetryOptions { phases: true, trace: true, health: Some(health), ..Default::default() };
    let run = run_parallel_instrumented(&cfg, ranks, steps, CommVersion::V5, opts);

    // per-rank phase breakdown next to a simulated reference column that
    // uses the exact same label vocabulary
    let owned = |m: BTreeMap<&'static str, f64>| -> BTreeMap<String, f64> {
        m.into_iter().map(|(k, v)| (k.to_string(), v)).collect()
    };
    let mut columns: Vec<(String, BTreeMap<String, f64>)> =
        (0..ranks).map(|r| (format!("rank {r}"), owned(run.rank_phase_seconds(r)))).collect();
    let mut scfg = ns_archsim::SimConfig::paper(ns_archsim::Platform::lace560_allnode_s(), ranks, cfg.regime);
    scfg.grid = cfg.grid.clone();
    scfg.report_steps = run.steps_taken().max(1);
    scfg.sim_steps = scfg.report_steps.min(4);
    columns.push(("LACE sim (ref)".to_string(), owned(ns_archsim::simulate(&scfg).phase_seconds)));
    println!("{}", report::phase_breakdown("Per-rank phase breakdown, live vs simulated LACE Allnode-S", &columns));

    let trace = run.merged_trace();
    print!("{}", report::gantt(&trace, ranks, 100));

    if let Err(e) = std::fs::create_dir_all(&outdir) {
        eprintln!("cannot create {outdir}: {e}");
        return ExitCode::FAILURE;
    }
    let mut summary = run.summary("jet-parallel");
    summary.case = format!("jet-parallel-p{ranks}");
    let writes = [
        ("trace.jsonl", to_jsonl(&trace)),
        ("trace_chrome.json", to_chrome_trace(&trace)),
        ("run_summary.json", summary.to_json()),
    ];
    for (name, content) in writes {
        let path = format!("{outdir}/{name}");
        if let Err(e) = write_file(&path, content) {
            eprintln!("jetns telemetry: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("\nwrote {outdir}/trace.jsonl, {outdir}/trace_chrome.json, {outdir}/run_summary.json");
    if let Some(reason) = run.aborted() {
        eprintln!("run aborted early: {reason}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_figures(args: &Args) -> ExitCode {
    let only = args.get("only");
    for r in ns_experiments::all_reports() {
        if only.is_none_or(|f| r.title.to_lowercase().contains(&f.to_lowercase())) {
            println!("{}", r.render());
        }
    }
    ExitCode::SUCCESS
}

fn cmd_platforms() -> ExitCode {
    for regime in [Regime::NavierStokes, Regime::Euler] {
        println!("{}", fig_platforms::fig9_10(regime).render());
    }
    println!("{}", fig_platforms::fig13().table());
    ExitCode::SUCCESS
}

fn cmd_extensions() -> ExitCode {
    for regime in [Regime::NavierStokes, Regime::Euler] {
        println!("{}", extensions::decomposition_ablation(regime).table());
    }
    println!("{}", extensions::extended_scaling(Regime::NavierStokes).render());
    println!("{}", extensions::weak_scaling(Regime::NavierStokes).table());
    println!(
        "{}",
        extensions::phase_profile(ns_archsim::Platform::lace560_allnode_s(), Regime::NavierStokes, &[1, 4, 16]).table()
    );
    ExitCode::SUCCESS
}

fn cmd_speedup(args: &Args) -> ExitCode {
    let steps = args.num("steps", 40u64);
    let grid = Grid::new(200, 80, 50.0, 5.0);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let counts: Vec<usize> = [2usize, 4, 8].into_iter().filter(|&p| p <= cores.max(2)).collect();
    println!("{}", speedup::message_passing_speedup(grid.clone(), steps, &counts, Regime::NavierStokes).table());
    println!("{}", speedup::shared_memory_speedup(grid, steps, &counts, Regime::NavierStokes).table());
    ExitCode::SUCCESS
}

fn cmd_checkpoint(args: &Args) -> ExitCode {
    let Some(path) = args.get("out") else {
        eprintln!("checkpoint requires --out FILE");
        return ExitCode::FAILURE;
    };
    let cfg = config(args);
    let steps = args.num("steps", 200u64);
    let mut s = Solver::new(cfg);
    s.run(steps);
    match Checkpoint::capture(&s).to_bytes() {
        Ok(bytes) => {
            if let Err(e) = write_file(path, &bytes) {
                eprintln!("jetns checkpoint: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {path}: {} bytes at t = {:.3}, step {}", bytes.len(), s.t, s.nstep);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serialization failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_resume(args: &Args) -> ExitCode {
    let Some(path) = args.get("from") else {
        eprintln!("resume requires --from FILE");
        return ExitCode::FAILURE;
    };
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut s = match Checkpoint::from_bytes(&bytes) {
        Ok(cp) => cp.restore(),
        Err(e) => {
            eprintln!("bad checkpoint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let steps = args.num("steps", 200u64);
    println!("resumed at t = {:.3}, step {}; running {steps} more…", s.t, s.nstep);
    s.run(steps);
    let gas = *s.gas();
    println!("now t = {:.3}, healthy = {}, max Mach = {:.2}", s.t, s.healthy(), diag::max_mach(&s.field, &gas));
    ExitCode::SUCCESS
}

fn cmd_bench_report(args: &Args) -> ExitCode {
    let path = args.get("file").unwrap_or("BENCH_kernels.json");
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("jetns: cannot read {path}: {e} (run `cargo bench -p ns-bench` to produce it)");
            return ExitCode::FAILURE;
        }
    };
    match bench_report::parse(&text) {
        Ok(data) => {
            print!("{}", bench_report::render(&data));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("jetns: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_scaling_sweep(args: &Args) -> ExitCode {
    let quick = args.has("quick");
    let out = args.get("out").unwrap_or("BENCH_scaling.json");
    println!("simulating the pencil strong-scaling sweep{}…", if quick { " (quick: P=32)" } else { "" });
    let data = ns_experiments::scaling::sweep(quick);
    let json = match serde_json::to_string_pretty(&data) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("jetns: cannot serialize sweep: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = write_file(out, json + "\n") {
        eprintln!("jetns: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {} cells to {out}", data.cells.len());
    print!("{}", ns_experiments::scaling::render(&data));
    ExitCode::SUCCESS
}

fn cmd_scaling_report(args: &Args) -> ExitCode {
    let path = args.get("file").unwrap_or("BENCH_scaling.json");
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("jetns: cannot read {path}: {e} (run `jetns scaling-sweep` to produce it)");
            return ExitCode::FAILURE;
        }
    };
    match ns_experiments::scaling::parse(&text) {
        Ok(data) => {
            print!("{}", ns_experiments::scaling::render(&data));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("jetns: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_chaos(args: &Args) -> ExitCode {
    let nx = args.num("nx", 48usize).max(16);
    let nr = args.num("nr", 16usize).max(8);
    let steps = args.num("steps", 8u64).max(2);
    let seed = args.num("seed", 1995u64);
    let parse_list = |name: &str, default: &str| -> Vec<String> {
        args.get(name).unwrap_or(default).split(',').map(str::to_string).collect()
    };
    let procs: Vec<usize> = parse_list("procs", "2,4").iter().filter_map(|v| v.parse().ok()).collect();
    let rates: Vec<f64> = parse_list("rates", "0,0.01,0.05").iter().filter_map(|v| v.parse().ok()).collect();
    if procs.is_empty() || rates.is_empty() {
        eprintln!("jetns chaos: --procs and --rates must be comma-separated numbers");
        return ExitCode::FAILURE;
    }
    // the distributed protocol has no smoothing halo, and recovery needs
    // the bitwise-reproducible path, so dissipation stays off here
    let mut cfg = SolverConfig::paper(Grid::new(nx, nr, 20.0, 4.0), Regime::NavierStokes);
    cfg.dissipation = 0.0;
    if let Some(&p) = procs.iter().max() {
        if nx / p < 4 {
            eprintln!("jetns chaos: {nx} columns cannot feed {p} ranks (need >= 4 each)");
            return ExitCode::FAILURE;
        }
    }
    let crash = !args.has("no-crash");
    println!("chaos sweep: {nx}x{nr}, {steps} steps, procs {procs:?}, rates {rates:?}, crash {crash}, seed {seed}…");
    let sweep = ns_experiments::chaos::sweep(&cfg, &procs, &rates, steps, seed, crash);
    print!("{}", ns_experiments::chaos::render(&sweep));
    if let Some(path) = args.get("json") {
        if let Err(e) = write_file(path, ns_experiments::chaos::to_json(&sweep)) {
            eprintln!("jetns chaos: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if let Some(dir) = args.get("flight-dir") {
        match ns_experiments::chaos::write_flight_dumps(&sweep, dir) {
            Ok(paths) => println!("wrote {} flight dump(s) to {dir}/", paths.len()),
            Err(e) => {
                eprintln!("jetns chaos: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if ns_experiments::chaos::all_recovered(&sweep) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_verify(args: &Args) -> ExitCode {
    let quick = args.has("quick");
    let golden_path = args.get("golden").unwrap_or("GOLDEN_verify.json").to_string();
    println!("verification suite ({} mode)…", if quick { "quick" } else { "full" });
    let mut report = ns_verify::run(&ns_verify::VerifyConfig { quick });

    // the oracle's reference snapshots become (or are checked against) the
    // committed golden file
    let current = ns_verify::snapshot::GoldenFile {
        schema: ns_verify::snapshot::SCHEMA,
        grid: [report.oracle.grid[0], report.oracle.grid[1]],
        steps: report.oracle.steps,
        entries: report.oracle.snapshots.clone(),
    };
    if args.has("bless") {
        if let Err(e) = current.save(&golden_path) {
            eprintln!("jetns verify: {e}");
            return ExitCode::FAILURE;
        }
        println!("blessed {golden_path} ({} snapshots)", current.entries.len());
    } else {
        match ns_verify::snapshot::GoldenFile::load(&golden_path) {
            Ok(golden) => report.golden = Some(golden.diff(&current)),
            Err(e) => eprintln!("jetns verify: no golden comparison: {e} (run --bless to create it)"),
        }
    }

    print!("{}", report.render());
    if let Some(path) = args.get("json") {
        if let Err(e) = write_file(path, report.to_json()) {
            eprintln!("jetns verify: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if report.pass() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Load a golden file when asked for (or silently probe the default path):
/// cold results whose shape the differential oracle covers are
/// cross-checked against its FNV field fingerprints.
fn serve_golden(args: &Args) -> Option<ns_verify::snapshot::GoldenFile> {
    match args.get("golden") {
        Some(path) => match ns_verify::snapshot::GoldenFile::load(path) {
            Ok(g) => Some(g),
            Err(e) => {
                eprintln!("jetns serve: {e}; running without golden cross-checks");
                None
            }
        },
        None => ns_verify::snapshot::GoldenFile::load("GOLDEN_verify.json").ok(),
    }
}

fn cmd_serve(args: &Args) -> ExitCode {
    use ns_serve::{JobDesc, Outcome, Server, ServerConfig, SubmitError};
    let Some(jobs_path) = args.get("jobs") else {
        eprintln!("jetns serve requires --jobs FILE (a JSON array of job descriptions)");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(jobs_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("jetns serve: cannot read {jobs_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let descs: Vec<JobDesc> = match serde_json::from_str(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("jetns serve: bad job list {jobs_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = ServerConfig {
        workers: args.num("workers", 2usize).max(1),
        queue_depth: args.num("depth", 32usize).max(1),
        golden: serve_golden(args),
        ..Default::default()
    };
    println!("serving {} jobs on {} workers (queue depth {})…", descs.len(), cfg.workers, cfg.queue_depth);
    let (server, rx) = Server::new(cfg);
    let mut expected = 0u64;
    for (i, desc) in descs.iter().enumerate() {
        let spec = match desc.to_spec() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("jetns serve: job {i} is invalid: {e}");
                return ExitCode::FAILURE;
            }
        };
        loop {
            match server.submit(spec.clone()) {
                Ok(_) => {
                    expected += 1;
                    break;
                }
                Err(SubmitError::Busy { retry_after, .. }) => {
                    // a CLI batch has nowhere to go: honour our own hint
                    std::thread::sleep(retry_after);
                }
                Err(e) => {
                    eprintln!("jetns serve: job {i} rejected: {e:?}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    let mut payloads = Vec::new();
    let mut failed = 0u64;
    for _ in 0..expected {
        match rx.recv() {
            Ok(Outcome::Done(r)) => {
                let golden = match r.run.golden {
                    Some(true) => ", golden ok",
                    Some(false) => ", GOLDEN MISMATCH",
                    None => "",
                };
                println!(
                    "done {:<28} [{}] queue {:.1} ms, run {:.1} ms{golden}",
                    r.label,
                    if r.cache_hit { "cache" } else { "cold " },
                    r.queue_wait.as_secs_f64() * 1e3,
                    r.run_wall.as_secs_f64() * 1e3,
                );
                payloads.push(r);
            }
            Ok(Outcome::Shed { label, .. }) => {
                // queue sized by --depth; a shed batch job simply reports
                eprintln!("shed {label} (outranked under a full queue)");
            }
            Ok(Outcome::Failed { label, error, .. }) => {
                eprintln!("FAILED {label}: {error}");
                failed += 1;
            }
            Err(_) => break,
        }
    }
    let stats = server.finish();
    println!(
        "served {} ({} cold, {} cache hits), {} failed, {} golden checks ({} mismatched)",
        stats.completed,
        stats.cache_misses,
        stats.cache_hits,
        stats.failed,
        stats.golden_checked,
        stats.golden_mismatches
    );
    if let Some(path) = args.get("out") {
        // the out file is a JSON array of the jobs' RunSummary payloads
        // (each already carries its serve block), spliced verbatim so a
        // cache hit is byte-identical to its cold twin
        let mut body = String::from("[\n");
        for (i, r) in payloads.iter().enumerate() {
            body.push_str(&r.run.payload);
            if i + 1 < payloads.len() {
                body.push(',');
            }
            body.push('\n');
        }
        body.push_str("]\n");
        if let Err(e) = write_file(path, body) {
            eprintln!("jetns serve: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if failed == 0 && stats.golden_mismatches == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_loadgen(args: &Args) -> ExitCode {
    let opts = ns_serve::LoadgenOptions {
        quick: args.has("quick"),
        workers: args.num("workers", 2usize).max(1),
        queue_depth: args.num("depth", 64usize).max(16),
    };
    let socket_mode = args.has("socket-mode");
    println!(
        "loadgen: {} sweep on {} workers (queue depth {}, {})…",
        if opts.quick { "quick" } else { "full" },
        opts.workers,
        opts.queue_depth,
        if socket_mode { "socket mode" } else { "in-process" },
    );
    let report = if socket_mode {
        match ns_serve::run_loadgen_socket(&opts, &std::env::temp_dir()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("jetns loadgen: socket mode failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        ns_serve::run_loadgen(&opts)
    };
    print!("{}", ns_experiments::serve_report::render(&report));
    let path = args.get("out").unwrap_or("SERVE_loadgen.json");
    if let Err(e) = write_file(path, report.to_json()) {
        eprintln!("jetns loadgen: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");
    if report.pass() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_served(args: &Args) -> ExitCode {
    use ns_serve::daemon::term;
    use ns_serve::{Daemon, DaemonConfig};
    let Some(state_dir) = args.get("state") else {
        eprintln!("jetns served requires --state DIR (journal, spill and socket live there)");
        return ExitCode::FAILURE;
    };
    let mut cfg = DaemonConfig::new(state_dir);
    cfg.workers = args.num("workers", 2usize).max(1);
    cfg.queue_depth = args.num("depth", 32usize).max(1);
    cfg.sync = !args.has("no-sync");
    cfg.golden = serve_golden(args);
    if let Some(socket) = args.get("socket") {
        cfg.socket = Some(socket.into());
    }
    term::install_term_handler();
    let daemon = match Daemon::start(cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("jetns served: cannot start: {e}");
            return ExitCode::FAILURE;
        }
    };
    let replay = daemon.replay();
    println!(
        "served: listening on {} ({} journal records replayed, {} jobs re-enqueued)",
        daemon.socket_path().display(),
        replay.records,
        replay.pending.len(),
    );
    // run until SIGTERM/SIGINT or a client Drain request, then drain
    while !term::term_requested() && !daemon.drain_requested() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    println!("served: drain requested, finishing {} in-flight job(s)…", daemon.inflight());
    match daemon.drain() {
        Ok(report) => {
            println!(
                "served: drained clean — {} completed ({} cache hits), {} failed, {} journal records, {} spilled results",
                report.stats.completed,
                report.stats.cache_hits,
                report.stats.failed,
                report.wal_records,
                report.spilled,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("jetns served: drain failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_submit(args: &Args) -> ExitCode {
    use ns_serve::{Client, JobDesc, Response};
    let Some(socket) = args.get("socket") else {
        eprintln!("jetns submit requires --socket PATH (a running `jetns served`)");
        return ExitCode::FAILURE;
    };
    let mut client = match Client::connect(socket) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("jetns submit: cannot connect to {socket}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.has("status") {
        return match client.status() {
            Ok(s) => {
                println!(
                    "daemon: {} queued, {} in flight, {} journal records{}{}\n\
                     stats: {} completed, {} cache hits, {} cold, {} failed, {} expired, {} shed",
                    s.queue_len,
                    s.inflight,
                    s.wal_records,
                    if s.draining { ", DRAINING" } else { "" },
                    if s.brownout { ", BROWNOUT" } else { "" },
                    s.stats.completed,
                    s.stats.cache_hits,
                    s.stats.cache_misses,
                    s.stats.failed,
                    s.stats.expired,
                    s.stats.shed,
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("jetns submit: status failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.has("drain") {
        return match client.drain() {
            Ok(_) => {
                println!("drain requested");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("jetns submit: drain failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let Some(jobs_path) = args.get("jobs") else {
        eprintln!("jetns submit requires --jobs FILE (or --status / --drain)");
        return ExitCode::FAILURE;
    };
    let descs: Vec<JobDesc> = match std::fs::read_to_string(jobs_path)
        .map_err(|e| format!("cannot read {jobs_path}: {e}"))
        .and_then(|t| serde_json::from_str(&t).map_err(|e| format!("bad job list {jobs_path}: {e}")))
    {
        Ok(d) => d,
        Err(e) => {
            eprintln!("jetns submit: {e}");
            return ExitCode::FAILURE;
        }
    };
    let budget = std::time::Duration::from_secs(args.num("retry-budget-secs", 600u64));
    let mut keys = Vec::new();
    let mut payloads = Vec::new();
    let mut failed = 0u64;
    for (i, desc) in descs.iter().enumerate() {
        match client.submit_with_retry(desc, budget) {
            Ok(Response::Admitted { key, .. }) => {
                println!("admitted job {i} as {key}");
                keys.push(key);
            }
            Ok(Response::Done { key, payload, cache, .. }) => {
                println!("done     job {i} as {key} [{cache}]");
                payloads.push(payload);
            }
            Ok(Response::Busy { retry_after_ms, brownout }) => {
                eprintln!(
                    "jetns submit: job {i} still rejected after the retry budget \
                     (retry-after {retry_after_ms} ms{})",
                    if brownout { ", brownout" } else { "" }
                );
                failed += 1;
            }
            Ok(other) => {
                eprintln!("jetns submit: job {i} rejected: {other:?}");
                failed += 1;
            }
            Err(e) => {
                eprintln!("jetns submit: job {i}: connection failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if args.has("wait") {
        let timeout = std::time::Duration::from_secs(args.num("timeout-secs", 600u64));
        for key in &keys {
            match client.wait(key, timeout) {
                Ok(Response::Done { key, cache, queue_ms, run_ms, payload, .. }) => {
                    println!("done     {key} [{cache}] queue {queue_ms:.1} ms, run {run_ms:.1} ms");
                    payloads.push(payload);
                }
                Ok(Response::Failed { key, error }) => {
                    eprintln!("FAILED {key}: {error}");
                    failed += 1;
                }
                Ok(other) => {
                    eprintln!("jetns submit: wait on {key}: {other:?}");
                    failed += 1;
                }
                Err(e) => {
                    eprintln!("jetns submit: wait on {key}: connection failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Some(path) = args.get("out") {
            // same artifact shape as `jetns serve --out`: a JSON array of
            // the jobs' RunSummary payloads, spliced verbatim
            let mut body = String::from("[\n");
            for (i, p) in payloads.iter().enumerate() {
                body.push_str(p);
                if i + 1 < payloads.len() {
                    body.push(',');
                }
                body.push('\n');
            }
            body.push_str("]\n");
            if let Err(e) = write_file(path, body) {
                eprintln!("jetns submit: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {path}");
        }
    }
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Run a short instrumented workload and expose the live registry: every
/// subsystem the tentpole instruments (comm, driver, recovery) feeds the
/// process-global registry, so a fresh CLI process must generate traffic
/// before there is anything to report.
fn cmd_metrics(args: &Args) -> ExitCode {
    let ranks = args.num("ranks", 2usize).max(2);
    let steps = args.num("steps", 8u64).max(1);
    let mut cfg = SolverConfig::paper(
        Grid::new(args.num("nx", 48usize).max(16), args.num("nr", 16usize).max(8), 20.0, 4.0),
        Regime::Euler,
    );
    cfg.dissipation = 0.0;
    println!("metrics probe: {} ranks, {steps} steps on {}x{}…", ranks, cfg.grid.nx, cfg.grid.nr);
    let before = ns_metrics::Registry::global().snapshot();
    let run = run_parallel_instrumented(&cfg, ranks, steps, CommVersion::V7, TelemetryOptions::default());
    if let Some(reason) = run.aborted() {
        eprintln!("jetns metrics: probe run aborted: {reason}");
        return ExitCode::FAILURE;
    }
    let window = ns_metrics::Registry::global().snapshot().diff(&before);
    print!("{}", window.to_prometheus());
    if let Some(path) = args.get("prom") {
        if let Err(e) = write_file(path, window.to_prometheus()) {
            eprintln!("jetns metrics: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if let Some(path) = args.get("json") {
        if let Err(e) = write_file(path, window.to_json()) {
            eprintln!("jetns metrics: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}

/// The bench regression gate: compare a (typically quick-mode) candidate
/// MedianBench file against the committed full-mode baseline.
fn cmd_bench_compare(args: &Args) -> ExitCode {
    let Some(candidate_path) = args.get("candidate") else {
        eprintln!("bench-compare requires --candidate FILE (a fresh BENCH_kernels.json)");
        return ExitCode::FAILURE;
    };
    let baseline_path = args.get("baseline").unwrap_or("BENCH_kernels.json");
    let tolerance = args.num("tolerance", 3.0f64).max(1.0);
    let load = |path: &str| -> Result<bench_report::BenchData, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        bench_report::parse(&text)
    };
    let (baseline, candidate) = match (load(baseline_path), load(candidate_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for e in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("jetns bench-compare: {e}");
            }
            return ExitCode::FAILURE;
        }
    };
    let cmp = bench_report::compare(&baseline, &candidate, tolerance);
    print!("{}", bench_report::render_compare(&cmp));
    if cmp.pass() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: jetns <run|telemetry|figures|platforms|extensions|speedup|checkpoint|resume|bench-report|bench-compare|chaos|verify|serve|served|submit|loadgen|metrics> [flags]\n\
         see the module docs in crates/experiments/src/bin/jetns.rs"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first().cloned() else {
        return usage();
    };
    let args = Args::parse(&raw[1..]);
    match cmd.as_str() {
        "run" => cmd_run(&args),
        "telemetry" => cmd_telemetry(&args),
        "figures" => cmd_figures(&args),
        "platforms" => cmd_platforms(),
        "extensions" => cmd_extensions(),
        "speedup" => cmd_speedup(&args),
        "checkpoint" => cmd_checkpoint(&args),
        "resume" => cmd_resume(&args),
        "bench-report" => cmd_bench_report(&args),
        "chaos" => cmd_chaos(&args),
        "verify" => cmd_verify(&args),
        "serve" => cmd_serve(&args),
        "served" => cmd_served(&args),
        "submit" => cmd_submit(&args),
        "loadgen" => cmd_loadgen(&args),
        "metrics" => cmd_metrics(&args),
        "bench-compare" => cmd_bench_compare(&args),
        "scaling-sweep" => cmd_scaling_sweep(&args),
        "scaling-report" => cmd_scaling_report(&args),
        _ => usage(),
    }
}
