//! `jetns` — command-line front end to the reproduction.
//!
//! ```text
//! jetns run        [--steps N] [--nx N] [--nr N] [--euler] [--eps E]   run the jet, print contour
//! jetns figures    [--only NAME]                                       regenerate all tables/figures
//! jetns platforms                                                      Figures 9/10/13
//! jetns extensions                                                     future-work studies
//! jetns speedup    [--steps N]                                         host wall-clock scaling
//! jetns checkpoint --out FILE [--steps N]                              run and write a restart file
//! jetns resume     --from FILE [--steps N]                             continue from a restart file
//! ```

use ns_core::checkpoint::Checkpoint;
use ns_core::config::{Regime, SolverConfig};
use ns_core::{diag, Solver};
use ns_experiments::{contour, extensions, fig_platforms, speedup};
use ns_numerics::Grid;
use std::process::ExitCode;

struct Args {
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String]) -> Self {
        let mut flags = Vec::new();
        let mut k = 0;
        while k < raw.len() {
            if let Some(name) = raw[k].strip_prefix("--") {
                let value = raw.get(k + 1).filter(|v| !v.starts_with("--")).cloned();
                if value.is_some() {
                    k += 1;
                }
                flags.push((name.to_string(), value));
            }
            k += 1;
        }
        Self { flags }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags.iter().find(|(n, _)| n == name).and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.get(name).and_then(|v| v.parse().ok()).unwrap_or(default)
    }
}

fn config(args: &Args) -> SolverConfig {
    let nx = args.num("nx", 125usize).max(8);
    let nr = args.num("nr", 50usize).max(8);
    let regime = if args.has("euler") { Regime::Euler } else { Regime::NavierStokes };
    let mut cfg = SolverConfig::paper(Grid::new(nx, nr, 50.0, 5.0), regime);
    cfg.dissipation = args.num("eps", 0.002f64);
    cfg
}

fn cmd_run(args: &Args) -> ExitCode {
    let cfg = config(args);
    let steps = args.num("steps", 500u64);
    println!("running {} on {}x{} for {steps} steps…", cfg.regime.name(), cfg.grid.nx, cfg.grid.nr);
    let mut s = Solver::new(cfg);
    s.run(steps);
    let gas = *s.gas();
    println!("t = {:.2}, healthy = {}, max Mach = {:.2}", s.t, s.healthy(), diag::max_mach(&s.field, &gas));
    print!("{}", contour::ascii(&diag::axial_momentum(&s.field, &gas), 100, 20));
    if s.healthy() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_figures(args: &Args) -> ExitCode {
    let only = args.get("only");
    for r in ns_experiments::all_reports() {
        if only.is_none_or(|f| r.title.to_lowercase().contains(&f.to_lowercase())) {
            println!("{}", r.render());
        }
    }
    ExitCode::SUCCESS
}

fn cmd_platforms() -> ExitCode {
    for regime in [Regime::NavierStokes, Regime::Euler] {
        println!("{}", fig_platforms::fig9_10(regime).render());
    }
    println!("{}", fig_platforms::fig13().table());
    ExitCode::SUCCESS
}

fn cmd_extensions() -> ExitCode {
    for regime in [Regime::NavierStokes, Regime::Euler] {
        println!("{}", extensions::decomposition_ablation(regime).table());
    }
    println!("{}", extensions::extended_scaling(Regime::NavierStokes).render());
    println!("{}", extensions::weak_scaling(Regime::NavierStokes).table());
    println!(
        "{}",
        extensions::phase_profile(ns_archsim::Platform::lace560_allnode_s(), Regime::NavierStokes, &[1, 4, 16])
            .table()
    );
    ExitCode::SUCCESS
}

fn cmd_speedup(args: &Args) -> ExitCode {
    let steps = args.num("steps", 40u64);
    let grid = Grid::new(200, 80, 50.0, 5.0);
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let counts: Vec<usize> = [2usize, 4, 8].into_iter().filter(|&p| p <= cores.max(2)).collect();
    println!("{}", speedup::message_passing_speedup(grid.clone(), steps, &counts, Regime::NavierStokes).table());
    println!("{}", speedup::shared_memory_speedup(grid, steps, &counts, Regime::NavierStokes).table());
    ExitCode::SUCCESS
}

fn cmd_checkpoint(args: &Args) -> ExitCode {
    let Some(path) = args.get("out") else {
        eprintln!("checkpoint requires --out FILE");
        return ExitCode::FAILURE;
    };
    let cfg = config(args);
    let steps = args.num("steps", 200u64);
    let mut s = Solver::new(cfg);
    s.run(steps);
    match Checkpoint::capture(&s).to_bytes() {
        Ok(bytes) => {
            if let Err(e) = std::fs::write(path, &bytes) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {path}: {} bytes at t = {:.3}, step {}", bytes.len(), s.t, s.nstep);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serialization failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_resume(args: &Args) -> ExitCode {
    let Some(path) = args.get("from") else {
        eprintln!("resume requires --from FILE");
        return ExitCode::FAILURE;
    };
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut s = match Checkpoint::from_bytes(&bytes) {
        Ok(cp) => cp.restore(),
        Err(e) => {
            eprintln!("bad checkpoint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let steps = args.num("steps", 200u64);
    println!("resumed at t = {:.3}, step {}; running {steps} more…", s.t, s.nstep);
    s.run(steps);
    let gas = *s.gas();
    println!("now t = {:.3}, healthy = {}, max Mach = {:.2}", s.t, s.healthy(), diag::max_mach(&s.field, &gas));
    ExitCode::SUCCESS
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: jetns <run|figures|platforms|extensions|speedup|checkpoint|resume> [flags]\n\
         see the module docs in crates/experiments/src/bin/jetns.rs"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first().cloned() else {
        return usage();
    };
    let args = Args::parse(&raw[1..]);
    match cmd.as_str() {
        "run" => cmd_run(&args),
        "figures" => cmd_figures(&args),
        "platforms" => cmd_platforms(),
        "extensions" => cmd_extensions(),
        "speedup" => cmd_speedup(&args),
        "checkpoint" => cmd_checkpoint(&args),
        "resume" => cmd_resume(&args),
        _ => usage(),
    }
}
