//! Tables 1 and 2: application characteristics and
//! computation-to-communication ratios.

use crate::report::{Report, Series};
use ns_archsim::Calibration;
use ns_core::config::{Regime, SolverConfig};
use ns_core::workload;
use ns_numerics::Grid;
use ns_runtime::{run_parallel, CommStats, CommVersion};

/// Paper reference values (Table 1).
pub mod paper {
    /// Total FP operations, Navier-Stokes (x 1e6).
    pub const NS_FLOPS: f64 = 145_000.0e6;
    /// Total FP operations, Euler.
    pub const EULER_FLOPS: f64 = 77_000.0e6;
    /// Start-ups per processor, Navier-Stokes.
    pub const NS_STARTUPS: f64 = 80_000.0;
    /// Start-ups per processor, Euler.
    pub const EULER_STARTUPS: f64 = 60_000.0;
    /// Volume per processor (bytes), Navier-Stokes.
    pub const NS_VOLUME: f64 = 125.0e6;
    /// Volume per processor (bytes), Euler.
    pub const EULER_VOLUME: f64 = 95.0e6;
}

/// Measured application characteristics (our Table 1 row).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AppCharacteristics {
    /// Which application.
    pub regime: Regime,
    /// Canonical FP operations over the full run.
    pub flops_canonical: f64,
    /// Paper-scaled FP operations (canonical x flop_scale; see
    /// `ns_archsim::cpu`).
    pub flops_scaled: f64,
    /// Message start-ups per interior processor over the full run.
    pub startups_per_proc: u64,
    /// Bytes sent per interior processor over the full run.
    pub volume_per_proc: u64,
}

/// Compute the Table 1 characteristics for the paper's configuration
/// (250x100 grid, 5000 steps, 16 processors).
pub fn characteristics(regime: Regime) -> AppCharacteristics {
    let grid = Grid::paper();
    let steps = 5000u64;
    let cal = Calibration::standard();
    let whole = workload::step_workload(regime, &grid, grid.nx);
    let per_proc = workload::step_workload(regime, &grid, grid.nx / 16);
    let flops_canonical = whole.compute_flops() as f64 * steps as f64;
    AppCharacteristics {
        regime,
        flops_canonical,
        flops_scaled: flops_canonical * cal.flop_scale,
        startups_per_proc: per_proc.startups_per_step(2) * steps,
        volume_per_proc: per_proc.bytes_sent_per_step(2) * steps,
    }
}

/// Per-step communication of one *interior* rank, measured from a live
/// `run_parallel` execution on the paper grid (not predicted): the
/// runtime's `CommStats` divided by the step count. Interior-rank per-step
/// traffic is independent of P, so a small `p` keeps this cheap while
/// still exercising the two-neighbour protocol the analytic model counts.
pub fn measured_comm_per_step(regime: Regime, p: usize) -> CommStats {
    let cfg = SolverConfig::paper(Grid::paper(), regime);
    let steps = 2u64;
    let run = run_parallel(&cfg, p, steps, CommVersion::V5);
    let s = run.ranks[p / 2].stats;
    CommStats {
        sends: s.sends / steps,
        recvs: s.recvs / steps,
        bytes_sent: s.bytes_sent / steps,
        bytes_recvd: s.bytes_recvd / steps,
        ..CommStats::default()
    }
}

/// Table 1 report: ours vs the paper, with the communication rows
/// cross-checked by a live run (see [`measured_comm_per_step`]).
pub fn table1() -> Report {
    let mut r = Report::new(
        "Table 1: Application characteristics (250x100, 5000 steps, 16 procs)",
        "app (1=N-S, 2=Euler)",
        "value",
    );
    let ns = characteristics(Regime::NavierStokes);
    let eu = characteristics(Regime::Euler);
    r.series.push(Series::new("FP ops (ours, scaled)", vec![(1.0, ns.flops_scaled), (2.0, eu.flops_scaled)]));
    r.series.push(Series::new("FP ops (paper)", vec![(1.0, paper::NS_FLOPS), (2.0, paper::EULER_FLOPS)]));
    r.series.push(Series::new(
        "startups/proc (ours)",
        vec![(1.0, ns.startups_per_proc as f64), (2.0, eu.startups_per_proc as f64)],
    ));
    r.series.push(Series::new("startups/proc (paper)", vec![(1.0, paper::NS_STARTUPS), (2.0, paper::EULER_STARTUPS)]));
    r.series.push(Series::new(
        "volume/proc MB (ours)",
        vec![(1.0, ns.volume_per_proc as f64 / 1e6), (2.0, eu.volume_per_proc as f64 / 1e6)],
    ));
    r.series.push(Series::new(
        "volume/proc MB (paper)",
        vec![(1.0, paper::NS_VOLUME / 1e6), (2.0, paper::EULER_VOLUME / 1e6)],
    ));
    // live cross-check: per-step CommStats from an actual distributed run,
    // scaled to the paper's 5000 steps
    let live_ns = measured_comm_per_step(Regime::NavierStokes, 4);
    let live_eu = measured_comm_per_step(Regime::Euler, 4);
    r.series.push(Series::new(
        "startups/proc (live run x 5000)",
        vec![(1.0, (live_ns.startups() * 5000) as f64), (2.0, (live_eu.startups() * 5000) as f64)],
    ));
    r.series.push(Series::new(
        "volume/proc MB (live run x 5000)",
        vec![(1.0, (live_ns.bytes_sent * 5000) as f64 / 1e6), (2.0, (live_eu.bytes_sent * 5000) as f64 / 1e6)],
    ));
    r.notes.push(format!(
        "canonical FP ops: N-S {:.1}e9, Euler {:.1}e9; flop_scale {:.3} calibrated from Figure 2 anchors",
        ns.flops_canonical / 1e9,
        eu.flops_canonical / 1e9,
        Calibration::standard().flop_scale
    ));
    r.notes.push("start-ups match the paper exactly (16/step N-S, 12/step Euler); volume runs ~40% above the paper's estimate because our protocol ships full double-precision columns both ways".into());
    r
}

/// Table 2 report: FLOPs per byte and per start-up as a function of P.
/// The communication denominators come from a live run's `CommStats`
/// (scaled to the paper's 5000 steps), not from the analytic model — the
/// two agree exactly, which the unit tests assert.
pub fn table2() -> Report {
    let mut r = Report::new("Table 2: computation-communication ratios", "processors", "ratio");
    let ps = [2usize, 4, 8, 16];
    for (regime, name) in [(Regime::NavierStokes, "Nav-Stokes"), (Regime::Euler, "Euler")] {
        let c = characteristics(regime);
        let live = measured_comm_per_step(regime, 4);
        let volume = (live.bytes_sent * 5000) as f64;
        let startups = (live.startups() * 5000) as f64;
        let mut per_byte = Vec::new();
        let mut per_startup = Vec::new();
        for &p in &ps {
            let flops_per_proc = c.flops_scaled / p as f64;
            per_byte.push((p as f64, flops_per_proc / volume));
            per_startup.push((p as f64, flops_per_proc / startups));
        }
        r.series.push(Series::new(format!("FPs/Byte {name}"), per_byte));
        r.series.push(Series::new(format!("FPs/Start-up {name}"), per_startup));
    }
    // paper's own rows for comparison
    r.series
        .push(Series::new("FPs/Byte Nav-Stokes (paper)", vec![(2.0, 580.0), (4.0, 290.0), (8.0, 145.0), (16.0, 73.0)]));
    r.series.push(Series::new(
        "FPs/Start-up Nav-Stokes (paper)",
        vec![(2.0, 906e3), (4.0, 453e3), (8.0, 227e3), (16.0, 113e3)],
    ));
    r.notes.push("ratios halve with each doubling of P, exactly as in the paper".into());
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn startups_match_paper_exactly() {
        let ns = characteristics(Regime::NavierStokes);
        let eu = characteristics(Regime::Euler);
        assert_eq!(ns.startups_per_proc, 80_000);
        assert_eq!(eu.startups_per_proc, 60_000);
    }

    #[test]
    fn scaled_ns_flops_match_paper_by_construction() {
        let ns = characteristics(Regime::NavierStokes);
        assert!((ns.flops_scaled - paper::NS_FLOPS).abs() / paper::NS_FLOPS < 1e-9);
    }

    #[test]
    fn euler_to_ns_ratio_is_paper_shaped() {
        let ns = characteristics(Regime::NavierStokes);
        let eu = characteristics(Regime::Euler);
        let ratio = eu.flops_scaled / ns.flops_scaled;
        // paper: 77/145 = 0.53
        assert!(ratio > 0.4 && ratio < 0.75, "ratio {ratio}");
    }

    #[test]
    fn volume_within_factor_of_paper() {
        let ns = characteristics(Regime::NavierStokes);
        let rel = ns.volume_per_proc as f64 / paper::NS_VOLUME;
        assert!(rel > 0.5 && rel < 2.0, "volume off by {rel}");
        // Euler volume must be below N-S volume, as in the paper
        let eu = characteristics(Regime::Euler);
        assert!(eu.volume_per_proc < ns.volume_per_proc);
    }

    #[test]
    fn table2_ratios_halve_with_p() {
        let r = table2();
        let s = r.series("FPs/Byte Nav-Stokes").unwrap();
        let v2 = s.at(2.0).unwrap();
        let v4 = s.at(4.0).unwrap();
        let v16 = s.at(16.0).unwrap();
        assert!((v2 / v4 - 2.0).abs() < 1e-9);
        assert!((v2 / v16 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn reports_render() {
        assert!(table1().render().contains("Table 1"));
        assert!(table2().render().contains("Table 2"));
    }

    #[test]
    fn measured_comm_matches_opcount_predictions_exactly() {
        let grid = Grid::paper();
        // N-S: 4 exchanges/step (prims, flux, prims2, flux2); Euler: 3
        for (regime, exchanges) in [(Regime::NavierStokes, 4u64), (Regime::Euler, 3u64)] {
            let live = measured_comm_per_step(regime, 4);
            let w = workload::step_workload(regime, &grid, grid.nx / 4);
            assert_eq!(live.startups(), w.startups_per_step(2), "{regime:?} start-ups");
            assert_eq!(live.bytes_sent, w.bytes_sent_per_step(2), "{regime:?} bytes");
            assert_eq!(live.sends, exchanges * 2, "{regime:?} one send per exchange per neighbour");
            assert_eq!(live.recvs, live.sends);
            assert_eq!(live.bytes_recvd, live.bytes_sent);
        }
    }

    #[test]
    fn table1_live_rows_agree_with_analytic_rows() {
        let r = table1();
        for x in [1.0, 2.0] {
            let live = r.series("startups/proc (live run x 5000)").unwrap().at(x).unwrap();
            let ours = r.series("startups/proc (ours)").unwrap().at(x).unwrap();
            assert_eq!(live, ours);
            let live_v = r.series("volume/proc MB (live run x 5000)").unwrap().at(x).unwrap();
            let ours_v = r.series("volume/proc MB (ours)").unwrap().at(x).unwrap();
            assert!((live_v - ours_v).abs() < 1e-12, "{live_v} vs {ours_v}");
        }
    }
}
