//! Acoustic post-processing of near-field probe data.
//!
//! The paper's application exists to feed an acoustic analogy: "the
//! radiated sound emanating from the jet can be computed by … limiting the
//! solution domain to the near field … and then using acoustic analogy to
//! relate the far-field noise to the near-field sources" (Section 1,
//! citing Lighthill). This module provides the light end of that chain:
//!
//! * retarded-time spherical-spreading extrapolation of a pressure history
//!   from a near-field radius to a far-field radius,
//! * sound-pressure levels (rms and dB) and a directivity summary over an
//!   arc of probes.
//!
//! The extrapolation is exact for a compact (monopole-like) source in a
//! quiescent medium, which the tests verify against the analytic solution;
//! for the real jet it is the standard first-cut estimate.

use ns_core::probe::ProbeSeries;

/// A uniformly sampled pressure-fluctuation history at a known radius.
#[derive(Clone, Debug)]
pub struct PressureHistory {
    /// Observer radius from the (compact) source region.
    pub radius: f64,
    /// Sample times (uniform).
    pub t: Vec<f64>,
    /// Pressure fluctuation `p - p_mean`.
    pub p: Vec<f64>,
}

impl PressureHistory {
    /// Build from a probe series (removes the mean).
    pub fn from_probe(series: &ProbeSeries, radius: f64) -> Self {
        let mean = if series.p.is_empty() { 0.0 } else { series.p.iter().sum::<f64>() / series.p.len() as f64 };
        Self { radius, t: series.t.clone(), p: series.p.iter().map(|&x| x - mean).collect() }
    }

    /// Linear interpolation of the history at time `t` (None outside the
    /// recorded window).
    pub fn at(&self, t: f64) -> Option<f64> {
        let n = self.t.len();
        if n < 2 || t < self.t[0] || t > self.t[n - 1] {
            return None;
        }
        let dt = (self.t[n - 1] - self.t[0]) / (n as f64 - 1.0);
        let k = (((t - self.t[0]) / dt).floor() as usize).min(n - 2);
        let w = (t - self.t[k]) / dt;
        Some(self.p[k] * (1.0 - w) + self.p[k + 1] * w)
    }

    /// Root-mean-square pressure fluctuation.
    pub fn p_rms(&self) -> f64 {
        if self.p.is_empty() {
            return 0.0;
        }
        (self.p.iter().map(|x| x * x).sum::<f64>() / self.p.len() as f64).sqrt()
    }

    /// Sound pressure level in dB relative to `p_ref`.
    pub fn spl_db(&self, p_ref: f64) -> f64 {
        20.0 * (self.p_rms() / p_ref).log10()
    }
}

/// Extrapolate a near-field history to a larger radius assuming spherical
/// spreading at sound speed `c`:
/// `p'(R, t) = (r/R) p'(r, t - (R - r)/c)`.
///
/// Returns the far-field history over the time window where the retarded
/// times fall inside the recorded near-field window.
pub fn extrapolate(near: &PressureHistory, far_radius: f64, c: f64) -> PressureHistory {
    assert!(far_radius > near.radius, "extrapolation goes outward");
    assert!(c > 0.0);
    let delay = (far_radius - near.radius) / c;
    let gain = near.radius / far_radius;
    let mut t = Vec::new();
    let mut p = Vec::new();
    for &tt in &near.t {
        let obs_time = tt + delay;
        // the retarded sample is exactly `tt`, always available
        t.push(obs_time);
        p.push(gain * near.at(tt).unwrap_or(0.0));
    }
    PressureHistory { radius: far_radius, t, p }
}

/// One directivity sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DirectivityPoint {
    /// Polar angle from the jet axis, degrees.
    pub angle_deg: f64,
    /// Far-field rms pressure.
    pub p_rms: f64,
    /// Far-field SPL (dB re `p_ref`).
    pub spl_db: f64,
}

/// Directivity over an arc: extrapolate each probe's history to a common
/// far-field radius and report levels versus angle.
pub fn directivity(
    histories: &[(f64, PressureHistory)], // (angle_deg, near-field history)
    far_radius: f64,
    c: f64,
    p_ref: f64,
) -> Vec<DirectivityPoint> {
    histories
        .iter()
        .map(|(angle, h)| {
            let far = extrapolate(h, far_radius, c);
            DirectivityPoint { angle_deg: *angle, p_rms: far.p_rms(), spl_db: far.spl_db(p_ref) }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Analytic monopole: `p'(r, t) = (a / r) f(t - r/c)`.
    fn monopole(a: f64, c: f64, r: f64, t: f64) -> f64 {
        let f = |tau: f64| (2.0 * std::f64::consts::PI * 0.4 * tau).sin() * (-((tau - 5.0) / 2.0).powi(2)).exp();
        a / r * f(t - r / c)
    }

    fn sample(a: f64, c: f64, r: f64, n: usize, dt: f64) -> PressureHistory {
        let t: Vec<f64> = (0..n).map(|k| k as f64 * dt).collect();
        let p = t.iter().map(|&tt| monopole(a, c, r, tt)).collect();
        PressureHistory { radius: r, t, p }
    }

    #[test]
    fn extrapolation_matches_analytic_monopole() {
        let (a, c) = (2.0, 1.0);
        let near = sample(a, c, 3.0, 400, 0.05);
        let far = extrapolate(&near, 12.0, c);
        // compare against the analytic solution at the far radius over the
        // overlapping window
        let mut max_err: f64 = 0.0;
        let mut max_val: f64 = 0.0;
        for (tt, pp) in far.t.iter().zip(&far.p) {
            let exact = monopole(a, c, 12.0, *tt);
            max_err = max_err.max((pp - exact).abs());
            max_val = max_val.max(exact.abs());
        }
        assert!(max_val > 0.0);
        assert!(max_err < 0.02 * max_val, "relative error {}", max_err / max_val);
    }

    #[test]
    fn rms_decays_as_one_over_r() {
        let (a, c) = (1.0, 1.0);
        let near = sample(a, c, 2.0, 500, 0.05);
        let far1 = extrapolate(&near, 4.0, c);
        let far2 = extrapolate(&near, 8.0, c);
        let ratio = far1.p_rms() / far2.p_rms();
        assert!((ratio - 2.0).abs() < 1e-9, "spherical spreading: {ratio}");
    }

    #[test]
    fn spl_is_six_db_per_doubling() {
        let (a, c) = (1.0, 1.0);
        let near = sample(a, c, 2.0, 500, 0.05);
        let p_ref = 1e-5;
        let d1 = extrapolate(&near, 10.0, c).spl_db(p_ref);
        let d2 = extrapolate(&near, 20.0, c).spl_db(p_ref);
        assert!((d1 - d2 - 6.0206).abs() < 0.01, "{d1} vs {d2}");
    }

    #[test]
    fn directivity_preserves_relative_levels() {
        let c = 1.0;
        let loud = sample(3.0, c, 2.5, 300, 0.05);
        let quiet = sample(1.0, c, 2.5, 300, 0.05);
        let d = directivity(&[(30.0, loud), (90.0, quiet)], 50.0, c, 1e-5);
        assert_eq!(d.len(), 2);
        assert!(d[0].p_rms > 2.5 * d[1].p_rms, "3x source is ~3x louder");
        assert!((d[0].spl_db - d[1].spl_db - 20.0 * 3.0f64.log10()).abs() < 0.5);
    }

    #[test]
    fn history_interpolation_and_bounds() {
        let h = PressureHistory { radius: 1.0, t: vec![0.0, 1.0, 2.0], p: vec![0.0, 2.0, 4.0] };
        assert_eq!(h.at(0.5), Some(1.0));
        assert_eq!(h.at(2.0), Some(4.0));
        assert_eq!(h.at(-0.1), None);
        assert_eq!(h.at(2.1), None);
    }
}
