//! Cross-validation of the analytic workload model against the live solver:
//! the platform simulator replays `ns_core::workload`, so that model must
//! track what the instrumented solver actually does.

use ns_core::config::{Regime, SolverConfig};
use ns_core::driver::Solver;
use ns_core::workload;
use ns_numerics::Grid;

/// Relative error between the workload model's per-step FLOPs and the live
/// solver's measured ledger delta (interior kernels only; the ledger also
/// carries boundary work the model ignores).
pub fn workload_vs_ledger_error(grid: Grid, regime: Regime, steps: u64) -> f64 {
    let cfg = SolverConfig::paper(grid.clone(), regime);
    let mut s = Solver::new(cfg);
    s.run(1); // exclude any first-step effects from the sample
    let before = s.ledger;
    s.run(steps);
    let interior_measured = (s.ledger.prims + s.ledger.flux + s.ledger.source + s.ledger.update)
        - (before.prims + before.flux + before.source + before.update);
    let per_step_measured = interior_measured as f64 / steps as f64;
    let model = workload::step_workload(regime, &grid, grid.nx).compute_flops() as f64;
    (per_step_measured - model).abs() / model
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_tracks_solver_within_one_percent() {
        for regime in [Regime::NavierStokes, Regime::Euler] {
            let err = workload_vs_ledger_error(Grid::small(), regime, 4);
            assert!(err < 0.01, "{regime:?}: workload model off by {err}");
        }
    }

    #[test]
    fn model_tracks_solver_on_other_grids() {
        let err = workload_vs_ledger_error(Grid::new(80, 40, 50.0, 5.0), Regime::NavierStokes, 2);
        assert!(err < 0.01, "workload model off by {err}");
    }
}
