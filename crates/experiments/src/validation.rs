//! Cross-validation of the analytic workload model against the live solver:
//! the platform simulator replays `ns_core::workload`, so that model must
//! track what the instrumented solver actually does.

use ns_core::config::{Regime, SolverConfig};
use ns_core::driver::Solver;
use ns_core::workload;
use ns_numerics::Grid;

/// Relative error between the workload model's per-step FLOPs and the live
/// solver's measured ledger delta (interior kernels only; the ledger also
/// carries boundary work the model ignores).
pub fn workload_vs_ledger_error(grid: Grid, regime: Regime, steps: u64) -> f64 {
    let cfg = SolverConfig::paper(grid.clone(), regime);
    let mut s = Solver::new(cfg);
    s.run(1); // exclude any first-step effects from the sample
    let before = s.ledger;
    s.run(steps);
    let interior_measured = (s.ledger.prims + s.ledger.flux + s.ledger.source + s.ledger.update)
        - (before.prims + before.flux + before.source + before.update);
    let per_step_measured = interior_measured as f64 / steps as f64;
    let model = workload::step_workload(regime, &grid, grid.nx).compute_flops() as f64;
    (per_step_measured - model).abs() / model
}

/// One cell of the validation matrix.
#[derive(Clone, Debug)]
pub struct ValidationCell {
    /// Governing equations.
    pub regime: Regime,
    /// Grid shape (nx, nr).
    pub grid: [usize; 2],
    /// Relative model-vs-measured error.
    pub error: f64,
}

/// The grid ladder the matrix covers: the paper's small grid, a tall one, a
/// wide one, and an odd-sized one (nothing divides evenly).
fn matrix_grids() -> Vec<Grid> {
    vec![Grid::small(), Grid::new(80, 40, 50.0, 5.0), Grid::new(128, 16, 50.0, 5.0), Grid::new(67, 21, 50.0, 5.0)]
}

/// Run the full regime x grid validation matrix.
pub fn validation_matrix(steps: u64) -> Vec<ValidationCell> {
    let mut cells = Vec::new();
    for regime in [Regime::NavierStokes, Regime::Euler] {
        for grid in matrix_grids() {
            let shape = [grid.nx, grid.nr];
            cells.push(ValidationCell { regime, grid: shape, error: workload_vs_ledger_error(grid, regime, steps) });
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_tracks_solver_across_regimes_and_grids() {
        for cell in validation_matrix(4) {
            assert!(cell.error < 0.01, "{:?} on {:?}: workload model off by {}", cell.regime, cell.grid, cell.error);
        }
    }
}
