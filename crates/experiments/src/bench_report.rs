//! Figure 2 analogue from *measured* data: render the V1→V7 kernel ladder
//! recorded in `BENCH_kernels.json` (written by the ns-bench binaries) as an
//! ASCII MFLOPS bar chart, plus a table of the runtime-primitive medians.
//!
//! The simulated ladder ([`crate::fig_versions::simulated_1995`]) shows the
//! calibrated 1995 machine; this report shows the same sweep measured on the
//! present host, so the committed JSON becomes a perf trajectory the repo
//! can track across commits.

use serde::Deserialize;
use std::collections::BTreeMap;

/// One benchmark point (the subset of the ns-bench record this report uses).
#[derive(Clone, Debug, Deserialize)]
pub struct BenchPoint {
    /// Group name, e.g. `prims_flux_sweep/125x50`.
    pub group: String,
    /// Point id within the group, e.g. `V6`.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Derived MFLOPS, when the point has a flop model.
    pub mflops: Option<f64>,
}

/// Parsed contents of `BENCH_kernels.json`.
#[derive(Clone, Debug, Deserialize)]
pub struct BenchData {
    /// Schema tag (`ns-bench/kernels/v1`).
    pub schema: String,
    /// True when the file came from an `NS_BENCH_QUICK` smoke run.
    pub quick: bool,
    /// All recorded points.
    pub records: Vec<BenchPoint>,
}

/// Prefix of the groups that form the version ladder.
const LADDER_PREFIX: &str = "prims_flux_sweep/";

/// Parse the JSON text of `BENCH_kernels.json`.
pub fn parse(json: &str) -> Result<BenchData, String> {
    let data: BenchData = serde_json::from_str(json).map_err(|e| format!("BENCH_kernels.json: {e}"))?;
    if !data.schema.starts_with("ns-bench/kernels/") {
        return Err(format!("unexpected schema `{}`", data.schema));
    }
    Ok(data)
}

/// Render the ladder chart and primitive table.
pub fn render(data: &BenchData) -> String {
    let mut out = String::new();
    if data.quick {
        out.push_str("(NS_BENCH_QUICK smoke run: short budget, medians are noisy)\n\n");
    }

    // Ladder groups, one block per grid size, versions in id order.
    let mut ladders: BTreeMap<&str, Vec<&BenchPoint>> = BTreeMap::new();
    for p in &data.records {
        if let Some(grid) = p.group.strip_prefix(LADDER_PREFIX) {
            ladders.entry(grid).or_default().push(p);
        }
    }
    for (grid, mut pts) in ladders {
        pts.sort_by(|a, b| a.id.cmp(&b.id));
        out.push_str(&format!("Figure 2 (measured host): prims+flux sweep, grid {grid}\n"));
        let vmax = pts.iter().filter_map(|p| p.mflops).fold(0.0f64, f64::max).max(1e-9);
        let v5 = pts.iter().find(|p| p.id == "V5").and_then(|p| p.mflops);
        let v6 = pts.iter().find(|p| p.id == "V6").and_then(|p| p.mflops);
        for p in &pts {
            let m = p.mflops.unwrap_or(0.0);
            let bar = "#".repeat(((m / vmax) * 40.0).round() as usize);
            let vs_prev = match (p.id.as_str(), v5, v6) {
                ("V6", Some(base), _) if base > 0.0 => format!("  ({:.2}x over V5)", m / base),
                ("V7", _, Some(base)) if base > 0.0 => format!("  ({:.2}x over V6)", m / base),
                _ => String::new(),
            };
            out.push_str(&format!("  {:<4} {:>9.1} MFLOPS |{bar}{vs_prev}\n", p.id, m));
        }
        out.push('\n');
    }
    if !out.contains("Figure 2") {
        out.push_str("no prims_flux_sweep ladder in file (run the solver_kernels bench)\n\n");
    }

    // Everything else: median-ns table.
    let rest: Vec<&BenchPoint> = data.records.iter().filter(|p| !p.group.starts_with(LADDER_PREFIX)).collect();
    if !rest.is_empty() {
        out.push_str("runtime primitives (median ns/op)\n");
        for p in rest {
            out.push_str(&format!("  {:<28} {:>12.1}\n", format!("{}/{}", p.group, p.id), p.median_ns));
        }
    }
    out
}

/// One point of a baseline-vs-candidate comparison.
#[derive(Clone, Debug)]
pub struct CompareRow {
    /// `group/id` key the point was matched on.
    pub key: String,
    /// Baseline median, ns/op.
    pub baseline_ns: f64,
    /// Candidate median, ns/op.
    pub candidate_ns: f64,
    /// candidate / baseline (> 1 means slower).
    pub ratio: f64,
    /// Ratio exceeded the tolerance.
    pub regressed: bool,
}

/// Outcome of [`compare`]: every baseline point matched against the
/// candidate file.
#[derive(Clone, Debug)]
pub struct BenchCompare {
    /// Slowdown factor a point may reach before it counts as a regression.
    pub tolerance: f64,
    /// Matched points, file order.
    pub rows: Vec<CompareRow>,
    /// Baseline keys the candidate file lacks (a silently dropped bench
    /// must fail the gate, not pass it).
    pub missing: Vec<String>,
    /// Baseline groups absent from a *quick* candidate wholesale: the
    /// short CI budget deliberately skips the large-grid ladders, so their
    /// absence is reported but does not fail the gate.
    pub skipped_groups: Vec<String>,
}

impl BenchCompare {
    /// Points slower than `tolerance × baseline`.
    pub fn regressions(&self) -> usize {
        self.rows.iter().filter(|r| r.regressed).count()
    }

    /// The gate: no regressions and no dropped points.
    pub fn pass(&self) -> bool {
        self.regressions() == 0 && self.missing.is_empty()
    }
}

/// Compare a candidate bench file against the committed baseline, matching
/// points by `group/id`. The tolerance is a *ratio*, not a percentage,
/// because the expected use is a quick-mode CI run (short budget, noisy
/// medians, possibly a slower shared runner) against a committed full-mode
/// baseline: ~3x absorbs that noise while still catching an accidental
/// order-of-magnitude regression. Candidate-only points (new benches) are
/// ignored — they have no baseline to regress from.
pub fn compare(baseline: &BenchData, candidate: &BenchData, tolerance: f64) -> BenchCompare {
    let mut rows = Vec::new();
    let mut missing = Vec::new();
    let mut skipped_groups = Vec::new();
    let candidate_groups: std::collections::BTreeSet<&str> =
        candidate.records.iter().map(|c| c.group.as_str()).collect();
    for b in &baseline.records {
        let key = format!("{}/{}", b.group, b.id);
        if candidate.quick && !candidate_groups.contains(b.group.as_str()) {
            if !skipped_groups.contains(&b.group) {
                skipped_groups.push(b.group.clone());
            }
            continue;
        }
        match candidate.records.iter().find(|c| c.group == b.group && c.id == b.id) {
            Some(c) => {
                let ratio = if b.median_ns > 0.0 { c.median_ns / b.median_ns } else { f64::INFINITY };
                rows.push(CompareRow {
                    key,
                    baseline_ns: b.median_ns,
                    candidate_ns: c.median_ns,
                    ratio,
                    regressed: ratio > tolerance,
                });
            }
            None => missing.push(key),
        }
    }
    BenchCompare { tolerance, rows, missing, skipped_groups }
}

/// Render the comparison table.
pub fn render_compare(cmp: &BenchCompare) -> String {
    let mut out = String::new();
    out.push_str(&format!("bench regression gate (tolerance {:.1}x)\n", cmp.tolerance));
    out.push_str(&format!("  {:<34} {:>12} {:>12} {:>7}\n", "point", "baseline ns", "candidate ns", "ratio"));
    for r in &cmp.rows {
        out.push_str(&format!(
            "  {:<34} {:>12.1} {:>12.1} {:>6.2}x{}\n",
            r.key,
            r.baseline_ns,
            r.candidate_ns,
            r.ratio,
            if r.regressed { "  REGRESSED" } else { "" }
        ));
    }
    for key in &cmp.missing {
        out.push_str(&format!("  {key:<34} MISSING from candidate\n"));
    }
    for group in &cmp.skipped_groups {
        out.push_str(&format!("  {group:<34} skipped (group absent from quick candidate)\n"));
    }
    out.push_str(&format!(
        "{} points, {} regressions, {} missing: {}\n",
        cmp.rows.len(),
        cmp.regressions(),
        cmp.missing.len(),
        if cmp.pass() { "pass" } else { "FAIL" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> &'static str {
        r#"{
  "schema": "ns-bench/kernels/v1",
  "quick": false,
  "records": [
    {"group": "prims_flux_sweep/125x50", "id": "V1", "median_ns": 120000.0, "iters": 8, "samples": 15, "flops": 425000.0, "mflops": 3540.0},
    {"group": "prims_flux_sweep/125x50", "id": "V5", "median_ns": 70000.0, "iters": 8, "samples": 15, "flops": 425000.0, "mflops": 6071.0},
    {"group": "prims_flux_sweep/125x50", "id": "V6", "median_ns": 65000.0, "iters": 8, "samples": 15, "flops": 425000.0, "mflops": 6538.0},
    {"group": "prims_flux_sweep/125x50", "id": "V7", "median_ns": 52000.0, "iters": 8, "samples": 15, "flops": 425000.0, "mflops": 8173.0},
    {"group": "pack_f64", "id": "800", "median_ns": 350.5, "iters": 64, "samples": 15, "flops": null, "mflops": null}
  ]
}"#
    }

    #[test]
    fn parses_and_renders_ladder_with_rung_speedups() {
        let data = parse(sample()).unwrap();
        assert_eq!(data.records.len(), 5);
        let text = render(&data);
        assert!(text.contains("grid 125x50"), "{text}");
        assert!(text.contains("V6"), "{text}");
        // each new rung is annotated against its predecessor
        assert!(text.contains("x over V5"), "{text}");
        assert!(text.contains("x over V6"), "{text}");
        // the longest bar belongs to the fastest version
        let v7_line = text.lines().find(|l| l.trim_start().starts_with("V7")).unwrap();
        assert!(v7_line.matches('#').count() == 40, "{v7_line}");
        // runtime primitives table included
        assert!(text.contains("pack_f64/800"), "{text}");
    }

    #[test]
    fn rejects_foreign_schema() {
        assert!(parse(r#"{"schema": "other", "quick": false, "records": []}"#).is_err());
    }

    #[test]
    fn quick_files_are_flagged() {
        let data = parse(&sample().replace("\"quick\": false", "\"quick\": true")).unwrap();
        assert!(render(&data).contains("NS_BENCH_QUICK"));
    }

    #[test]
    fn compare_flags_regressions_and_dropped_points_but_not_noise() {
        let baseline = parse(sample()).unwrap();
        // candidate: V1 within tolerance (2x), V5 regressed (4x), pack_f64
        // dropped, V6 unchanged
        let mut candidate = baseline.clone();
        candidate.records[0].median_ns *= 2.0;
        candidate.records[1].median_ns *= 4.0;
        candidate.records.retain(|p| p.group != "pack_f64");
        let cmp = compare(&baseline, &candidate, 3.0);
        assert_eq!(cmp.regressions(), 1);
        assert_eq!(cmp.missing, vec!["pack_f64/800".to_string()]);
        assert!(!cmp.pass());
        // the same wholesale group absence in a *quick* candidate is a skip
        candidate.quick = true;
        let cmp_quick = compare(&baseline, &candidate, 5.0);
        assert!(cmp_quick.missing.is_empty());
        assert_eq!(cmp_quick.skipped_groups, vec!["pack_f64".to_string()]);
        assert!(cmp_quick.pass());
        assert!(render_compare(&cmp_quick).contains("skipped"));
        candidate.quick = false;
        let text = render_compare(&cmp);
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("MISSING"), "{text}");
        assert!(text.contains("FAIL"), "{text}");
        // the same candidate with everything restored passes
        let cmp = compare(&baseline, &baseline, 3.0);
        assert!(cmp.pass());
        assert!(render_compare(&cmp).contains("pass"));
        // a candidate-only point is no failure: new benches have no baseline
        let mut grown = baseline.clone();
        grown.records.push(BenchPoint {
            group: "metrics_overhead".into(),
            id: "counter_inc".into(),
            median_ns: 1.0,
            mflops: None,
        });
        assert!(compare(&baseline, &grown, 3.0).pass());
    }
}
