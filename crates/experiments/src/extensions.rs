//! Beyond-the-paper studies — the extensions the conclusion promises:
//! "We hope to extend the study to larger multiprocessors … We will then
//! explore other problem decompositions such as blocking along the radial
//! direction, for example, and study their impact on the performance."

use crate::report::{Report, Series};
use ns_archsim::{simulate, Platform, SimConfig};
use ns_core::config::Regime;
use ns_core::workload::{self, Decomposition};
use ns_numerics::Grid;

/// Decomposition ablation: axial (the paper's choice) vs radial blocking on
/// representative networks. On the 250x100 grid a radial halo line carries
/// 2.5x the data of an axial one (250 vs 100 points), so radial blocking
/// loses exactly where communication matters — quantifying why the paper
/// "chose to decompose the domain by blocks along the axial direction only".
pub fn decomposition_ablation(regime: Regime) -> Report {
    let mut r =
        Report::new(format!("Ablation: axial vs radial decomposition ({})", regime.name()), "processors", "seconds");
    let procs = [2usize, 4, 8, 16];
    for (platform, pname) in [
        (Platform::lace560_allnode_s(), "ALLNODE-S"),
        (Platform::lace560_ethernet(), "Ethernet"),
        (Platform::cray_t3d(), "Cray T3D"),
    ] {
        for (decomp, dname) in [(Decomposition::Axial, "axial"), (Decomposition::Radial, "radial")] {
            let pts = procs
                .iter()
                .map(|&p| {
                    let mut cfg = SimConfig::paper(platform, p, regime);
                    cfg.decomposition = decomp;
                    (p as f64, simulate(&cfg).total)
                })
                .collect();
            r.series.push(Series::new(format!("{pname} {dname}"), pts));
        }
    }
    r.notes.push("radial halo lines carry nx=250 points vs nr=100 axially: 2.5x the volume per message".into());
    r
}

/// Scaling beyond the paper's 16 processors: the T3D the paper used had 64
/// nodes ("the machine used in our study has 64 nodes … of which only 16
/// were available in single user mode") — simulate the full machine, plus a
/// hypothetical 64-port ALLNODE-S cluster and Ethernet for contrast.
pub fn extended_scaling(regime: Regime) -> Report {
    let mut r =
        Report::new(format!("Extension: scaling to the full 64-node T3D ({})", regime.name()), "processors", "seconds");
    let procs = [1usize, 2, 4, 8, 16, 32, 64];
    let mut t3d = Platform::cray_t3d();
    t3d.max_procs = 64;
    let mut allnode = Platform::lace560_allnode_s();
    allnode.max_procs = 64;
    let mut ether = Platform::lace560_ethernet();
    ether.max_procs = 64;
    for (platform, label) in [
        (t3d, "Cray T3D (full machine)"),
        (allnode, "ALLNODE-S (hypothetical 64 ports)"),
        (ether, "Ethernet (hypothetical 64 taps)"),
    ] {
        let pts = procs
            .iter()
            .filter(|&&p| workload::block_len(Grid::paper().nx, p - 1, p) >= 1)
            .map(|&p| (p as f64, simulate(&SimConfig::paper(platform, p, regime)).total))
            .collect();
        r.series.push(Series::new(label, pts));
    }
    r.notes.push("the T3D's torus keeps scaling; the bus saturates catastrophically; the switched NOW flattens on message software costs".into());
    r
}

/// Weak scaling: grow the grid with the processor count (fixed 250x100 per
/// 16 processors) — the regime the paper's conclusion points toward with
/// "larger multiprocessors" implicitly demands larger problems.
pub fn weak_scaling(regime: Regime) -> Report {
    let mut r = Report::new(
        format!("Extension: weak scaling, fixed work per processor ({})", regime.name()),
        "processors",
        "seconds",
    );
    let mut t3d = Platform::cray_t3d();
    t3d.max_procs = 64;
    for (platform, label) in [(t3d, "Cray T3D"), (Platform::lace560_allnode_s(), "ALLNODE-S")] {
        let mut pts = Vec::new();
        for &p in &[1usize, 2, 4, 8, 16] {
            if p > platform.max_procs {
                continue;
            }
            // nx grows with P: ~15.6 columns per processor, as at 250/16
            let nx = (250 * p).div_ceil(16).max(8);
            let mut cfg = SimConfig::paper(platform, p, regime);
            cfg.grid = Grid::new(nx.max(8), 100, 50.0, 5.0);
            pts.push((p as f64, simulate(&cfg).total));
        }
        r.series.push(Series::new(label, pts));
    }
    r.notes.push("flat curves = perfect weak scaling; the slope is pure communication overhead".into());
    r
}

/// Per-phase time profile — the separation the paper says it could not
/// make "unless we have hardware performance monitoring tools" (Section 6).
/// The simulator attributes every busy second to a solver phase or a
/// message-library cost, for any platform and processor count.
pub fn phase_profile(platform: Platform, regime: Regime, procs: &[usize]) -> Report {
    let mut r = Report::new(
        format!("Extension: per-phase time profile ({}; {})", regime.name(), platform.name),
        "processors",
        "aggregate seconds",
    );
    // stable phase order: collect labels from a probe run
    let probe = simulate(&SimConfig::paper(platform, procs.iter().copied().max().unwrap_or(2), regime));
    let labels: Vec<&'static str> = probe.phase_seconds.keys().copied().collect();
    let mut columns: Vec<Vec<(f64, f64)>> = vec![Vec::new(); labels.len()];
    for &p in procs {
        let res = simulate(&SimConfig::paper(platform, p, regime));
        for (k, label) in labels.iter().enumerate() {
            columns[k].push((p as f64, res.phase_seconds.get(label).copied().unwrap_or(0.0)));
        }
    }
    for (label, pts) in labels.iter().zip(columns) {
        r.series.push(Series::new(*label, pts));
    }
    r.notes.push("aggregate busy seconds over all ranks; comm:* rows are message-library software cost".into());
    r
}

/// The paper's concluding claim, tested: "NOW have the potential to be
/// cost-effective parallel architectures if the networks are made
/// reasonably fast and message passing libraries are efficiently
/// implemented". Project the ALLNODE-S cluster under progressively leaner
/// libraries — stock PVM, PVM with direct routing, and an Active-Messages
/// class user-level library (the Berkeley NOW project, the paper's
/// reference \[18\]) — against the Cray T3D.
pub fn now_projection(regime: Regime) -> Report {
    use ns_archsim::MsgLib;
    let mut r = Report::new(
        format!("Extension: NOW potential under leaner libraries ({})", regime.name()),
        "processors",
        "seconds",
    );
    let procs = [2usize, 4, 8, 16];
    let base = Platform::lace560_allnode_s();
    for (lib, label) in [
        (MsgLib::pvm(), "ALLNODE-S + PVM (stock)"),
        (MsgLib::pvm_direct(), "ALLNODE-S + PVM direct route"),
        (MsgLib::lean_user_level(), "ALLNODE-S + AM-class library"),
    ] {
        let mut platform = base;
        platform.lib = lib;
        let pts = procs.iter().map(|&p| (p as f64, simulate(&SimConfig::paper(platform, p, regime)).total)).collect();
        r.series.push(Series::new(label, pts));
    }
    let t3d_pts =
        procs.iter().map(|&p| (p as f64, simulate(&SimConfig::paper(Platform::cray_t3d(), p, regime)).total)).collect();
    r.series.push(Series::new("Cray T3D (reference)", t3d_pts));
    r.notes.push("every library generation closes more of the gap; with AM-class costs the NOW beats the MPP at every P — the paper's conclusion, quantified".into());
    r
}

/// Excitation-amplitude study: the near-field response at the forcing
/// frequency must scale linearly with the excitation level while the
/// forcing is small (the regime the paper's eigenfunction forcing assumes),
/// and the response leaves the linear regime as `epsilon` grows.
pub fn excitation_linearity(grid: Grid, levels: &[f64], periods: f64) -> Report {
    use ns_core::config::SolverConfig;
    use ns_core::probe::{amplitude_spectrum, dominant_frequency, ProbeArray};
    use ns_core::Solver;
    let mut r = Report::new(
        "Extension: near-field response vs excitation level",
        "excitation level",
        "pressure amplitude at the forcing frequency",
    );
    let mut pts = Vec::new();
    for &eps in levels {
        let mut cfg = SolverConfig::paper(grid.clone(), Regime::Euler);
        cfg.excitation.level = eps;
        cfg.dissipation = 0.002;
        let f_force = cfg.excitation.omega(cfg.jet.u_c) / (2.0 * std::f64::consts::PI);
        let mut s = Solver::new(cfg);
        let gas = *s.gas();
        let mut probes = ProbeArray::new(&s.field, &[(3.0, 1.0)]);
        let period = 1.0 / f_force;
        s.run((periods * period / s.dt()).ceil() as u64); // transient wash-out
        for _ in 0..(periods * period / s.dt()).ceil() as u64 {
            s.step();
            probes.sample(&s.field, &gas, s.t);
        }
        let series = &probes.series[0];
        let amp = dominant_frequency(&amplitude_spectrum(&series.t, &series.p)).map_or(0.0, |b| b.amplitude);
        pts.push((eps, amp));
    }
    r.series.push(Series::new("response amplitude", pts));
    r.notes.push("linear regime: amplitude ratio tracks the level ratio".into());
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radial_blocking_is_never_better_on_slow_networks() {
        let r = decomposition_ablation(Regime::NavierStokes);
        for net in ["ALLNODE-S", "Ethernet"] {
            let ax = r.series(&format!("{net} axial")).unwrap();
            let ra = r.series(&format!("{net} radial")).unwrap();
            for &(p, t_ax) in &ax.points {
                let t_ra = ra.at(p).unwrap();
                assert!(t_ra >= t_ax * 0.999, "{net} P={p}: radial {t_ra} vs axial {t_ax}");
            }
        }
    }

    #[test]
    fn radial_penalty_grows_with_processor_count_on_ethernet() {
        let r = decomposition_ablation(Regime::NavierStokes);
        let ax = r.series("Ethernet axial").unwrap();
        let ra = r.series("Ethernet radial").unwrap();
        let pen = |p: f64| ra.at(p).unwrap() / ax.at(p).unwrap();
        assert!(pen(16.0) > pen(2.0), "penalty grows: {} vs {}", pen(16.0), pen(2.0));
        assert!(pen(16.0) > 1.1, "visible penalty at 16: {}", pen(16.0));
    }

    #[test]
    fn t3d_keeps_scaling_to_64() {
        let r = extended_scaling(Regime::NavierStokes);
        let t3d = r.series("Cray T3D (full machine)").unwrap();
        let t16 = t3d.at(16.0).unwrap();
        let t64 = t3d.at(64.0).unwrap();
        assert!(t64 < t16 / 2.0, "64 nodes at least halve the 16-node time: {t64} vs {t16}");
        // but efficiency decays (tiny subdomains, fixed per-message costs)
        let eff64 = t3d.at(1.0).unwrap() / (64.0 * t64);
        let eff16 = t3d.at(1.0).unwrap() / (16.0 * t16);
        assert!(eff64 < eff16, "efficiency decays: {eff64} vs {eff16}");
    }

    #[test]
    fn ethernet_is_hopeless_at_64() {
        let r = extended_scaling(Regime::NavierStokes);
        let e = r.series("Ethernet (hypothetical 64 taps)").unwrap();
        assert!(e.at(64.0).unwrap() > e.at(8.0).unwrap(), "the bus saturates long before 64");
    }

    #[test]
    fn leaner_libraries_strictly_help_and_am_class_beats_the_t3d() {
        let r = now_projection(Regime::NavierStokes);
        let stock = r.series("ALLNODE-S + PVM (stock)").unwrap();
        let direct = r.series("ALLNODE-S + PVM direct route").unwrap();
        let lean = r.series("ALLNODE-S + AM-class library").unwrap();
        let t3d = r.series("Cray T3D (reference)").unwrap();
        for &(p, t_stock) in &stock.points {
            let t_direct = direct.at(p).unwrap();
            let t_lean = lean.at(p).unwrap();
            assert!(t_direct <= t_stock, "direct routing helps at P={p}");
            assert!(t_lean <= t_direct, "AM-class helps more at P={p}");
        }
        // the paper's claim quantified: with an efficient library the NOW is
        // competitive with (here: beats) the MPP at scale
        assert!(lean.at(16.0).unwrap() < t3d.at(16.0).unwrap(), "NOW + lean library beats the T3D at 16");
    }

    #[test]
    fn small_excitation_responds_linearly() {
        let grid = Grid::new(60, 20, 50.0, 5.0);
        let levels = [0.004, 0.008];
        let r = excitation_linearity(grid, &levels, 2.0);
        let s = &r.series[0];
        let a1 = s.at(levels[0]).unwrap();
        let a2 = s.at(levels[1]).unwrap();
        assert!(a1 > 0.0 && a2 > 0.0);
        let gain = a2 / a1;
        // doubling the forcing should ~double the response in the linear regime
        assert!(gain > 1.6 && gain < 2.4, "response gain {gain} for a 2x forcing increase");
    }

    #[test]
    fn phase_profile_accounts_for_all_busy_time() {
        let procs = [2usize, 8];
        let r = phase_profile(Platform::lace560_allnode_s(), Regime::NavierStokes, &procs);
        for &p in &procs {
            let res = simulate(&SimConfig::paper(Platform::lace560_allnode_s(), p, Regime::NavierStokes));
            let total_busy: f64 = res.busy.iter().sum();
            let phase_sum: f64 = r.series.iter().map(|s| s.at(p as f64).unwrap_or(0.0)).sum();
            let rel = (phase_sum - total_busy).abs() / total_busy;
            assert!(rel < 1e-9, "P={p}: phases must sum to busy time, off by {rel}");
        }
    }

    #[test]
    fn flux_evaluation_dominates_compute_and_comm_grows_with_p() {
        let procs = [2usize, 16];
        let r = phase_profile(Platform::lace560_allnode_s(), Regime::NavierStokes, &procs);
        let flux: f64 = r.series.iter().filter(|s| s.label.contains("flux")).map(|s| s.at(2.0).unwrap_or(0.0)).sum();
        let total: f64 = r.series.iter().map(|s| s.at(2.0).unwrap_or(0.0)).sum();
        assert!(flux > 0.4 * total, "flux kernels dominate: {flux} of {total}");
        // message software cost grows with processor count (aggregate)
        let comm = |p: f64| -> f64 {
            r.series.iter().filter(|s| s.label.starts_with("comm:")).map(|s| s.at(p).unwrap_or(0.0)).sum()
        };
        assert!(comm(16.0) > comm(2.0), "comm share grows with P: {} vs {}", comm(16.0), comm(2.0));
    }

    #[test]
    fn weak_scaling_is_flat_for_the_torus() {
        let r = weak_scaling(Regime::Euler);
        let t3d = r.series("Cray T3D").unwrap();
        let t1 = t3d.at(1.0).unwrap();
        let t16 = t3d.at(16.0).unwrap();
        // some cache-effect wiggle allowed, but within ~25% of flat
        assert!((t16 - t1).abs() / t1 < 0.25, "weak scaling ~flat: {t1} vs {t16}");
    }
}
