//! Dump every regenerated table/figure report (used to refresh
//! EXPERIMENTS.md).
fn main() {
    for r in ns_experiments::all_reports() {
        println!("{}", r.render());
        println!();
    }
}
