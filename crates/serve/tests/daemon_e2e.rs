//! End-to-end tests of the serve daemon over its Unix socket: the full
//! submit → journal → run → spill → wait → drain loop in-process, plus
//! the two recovery paths the WAL buys — a restart re-serving finished
//! work from the spill without recomputing, and a restart replaying
//! journaled-but-unfinished jobs to completion.

use ns_core::config::{Regime, SolverConfig};
use ns_numerics::Grid;
use ns_serve::job::{Backend, JobDesc, JobSpec};
use ns_serve::wal::{key_hex, Wal, WalRecord};
use ns_serve::{Client, Daemon, DaemonConfig, Response};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

static NEXT: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ns-daemon-e2e").join(format!(
        "{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn job(steps: u64) -> JobSpec {
    // paper domain lengths: the JobDesc wire format round-trips exactly
    let cfg = SolverConfig::paper(Grid::new(24, 10, 50.0, 5.0), Regime::Euler);
    let mut spec = JobSpec::new(cfg, steps, 1);
    spec.backend = Backend::Serial;
    spec.label = format!("e2e/{steps}");
    spec
}

fn wait_done(client: &mut Client, key: &str) -> (String, String) {
    match client.wait(key, Duration::from_secs(120)).unwrap() {
        Response::Done { cache, payload, .. } => (cache, payload),
        other => panic!("job {key} must settle Done, got {other:?}"),
    }
}

#[test]
fn submit_wait_drain_roundtrip_over_the_socket() {
    let dir = scratch_dir("roundtrip");
    let daemon = Daemon::start(DaemonConfig::new(&dir)).unwrap();
    let mut client = Client::connect(daemon.socket_path()).unwrap();

    // two distinct jobs plus a duplicate of the first; the duplicate may
    // be admitted (twin still running) or answered durably at submit time
    let mut settled = Vec::new();
    for spec in [job(2), job(3), job(2)] {
        match client.submit(&JobDesc::from_spec(&spec)).unwrap() {
            Response::Admitted { key, .. } => {
                let payload = wait_done(&mut client, &key).1;
                settled.push((key, payload));
            }
            Response::Done { key, payload, .. } => settled.push((key, payload)),
            other => panic!("submission must be admitted: {other:?}"),
        }
    }
    assert_eq!(settled[0].0, settled[2].0, "duplicate cell shares its canonical key");
    assert_eq!(settled[0].1, settled[2].1, "duplicate is served byte-identically");

    let status = client.status().unwrap();
    assert!(!status.draining);
    assert!(status.wal_records >= 4, "2 admits + their completions journaled, got {}", status.wal_records);

    drop(client);
    let report = daemon.drain().unwrap();
    assert_eq!(report.stats.failed, 0);
    assert!(report.spilled >= 2, "both distinct results spilled, got {}", report.spilled);

    // the drain journaled a clean shutdown with nothing pending
    let (_, replay) = Wal::open(dir.join("jobs.wal"), false).unwrap();
    assert!(replay.clean_shutdown, "drain must journal CleanShutdown");
    assert!(replay.pending.is_empty(), "graceful drain loses zero admitted jobs");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn restart_serves_finished_work_from_the_spill_without_recompute() {
    let dir = scratch_dir("restart");
    let spec = job(4);
    let first_payload;
    {
        let daemon = Daemon::start(DaemonConfig::new(&dir)).unwrap();
        let mut client = Client::connect(daemon.socket_path()).unwrap();
        let key = match client.submit(&JobDesc::from_spec(&spec)).unwrap() {
            Response::Admitted { key, .. } => key,
            other => panic!("cold submission must be admitted: {other:?}"),
        };
        first_payload = wait_done(&mut client, &key).1;
        drop(client);
        daemon.drain().unwrap();
    }

    // restart in the same state dir: the same cell must be answered at
    // submit time from durable bytes, never re-queued or recomputed
    let daemon = Daemon::start(DaemonConfig::new(&dir)).unwrap();
    assert!(daemon.replay().pending.is_empty(), "clean shutdown leaves nothing to replay");
    let mut client = Client::connect(daemon.socket_path()).unwrap();
    match client.submit(&JobDesc::from_spec(&spec)).unwrap() {
        Response::Done { cache, payload, .. } => {
            assert_eq!(cache, "durable", "restart serve comes from the spill");
            assert_eq!(payload, first_payload, "spill-served bytes are identical to the original run");
        }
        other => panic!("restart submission must short-circuit Done, got {other:?}"),
    }
    let stats = client.status().unwrap().stats;
    assert_eq!(stats.cache_misses, 0, "no recompute after restart");
    assert_eq!(stats.submitted, 0, "durable short-circuit never touches the queue");
    drop(client);
    daemon.drain().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unclean_shutdown_replays_pending_jobs_to_completion() {
    let dir = scratch_dir("replay");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = job(5);
    let desc = JobDesc::from_spec(&spec);
    let key = spec.canonical_key();
    {
        // forge a crash: a journal holding an admitted job and no
        // CleanShutdown, exactly what kill -9 after the admit ack leaves
        let (mut wal, _) = Wal::open(dir.join("jobs.wal"), true).unwrap();
        wal.append(&WalRecord::Admitted { key: key_hex(key), desc: desc.clone() }).unwrap();
    }
    let daemon = Daemon::start(DaemonConfig::new(&dir)).unwrap();
    assert_eq!(daemon.replay().pending.len(), 1, "the journaled job is pending at startup");
    let mut client = Client::connect(daemon.socket_path()).unwrap();
    // the replayed job completes without any new submission
    let (_, payload) = wait_done(&mut client, &key_hex(key));
    assert!(!payload.is_empty());
    drop(client);
    let report = daemon.drain().unwrap();
    assert_eq!(report.stats.completed, 1, "replayed job ran to completion");
    let (_, replay) = Wal::open(dir.join("jobs.wal"), false).unwrap();
    assert!(replay.pending.is_empty(), "replayed job settled in the journal");
    assert!(replay.clean_shutdown);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_wal_tail_costs_only_the_torn_record() {
    let dir = scratch_dir("torn");
    std::fs::create_dir_all(&dir).unwrap();
    let keep = job(6);
    let torn = job(7);
    let wal_path = dir.join("jobs.wal");
    {
        let (mut wal, _) = Wal::open(&wal_path, true).unwrap();
        wal.append(&WalRecord::Admitted { key: key_hex(keep.canonical_key()), desc: JobDesc::from_spec(&keep) })
            .unwrap();
        wal.append(&WalRecord::Admitted { key: key_hex(torn.canonical_key()), desc: JobDesc::from_spec(&torn) })
            .unwrap();
    }
    // tear the second record mid-write
    let bytes = std::fs::read(&wal_path).unwrap();
    std::fs::write(&wal_path, &bytes[..bytes.len() - 7]).unwrap();

    let daemon = Daemon::start(DaemonConfig::new(&dir)).unwrap();
    let replay = daemon.replay();
    assert_eq!(replay.pending.len(), 1, "only the whole record replays");
    assert_eq!(replay.pending[0].0, key_hex(keep.canonical_key()));
    assert!(replay.truncated_bytes > 0, "the torn tail was measured and discarded");
    let mut client = Client::connect(daemon.socket_path()).unwrap();
    wait_done(&mut client, &key_hex(keep.canonical_key()));
    drop(client);
    daemon.drain().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}
