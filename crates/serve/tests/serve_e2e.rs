//! End-to-end tests for the serve stack: admission control under a full
//! queue, byte-identical cache hits, shedding order at the server level,
//! cooperative cancellation of in-flight rank teams, and the loadgen
//! acceptance sweep.

use ns_core::config::{Regime, SolverConfig};
use ns_numerics::Grid;
use ns_serve::{run_loadgen, Backend, JobSpec, LoadgenOptions, Outcome, Priority, Server, ServerConfig, SubmitError};
use std::time::Duration;

fn euler(nx: usize, nr: usize) -> SolverConfig {
    SolverConfig::paper(Grid::new(nx, nr, 50.0, 5.0), Regime::Euler)
}

fn serial_job(steps: u64, label: &str) -> JobSpec {
    let mut spec = JobSpec::new(euler(48, 16), steps, 1);
    spec.backend = Backend::Serial;
    spec.label = label.to_string();
    spec
}

/// A full queue must reject with a positive retry-after hint, and the
/// rejections must not wedge the server: everything admitted still
/// completes and `finish` returns.
#[test]
fn full_queue_rejects_with_retry_after_and_no_deadlock() {
    let (server, rx) = Server::new(ServerConfig { workers: 1, queue_depth: 2, golden: None, ..Default::default() });
    let mut admitted = 0u64;
    let mut rejected = 0u64;
    for i in 0..12u64 {
        // distinct cells (steps differ) so the cache cannot absorb the burst
        match server.submit(serial_job(20 + i, &format!("burst/{i}"))) {
            Ok(_) => admitted += 1,
            Err(SubmitError::Busy { retry_after, .. }) => {
                rejected += 1;
                assert!(retry_after > Duration::ZERO, "retry-after hint must be positive");
            }
            Err(e) => panic!("unexpected submit error: {e:?}"),
        }
    }
    assert!(rejected > 0, "a depth-2 queue flooded with 12 jobs must reject some");
    let mut done = 0u64;
    for _ in 0..admitted {
        match rx.recv_timeout(Duration::from_secs(60)).expect("admitted jobs complete; no deadlock") {
            Outcome::Done(_) => done += 1,
            other => panic!("burst jobs are valid and unshed: {other:?}"),
        }
    }
    let stats = server.finish();
    assert_eq!(done, admitted);
    assert_eq!(stats.completed, admitted);
    assert_eq!(stats.rejected, rejected);
    assert_eq!(stats.failed, 0);
}

/// A repeated cell is served from cache: same payload bytes (the same
/// allocation, in fact), zero run wall, and a priority or label change
/// must not split the cache key.
#[test]
fn duplicate_cells_hit_the_cache_byte_identically() {
    let (server, rx) = Server::new(ServerConfig { workers: 1, queue_depth: 8, golden: None, ..Default::default() });
    let cold = JobSpec::new(euler(48, 16), 3, 2);
    let mut dup = cold.clone();
    dup.priority = Priority::High;
    dup.label = "same cell, different urgency".into();
    server.submit(cold).unwrap();
    server.submit(dup).unwrap();
    let first = match rx.recv().unwrap() {
        Outcome::Done(r) => r,
        other => panic!("expected Done, got {other:?}"),
    };
    let second = match rx.recv().unwrap() {
        Outcome::Done(r) => r,
        other => panic!("expected Done, got {other:?}"),
    };
    assert!(!first.cache_hit, "first visit computes");
    assert!(second.cache_hit, "repeat visit is served from cache");
    assert_eq!(second.run_wall, Duration::ZERO);
    assert!(std::sync::Arc::ptr_eq(&first.run, &second.run), "the hit replays the cold allocation itself");
    assert_eq!(first.run.payload, second.run.payload);
    assert!(first.run.payload.contains("\"cache\": \"cold\""), "the shared payload is the cold run's summary");
    let stats = server.finish();
    assert_eq!((stats.cache_hits, stats.cache_misses), (1, 1));
}

/// Under overload, queued low-priority work is shed to admit high-priority
/// work — and the shed job is reported, not silently dropped.
#[test]
fn overload_sheds_lowest_priority_and_reports_it() {
    let (server, rx) = Server::new(ServerConfig { workers: 1, queue_depth: 2, golden: None, ..Default::default() });
    // occupy the worker long enough that the queue stays full
    server.submit(serial_job(60, "occupant")).unwrap();
    // wait for the worker to claim it, so the queue below is exactly ours
    while server.queue_len() > 0 {
        std::thread::yield_now();
    }
    let mut low = serial_job(61, "backfill");
    low.priority = Priority::Low;
    let low_id = server.submit(low).unwrap();
    server.submit(serial_job(62, "steady")).unwrap();
    let mut vip = serial_job(63, "urgent");
    vip.priority = Priority::High;
    server.submit(vip).unwrap();
    let mut shed = Vec::new();
    let mut done = Vec::new();
    for _ in 0..4 {
        match rx.recv_timeout(Duration::from_secs(60)).unwrap() {
            Outcome::Shed { id, priority, .. } => shed.push((id, priority)),
            Outcome::Done(r) => done.push(r.label),
            Outcome::Failed { error, .. } => panic!("no job should fail: {error}"),
        }
    }
    assert_eq!(shed, vec![(low_id, Priority::Low)], "the queued low job is the victim");
    assert_eq!(done.len(), 3);
    let stats = server.finish();
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.completed, 3);
}

/// Immediate shutdown never abandons an in-flight rank team: the
/// cooperative cancel token winds the team down together, the job reports
/// as failed with a cancellation reason, and nothing hangs.
#[test]
fn shutdown_now_cancels_in_flight_rank_teams_cleanly() {
    let (server, rx) = Server::new(ServerConfig { workers: 1, queue_depth: 4, golden: None, ..Default::default() });
    // a parallel job big enough that shutdown lands mid-run
    let long = JobSpec::new(euler(64, 24), 100_000, 4);
    server.submit(long).unwrap();
    server.submit(serial_job(5, "queued-behind")).unwrap();
    // let the worker pick the parallel job up
    std::thread::sleep(Duration::from_millis(100));
    let stats = server.shutdown_now();
    assert_eq!(stats.shed, 1, "the queued job is drained as shed");
    let mut cancelled = false;
    let mut shed = 0;
    while let Ok(outcome) = rx.recv_timeout(Duration::from_secs(60)) {
        match outcome {
            Outcome::Failed { error, .. } => {
                assert!(error.contains("cancelled"), "the in-flight team reports cancellation, got {error:?}");
                cancelled = true;
            }
            Outcome::Shed { .. } => shed += 1,
            Outcome::Done(_) => panic!("a 100k-step run cannot complete in this test"),
        }
    }
    assert!(cancelled, "the in-flight parallel job was cancelled, not abandoned");
    assert_eq!(shed, 1);
    assert_eq!(stats.failed, 1);
}

/// The loadgen acceptance sweep: mixed comm versions × rank counts with
/// duplicates, cache-served byte-identical repeats, golden cross-checks,
/// and an overload burst that rejects with retry-after and still drains.
#[test]
fn loadgen_quick_sweep_passes_its_own_acceptance_bar() {
    let report = run_loadgen(&LoadgenOptions { quick: true, workers: 2, queue_depth: 64 });
    assert!(
        report.pass(),
        "loadgen acceptance failed: completed {}/{}, failed {}, hits {}, dup-identical {}, golden {}/{} mismatched, burst rejected {} retry_after_ms {}",
        report.jobs_completed,
        report.jobs_submitted,
        report.jobs_failed,
        report.cache_hits,
        report.duplicates_byte_identical,
        report.golden_mismatches,
        report.golden_checked,
        report.burst.rejected,
        report.burst.min_retry_after_ms,
    );
    // every duplicated cell means at least half the sweep can hit
    assert!(report.cache_hit_rate >= 0.4, "hit rate {} too low for a fully duplicated sweep", report.cache_hit_rate);
    assert!(report.latency.p99_ms >= report.latency.p50_ms);
    assert!(report.throughput_jobs_per_sec > 0.0);
    // the artifact serializes (this is what `jetns loadgen` writes)
    let json = report.to_json();
    assert!(json.contains("\"burst\""));
    assert!(json.contains("\"p99_ms\""));
}
