//! Property-based tests of the write-ahead job journal: for any record
//! sequence and any corruption of the file's tail — truncation, bit
//! flips, duplicated record bytes — replay recovers a valid prefix,
//! never panics, and never resurrects a job that settled inside that
//! prefix. These are the invariants the daemon's crash recovery leans
//! on: a torn append costs at most the torn record, and a settled job
//! is never re-run.

use ns_core::config::{Regime, SolverConfig};
use ns_numerics::Grid;
use ns_serve::job::{JobDesc, JobSpec};
use ns_serve::wal::{key_hex, Wal, WalRecord};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ns-wal-props");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}-{}-{}.wal", std::process::id(), NEXT.fetch_add(1, Ordering::Relaxed)))
}

fn small_desc(steps: u64) -> JobDesc {
    let cfg = SolverConfig::paper(Grid::new(12, 8, 10.0, 2.0), Regime::Euler);
    JobDesc::from_spec(&JobSpec::new(cfg, steps.max(1), 1))
}

/// Decode an op stream into records over a 4-key space.
fn records_of(ops: &[(u8, u64)]) -> Vec<WalRecord> {
    ops.iter()
        .map(|&(kind, key)| match kind {
            0 => WalRecord::Admitted { key: key_hex(key), desc: small_desc(key + 1) },
            1 => WalRecord::Completed { key: key_hex(key) },
            2 => WalRecord::Cancelled { key: key_hex(key), reason: "prop".into() },
            _ => WalRecord::CleanShutdown,
        })
        .collect()
}

/// Write `records` through a real [`Wal`] and return the raw file bytes.
fn journal_bytes(path: &PathBuf, records: &[WalRecord]) -> Vec<u8> {
    let _ = std::fs::remove_file(path);
    let (mut wal, _) = Wal::open(path, false).unwrap();
    for r in records {
        wal.append(r).unwrap();
    }
    drop(wal);
    std::fs::read(path).unwrap()
}

/// The keys settled (Completed or Cancelled) within the first `n` records.
fn settled_within(records: &[WalRecord], n: usize) -> BTreeSet<String> {
    records
        .iter()
        .take(n)
        .filter_map(|r| match r {
            WalRecord::Completed { key } => Some(key.clone()),
            WalRecord::Cancelled { key, .. } => Some(key.clone()),
            _ => None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Truncating the journal anywhere leaves a replayable prefix: some
    /// whole number of leading records survives, the rest is discarded,
    /// and no job settled inside the surviving prefix comes back pending.
    #[test]
    fn truncation_replays_a_valid_prefix(
        ops in prop::collection::vec((0u8..4, 0u64..4), 1..10),
        cut in 0.0f64..1.0,
    ) {
        let path = scratch("trunc");
        let records = records_of(&ops);
        let bytes = journal_bytes(&path, &records);
        let keep = ((bytes.len() - 1) as f64 * cut) as usize;
        std::fs::write(&path, &bytes[..keep]).unwrap();
        let (_, replay) = Wal::open(&path, false).unwrap();
        prop_assert!(replay.records <= records.len() as u64);
        // the surviving prefix is literally the first `records` appends
        let n = replay.records as usize;
        for key in settled_within(&records, n) {
            prop_assert!(
                !replay.pending.iter().any(|(k, _)| *k == key),
                "settled key {key} resurrected after truncation at {keep}/{}", bytes.len()
            );
        }
        // the file was truncated to the valid prefix, so reopening is stable
        let after = std::fs::metadata(&path).unwrap().len();
        let (_, again) = Wal::open(&path, false).unwrap();
        prop_assert_eq!(again.records, replay.records);
        prop_assert_eq!(std::fs::metadata(&path).unwrap().len(), after);
        std::fs::remove_file(&path).unwrap();
    }

    /// Flipping any single bit never panics, never grows the record count,
    /// and never resurrects a job settled inside the surviving prefix —
    /// the checksum trailer turns silent corruption into a clean stop.
    #[test]
    fn bit_flips_stop_replay_cleanly(
        ops in prop::collection::vec((0u8..4, 0u64..4), 1..10),
        pos in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let path = scratch("flip");
        let records = records_of(&ops);
        let mut bytes = journal_bytes(&path, &records);
        let idx = ((bytes.len() - 1) as f64 * pos) as usize;
        bytes[idx] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();
        let (_, replay) = Wal::open(&path, false).unwrap();
        prop_assert!(replay.records <= records.len() as u64);
        let n = replay.records as usize;
        for key in settled_within(&records, n) {
            prop_assert!(
                !replay.pending.iter().any(|(k, _)| *k == key),
                "settled key {key} resurrected by a bit flip at byte {idx} bit {bit}"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// Re-appending the raw bytes of an earlier record (a duplicated
    /// write, e.g. a retried append that actually landed twice) stops
    /// replay at the duplicate: its embedded sequence number no longer
    /// matches its position, so it and everything after are discarded
    /// rather than replayed twice.
    #[test]
    fn duplicate_record_bytes_stop_replay_at_the_duplicate(
        ops in prop::collection::vec((0u8..3, 0u64..4), 2..8),
        dup in 0.0f64..1.0,
    ) {
        let path = scratch("dup");
        let records = records_of(&ops);
        let bytes = journal_bytes(&path, &records);
        // find record boundaries from the length prefixes
        let mut bounds = vec![0usize];
        let mut at = 0usize;
        while at + 4 <= bytes.len() {
            let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
            at += 4 + len;
            bounds.push(at);
        }
        let n_records = bounds.len() - 1;
        let pick = ((n_records - 1) as f64 * dup) as usize;
        let mut doctored = bytes.clone();
        doctored.extend_from_slice(&bytes[bounds[pick]..bounds[pick + 1]]);
        std::fs::write(&path, &doctored).unwrap();
        let (_, replay) = Wal::open(&path, false).unwrap();
        // every original record replays; the duplicate (stale seq) does not
        prop_assert_eq!(replay.records, n_records as u64, "duplicate must not count as a new record");
        prop_assert_eq!(std::fs::metadata(&path).unwrap().len(), bytes.len() as u64, "duplicate bytes truncated away");
        std::fs::remove_file(&path).unwrap();
    }
}
