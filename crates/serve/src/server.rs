//! The job-execution server: admission control in front, a bounded worker
//! pool over the real solver drivers behind, the single-flight result
//! cache in between.
//!
//! Life of a job: `submit` validates the spec and pushes it through the
//! bounded priority queue (rejecting with a retry-after hint, or shedding
//! a lower-priority job, when full). A worker pops it, claims its
//! canonical key in the cache — a hit streams the cold run's payload back
//! byte-for-byte; an owner executes the backend run, stamps the job-level
//! telemetry into the `RunSummary`, optionally cross-checks the field
//! fingerprint against the committed golden snapshots, and fills the
//! cache. Shutdown is graceful by construction: cancellation is the
//! cooperative collective token from `ns-runtime`, so an in-flight rank
//! team always winds down together — it is never abandoned mid-exchange.

use crate::cache::{CacheStats, CachedRun, Claim, ResultCache};
use crate::job::{Backend, JobSpec, Priority};
use crate::queue::{JobQueue, PushError, Pushed, QueuedJob};
use crate::spill::Spill;
use crossbeam_channel::{unbounded, Receiver, Sender};
use ns_core::config::Regime;
use ns_core::shared::SharedSolver;
use ns_core::Solver;
use ns_metrics::{Counter, Gauge, Histogram, Registry};
use ns_runtime::{
    run_parallel_chaos, run_parallel_instrumented, CancelToken, ChaosOptions, FaultPlan, TelemetryOptions,
};
use ns_telemetry::{RunSummary, ServeJobSummary, RUN_SUMMARY_SCHEMA};
use ns_verify::snapshot::{field_hash, GoldenFile};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads (each runs one job at a time; a parallel job spawns
    /// its rank team inside the worker).
    pub workers: usize,
    /// Admission-queue depth bound.
    pub queue_depth: usize,
    /// Golden snapshots to cross-check cold results against, where a cell's
    /// shape matches the oracle's (see [`golden_expectation`]).
    pub golden: Option<GoldenFile>,
    /// Result-cache residency budget in bytes; LRU entries past it are
    /// evicted (to the spill, when one is attached).
    pub cache_budget_bytes: usize,
    /// On-disk spill for the result cache: fills write through, misses
    /// promote back. `None` keeps the cache memory-only.
    pub spill: Option<Spill>,
    /// Brownout threshold as a fraction of `queue_depth`: once the queue
    /// is this full (or cache residency crosses 90% of budget), low-
    /// priority submissions are rejected up front instead of admitted and
    /// shed later.
    pub brownout_fraction: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_depth: 32,
            golden: None,
            cache_budget_bytes: 64 << 20,
            spill: None,
            brownout_fraction: 0.75,
        }
    }
}

/// Why a submission was not admitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Validation failed; nothing was queued.
    Invalid(String),
    /// Queue at capacity (and the job outranked nothing sheddable), or the
    /// server is browning out: back off for roughly `retry_after` and try
    /// again.
    Busy {
        /// Suggested backoff, derived from the per-priority observed
        /// service rate, this job's own cost estimate, and the queue depth
        /// ahead of the caller.
        retry_after: Duration,
        /// True when the rejection came from brownout shedding (queue or
        /// memory pressure past threshold) rather than a hard-full queue.
        brownout: bool,
    },
    /// The server is shutting down.
    Closed,
}

/// A finished job.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Server-assigned job id.
    pub id: u64,
    /// Canonical cache key of the cell (what the daemon journals by).
    pub key: u64,
    /// Reporting label (the spec's, or the canonical case when unset).
    pub label: String,
    /// Canonical case name of the cell.
    pub case: String,
    /// Admission priority.
    pub priority: Priority,
    /// Served from cache?
    pub cache_hit: bool,
    /// Time between admission and a worker claiming the job.
    pub queue_wait: Duration,
    /// Backend execution time (zero for cache hits).
    pub run_wall: Duration,
    /// The result: payload, field fingerprint, golden verdict. Hits share
    /// the cold run's allocation, so duplicate cells are byte-identical by
    /// construction.
    pub run: Arc<CachedRun>,
}

/// Everything a worker can report back.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Completed (cold or from cache).
    Done(JobResult),
    /// Evicted from the queue to admit higher-priority work, or drained by
    /// an immediate shutdown. Never an in-flight job.
    Shed {
        /// Job id.
        id: u64,
        /// Canonical cache key.
        key: u64,
        /// Reporting label.
        label: String,
        /// The shed job's priority.
        priority: Priority,
    },
    /// The backend failed (panic, abort, cancellation, or a deadline that
    /// expired while the job was still queued).
    Failed {
        /// Job id.
        id: u64,
        /// Canonical cache key.
        key: u64,
        /// Reporting label.
        label: String,
        /// What happened.
        error: String,
    },
}

/// Monotonic server counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ServeStats {
    /// Jobs admitted.
    pub submitted: u64,
    /// Jobs completed (cold and cached).
    pub completed: u64,
    /// Submissions rejected with retry-after.
    pub rejected: u64,
    /// Queued jobs shed (eviction or shutdown drain).
    pub shed: u64,
    /// Jobs that failed in a backend.
    pub failed: u64,
    /// Cache hits (including coalesced waiters).
    pub cache_hits: u64,
    /// Cold computes.
    pub cache_misses: u64,
    /// Hits that waited out a concurrent duplicate instead of recomputing.
    pub cache_coalesced: u64,
    /// Cold results cross-checked against a golden fingerprint.
    pub golden_checked: u64,
    /// Cross-checks that disagreed.
    pub golden_mismatches: u64,
    /// Jobs whose deadline expired while still queued (settled as failed
    /// without running).
    pub expired: u64,
    /// Low-priority submissions rejected by brownout shedding.
    pub brownout_rejected: u64,
    /// Cache hits promoted back from the on-disk spill.
    pub spill_hits: u64,
    /// Cache entries evicted to stay inside the byte budget.
    pub cache_evictions: u64,
}

/// Handles into the process-global metrics registry, resolved once at
/// server start; every update on the serving path is one relaxed atomic
/// next to the existing `ServeStats` counter it mirrors.
struct ServeMetrics {
    queue_depth: Arc<Gauge>,
    admitted: Arc<Counter>,
    rejected: Arc<Counter>,
    shed: Arc<Counter>,
    completed: Arc<Counter>,
    failed: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    job_run_us: Arc<Histogram>,
    expired: Arc<Counter>,
    brownout: Arc<Counter>,
}

impl ServeMetrics {
    fn new() -> Self {
        let r = Registry::global();
        Self {
            queue_depth: r.gauge("ns_serve_queue_depth"),
            admitted: r.counter("ns_serve_admitted_total"),
            rejected: r.counter("ns_serve_rejected_total"),
            shed: r.counter("ns_serve_shed_total"),
            completed: r.counter("ns_serve_completed_total"),
            failed: r.counter("ns_serve_failed_total"),
            cache_hits: r.counter("ns_serve_cache_hits_total"),
            cache_misses: r.counter("ns_serve_cache_misses_total"),
            job_run_us: r.histogram("ns_serve_job_run_us"),
            expired: r.counter("ns_serve_expired_total"),
            brownout: r.counter("ns_serve_brownout_total"),
        }
    }

    /// Worker-busy microseconds, folded per backend in the Prometheus
    /// label style (`{backend="serial"}`): backend utilization is the
    /// rate of this counter over wall time. Resolved per cold run, which
    /// is far off the hot path.
    fn backend_busy(backend: Backend) -> Arc<Counter> {
        Registry::global().counter(&format!("ns_serve_backend_busy_us_total{{backend=\"{}\"}}", backend.name()))
    }
}

struct Inner {
    outcomes: Sender<Outcome>,
    metrics: ServeMetrics,
    cancel: CancelToken,
    golden: Option<GoldenFile>,
    workers: usize,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    failed: AtomicU64,
    golden_checked: AtomicU64,
    golden_mismatches: AtomicU64,
    expired: AtomicU64,
    brownout_rejected: AtomicU64,
    /// Per-priority-level EWMA of the cold-run service *rate* in
    /// fixed-point µs per cost unit × 1024 (index = `Priority::level()`).
    /// Keeping a rate instead of a raw duration is the satellite fix: a
    /// cheap job's retry-after scales by its own cost estimate instead of
    /// inheriting whatever expensive job last finished, and tracking it
    /// per level keeps a lane of fat Low sweeps from inflating the hints
    /// handed to High clients.
    rate_x1024: [AtomicU64; 3],
}

impl Inner {
    fn record_service_time(&self, priority: Priority, cost_units: u64, wall: Duration) {
        let us = wall.as_micros().min(u128::from(u64::MAX)) as u64;
        let cur = us.saturating_mul(1024) / cost_units.max(1);
        let slot = &self.rate_x1024[priority.level() as usize];
        let old = slot.load(Ordering::Relaxed);
        let new = if old == 0 { cur } else { (old * 7 + cur * 3) / 10 };
        slot.store(new.max(1), Ordering::Relaxed);
    }

    /// The best available service-rate estimate for a priority level:
    /// its own lane, else any observed lane (highest first — the
    /// conservative guess), else zero (caller falls back to a fixed hint).
    fn rate_for(&self, priority: Priority) -> u64 {
        let own = self.rate_x1024[priority.level() as usize].load(Ordering::Relaxed);
        if own != 0 {
            return own;
        }
        self.rate_x1024.iter().rev().map(|r| r.load(Ordering::Relaxed)).find(|&r| r != 0).unwrap_or(0)
    }
}

/// The server. Dropping it without calling [`Server::finish`] or
/// [`Server::shutdown_now`] joins nothing — call one of them.
pub struct Server {
    queue: Arc<JobQueue>,
    cache: Arc<ResultCache>,
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
    queue_depth: usize,
    brownout_fraction: f64,
}

impl Server {
    /// Start a server and return it with the outcome stream.
    pub fn new(cfg: ServerConfig) -> (Self, Receiver<Outcome>) {
        assert!(cfg.workers >= 1);
        let (tx, rx) = unbounded();
        let queue = Arc::new(JobQueue::new(cfg.queue_depth));
        let cache = Arc::new(match cfg.spill {
            Some(spill) => ResultCache::with_spill(cfg.cache_budget_bytes, spill),
            None => ResultCache::with_budget(cfg.cache_budget_bytes),
        });
        let inner = Arc::new(Inner {
            outcomes: tx,
            metrics: ServeMetrics::new(),
            cancel: CancelToken::new(),
            golden: cfg.golden,
            workers: cfg.workers,
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            golden_checked: AtomicU64::new(0),
            golden_mismatches: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            brownout_rejected: AtomicU64::new(0),
            rate_x1024: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
        });
        let workers = (0..cfg.workers)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let cache = Arc::clone(&cache);
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&queue, &cache, &inner))
            })
            .collect();
        (
            Self {
                queue,
                cache,
                inner,
                workers,
                next_id: AtomicU64::new(1),
                queue_depth: cfg.queue_depth,
                brownout_fraction: cfg.brownout_fraction,
            },
            rx,
        )
    }

    /// A handle on the result cache (the daemon uses it to short-circuit
    /// submits and settle waits without going through the queue).
    pub fn cache_handle(&self) -> Arc<ResultCache> {
        Arc::clone(&self.cache)
    }

    /// True when admission is under brownout: queue depth past the
    /// configured fraction of capacity, or cache residency past 90% of its
    /// byte budget. Low-priority submissions are rejected while this
    /// holds.
    pub fn brownout_active(&self) -> bool {
        // fraction 0 means a zero threshold: every Low submission is
        // rejected (useful for drain-like modes and deterministic tests)
        let threshold = (self.brownout_fraction * self.queue_depth as f64).ceil() as usize;
        if self.queue.len() >= threshold {
            return true;
        }
        let budget = self.cache.budget_bytes();
        budget != usize::MAX && self.cache.resident_bytes() >= budget / 10 * 9
    }

    /// Validate and enqueue a job; returns its id.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, SubmitError> {
        spec.validate().map_err(SubmitError::Invalid)?;
        if spec.priority == Priority::Low && self.brownout_active() {
            self.inner.brownout_rejected.fetch_add(1, Ordering::Relaxed);
            self.inner.metrics.brownout.inc();
            return Err(SubmitError::Busy { retry_after: self.retry_after(&spec), brownout: true });
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let job = QueuedJob { id, spec, submitted: Instant::now() };
        match self.queue.push(job) {
            Ok(Pushed::Admitted) => {}
            Ok(Pushed::Shed(victim)) => {
                self.inner.shed.fetch_add(1, Ordering::Relaxed);
                self.inner.metrics.shed.inc();
                let _ = self.inner.outcomes.send(Outcome::Shed {
                    id: victim.id,
                    key: victim.spec.canonical_key(),
                    label: label_of(&victim.spec),
                    priority: victim.spec.priority,
                });
            }
            Err(PushError::Full(rejected)) => {
                self.inner.rejected.fetch_add(1, Ordering::Relaxed);
                self.inner.metrics.rejected.inc();
                return Err(SubmitError::Busy { retry_after: self.retry_after(&rejected.spec), brownout: false });
            }
            Err(PushError::Closed) => return Err(SubmitError::Closed),
        }
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        self.inner.metrics.admitted.inc();
        self.inner.metrics.queue_depth.set(self.queue.len() as i64);
        Ok(id)
    }

    /// Suggested backoff when a submission is rejected: the rejected job's
    /// *own* estimated service time (its cost units times the per-priority
    /// observed rate) times the queue depth ahead of a retrying caller,
    /// spread over the worker pool. A cheap cell retrying behind a queue
    /// of expensive ones backs off for its own expected slot, not theirs.
    pub fn retry_after(&self, spec: &JobSpec) -> Duration {
        let rate = self.inner.rate_for(spec.priority);
        let per_job = if rate == 0 {
            Duration::from_millis(50)
        } else {
            Duration::from_micros(rate.saturating_mul(spec.cost_units()) / 1024)
        };
        let waves = (self.queue.len() / self.inner.workers).max(1) as u32;
        per_job * waves
    }

    /// Jobs currently queued (not yet claimed by a worker).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Counter snapshot (cache counters folded in).
    pub fn stats(&self) -> ServeStats {
        let CacheStats { hits, misses, coalesced, spill_hits, evictions } = self.cache.stats();
        ServeStats {
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            completed: self.inner.completed.load(Ordering::Relaxed),
            rejected: self.inner.rejected.load(Ordering::Relaxed),
            shed: self.inner.shed.load(Ordering::Relaxed),
            failed: self.inner.failed.load(Ordering::Relaxed),
            cache_hits: hits,
            cache_misses: misses,
            cache_coalesced: coalesced,
            golden_checked: self.inner.golden_checked.load(Ordering::Relaxed),
            golden_mismatches: self.inner.golden_mismatches.load(Ordering::Relaxed),
            expired: self.inner.expired.load(Ordering::Relaxed),
            brownout_rejected: self.inner.brownout_rejected.load(Ordering::Relaxed),
            spill_hits,
            cache_evictions: evictions,
        }
    }

    /// Graceful shutdown: stop admitting, serve everything queued, join
    /// the workers.
    pub fn finish(mut self) -> ServeStats {
        self.queue.close();
        for w in std::mem::take(&mut self.workers) {
            let _ = w.join();
        }
        self.stats()
    }

    /// Immediate shutdown: drain the queue (draining jobs are reported as
    /// shed), fire the cooperative cancel token so in-flight rank teams
    /// wind down together at the next step boundary, join the workers.
    pub fn shutdown_now(mut self) -> ServeStats {
        for victim in self.queue.drain() {
            self.inner.shed.fetch_add(1, Ordering::Relaxed);
            self.inner.metrics.shed.inc();
            let _ = self.inner.outcomes.send(Outcome::Shed {
                id: victim.id,
                key: victim.spec.canonical_key(),
                label: label_of(&victim.spec),
                priority: victim.spec.priority,
            });
        }
        self.inner.metrics.queue_depth.set(0);
        self.inner.cancel.cancel();
        for w in std::mem::take(&mut self.workers) {
            let _ = w.join();
        }
        self.stats()
    }
}

fn label_of(spec: &JobSpec) -> String {
    if spec.label.is_empty() {
        spec.case()
    } else {
        spec.label.clone()
    }
}

fn worker_loop(queue: &JobQueue, cache: &ResultCache, inner: &Inner) {
    while let Some(job) = queue.pop() {
        inner.metrics.queue_depth.set(queue.len() as i64);
        let queue_wait = job.submitted.elapsed();
        let key = job.spec.canonical_key();
        let case = job.spec.case();
        let label = label_of(&job.spec);
        // deadline gate: a job that waited out its deadline in the queue is
        // settled without running (and without touching the cache — the
        // slot stays free for a live claimant)
        if let Some(deadline) = job.spec.deadline {
            if queue_wait > deadline {
                inner.expired.fetch_add(1, Ordering::Relaxed);
                inner.metrics.expired.inc();
                inner.failed.fetch_add(1, Ordering::Relaxed);
                inner.metrics.failed.inc();
                let _ = inner.outcomes.send(Outcome::Failed {
                    id: job.id,
                    key,
                    label,
                    error: format!(
                        "deadline exceeded: waited {:.1}ms of a {:.1}ms budget",
                        queue_wait.as_secs_f64() * 1e3,
                        deadline.as_secs_f64() * 1e3
                    ),
                });
                continue;
            }
        }
        match cache.claim(key) {
            Claim::Hit(run) => {
                inner.completed.fetch_add(1, Ordering::Relaxed);
                inner.metrics.completed.inc();
                inner.metrics.cache_hits.inc();
                let _ = inner.outcomes.send(Outcome::Done(JobResult {
                    id: job.id,
                    key,
                    label,
                    case,
                    priority: job.spec.priority,
                    cache_hit: true,
                    queue_wait,
                    run_wall: Duration::ZERO,
                    run,
                }));
            }
            Claim::Owner => {
                inner.metrics.cache_misses.inc();
                let busy = ServeMetrics::backend_busy(job.spec.backend);
                let t0 = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(|| execute(&job.spec, &inner.cancel)));
                let run_wall = t0.elapsed();
                let run_us = run_wall.as_micros().min(u128::from(u64::MAX)) as u64;
                inner.metrics.job_run_us.record(run_us);
                busy.add(run_us);
                let result = match outcome {
                    Ok(r) => r,
                    Err(panic) => Err(panic_message(&panic)),
                };
                match result {
                    Ok((mut summary, hash)) => {
                        inner.record_service_time(job.spec.priority, job.spec.cost_units(), run_wall);
                        let golden =
                            inner.golden.as_ref().and_then(|g| golden_expectation(g, &job.spec)).map(|expected| {
                                inner.golden_checked.fetch_add(1, Ordering::Relaxed);
                                let ok = expected == ns_verify::snapshot::hash_hex(hash);
                                if !ok {
                                    inner.golden_mismatches.fetch_add(1, Ordering::Relaxed);
                                }
                                ok
                            });
                        summary.serve = Some(ServeJobSummary {
                            job_id: job.id,
                            priority: job.spec.priority.level(),
                            queue_wait_seconds: queue_wait.as_secs_f64(),
                            run_seconds: run_wall.as_secs_f64(),
                            cache: "cold".into(),
                        });
                        let run = cache.fill(
                            key,
                            CachedRun { case: case.clone(), payload: summary.to_json(), field_hash: hash, golden },
                        );
                        inner.completed.fetch_add(1, Ordering::Relaxed);
                        inner.metrics.completed.inc();
                        let _ = inner.outcomes.send(Outcome::Done(JobResult {
                            id: job.id,
                            key,
                            label,
                            case,
                            priority: job.spec.priority,
                            cache_hit: false,
                            queue_wait,
                            run_wall,
                            run,
                        }));
                    }
                    Err(error) => {
                        // aborted/failed runs are never cached: clear the
                        // slot so a waiter or retry can own the key
                        cache.abandon(key);
                        inner.failed.fetch_add(1, Ordering::Relaxed);
                        inner.metrics.failed.inc();
                        let _ = inner.outcomes.send(Outcome::Failed { id: job.id, key, label, error });
                    }
                }
            }
        }
    }
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("backend panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("backend panicked: {s}")
    } else {
        "backend panicked".to_string()
    }
}

/// A summary for the single-process backends (serial, shared), shaped like
/// the parallel driver's.
fn process_summary(spec: &JobSpec, ranks: usize, steps: u64, wall: Duration) -> RunSummary {
    RunSummary {
        schema_version: RUN_SUMMARY_SCHEMA,
        case: spec.case(),
        regime: match spec.cfg.regime {
            Regime::Euler => "euler".to_string(),
            Regime::NavierStokes => "navier-stokes".to_string(),
        },
        nx: spec.cfg.grid.nx,
        nr: spec.cfg.grid.nr,
        ranks,
        steps_requested: spec.steps,
        steps_taken: steps,
        wall_seconds: wall.as_secs_f64(),
        aborted: None,
        phase_seconds: std::collections::BTreeMap::new(),
        comm: ns_telemetry::CommTotals::default(),
        recovery: None,
        conservation: None,
        serve: None,
        metrics: None,
        health: Vec::new(),
    }
}

/// Execute one job on its backend. Returns the summary (without the serve
/// block, stamped by the worker) and the final field's fingerprint, or the
/// abort/cancellation reason.
fn execute(spec: &JobSpec, cancel: &CancelToken) -> Result<(RunSummary, u64), String> {
    let case = spec.case();
    match spec.backend {
        Backend::Serial => {
            let t0 = Instant::now();
            let mut solver = Solver::new(spec.cfg.clone());
            for _ in 0..spec.steps {
                if cancel.is_cancelled() {
                    return Err(format!("cancelled at step {}", solver.nstep));
                }
                solver.step();
            }
            Ok((process_summary(spec, 1, spec.steps, t0.elapsed()), field_hash(&solver.field)))
        }
        Backend::Shared => {
            let t0 = Instant::now();
            let mut solver = SharedSolver::new(spec.cfg.clone(), spec.procs);
            for _ in 0..spec.steps {
                if cancel.is_cancelled() {
                    return Err(format!("cancelled at step {}", solver.nstep));
                }
                solver.step();
            }
            Ok((process_summary(spec, 1, spec.steps, t0.elapsed()), field_hash(&solver.field)))
        }
        Backend::Parallel => {
            let opts = TelemetryOptions { cancel: Some(cancel.clone()), ..Default::default() };
            let run = run_parallel_instrumented(&spec.cfg, spec.procs, spec.steps, spec.comm, opts);
            if let Some(reason) = run.aborted() {
                return Err(reason);
            }
            let hash = field_hash(&run.gather_field());
            Ok((run.summary(&case), hash))
        }
        Backend::Chaos => {
            // fault-free plan: the recovery machinery is armed (checkpoint
            // cadence shorter than the run) but nothing is injected
            let opts = ChaosOptions { plan: FaultPlan::none(42), checkpoint_every: 4, ..Default::default() };
            let run = run_parallel_chaos(&spec.cfg, spec.procs, spec.steps, spec.comm, &opts);
            if let Some(reason) = run.aborted() {
                return Err(reason);
            }
            let hash = field_hash(&run.gather_field());
            Ok((run.summary(&case), hash))
        }
    }
}

/// The golden fingerprint a cold result must reproduce, if the committed
/// snapshots cover this cell. Applicability is deliberately conservative —
/// exactly the cells the differential oracle guarantees *bitwise*: the
/// oracle's grid/steps/paper-config shape, kernel V5, V6 or V7 (the fused
/// V6 and SoA V7 rungs are bitwise-V5 by design), and a backend that is
/// bitwise against the serial reference for the regime (Euler: all of
/// them; Navier-Stokes: only the serial and shared drivers — the
/// distributed radial stencils differ at truncation level). A V7 job with
/// a non-default `tile_r` still matches: any tile size is bitwise
/// (property-tested), but the canonical-config comparison below is against
/// the paper config, which carries the default, so such jobs simply fall
/// outside the golden set — conservative, never wrong.
pub fn golden_expectation<'g>(golden: &'g GoldenFile, spec: &JobSpec) -> Option<&'g str> {
    let c = spec.canonical();
    if [c.cfg.grid.nx, c.cfg.grid.nr] != golden.grid || c.steps != golden.steps {
        return None;
    }
    use ns_core::config::Version;
    if !matches!(c.cfg.version, Version::V5 | Version::V6 | Version::V7) {
        return None;
    }
    // the rest of the config must be exactly the oracle's paper config
    let mut reference = ns_core::config::SolverConfig::paper(c.cfg.grid.clone(), c.cfg.regime);
    reference.version = c.cfg.version;
    if c.cfg != reference {
        return None;
    }
    let bitwise = match c.cfg.regime {
        Regime::Euler => true,
        Regime::NavierStokes => matches!(c.backend, Backend::Serial | Backend::Shared),
    };
    if !bitwise {
        return None;
    }
    let rk = match c.cfg.regime {
        Regime::Euler => "euler",
        Regime::NavierStokes => "navier-stokes",
    };
    golden.entries.get(&format!("{rk}/serial/V5")).map(|snap| snap.hash.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ns_core::config::SolverConfig;
    use ns_numerics::Grid;
    use ns_verify::snapshot;

    fn oracle_shaped_golden() -> (GoldenFile, SolverConfig) {
        // a golden file built from a fresh serial V5 reference on a small
        // oracle-shaped cell (committed golden hashes are
        // platform-dependent; the mechanism is what is under test)
        let grid = Grid::new(48, 16, 50.0, 5.0);
        let cfg = SolverConfig::paper(grid.clone(), Regime::Euler);
        let mut reference = Solver::new(cfg.clone());
        reference.run(4);
        let mut entries = std::collections::BTreeMap::new();
        entries.insert("euler/serial/V5".to_string(), snapshot::of(&reference.field));
        (GoldenFile { schema: snapshot::SCHEMA, grid: [48, 16], steps: 4, entries }, cfg)
    }

    #[test]
    fn golden_cross_check_confirms_bitwise_cells_and_flags_drift() {
        let (golden, cfg) = oracle_shaped_golden();
        let spec = JobSpec::new(cfg.clone(), 4, 2); // parallel Euler: bitwise
        assert!(golden_expectation(&golden, &spec).is_some(), "oracle-shaped Euler parallel cell is covered");
        let (server, rx) = Server::new(ServerConfig {
            workers: 1,
            queue_depth: 4,
            golden: Some(golden.clone()),
            ..Default::default()
        });
        server.submit(spec.clone()).unwrap();
        let done = match rx.recv().unwrap() {
            Outcome::Done(r) => r,
            other => panic!("expected Done, got {other:?}"),
        };
        assert_eq!(done.run.golden, Some(true), "fresh run matches its golden fingerprint");
        let stats = server.finish();
        assert_eq!((stats.golden_checked, stats.golden_mismatches), (1, 0));

        // corrupt the golden entry: the same cell must now be flagged
        let mut bad = golden;
        bad.entries.get_mut("euler/serial/V5").unwrap().hash = snapshot::hash_hex(0xdead_beef);
        let (server, rx) =
            Server::new(ServerConfig { workers: 1, queue_depth: 4, golden: Some(bad), ..Default::default() });
        server.submit(spec).unwrap();
        match rx.recv().unwrap() {
            Outcome::Done(r) => assert_eq!(r.run.golden, Some(false)),
            other => panic!("expected Done, got {other:?}"),
        }
        let stats = server.finish();
        assert_eq!((stats.golden_checked, stats.golden_mismatches), (1, 1));
    }

    #[test]
    fn golden_applicability_is_conservative() {
        let (golden, cfg) = oracle_shaped_golden();
        // NS parallel is only truncation-level: not covered
        let mut ns = cfg.clone();
        ns.regime = Regime::NavierStokes;
        let ns = SolverConfig::paper(ns.grid, Regime::NavierStokes);
        let ns_par = JobSpec::new(ns, 4, 2);
        assert!(golden_expectation(&golden, &ns_par).is_none());
        // different steps: not covered
        let other_steps = JobSpec::new(cfg.clone(), 6, 2);
        assert!(golden_expectation(&golden, &other_steps).is_none());
        // non-paper config (adaptive dt): not covered
        let mut tweaked = cfg;
        tweaked.adaptive_dt = !tweaked.adaptive_dt;
        assert!(golden_expectation(&golden, &JobSpec::new(tweaked, 4, 2)).is_none());
    }

    #[test]
    fn serving_updates_the_global_metrics_registry() {
        let before = Registry::global().snapshot();
        let grid = Grid::new(32, 12, 50.0, 5.0);
        let cfg = SolverConfig::paper(grid, Regime::Euler);
        let (server, rx) = Server::new(ServerConfig { workers: 1, queue_depth: 4, golden: None, ..Default::default() });
        let spec = JobSpec::new(cfg, 2, 1);
        server.submit(spec.clone()).unwrap();
        server.submit(spec).unwrap(); // duplicate cell: a hit once the cold run fills
        let mut done = 0;
        while done < 2 {
            if let Outcome::Done(_) = rx.recv().unwrap() {
                done += 1;
            }
        }
        server.finish();
        let delta = Registry::global().snapshot().diff(&before);
        assert!(delta.counters.get("ns_serve_admitted_total").copied().unwrap_or(0) >= 2);
        assert!(delta.counters.get("ns_serve_completed_total").copied().unwrap_or(0) >= 2);
        assert!(delta.counters.get("ns_serve_cache_misses_total").copied().unwrap_or(0) >= 1);
        let h = delta.histograms.get("ns_serve_job_run_us").expect("job run histogram");
        assert!(h.count >= 1);
        // utilization folded under the backend label (the registry is
        // process-global and other tests run serial jobs too, so assert on
        // this test's own backend only)
        let busy = delta.counters.keys().any(|k| k.starts_with("ns_serve_backend_busy_us_total{backend="));
        assert!(busy, "per-backend busy counter present: {:?}", delta.counters.keys().collect::<Vec<_>>());
    }

    #[test]
    fn retry_after_scales_with_the_rejected_jobs_own_cost() {
        // regression (ISSUE 8 satellite): the old hint was one global EWMA
        // of service *time*, so a cheap job rejected behind expensive ones
        // inherited their backoff wholesale. The rate-based hint scales by
        // the rejected job's own cost estimate instead.
        let (server, _rx) = Server::new(ServerConfig { workers: 1, queue_depth: 2, ..Default::default() });
        // seed the Normal lane's rate as if a fat cell took 1 s
        let fat = JobSpec::new(SolverConfig::paper(Grid::new(64, 24, 50.0, 5.0), Regime::Euler), 100, 1);
        server.inner.record_service_time(Priority::Normal, fat.cost_units(), Duration::from_secs(1));
        let mut cheap = JobSpec::new(SolverConfig::paper(Grid::new(32, 12, 50.0, 5.0), Regime::Euler), 2, 1);
        cheap.backend = Backend::Serial;
        let cheap_hint = server.retry_after(&cheap);
        let fat_hint = server.retry_after(&fat);
        assert!(
            cheap_hint < fat_hint / 20,
            "cheap hint {cheap_hint:?} must be far below the fat job's {fat_hint:?} (ratio of cost units is ~{})",
            fat.cost_units() / cheap.cost_units()
        );
        // and the lanes are independent: an expensive Low lane must not
        // poison a High client's hint when High has its own observations
        server.inner.record_service_time(Priority::Low, 1, Duration::from_secs(10));
        let mut vip = cheap.clone();
        vip.priority = Priority::High;
        server.inner.record_service_time(Priority::High, vip.cost_units(), Duration::from_millis(2));
        assert!(
            server.retry_after(&vip) < Duration::from_millis(50),
            "High lane hint {:?} must come from High observations, not the 10s/unit Low lane",
            server.retry_after(&vip)
        );
        server.finish();
    }

    #[test]
    fn brownout_rejects_low_priority_up_front() {
        // brownout_fraction 0 = zero queue threshold, so brownout holds
        // from the first submission on — deterministic without having to
        // race a worker into keeping the queue deep
        let (server, _rx) =
            Server::new(ServerConfig { workers: 1, queue_depth: 8, brownout_fraction: 0.0, ..Default::default() });
        let mut low = JobSpec::new(SolverConfig::paper(Grid::new(32, 12, 50.0, 5.0), Regime::Euler), 2, 1);
        low.backend = Backend::Serial;
        low.priority = Priority::Low;
        match server.submit(low.clone()) {
            Err(SubmitError::Busy { brownout, .. }) => assert!(brownout, "rejection must be flagged as brownout"),
            other => panic!("expected brownout Busy, got {other:?}"),
        }
        // normal priority rides through the same pressure
        let mut normal = low;
        normal.priority = Priority::Normal;
        server.submit(normal).unwrap();
        let stats = server.finish();
        assert_eq!(stats.brownout_rejected, 1);
        assert_eq!(stats.submitted, 1);
    }

    #[test]
    fn queued_deadline_expiry_settles_without_running() {
        let (server, rx) = Server::new(ServerConfig { workers: 1, queue_depth: 4, ..Default::default() });
        let mut spec = JobSpec::new(SolverConfig::paper(Grid::new(32, 12, 50.0, 5.0), Regime::Euler), 2, 1);
        spec.backend = Backend::Serial;
        spec.deadline = Some(Duration::ZERO); // expired the moment it queues
        server.submit(spec).unwrap();
        match rx.recv().unwrap() {
            Outcome::Failed { error, .. } => assert!(error.contains("deadline exceeded"), "got {error:?}"),
            other => panic!("expected deadline failure, got {other:?}"),
        }
        let stats = server.finish();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.cache_misses, 0, "an expired job must never touch a backend or the cache");
    }

    #[test]
    fn invalid_jobs_are_rejected_at_admission_not_in_a_worker() {
        let (server, _rx) =
            Server::new(ServerConfig { workers: 1, queue_depth: 2, golden: None, ..Default::default() });
        let mut spec = JobSpec::new(SolverConfig::paper(Grid::small(), Regime::Euler), 2, 20);
        assert!(matches!(server.submit(spec.clone()), Err(SubmitError::Invalid(_))));
        spec.procs = 2;
        spec.steps = 0;
        assert!(matches!(server.submit(spec), Err(SubmitError::Invalid(_))));
        let stats = server.finish();
        assert_eq!(stats.submitted, 0);
        assert_eq!(stats.failed, 0);
    }
}
