//! Blocking client for the serve daemon's socket protocol.

use crate::job::JobDesc;
use crate::proto::{read_response, write_request, DaemonStatus, Request, Response};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// Parse a `{:016x}` canonical key back to its integer form.
pub fn parse_key_hex(s: &str) -> Result<u64, String> {
    u64::from_str_radix(s, 16).map_err(|e| format!("malformed key {s:?}: {e}"))
}

/// One connection to a daemon. Requests are strictly sequential (the
/// protocol's per-connection sequence numbers enforce it); open one
/// client per concurrent caller.
pub struct Client {
    stream: UnixStream,
    seq: u64,
}

impl Client {
    /// Connect to a daemon's socket.
    pub fn connect(socket: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self { stream: UnixStream::connect(socket)?, seq: 0 })
    }

    /// One request/response round trip.
    pub fn call(&mut self, request: &Request) -> std::io::Result<Response> {
        write_request(&mut self.stream, self.seq, request)?;
        let response = read_response(&mut self.stream, self.seq)?;
        self.seq += 1;
        Ok(response)
    }

    /// Submit a job once; any [`Response`] variant can come back.
    pub fn submit(&mut self, desc: &JobDesc) -> std::io::Result<Response> {
        self.call(&Request::Submit { desc: desc.clone() })
    }

    /// Submit a job, riding out `Busy` responses by honouring each
    /// retry-after hint (bounded by `budget` of wall time; hints are
    /// clamped to keep a long hint from eating the whole budget in one
    /// sleep). Returns the first non-`Busy` response, or the final `Busy`
    /// when the budget runs out.
    pub fn submit_with_retry(&mut self, desc: &JobDesc, budget: Duration) -> std::io::Result<Response> {
        let deadline = Instant::now() + budget;
        loop {
            let response = self.submit(desc)?;
            let Response::Busy { retry_after_ms, .. } = response else {
                return Ok(response);
            };
            let now = Instant::now();
            if now >= deadline {
                return Ok(response);
            }
            let hint = Duration::from_millis(retry_after_ms.max(1));
            std::thread::sleep(hint.min(deadline - now).min(Duration::from_millis(500)));
        }
    }

    /// Block until the keyed job settles or `timeout` passes on the
    /// daemon side.
    pub fn wait(&mut self, key: &str, timeout: Duration) -> std::io::Result<Response> {
        self.call(&Request::Wait { key: key.to_string(), timeout_ms: timeout.as_millis() as u64 })
    }

    /// Fetch a status snapshot.
    pub fn status(&mut self) -> std::io::Result<DaemonStatus> {
        match self.call(&Request::Status)? {
            Response::Status { status } => Ok(status),
            other => {
                Err(std::io::Error::new(std::io::ErrorKind::InvalidData, format!("expected Status, got {other:?}")))
            }
        }
    }

    /// Ask the daemon to drain gracefully.
    pub fn drain(&mut self) -> std::io::Result<Response> {
        self.call(&Request::Drain)
    }
}
