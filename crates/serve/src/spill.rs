//! On-disk result spill: one checksummed file per completed cell.
//!
//! The spill store is the durable half of the result cache. Every cold run
//! is written through here *before* its `Completed` record is journaled,
//! so a `Completed` in the WAL always points at durable bytes; evicting an
//! entry from the in-memory LRU or restarting the daemon then costs a file
//! read, never a recompute.
//!
//! Layout: `{dir}/{key:016x}.res`, each file a single PR 3 sealed frame
//! (`[body = CachedRun JSON][seq = key][span = 0][checksum]`). Loads
//! validate the checksum and that the embedded sequence number matches the
//! file name's key — a bit flip, a torn write or a renamed file all read
//! back as a miss, not a wrong result. Writes go to a temp file that is
//! atomically renamed into place, so a crash mid-write leaves either the
//! old bytes or nothing.

use crate::cache::CachedRun;
use bytes::Bytes;
use ns_runtime::pack::{frame_checksum, open_frame, FRAME_TRAILER};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Handle on a spill directory. Cheap to clone; all methods are
/// whole-file operations with no shared state beyond the filesystem.
#[derive(Clone, Debug)]
pub struct Spill {
    dir: PathBuf,
    sync: bool,
}

impl Spill {
    /// Open (creating if needed) a spill directory. `sync` fsyncs each
    /// stored file before the atomic rename — required for the WAL's
    /// "`Completed` points at durable bytes" invariant; tests that only
    /// exercise eviction can turn it off.
    pub fn open(dir: impl AsRef<Path>, sync: bool) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir, sync })
    }

    /// The spill directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.res"))
    }

    /// Persist a completed run under its cache key (atomic replace).
    pub fn store(&self, key: u64, run: &CachedRun) -> std::io::Result<()> {
        let body = serde_json::to_string(run).expect("cached run serializes");
        let sum = frame_checksum(key, 0, body.as_bytes());
        let mut framed = Vec::with_capacity(body.len() + FRAME_TRAILER);
        framed.extend_from_slice(body.as_bytes());
        framed.extend_from_slice(&key.to_le_bytes());
        framed.extend_from_slice(&0u64.to_le_bytes());
        framed.extend_from_slice(&sum.to_le_bytes());
        let tmp = self.dir.join(format!("{key:016x}.tmp"));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&framed)?;
            if self.sync {
                f.sync_data()?;
            }
        }
        fs::rename(&tmp, self.path_for(key))
    }

    /// Load a spilled run. Any corruption (checksum failure, key mismatch,
    /// unparseable body) reads back as `None`.
    pub fn load(&self, key: u64) -> Option<Arc<CachedRun>> {
        let bytes = fs::read(self.path_for(key)).ok()?;
        let frame = open_frame(Bytes::from(bytes)).ok()?;
        if frame.seq != key {
            return None;
        }
        serde_json::from_slice::<CachedRun>(&frame.body).ok().map(Arc::new)
    }

    /// Whether a (possibly corrupt) spill file exists for the key.
    pub fn contains(&self, key: u64) -> bool {
        self.path_for(key).exists()
    }

    /// Number of `.res` files currently spilled.
    pub fn len(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok()).filter(|e| e.path().extension().map(|x| x == "res").unwrap_or(false)).count()
            })
            .unwrap_or(0)
    }

    /// True when no results are spilled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(tag: &str) -> CachedRun {
        CachedRun {
            case: format!("euler/V5/serial/p1/commV5/nx48x16/s2/{tag}"),
            payload: format!("{{\"tag\":\"{tag}\"}}"),
            field_hash: 0xfeed_beef,
            golden: Some(true),
        }
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ns-spill-{:x}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_load_roundtrip() {
        let spill = Spill::open(scratch("roundtrip"), true).unwrap();
        spill.store(42, &run("a")).unwrap();
        let got = spill.load(42).unwrap();
        assert_eq!(got.payload, run("a").payload);
        assert_eq!(got.field_hash, 0xfeed_beef);
        assert!(spill.contains(42));
        assert!(!spill.contains(43));
        assert_eq!(spill.len(), 1);
        fs::remove_dir_all(spill.dir()).unwrap();
    }

    #[test]
    fn corruption_reads_as_miss() {
        let spill = Spill::open(scratch("corrupt"), false).unwrap();
        spill.store(7, &run("b")).unwrap();
        let path = spill.dir().join(format!("{:016x}.res", 7u64));
        let mut bytes = fs::read(&path).unwrap();
        bytes[3] ^= 0x10;
        fs::write(&path, &bytes).unwrap();
        assert!(spill.load(7).is_none(), "bit flip must not deserialize");
        // a file renamed under the wrong key is also a miss (seq mismatch)
        spill.store(8, &run("c")).unwrap();
        fs::rename(spill.dir().join(format!("{:016x}.res", 8u64)), spill.dir().join(format!("{:016x}.res", 9u64)))
            .unwrap();
        assert!(spill.load(9).is_none(), "key/seq mismatch must not load");
        fs::remove_dir_all(spill.dir()).unwrap();
    }
}
