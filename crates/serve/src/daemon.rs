//! `ns-served`: the crash-durable serve daemon.
//!
//! The daemon wraps the in-process [`Server`] with the three things a
//! long campaign needs to survive shared infrastructure (the operating
//! mode of the related-work sweep campaigns): a Unix-socket transport
//! speaking the checksummed [`crate::proto`] frames, a write-ahead
//! journal ([`crate::wal`]) that makes admission durable, and a
//! spill-backed result cache so completed cells are served from bytes
//! across restarts.
//!
//! Ordering invariants (the durability model, DESIGN §15):
//!
//! 1. A job is journaled `Admitted` *before* its `Admitted` response is
//!    sent (fsynced when `sync` is on). An acknowledged job therefore
//!    survives `kill -9` and is re-enqueued on restart.
//! 2. A cold result is written through to the spill *before* its
//!    `Completed` record is appended (the cache fill happens before the
//!    worker emits its outcome, and the pump journals from outcomes), so
//!    a `Completed` record always points at durable bytes and a restart
//!    never recomputes a completed cell.
//! 3. Graceful drain: stop admitting → run everything still queued →
//!    journal `CleanShutdown` → dump the flight recorder → remove the
//!    socket. Zero admitted jobs are lost, by construction rather than by
//!    timing.

use crate::cache::ResultCache;
use crate::client::parse_key_hex;
use crate::job::JobDesc;
use crate::proto::{read_request, write_response, DaemonStatus, Request, Response};
use crate::server::{Outcome, Server, ServerConfig, SubmitError};
use crate::spill::Spill;
use crate::wal::{key_hex, Wal, WalRecord, WalReplay};
use crate::CachedRun;
use crossbeam_channel::Receiver;
use ns_metrics::{FlightDump, FlightRecorder, Registry};
use ns_verify::snapshot::GoldenFile;
use std::collections::{HashMap, HashSet};
use std::io::ErrorKind;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Process signal plumbing for `jetns served`: a SIGTERM/SIGINT handler
/// that only sets a flag (the async-signal-safe minimum), polled by the
/// daemon's run loop to trigger a graceful drain.
pub mod term {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_term(_sig: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    // libc's signal(2) — declared directly, the C library is linked anyway
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Install the SIGTERM/SIGINT handler. Idempotent.
    pub fn install_term_handler() {
        let handler = on_term as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }

    /// True once SIGTERM or SIGINT has been delivered.
    pub fn term_requested() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

/// Daemon tuning.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// State directory: holds the WAL (`jobs.wal`), the spill
    /// (`spill/`), and flight dumps.
    pub state_dir: PathBuf,
    /// Socket path; defaults to `{state_dir}/served.sock`.
    pub socket: Option<PathBuf>,
    /// Worker threads.
    pub workers: usize,
    /// Admission-queue depth.
    pub queue_depth: usize,
    /// Result-cache residency budget in bytes.
    pub cache_budget_bytes: usize,
    /// fsync WAL admits and spill writes (turn off only in tests that
    /// don't exercise crash durability).
    pub sync: bool,
    /// Brownout threshold as a fraction of `queue_depth`.
    pub brownout_fraction: f64,
    /// Golden snapshots for cold-result cross-checks.
    pub golden: Option<GoldenFile>,
}

impl DaemonConfig {
    /// Defaults rooted at `state_dir`.
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        Self {
            state_dir: state_dir.into(),
            socket: None,
            workers: 2,
            queue_depth: 32,
            cache_budget_bytes: 64 << 20,
            sync: true,
            brownout_fraction: 0.75,
            golden: None,
        }
    }
}

/// How a settled job is remembered for `Wait` clients.
enum Settled {
    Done {
        run: Arc<CachedRun>,
        /// `"cold"` or `"hit"` (how the worker served it).
        cache: &'static str,
        queue_ms: f64,
        run_ms: f64,
    },
    Failed(String),
}

struct WaitHub {
    settled: Mutex<HashMap<u64, Settled>>,
    cv: Condvar,
}

struct Shared {
    server: Mutex<Option<Server>>,
    cache: Arc<ResultCache>,
    wal: Mutex<Wal>,
    hub: WaitHub,
    inflight: Mutex<HashSet<u64>>,
    draining: AtomicBool,
    flight: Mutex<FlightRecorder>,
    state_dir: PathBuf,
}

impl Shared {
    fn record(&self, kind: &str, label: &str, key: Option<u64>) {
        self.flight.lock().unwrap().record(kind, label, None, key, None, 0);
    }

    fn dump_flight(&self, reason: &str) {
        let dump = self.flight.lock().unwrap().dump(0, reason);
        let path = self.state_dir.join(FlightDump::file_name(0));
        let _ = std::fs::write(path, dump.to_json());
    }
}

/// Final accounting handed back by [`Daemon::drain`].
#[derive(Clone, Debug)]
pub struct DrainReport {
    /// Server counters at shutdown.
    pub stats: crate::server::ServeStats,
    /// Total WAL records (replayed + written this incarnation).
    pub wal_records: u64,
    /// Results sitting in the spill store.
    pub spilled: usize,
}

/// The running daemon. Create with [`Daemon::start`], end with
/// [`Daemon::drain`].
pub struct Daemon {
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    pump_thread: Option<JoinHandle<()>>,
    socket_path: PathBuf,
    replay: WalReplay,
}

impl Daemon {
    /// Start the daemon: replay the journal, re-enqueue unsettled jobs,
    /// bind the socket, start the accept loop and the outcome pump.
    pub fn start(cfg: DaemonConfig) -> std::io::Result<Self> {
        std::fs::create_dir_all(&cfg.state_dir)?;
        let socket_path = cfg.socket.clone().unwrap_or_else(|| cfg.state_dir.join("served.sock"));
        let (wal, replay) = Wal::open(cfg.state_dir.join("jobs.wal"), cfg.sync)?;
        let spill = Spill::open(cfg.state_dir.join("spill"), cfg.sync)?;
        let (server, outcomes) = Server::new(ServerConfig {
            workers: cfg.workers,
            queue_depth: cfg.queue_depth,
            golden: cfg.golden.clone(),
            cache_budget_bytes: cfg.cache_budget_bytes,
            spill: Some(spill),
            brownout_fraction: cfg.brownout_fraction,
        });
        let cache = server.cache_handle();
        let shared = Arc::new(Shared {
            server: Mutex::new(Some(server)),
            cache,
            wal: Mutex::new(wal),
            hub: WaitHub { settled: Mutex::new(HashMap::new()), cv: Condvar::new() },
            inflight: Mutex::new(HashSet::new()),
            draining: AtomicBool::new(false),
            flight: Mutex::new(FlightRecorder::default()),
            state_dir: cfg.state_dir.clone(),
        });

        let unclean = !replay.pending.is_empty() || (replay.records > 0 && !replay.clean_shutdown);
        if unclean {
            shared.record("restart", &format!("unclean restart: {} pending", replay.pending.len()), None);
            shared.dump_flight("unclean-restart");
            Registry::global().counter("ns_served_unclean_restarts_total").inc();
        }

        // the pump journals settles and wakes Wait clients; started before
        // replay so replayed jobs settle through the same path
        let pump_thread = Some({
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || outcome_pump(&shared, &outcomes))
        });

        // re-enqueue admitted-but-unsettled jobs from the previous
        // incarnation (already journaled: no second Admitted record)
        let replayed = Registry::global().counter("ns_served_replayed_total");
        for (key_str, desc) in &replay.pending {
            let Ok(key) = parse_key_hex(key_str) else { continue };
            if shared.cache.peek(key).is_some() {
                // settled after all: the Completed record was lost to a torn
                // tail but the spill write survived
                let mut wal = shared.wal.lock().unwrap();
                let _ = wal.append(&WalRecord::Completed { key: key_str.clone() });
                continue;
            }
            shared.inflight.lock().unwrap().insert(key);
            resubmit_with_patience(&shared, key, desc);
            replayed.inc();
        }

        let _ = std::fs::remove_file(&socket_path);
        let listener = UnixListener::bind(&socket_path)?;
        listener.set_nonblocking(true)?;
        let accept_thread = Some({
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener))
        });

        Ok(Self { shared, accept_thread, pump_thread, socket_path, replay })
    }

    /// What journal replay found at startup.
    pub fn replay(&self) -> &WalReplay {
        &self.replay
    }

    /// The socket path clients connect to.
    pub fn socket_path(&self) -> &Path {
        &self.socket_path
    }

    /// True once a drain has been requested (by a client `Drain` request;
    /// the host loop should then call [`Daemon::drain`]).
    pub fn drain_requested(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Admitted-but-unsettled jobs currently tracked.
    pub fn inflight(&self) -> usize {
        self.shared.inflight.lock().unwrap().len()
    }

    /// Graceful drain: stop admitting, finish every admitted job, journal
    /// `CleanShutdown`, dump the flight recorder, remove the socket.
    pub fn drain(mut self) -> std::io::Result<DrainReport> {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.record("drain", "drain requested", None);
        let server = self.shared.server.lock().unwrap().take();
        let stats = match server {
            Some(server) => server.finish(),
            None => Default::default(),
        };
        if let Some(pump) = self.pump_thread.take() {
            let _ = pump.join();
        }
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        let wal_records = {
            let mut wal = self.shared.wal.lock().unwrap();
            wal.append(&WalRecord::CleanShutdown)?;
            wal.records()
        };
        self.shared.record("drain", "clean shutdown journaled", None);
        self.shared.dump_flight("drain");
        let _ = std::fs::remove_file(&self.socket_path);
        let spilled = Spill::open(self.shared.state_dir.join("spill"), false).map(|s| s.len()).unwrap_or(0);
        Ok(DrainReport { stats, wal_records, spilled })
    }
}

/// Re-submit a replayed job, riding out `Busy` rejections: the restart
/// backlog can exceed the queue depth, and workers are already chewing
/// through it, so patience is all that's needed.
fn resubmit_with_patience(shared: &Shared, key: u64, desc: &JobDesc) {
    let spec = match desc.to_spec() {
        Ok(spec) => spec,
        Err(reason) => {
            // journaled under an older validation regime: settle it
            settle(shared, key, Settled::Failed(format!("replayed job no longer valid: {reason}")));
            let mut wal = shared.wal.lock().unwrap();
            let _ = wal.append(&WalRecord::Cancelled { key: key_hex(key), reason });
            return;
        }
    };
    loop {
        let backoff = {
            let guard = shared.server.lock().unwrap();
            let Some(server) = guard.as_ref() else { return };
            match server.submit(spec.clone()) {
                Ok(_) => return,
                Err(SubmitError::Busy { retry_after, .. }) => retry_after.min(Duration::from_millis(200)),
                Err(SubmitError::Closed) => return,
                Err(SubmitError::Invalid(reason)) => {
                    drop(guard);
                    settle(shared, key, Settled::Failed(reason.clone()));
                    let mut wal = shared.wal.lock().unwrap();
                    let _ = wal.append(&WalRecord::Cancelled { key: key_hex(key), reason });
                    return;
                }
            }
        };
        std::thread::sleep(backoff);
    }
}

fn settle(shared: &Shared, key: u64, how: Settled) {
    shared.inflight.lock().unwrap().remove(&key);
    shared.hub.settled.lock().unwrap().insert(key, how);
    shared.hub.cv.notify_all();
}

/// Journal settles and wake waiters. Runs until the server (and with it
/// every outcome sender) is gone.
fn outcome_pump(shared: &Shared, outcomes: &Receiver<Outcome>) {
    while let Ok(outcome) = outcomes.recv() {
        match outcome {
            Outcome::Done(res) => {
                // ordering invariant 2: the worker filled the cache (spill
                // write-through) before sending this outcome, so the
                // Completed record below always points at durable bytes
                {
                    let mut wal = shared.wal.lock().unwrap();
                    let _ = wal.append(&WalRecord::Completed { key: key_hex(res.key) });
                }
                shared.record("complete", &res.case, Some(res.key));
                settle(
                    shared,
                    res.key,
                    Settled::Done {
                        run: Arc::clone(&res.run),
                        cache: if res.cache_hit { "hit" } else { "cold" },
                        queue_ms: res.queue_wait.as_secs_f64() * 1e3,
                        run_ms: res.run_wall.as_secs_f64() * 1e3,
                    },
                );
            }
            Outcome::Failed { key, error, .. } => {
                {
                    let mut wal = shared.wal.lock().unwrap();
                    let _ = wal.append(&WalRecord::Cancelled { key: key_hex(key), reason: error.clone() });
                }
                shared.record("fail", &error, Some(key));
                settle(shared, key, Settled::Failed(error));
            }
            Outcome::Shed { key, label, .. } => {
                let reason = format!("shed under load: {label}");
                {
                    let mut wal = shared.wal.lock().unwrap();
                    let _ = wal.append(&WalRecord::Cancelled { key: key_hex(key), reason: reason.clone() });
                }
                shared.record("shed", &label, Some(key));
                settle(shared, key, Settled::Failed(reason));
            }
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &UnixListener) {
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let shared = Arc::clone(shared);
                // detached: a connection never blocks the drain (drained
                // daemons answer `Draining` to submits)
                std::thread::spawn(move || connection(&shared, stream));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => return,
        }
    }
}

fn connection(shared: &Shared, mut stream: UnixStream) {
    let mut seq = 0u64;
    loop {
        let request = match read_request(&mut stream, seq) {
            Ok(r) => r,
            Err(_) => return, // EOF, checksum failure or desync: drop the connection
        };
        let response = handle(shared, request);
        if write_response(&mut stream, seq, &response).is_err() {
            return;
        }
        seq += 1;
    }
}

fn done_response(key: u64, run: &CachedRun, cache: &str, queue_ms: f64, run_ms: f64) -> Response {
    Response::Done {
        key: key_hex(key),
        case: run.case.clone(),
        cache: cache.to_string(),
        payload: run.payload.clone(),
        field_hash: ns_verify::snapshot::hash_hex(run.field_hash),
        queue_ms,
        run_ms,
    }
}

fn handle(shared: &Shared, request: Request) -> Response {
    match request {
        Request::Submit { desc } => submit(shared, &desc),
        Request::Wait { key, timeout_ms } => wait(shared, &key, Duration::from_millis(timeout_ms)),
        Request::Status => status(shared),
        Request::Drain => {
            shared.record("drain", "client drain request", None);
            shared.draining.store(true, Ordering::SeqCst);
            Response::Draining
        }
    }
}

fn submit(shared: &Shared, desc: &JobDesc) -> Response {
    let spec = match desc.to_spec() {
        Ok(spec) => spec,
        Err(reason) => return Response::Invalid { reason },
    };
    let key = spec.canonical_key();
    // durable short-circuit: a key with a result (resident or spilled)
    // answers immediately and is never journaled or queued again
    if let Some(run) = shared.cache.peek(key) {
        shared.record("durable-hit", &run.case, Some(key));
        return done_response(key, &run, "durable", 0.0, 0.0);
    }
    // ordering invariant 1: journal (fsync) before acknowledging. The
    // server guard is held across submit + journal so a drain (which
    // takes the server, then appends CleanShutdown) can never interleave
    // an Admitted record after the shutdown marker.
    let guard = shared.server.lock().unwrap();
    let Some(server) = guard.as_ref() else {
        return Response::Draining;
    };
    match server.submit(spec) {
        Ok(id) => {
            shared.inflight.lock().unwrap().insert(key);
            let mut wal = shared.wal.lock().unwrap();
            if let Err(e) = wal.append(&WalRecord::Admitted { key: key_hex(key), desc: desc.clone() }) {
                return Response::Failed { key: key_hex(key), error: format!("journal append failed: {e}") };
            }
            shared.record("admit", &desc.label.clone().unwrap_or_default(), Some(key));
            Response::Admitted { id, key: key_hex(key) }
        }
        Err(SubmitError::Busy { retry_after, brownout }) => {
            Response::Busy { retry_after_ms: retry_after.as_millis().max(1) as u64, brownout }
        }
        Err(SubmitError::Invalid(reason)) => Response::Invalid { reason },
        Err(SubmitError::Closed) => Response::Draining,
    }
}

fn wait(shared: &Shared, key_str: &str, timeout: Duration) -> Response {
    let Ok(key) = parse_key_hex(key_str) else {
        return Response::Invalid { reason: format!("malformed key {key_str:?}") };
    };
    let deadline = Instant::now() + timeout;
    let mut settled = shared.hub.settled.lock().unwrap();
    loop {
        match settled.get(&key) {
            Some(Settled::Done { run, cache, queue_ms, run_ms }) => {
                return done_response(key, run, cache, *queue_ms, *run_ms);
            }
            Some(Settled::Failed(error)) => {
                return Response::Failed { key: key_hex(key), error: error.clone() };
            }
            None => {}
        }
        // a previous incarnation's result never enters the hub — check the
        // durable cache too
        drop(settled);
        if let Some(run) = shared.cache.peek(key) {
            return done_response(key, &run, "durable", 0.0, 0.0);
        }
        settled = shared.hub.settled.lock().unwrap();
        let now = Instant::now();
        if now >= deadline {
            return Response::TimedOut { key: key_hex(key) };
        }
        let (guard, _timed_out) = shared.hub.cv.wait_timeout(settled, deadline - now).unwrap();
        settled = guard;
    }
}

fn status(shared: &Shared) -> Response {
    let guard = shared.server.lock().unwrap();
    let (stats, queue_len, brownout) = match guard.as_ref() {
        Some(server) => (server.stats(), server.queue_len() as u64, server.brownout_active()),
        None => (Default::default(), 0, false),
    };
    drop(guard);
    Response::Status {
        status: DaemonStatus {
            stats,
            queue_len,
            inflight: shared.inflight.lock().unwrap().len() as u64,
            wal_records: shared.wal.lock().unwrap().records(),
            draining: shared.draining.load(Ordering::SeqCst),
            brownout,
        },
    }
}
