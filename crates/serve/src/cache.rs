//! Content-addressed, single-flight result cache with a byte-budget LRU
//! and optional on-disk spill.
//!
//! Keys are [`crate::job::JobSpec::canonical_key`] hashes; values are the
//! cold run's serialized `RunSummary` payload plus its field fingerprint.
//! A hit replays the cold payload byte-for-byte (the stored `Arc` is
//! shared, not re-serialized). The cache is *single-flight*: the first
//! claimant of a key becomes its owner and computes; concurrent claimants
//! of the same key block until the owner fills (or abandons) the slot, so
//! a duplicated sweep cell is computed exactly once even when both copies
//! are dequeued simultaneously.
//!
//! Residency is bounded: ready entries are charged their payload bytes
//! against a budget, and filling past it evicts the least-recently-used
//! entries (the just-touched entry is never the victim, so one oversized
//! result still serves its duplicates). With a [`Spill`] attached, every
//! fill is written through to disk before it becomes visible, and an
//! evicted or restart-lost entry is transparently promoted back from its
//! spill file on the next claim — eviction trades memory for a file read,
//! never for a recompute.

use crate::spill::Spill;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A cached cold-run result.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CachedRun {
    /// Canonical case name of the cell.
    pub case: String,
    /// The cold run's full `RunSummary` JSON, replayed verbatim on hits.
    pub payload: String,
    /// FNV-1a 64 fingerprint of the final field's interior bit patterns
    /// (the same hash `GOLDEN_verify.json` records).
    pub field_hash: u64,
    /// Golden cross-check verdict: `None` when no golden entry applied,
    /// `Some(true/false)` when the fingerprint was checked.
    pub golden: Option<bool>,
}

fn cost_of(run: &CachedRun) -> usize {
    // map + Arc + bookkeeping overhead per entry, then the owned strings
    64 + run.case.len() + run.payload.len()
}

enum Slot {
    /// An owner is computing this key.
    Pending,
    /// Result resident in memory; `last_used` orders eviction.
    Ready { run: Arc<CachedRun>, last_used: u64, bytes: usize },
}

/// What a [`ResultCache::claim`] got.
pub enum Claim {
    /// Nobody has computed this key: the caller owns it and must
    /// [`ResultCache::fill`] or [`ResultCache::abandon`] it.
    Owner,
    /// Served from cache (counted as a hit; claimants that waited out a
    /// pending owner are additionally counted as coalesced).
    Hit(Arc<CachedRun>),
}

/// Monotonic cache counters, readable at any time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Claims served from a ready slot (includes coalesced waiters and
    /// spill promotions).
    pub hits: u64,
    /// Claims that became owners (cold computes).
    pub misses: u64,
    /// Hits that waited out a concurrent owner instead of finding the
    /// result ready.
    pub coalesced: u64,
    /// Hits promoted back from the on-disk spill (evicted earlier, or
    /// written by a previous daemon incarnation).
    pub spill_hits: u64,
    /// Ready entries evicted to stay inside the byte budget.
    pub evictions: u64,
}

struct Inner {
    slots: HashMap<u64, Slot>,
    resident_bytes: usize,
    clock: u64,
}

/// The cache. All methods are thread-safe.
pub struct ResultCache {
    inner: Mutex<Inner>,
    cv: Condvar,
    budget_bytes: usize,
    spill: Option<Spill>,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    spill_hits: AtomicU64,
    evictions: AtomicU64,
}

impl Default for ResultCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ResultCache {
    /// An unbounded in-memory cache (the PR 5 behaviour; tests and the
    /// short-lived in-process serve path).
    pub fn new() -> Self {
        Self::with_budget(usize::MAX)
    }

    /// An in-memory cache that evicts LRU entries past `budget_bytes`.
    pub fn with_budget(budget_bytes: usize) -> Self {
        Self {
            inner: Mutex::new(Inner { slots: HashMap::new(), resident_bytes: 0, clock: 0 }),
            cv: Condvar::new(),
            budget_bytes,
            spill: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            spill_hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A bounded cache with write-through spill: fills persist to `spill`
    /// before publishing, and misses check the spill before claiming
    /// ownership.
    pub fn with_spill(budget_bytes: usize, spill: Spill) -> Self {
        let mut c = Self::with_budget(budget_bytes);
        c.spill = Some(spill);
        c
    }

    /// The configured byte budget (`usize::MAX` when unbounded).
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Bytes currently charged for resident ready entries.
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().unwrap().resident_bytes
    }

    /// Evict least-recently-used ready entries until the budget holds.
    /// `keep` is never the victim: the entry just touched must stay
    /// resident even if it alone exceeds the budget.
    fn evict_over_budget(&self, inner: &mut Inner, keep: u64) {
        while inner.resident_bytes > self.budget_bytes {
            let victim = inner
                .slots
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready { last_used, .. } if *k != keep => Some((*k, *last_used)),
                    _ => None,
                })
                .min_by_key(|&(_, used)| used)
                .map(|(k, _)| k);
            let Some(k) = victim else { break };
            if let Some(Slot::Ready { bytes, .. }) = inner.slots.remove(&k) {
                inner.resident_bytes -= bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn insert_ready(&self, inner: &mut Inner, key: u64, run: Arc<CachedRun>) {
        let bytes = cost_of(&run);
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(Slot::Ready { bytes: old, .. }) =
            inner.slots.insert(key, Slot::Ready { run, last_used: clock, bytes })
        {
            inner.resident_bytes -= old;
        }
        inner.resident_bytes += bytes;
        self.evict_over_budget(inner, key);
    }

    /// Claim a key: either become its owner or get the (possibly awaited)
    /// result.
    pub fn claim(&self, key: u64) -> Claim {
        let mut inner = self.inner.lock().unwrap();
        let mut waited = false;
        loop {
            inner.clock += 1;
            let clock = inner.clock;
            match inner.slots.get_mut(&key) {
                None => {
                    // not resident — promote from spill before owning
                    if let Some(run) = self.spill.as_ref().and_then(|s| s.load(key)) {
                        self.insert_ready(&mut inner, key, Arc::clone(&run));
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        self.spill_hits.fetch_add(1, Ordering::Relaxed);
                        if waited {
                            self.coalesced.fetch_add(1, Ordering::Relaxed);
                        }
                        return Claim::Hit(run);
                    }
                    inner.slots.insert(key, Slot::Pending);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return Claim::Owner;
                }
                Some(Slot::Ready { run, last_used, .. }) => {
                    *last_used = clock;
                    let run = Arc::clone(run);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    if waited {
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                    }
                    return Claim::Hit(run);
                }
                Some(Slot::Pending) => {
                    waited = true;
                    inner = self.cv.wait(inner).unwrap();
                }
            }
        }
    }

    /// Non-claiming lookup: the result if it is resident or spilled,
    /// `None` if absent *or currently being computed*. Used by the daemon
    /// to short-circuit submits and settle waits without ever becoming an
    /// accidental owner.
    pub fn peek(&self, key: u64) -> Option<Arc<CachedRun>> {
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.slots.get_mut(&key) {
            Some(Slot::Ready { run, last_used, .. }) => {
                *last_used = clock;
                let run = Arc::clone(run);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(run)
            }
            Some(Slot::Pending) => None,
            None => {
                let run = self.spill.as_ref().and_then(|s| s.load(key))?;
                self.insert_ready(&mut inner, key, Arc::clone(&run));
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.spill_hits.fetch_add(1, Ordering::Relaxed);
                Some(run)
            }
        }
    }

    /// Publish the owner's result and wake coalesced waiters. With a
    /// spill attached the result is persisted *before* it becomes visible;
    /// a spill write failure is not fatal (the entry stays resident and
    /// correct, it just won't survive a restart — degradation is
    /// recompute-later, never wrong bytes).
    pub fn fill(&self, key: u64, run: CachedRun) -> Arc<CachedRun> {
        if let Some(spill) = &self.spill {
            let _ = spill.store(key, &run);
        }
        let run = Arc::new(run);
        let mut inner = self.inner.lock().unwrap();
        self.insert_ready(&mut inner, key, Arc::clone(&run));
        drop(inner);
        self.cv.notify_all();
        run
    }

    /// Give up ownership without a result (failed or aborted run): the slot
    /// is cleared so a waiter (or a retry) can become the next owner.
    pub fn abandon(&self, key: u64) {
        let mut inner = self.inner.lock().unwrap();
        if matches!(inner.slots.get(&key), Some(Slot::Pending)) {
            inner.slots.remove(&key);
        }
        drop(inner);
        self.cv.notify_all();
    }

    /// Ready entries currently resident in memory.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().slots.values().filter(|s| matches!(s, Slot::Ready { .. })).count()
    }

    /// True when no ready entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            spill_hits: self.spill_hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(case: &str) -> CachedRun {
        CachedRun { case: case.into(), payload: format!("{{\"case\":\"{case}\"}}"), field_hash: 7, golden: None }
    }

    fn sized(case: &str, payload_len: usize) -> CachedRun {
        CachedRun { case: case.into(), payload: "x".repeat(payload_len), field_hash: 7, golden: None }
    }

    #[test]
    fn owner_then_hit_shares_the_same_allocation() {
        let c = ResultCache::new();
        assert!(matches!(c.claim(1), Claim::Owner));
        let stored = c.fill(1, run("a"));
        match c.claim(1) {
            Claim::Hit(got) => assert!(Arc::ptr_eq(&got, &stored), "hits replay the stored payload, not a copy"),
            Claim::Owner => panic!("second claim must hit"),
        }
        assert_eq!(c.stats(), CacheStats { hits: 1, misses: 1, ..CacheStats::default() });
    }

    #[test]
    fn concurrent_duplicate_claims_coalesce() {
        let c = Arc::new(ResultCache::new());
        assert!(matches!(c.claim(9), Claim::Owner));
        let waiter = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || match c.claim(9) {
                Claim::Hit(r) => r.case.clone(),
                Claim::Owner => panic!("waiter must not become owner"),
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        c.fill(9, run("dup"));
        assert_eq!(waiter.join().unwrap(), "dup");
        assert_eq!(c.stats(), CacheStats { hits: 1, misses: 1, coalesced: 1, ..CacheStats::default() });
    }

    #[test]
    fn abandon_lets_a_waiter_take_over() {
        let c = Arc::new(ResultCache::new());
        assert!(matches!(c.claim(5), Claim::Owner));
        let waiter = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || matches!(c.claim(5), Claim::Owner))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        c.abandon(5);
        assert!(waiter.join().unwrap(), "after abandon the waiter owns the key");
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn budget_evicts_least_recently_used_first() {
        // each entry costs 64 + case + payload; budget fits two of these
        let entry_cost = cost_of(&sized("c1", 200));
        let c = ResultCache::with_budget(entry_cost * 2);
        for key in 1..=2u64 {
            assert!(matches!(c.claim(key), Claim::Owner));
            c.fill(key, sized(&format!("c{key}"), 200));
        }
        assert_eq!(c.len(), 2);
        // touch key 1 so key 2 becomes the LRU victim
        assert!(matches!(c.claim(1), Claim::Hit(_)));
        assert!(matches!(c.claim(3), Claim::Owner));
        c.fill(3, sized("c3", 200));
        assert_eq!(c.len(), 2, "third fill must evict exactly one entry");
        assert_eq!(c.stats().evictions, 1);
        assert!(matches!(c.claim(1), Claim::Hit(_)), "recently-touched entry survives");
        assert!(matches!(c.claim(3), Claim::Hit(_)), "just-filled entry survives");
        assert!(matches!(c.claim(2), Claim::Owner), "LRU entry was evicted (no spill: recompute)");
        assert!(c.resident_bytes() <= c.budget_bytes());
    }

    #[test]
    fn oversized_entry_stays_resident_alone() {
        let c = ResultCache::with_budget(32); // smaller than any entry
        assert!(matches!(c.claim(1), Claim::Owner));
        c.fill(1, sized("big", 500));
        assert_eq!(c.len(), 1, "the just-filled entry is never its own victim");
        assert!(matches!(c.claim(1), Claim::Hit(_)));
        // the next fill displaces it
        assert!(matches!(c.claim(2), Claim::Owner));
        c.fill(2, sized("big2", 500));
        assert_eq!(c.len(), 1);
        assert!(matches!(c.claim(2), Claim::Hit(_)));
    }

    #[test]
    fn eviction_with_spill_promotes_instead_of_recomputing() {
        let dir = std::env::temp_dir().join(format!("ns-cache-spill-{:x}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spill = Spill::open(&dir, false).unwrap();
        let entry_cost = cost_of(&sized("c1", 200));
        let c = ResultCache::with_spill(entry_cost, spill.clone());
        assert!(matches!(c.claim(1), Claim::Owner));
        c.fill(1, sized("c1", 200));
        assert!(matches!(c.claim(2), Claim::Owner));
        c.fill(2, sized("c2", 200));
        assert_eq!(c.len(), 1, "budget of one entry evicts the first");
        match c.claim(1) {
            Claim::Hit(r) => assert_eq!(r.case, "c1"),
            Claim::Owner => panic!("evicted entry must promote from spill, not recompute"),
        }
        let st = c.stats();
        assert_eq!(st.spill_hits, 1);
        assert_eq!(st.misses, 2, "no recompute after eviction");
        // a fresh cache over the same spill dir sees previous results
        let c2 = ResultCache::with_spill(entry_cost * 10, spill);
        assert!(c2.peek(2).is_some(), "restart serves from spill");
        assert_eq!(c2.stats().spill_hits, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn peek_never_claims_and_ignores_pending() {
        let c = ResultCache::new();
        assert!(c.peek(1).is_none());
        assert!(matches!(c.claim(1), Claim::Owner));
        assert!(c.peek(1).is_none(), "pending slot is not a result");
        c.fill(1, run("a"));
        assert_eq!(c.peek(1).unwrap().case, "a");
        assert_eq!(c.stats().misses, 1, "peek never becomes an owner");
    }
}
