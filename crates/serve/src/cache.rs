//! Content-addressed, single-flight result cache.
//!
//! Keys are [`crate::job::JobSpec::canonical_key`] hashes; values are the
//! cold run's serialized `RunSummary` payload plus its field fingerprint.
//! A hit replays the cold payload byte-for-byte (the stored `Arc` is
//! shared, not re-serialized). The cache is *single-flight*: the first
//! claimant of a key becomes its owner and computes; concurrent claimants
//! of the same key block until the owner fills (or abandons) the slot, so
//! a duplicated sweep cell is computed exactly once even when both copies
//! are dequeued simultaneously.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A cached cold-run result.
#[derive(Clone, Debug)]
pub struct CachedRun {
    /// Canonical case name of the cell.
    pub case: String,
    /// The cold run's full `RunSummary` JSON, replayed verbatim on hits.
    pub payload: String,
    /// FNV-1a 64 fingerprint of the final field's interior bit patterns
    /// (the same hash `GOLDEN_verify.json` records).
    pub field_hash: u64,
    /// Golden cross-check verdict: `None` when no golden entry applied,
    /// `Some(true/false)` when the fingerprint was checked.
    pub golden: Option<bool>,
}

enum Slot {
    /// An owner is computing this key.
    Pending,
    /// Result available.
    Ready(Arc<CachedRun>),
}

/// What a [`ResultCache::claim`] got.
pub enum Claim {
    /// Nobody has computed this key: the caller owns it and must
    /// [`ResultCache::fill`] or [`ResultCache::abandon`] it.
    Owner,
    /// Served from cache (counted as a hit; claimants that waited out a
    /// pending owner are additionally counted as coalesced).
    Hit(Arc<CachedRun>),
}

/// Monotonic cache counters, readable at any time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct CacheStats {
    /// Claims served from a ready slot (includes coalesced waiters).
    pub hits: u64,
    /// Claims that became owners (cold computes).
    pub misses: u64,
    /// Hits that waited out a concurrent owner instead of finding the
    /// result ready.
    pub coalesced: u64,
}

/// The cache. All methods are thread-safe.
#[derive(Default)]
pub struct ResultCache {
    slots: Mutex<HashMap<u64, Slot>>,
    cv: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Claim a key: either become its owner or get the (possibly awaited)
    /// result.
    pub fn claim(&self, key: u64) -> Claim {
        let mut slots = self.slots.lock().unwrap();
        let mut waited = false;
        loop {
            match slots.get(&key) {
                None => {
                    slots.insert(key, Slot::Pending);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return Claim::Owner;
                }
                Some(Slot::Ready(run)) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    if waited {
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                    }
                    return Claim::Hit(Arc::clone(run));
                }
                Some(Slot::Pending) => {
                    waited = true;
                    slots = self.cv.wait(slots).unwrap();
                }
            }
        }
    }

    /// Publish the owner's result and wake coalesced waiters.
    pub fn fill(&self, key: u64, run: CachedRun) -> Arc<CachedRun> {
        let run = Arc::new(run);
        self.slots.lock().unwrap().insert(key, Slot::Ready(Arc::clone(&run)));
        self.cv.notify_all();
        run
    }

    /// Give up ownership without a result (failed or aborted run): the slot
    /// is cleared so a waiter (or a retry) can become the next owner.
    pub fn abandon(&self, key: u64) {
        let mut slots = self.slots.lock().unwrap();
        if matches!(slots.get(&key), Some(Slot::Pending)) {
            slots.remove(&key);
        }
        self.cv.notify_all();
    }

    /// Ready entries currently stored.
    pub fn len(&self) -> usize {
        self.slots.lock().unwrap().values().filter(|s| matches!(s, Slot::Ready(_))).count()
    }

    /// True when no ready entry is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(case: &str) -> CachedRun {
        CachedRun { case: case.into(), payload: format!("{{\"case\":\"{case}\"}}"), field_hash: 7, golden: None }
    }

    #[test]
    fn owner_then_hit_shares_the_same_allocation() {
        let c = ResultCache::new();
        assert!(matches!(c.claim(1), Claim::Owner));
        let stored = c.fill(1, run("a"));
        match c.claim(1) {
            Claim::Hit(got) => assert!(Arc::ptr_eq(&got, &stored), "hits replay the stored payload, not a copy"),
            Claim::Owner => panic!("second claim must hit"),
        }
        assert_eq!(c.stats(), CacheStats { hits: 1, misses: 1, coalesced: 0 });
    }

    #[test]
    fn concurrent_duplicate_claims_coalesce() {
        let c = Arc::new(ResultCache::new());
        assert!(matches!(c.claim(9), Claim::Owner));
        let waiter = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || match c.claim(9) {
                Claim::Hit(r) => r.case.clone(),
                Claim::Owner => panic!("waiter must not become owner"),
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        c.fill(9, run("dup"));
        assert_eq!(waiter.join().unwrap(), "dup");
        assert_eq!(c.stats(), CacheStats { hits: 1, misses: 1, coalesced: 1 });
    }

    #[test]
    fn abandon_lets_a_waiter_take_over() {
        let c = Arc::new(ResultCache::new());
        assert!(matches!(c.claim(5), Claim::Owner));
        let waiter = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || matches!(c.claim(5), Claim::Owner))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        c.abandon(5);
        assert!(waiter.join().unwrap(), "after abandon the waiter owns the key");
        assert_eq!(c.stats().misses, 2);
    }
}
