//! Load generator: replays a Figure 3–6-style sweep through the server
//! and reports serving behaviour — latency percentiles, throughput, cache
//! hit rate, duplicate byte-identity, golden cross-check counts — plus a
//! deliberate overload burst that demonstrates admission control
//! (reject-with-retry-after) without deadlocking.
//!
//! The sweep is the paper's experiment shape: one jet case swept over the
//! comm protocol versions and rank counts, with every cell submitted
//! twice so the content-addressed cache is exercised on a realistic
//! workload (a parameter sweep re-visiting cells), and a handful of
//! backend cells (serial, shared-memory, chaos, fused-V6 kernel) mixed in.

use crate::client::Client;
use crate::daemon::{Daemon, DaemonConfig};
use crate::job::{Backend, JobDesc, JobSpec, Priority};
use crate::proto::Response;
use crate::server::{golden_expectation, Outcome, Server, ServerConfig, SubmitError};
use ns_core::config::{Regime, SolverConfig, Version};
use ns_core::Solver;
use ns_numerics::Grid;
use ns_runtime::CommVersion;
use ns_verify::snapshot::{self, GoldenFile};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;

/// Schema version stamped into `SERVE_loadgen.json` (the `schema_version`
/// field) and required verbatim by [`LoadgenReport::from_json`]. v2 renamed
/// `schema` → `schema_version` and added the `mode` field (in-process vs
/// socket-mode runs of the same sweep).
pub const LOADGEN_SCHEMA: u32 = 2;

/// Loadgen tuning.
#[derive(Clone, Copy, Debug)]
pub struct LoadgenOptions {
    /// Small grid / few steps (CI-sized) instead of the paper's oracle
    /// shape.
    pub quick: bool,
    /// Server worker pool size for the sweep phase.
    pub workers: usize,
    /// Admission-queue depth for the sweep phase (sized so the sweep
    /// itself is never rejected; the burst phase uses its own tiny queue).
    pub queue_depth: usize,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        Self { quick: true, workers: 2, queue_depth: 64 }
    }
}

/// Latency percentiles over completed jobs (admission to outcome).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Median, milliseconds.
    pub p50_ms: f64,
    /// 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// Mean, milliseconds.
    pub mean_ms: f64,
    /// Slowest job, milliseconds.
    pub max_ms: f64,
}

impl LatencyStats {
    fn of(samples: &mut [f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let pick = |q: f64| samples[((samples.len() - 1) as f64 * q).round() as usize];
        Self {
            p50_ms: pick(0.50),
            p99_ms: pick(0.99),
            mean_ms: samples.iter().sum::<f64>() / samples.len() as f64,
            max_ms: samples[samples.len() - 1],
        }
    }
}

/// One completed job, as reported.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobRow {
    /// Submission label.
    pub label: String,
    /// Canonical case name.
    pub case: String,
    /// Admission priority name.
    pub priority: String,
    /// `"cold"` or `"hit"`.
    pub cache: String,
    /// Queue wait, milliseconds.
    pub queue_ms: f64,
    /// Backend wall, milliseconds (zero for hits).
    pub run_ms: f64,
    /// Admission-to-outcome total, milliseconds.
    pub total_ms: f64,
}

/// The overload burst: a tiny queue deliberately overfilled with distinct
/// cells.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct BurstReport {
    /// Burst submissions attempted.
    pub submitted: u64,
    /// Admitted (at most queue depth + workers' worth at a time).
    pub admitted: u64,
    /// Rejected with a retry-after hint.
    pub rejected: u64,
    /// Lower-priority jobs shed to admit the burst's high-priority tail.
    pub shed: u64,
    /// Smallest retry-after hint seen, milliseconds (must be positive).
    pub min_retry_after_ms: f64,
    /// Admitted burst jobs that completed once the queue drained.
    pub completed: u64,
}

/// Everything `jetns loadgen` writes to its JSON artifact.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LoadgenReport {
    /// Artifact schema version.
    pub schema_version: u32,
    /// `"in-process"` (direct [`Server`] calls) or `"socket"` (through a
    /// [`Daemon`] over its Unix socket, WAL and spill engaged).
    pub mode: String,
    /// Quick (CI-sized) sweep?
    pub quick: bool,
    /// Sweep-phase worker pool size.
    pub workers: usize,
    /// Sweep-phase queue depth.
    pub queue_depth: usize,
    /// Sweep jobs admitted.
    pub jobs_submitted: u64,
    /// Sweep jobs completed.
    pub jobs_completed: u64,
    /// Sweep jobs failed (must be zero).
    pub jobs_failed: u64,
    /// Cache hits over the sweep.
    pub cache_hits: u64,
    /// Cold computes over the sweep.
    pub cache_misses: u64,
    /// Duplicate claims that waited out a concurrent owner.
    pub cache_coalesced: u64,
    /// hits / (hits + misses).
    pub cache_hit_rate: f64,
    /// Every duplicated cell's repeat was served the cold payload
    /// byte-for-byte.
    pub duplicates_byte_identical: bool,
    /// Cells whose fingerprint was cross-checked against the golden
    /// reference.
    pub golden_checked: u64,
    /// Cross-checks that disagreed (must be zero).
    pub golden_mismatches: u64,
    /// Latency over completed sweep jobs.
    pub latency: LatencyStats,
    /// Completed sweep jobs per wall-clock second.
    pub throughput_jobs_per_sec: f64,
    /// The overload burst.
    pub burst: BurstReport,
    /// Per-job detail.
    pub rows: Vec<JobRow>,
}

impl LoadgenReport {
    /// The acceptance predicate `jetns loadgen` (and CI) gates on.
    pub fn pass(&self) -> bool {
        self.jobs_completed == self.jobs_submitted
            && self.jobs_failed == 0
            && self.cache_hits > 0
            && self.duplicates_byte_identical
            && self.golden_checked > 0
            && self.golden_mismatches == 0
            && self.burst.rejected > 0
            && self.burst.min_retry_after_ms > 0.0
            && self.burst.completed == self.burst.admitted
    }

    /// Pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("loadgen report serializes")
    }

    /// Parse a committed `SERVE_loadgen.json`, refusing any artifact whose
    /// schema version is not exactly [`LOADGEN_SCHEMA`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        let report: Self = serde_json::from_str(text).map_err(|e| format!("loadgen report parse: {e}"))?;
        if report.schema_version != LOADGEN_SCHEMA {
            return Err(format!("loadgen report schema {} != supported {LOADGEN_SCHEMA}", report.schema_version));
        }
        Ok(report)
    }
}

/// The sweep: comm versions × rank counts (every cell twice, priorities
/// cycling), plus backend cells. ≥3 versions × ≥3 P with duplicates, per
/// the acceptance bar.
pub fn sweep_jobs(quick: bool) -> Vec<JobSpec> {
    let (grid, steps) = if quick { (Grid::new(48, 16, 50.0, 5.0), 4) } else { (Grid::new(66, 24, 50.0, 5.0), 6) };
    let base = SolverConfig::paper(grid.clone(), Regime::Euler);
    let prios = [Priority::Normal, Priority::High, Priority::Low];
    let mut jobs = Vec::new();
    let mut cell = 0usize;
    let mut push2 = |spec: JobSpec| {
        // every cell is submitted twice: the repeat must be a cache hit
        for dup in 0..2 {
            let mut s = spec.clone();
            s.label = format!("{}#{dup}", spec.label);
            s.priority = prios[(cell + dup) % prios.len()];
            jobs.push(s);
        }
        cell += 1;
    };
    for comm in [CommVersion::V5, CommVersion::V6, CommVersion::V7] {
        for procs in [1, 2, 4] {
            let mut spec = JobSpec::new(base.clone(), steps, procs);
            spec.comm = comm;
            spec.label = format!("sweep/{:?}/p{procs}", comm);
            push2(spec);
        }
    }
    // backend cells: serial reference, shared-memory, chaos (fault-free
    // plan, recovery machinery armed), fused-V6 and SoA-V7 kernels
    let mut serial = JobSpec::new(base.clone(), steps, 1);
    serial.backend = Backend::Serial;
    serial.label = "backend/serial".into();
    push2(serial);
    let mut shared = JobSpec::new(base.clone(), steps, 2);
    shared.backend = Backend::Shared;
    shared.label = "backend/shared-p2".into();
    push2(shared);
    let mut chaos = JobSpec::new(base.clone(), steps, 2);
    chaos.backend = Backend::Chaos;
    chaos.label = "backend/chaos-p2".into();
    push2(chaos);
    let mut fused = JobSpec::new(base.clone(), steps, 2);
    fused.cfg.version = Version::V6;
    fused.label = "kernel/V6-p2".into();
    push2(fused);
    let mut soa = JobSpec::new(base.clone(), steps, 2);
    soa.cfg.version = Version::V7;
    soa.label = "kernel/V7-p2".into();
    push2(soa);
    if !quick {
        let ns = SolverConfig::paper(grid, Regime::NavierStokes);
        let mut ns_serial = JobSpec::new(ns.clone(), steps, 1);
        ns_serial.backend = Backend::Serial;
        ns_serial.label = "ns/serial".into();
        push2(ns_serial);
        let mut ns_par = JobSpec::new(ns, steps, 2);
        ns_par.label = "ns/parallel-p2".into();
        push2(ns_par);
    }
    jobs
}

/// A golden reference for the sweep's shape, built from a fresh serial V5
/// run — the same FNV fingerprint mechanism as the committed
/// `GOLDEN_verify.json`, regenerated here so the cross-check is
/// self-consistent on any toolchain (the committed file's hashes are
/// platform artifacts that the verify gate regenerates and diffs).
pub fn reference_golden(quick: bool) -> GoldenFile {
    let (grid, steps) = if quick { (Grid::new(48, 16, 50.0, 5.0), 4) } else { (Grid::new(66, 24, 50.0, 5.0), 6) };
    let mut entries = BTreeMap::new();
    for (regime, rk) in [(Regime::Euler, "euler"), (Regime::NavierStokes, "navier-stokes")] {
        let mut reference = Solver::new(SolverConfig::paper(grid.clone(), regime));
        reference.run(steps);
        entries.insert(format!("{rk}/serial/V5"), snapshot::of(&reference.field));
    }
    GoldenFile { schema: snapshot::SCHEMA, grid: [grid.nx, grid.nr], steps, entries }
}

/// Run the sweep and the overload burst; panics only on channel breakage
/// (a server bug), never on rejection — rejection is the point of the
/// burst.
pub fn run_loadgen(opts: &LoadgenOptions) -> LoadgenReport {
    let golden = reference_golden(opts.quick);
    let jobs = sweep_jobs(opts.quick);
    debug_assert!(jobs.iter().any(|j| golden_expectation(&golden, j).is_some()), "sweep must exercise the golden path");

    let (server, rx) = Server::new(ServerConfig {
        workers: opts.workers,
        queue_depth: opts.queue_depth,
        golden: Some(golden),
        ..Default::default()
    });
    let t0 = Instant::now();
    let mut submitted = 0u64;
    for spec in &jobs {
        match server.submit(spec.clone()) {
            Ok(_) => submitted += 1,
            Err(e) => panic!("sweep submission must be admitted (queue sized for the sweep): {e:?}"),
        }
    }
    let mut rows = Vec::new();
    let mut payload_by_case: BTreeMap<String, String> = BTreeMap::new();
    let mut duplicates_byte_identical = true;
    let mut failed = 0u64;
    let mut latencies = Vec::new();
    for _ in 0..submitted {
        match rx.recv().expect("server outcome stream stays open") {
            Outcome::Done(r) => {
                let total = r.queue_wait + r.run_wall;
                latencies.push(total.as_secs_f64() * 1e3);
                match payload_by_case.get(&r.case) {
                    Some(first) => duplicates_byte_identical &= first == &r.run.payload,
                    None => {
                        payload_by_case.insert(r.case.clone(), r.run.payload.clone());
                    }
                }
                rows.push(JobRow {
                    label: r.label,
                    case: r.case,
                    priority: r.priority.name().to_string(),
                    cache: if r.cache_hit { "hit" } else { "cold" }.to_string(),
                    queue_ms: r.queue_wait.as_secs_f64() * 1e3,
                    run_ms: r.run_wall.as_secs_f64() * 1e3,
                    total_ms: total.as_secs_f64() * 1e3,
                });
            }
            Outcome::Failed { label, error, .. } => {
                failed += 1;
                rows.push(JobRow {
                    label: format!("{label} FAILED: {error}"),
                    case: String::new(),
                    priority: "?".to_string(),
                    cache: "cold".to_string(),
                    queue_ms: 0.0,
                    run_ms: 0.0,
                    total_ms: 0.0,
                });
            }
            Outcome::Shed { .. } => panic!("the sweep queue is sized for the sweep; nothing should shed"),
        }
    }
    let sweep_wall = t0.elapsed();
    let stats = server.finish();

    let burst = run_burst();

    let completed = stats.completed;
    LoadgenReport {
        schema_version: LOADGEN_SCHEMA,
        mode: "in-process".to_string(),
        quick: opts.quick,
        workers: opts.workers,
        queue_depth: opts.queue_depth,
        jobs_submitted: submitted,
        jobs_completed: completed,
        jobs_failed: failed,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        cache_coalesced: stats.cache_coalesced,
        cache_hit_rate: if completed == 0 { 0.0 } else { stats.cache_hits as f64 / completed as f64 },
        duplicates_byte_identical,
        golden_checked: stats.golden_checked,
        golden_mismatches: stats.golden_mismatches,
        latency: LatencyStats::of(&mut latencies),
        throughput_jobs_per_sec: if sweep_wall.is_zero() { 0.0 } else { completed as f64 / sweep_wall.as_secs_f64() },
        burst,
        rows,
    }
}

/// The overload burst: one worker, a depth-2 queue, and a stream of
/// distinct cells submitted faster than they can possibly drain. The
/// normal-priority tail must be rejected with positive retry-after hints;
/// a high-priority straggler shed a queued normal job; and `finish()`
/// must drain everything admitted without deadlock.
fn run_burst() -> BurstReport {
    let (server, rx) = Server::new(ServerConfig { workers: 1, queue_depth: 2, golden: None, ..Default::default() });
    let base = SolverConfig::paper(Grid::new(48, 16, 50.0, 5.0), Regime::Euler);
    let mut report = BurstReport { min_retry_after_ms: f64::INFINITY, ..Default::default() };
    // distinct cells (steps vary) so the cache cannot absorb the burst;
    // enough steps that the single worker is still busy while we flood
    for steps in 1..=10u64 {
        let mut spec = JobSpec::new(base.clone(), steps + 20, 1);
        spec.backend = Backend::Serial;
        spec.label = format!("burst/{steps}");
        report.submitted += 1;
        match server.submit(spec) {
            Ok(_) => report.admitted += 1,
            Err(SubmitError::Busy { retry_after, .. }) => {
                report.rejected += 1;
                report.min_retry_after_ms = report.min_retry_after_ms.min(retry_after.as_secs_f64() * 1e3);
            }
            Err(e) => panic!("burst submissions are valid; got {e:?}"),
        }
    }
    // a high-priority straggler: if the queue is still full it must be
    // admitted by shedding a queued normal job, never rejected
    let mut vip = JobSpec::new(base, 40, 1);
    vip.backend = Backend::Serial;
    vip.priority = Priority::High;
    vip.label = "burst/vip".into();
    report.submitted += 1;
    match server.submit(vip) {
        Ok(_) => report.admitted += 1,
        Err(SubmitError::Busy { retry_after, .. }) => {
            report.rejected += 1;
            report.min_retry_after_ms = report.min_retry_after_ms.min(retry_after.as_secs_f64() * 1e3);
        }
        Err(e) => panic!("vip submission is valid; got {e:?}"),
    }
    let stats = server.finish();
    report.shed = stats.shed;
    report.admitted -= stats.shed; // a shed job was admitted, then evicted
    while let Ok(outcome) = rx.recv() {
        if let Outcome::Done(_) = outcome {
            report.completed += 1;
        }
    }
    if report.min_retry_after_ms.is_infinite() {
        report.min_retry_after_ms = 0.0;
    }
    report
}

/// Run the same sweep + burst through a real [`Daemon`] over its Unix
/// socket — WAL journaling, spill write-through, framed transport and
/// retry-after hints all engaged — and report the identical artifact
/// shape with `mode: "socket"`. State lives in (and is removed from) a
/// scratch directory under `scratch_root`.
pub fn run_loadgen_socket(opts: &LoadgenOptions, scratch_root: &std::path::Path) -> std::io::Result<LoadgenReport> {
    let golden = reference_golden(opts.quick);
    let jobs = sweep_jobs(opts.quick);

    let state_dir = scratch_root.join(format!("loadgen-socket-{}", std::process::id()));
    let mut cfg = DaemonConfig::new(&state_dir);
    cfg.workers = opts.workers;
    cfg.queue_depth = opts.queue_depth;
    cfg.golden = Some(golden);
    cfg.sync = false; // loadgen measures serving, not fsync latency
    let daemon = Daemon::start(cfg)?;
    let mut client = Client::connect(daemon.socket_path())?;

    let t0 = Instant::now();
    let mut submitted = 0u64;
    let mut failed = 0u64;
    let mut rows = Vec::new();
    let mut latencies = Vec::new();
    let mut payload_by_case: BTreeMap<String, String> = BTreeMap::new();
    let mut duplicates_byte_identical = true;
    let mut waiting: Vec<(JobSpec, String)> = Vec::new();
    let row_of = |spec: &JobSpec,
                  resp: &Response,
                  payloads: &mut BTreeMap<String, String>,
                  identical: &mut bool,
                  lat: &mut Vec<f64>|
     -> Option<JobRow> {
        match resp {
            Response::Done { case, cache, payload, queue_ms, run_ms, .. } => {
                match payloads.get(case) {
                    Some(first) => *identical &= first == payload,
                    None => {
                        payloads.insert(case.clone(), payload.clone());
                    }
                }
                let total = queue_ms + run_ms;
                lat.push(total);
                Some(JobRow {
                    label: spec.label.clone(),
                    case: case.clone(),
                    priority: spec.priority.name().to_string(),
                    cache: cache.clone(),
                    queue_ms: *queue_ms,
                    run_ms: *run_ms,
                    total_ms: total,
                })
            }
            _ => None,
        }
    };
    for spec in &jobs {
        let desc = JobDesc::from_spec(spec);
        match client.submit_with_retry(&desc, std::time::Duration::from_secs(60))? {
            Response::Admitted { key, .. } => {
                submitted += 1;
                waiting.push((spec.clone(), key));
            }
            // a duplicate whose first copy already settled durably is
            // answered Done at submit time, without re-queueing
            resp @ Response::Done { .. } => {
                submitted += 1;
                match row_of(spec, &resp, &mut payload_by_case, &mut duplicates_byte_identical, &mut latencies) {
                    Some(row) => rows.push(row),
                    None => unreachable!(),
                }
            }
            other => panic!("sweep submission must be admitted (queue sized for the sweep): {other:?}"),
        }
    }
    let mut settled_done = 0u64;
    for (spec, key) in &waiting {
        match client.wait(key, std::time::Duration::from_secs(120))? {
            resp @ Response::Done { .. } => {
                settled_done += 1;
                if let Some(row) =
                    row_of(spec, &resp, &mut payload_by_case, &mut duplicates_byte_identical, &mut latencies)
                {
                    rows.push(row);
                }
            }
            Response::Failed { error, .. } => {
                failed += 1;
                rows.push(JobRow {
                    label: format!("{} FAILED: {error}", spec.label),
                    case: String::new(),
                    priority: "?".to_string(),
                    cache: "cold".to_string(),
                    queue_ms: 0.0,
                    run_ms: 0.0,
                    total_ms: 0.0,
                });
            }
            other => panic!("sweep wait must settle within the timeout: {other:?}"),
        }
    }
    let sweep_wall = t0.elapsed();
    let status = client.status()?;
    let stats = status.stats;
    drop(client);
    daemon.drain()?;

    let burst = run_burst_socket(scratch_root)?;

    // every admitted job settled Done, plus any durable short-circuits
    let completed = settled_done + (submitted - waiting.len() as u64);
    let report = LoadgenReport {
        schema_version: LOADGEN_SCHEMA,
        mode: "socket".to_string(),
        quick: opts.quick,
        workers: opts.workers,
        queue_depth: opts.queue_depth,
        jobs_submitted: submitted,
        jobs_completed: completed,
        jobs_failed: failed,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        cache_coalesced: stats.cache_coalesced,
        cache_hit_rate: if completed == 0 { 0.0 } else { stats.cache_hits as f64 / completed as f64 },
        duplicates_byte_identical,
        golden_checked: stats.golden_checked,
        golden_mismatches: stats.golden_mismatches,
        latency: LatencyStats::of(&mut latencies),
        throughput_jobs_per_sec: if sweep_wall.is_zero() { 0.0 } else { completed as f64 / sweep_wall.as_secs_f64() },
        burst,
        rows,
    };
    let _ = std::fs::remove_dir_all(&state_dir);
    Ok(report)
}

/// The overload burst over the socket: a one-worker, depth-2 daemon
/// flooded with distinct cells via plain submits (no retry), so `Busy`
/// responses with positive hints come back over the wire; shed jobs
/// settle as `Failed` waits.
fn run_burst_socket(scratch_root: &std::path::Path) -> std::io::Result<BurstReport> {
    let state_dir = scratch_root.join(format!("loadgen-burst-{}", std::process::id()));
    let mut cfg = DaemonConfig::new(&state_dir);
    cfg.workers = 1;
    cfg.queue_depth = 2;
    cfg.sync = false;
    let daemon = Daemon::start(cfg)?;
    let mut client = Client::connect(daemon.socket_path())?;
    let base = SolverConfig::paper(Grid::new(48, 16, 50.0, 5.0), Regime::Euler);
    let mut report = BurstReport { min_retry_after_ms: f64::INFINITY, ..Default::default() };
    let mut admitted_keys = Vec::new();
    let submit = |client: &mut Client, spec: JobSpec, report: &mut BurstReport, keys: &mut Vec<String>| {
        report.submitted += 1;
        match client.submit(&JobDesc::from_spec(&spec))? {
            Response::Admitted { key, .. } => {
                report.admitted += 1;
                keys.push(key);
            }
            Response::Busy { retry_after_ms, .. } => {
                report.rejected += 1;
                report.min_retry_after_ms = report.min_retry_after_ms.min(retry_after_ms as f64);
            }
            other => panic!("burst submissions are valid; got {other:?}"),
        }
        std::io::Result::Ok(())
    };
    for steps in 1..=10u64 {
        let mut spec = JobSpec::new(base.clone(), steps + 20, 1);
        spec.backend = Backend::Serial;
        spec.label = format!("burst/{steps}");
        submit(&mut client, spec, &mut report, &mut admitted_keys)?;
    }
    let mut vip = JobSpec::new(base, 40, 1);
    vip.backend = Backend::Serial;
    vip.priority = Priority::High;
    vip.label = "burst/vip".into();
    submit(&mut client, vip, &mut report, &mut admitted_keys)?;
    for key in &admitted_keys {
        if let Response::Done { .. } = client.wait(key, std::time::Duration::from_secs(120))? {
            report.completed += 1;
        }
    }
    let stats = client.status()?.stats;
    report.shed = stats.shed;
    report.admitted -= stats.shed; // a shed job was admitted, then evicted
    drop(client);
    daemon.drain()?;
    let _ = std::fs::remove_dir_all(&state_dir);
    if report.min_retry_after_ms.is_infinite() {
        report.min_retry_after_ms = 0.0;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_three_comm_versions_three_rank_counts_with_duplicates() {
        let jobs = sweep_jobs(true);
        let comms: std::collections::BTreeSet<_> = jobs.iter().map(|j| format!("{:?}", j.comm)).collect();
        let procs: std::collections::BTreeSet<_> =
            jobs.iter().filter(|j| j.backend == Backend::Parallel).map(|j| j.procs).collect();
        assert!(comms.len() >= 3, "≥3 comm versions, got {comms:?}");
        assert!(procs.len() >= 3, "≥3 rank counts, got {procs:?}");
        let mut by_key = BTreeMap::new();
        for j in &jobs {
            *by_key.entry(j.canonical_key()).or_insert(0u32) += 1;
        }
        assert!(by_key.values().all(|&n| n == 2), "every cell appears exactly twice");
        assert!(jobs.iter().all(|j| j.validate().is_ok()), "every sweep job passes admission validation");
    }

    #[test]
    fn loadgen_report_round_trips_and_rejects_wrong_schema() {
        let report = LoadgenReport {
            schema_version: LOADGEN_SCHEMA,
            mode: "in-process".into(),
            quick: true,
            workers: 2,
            queue_depth: 64,
            jobs_submitted: 4,
            jobs_completed: 4,
            jobs_failed: 0,
            cache_hits: 2,
            cache_misses: 2,
            cache_coalesced: 0,
            cache_hit_rate: 0.5,
            duplicates_byte_identical: true,
            golden_checked: 1,
            golden_mismatches: 0,
            latency: LatencyStats::default(),
            throughput_jobs_per_sec: 8.0,
            burst: BurstReport::default(),
            rows: vec![JobRow {
                label: "sweep/V5/p2#0".into(),
                case: "case".into(),
                priority: "normal".into(),
                cache: "cold".into(),
                queue_ms: 0.1,
                run_ms: 5.0,
                total_ms: 5.1,
            }],
        };
        let back = LoadgenReport::from_json(&report.to_json()).expect("round trip");
        assert_eq!(back.jobs_completed, 4);
        assert_eq!(back.rows[0].priority, "normal");
        let mut wrong = report;
        wrong.schema_version = LOADGEN_SCHEMA + 1;
        let err = LoadgenReport::from_json(&wrong.to_json()).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn sweep_exercises_the_golden_path() {
        let golden = reference_golden(true);
        let covered = sweep_jobs(true).iter().filter(|j| golden_expectation(&golden, j).is_some()).count();
        assert!(covered >= 2, "golden cross-check applies to at least a couple of sweep cells, got {covered}");
    }
}
