//! ns-serve: a sharded batch-run service over the solver drivers.
//!
//! The paper's experiments (Figures 3–6) are parameter sweeps: the same
//! jet case run across optimization versions, communication protocols and
//! processor counts, many cells repeated. This crate serves that workload
//! as jobs rather than scripts:
//!
//! * **Admission control** — a bounded priority queue
//!   ([`queue::JobQueue`]). A full queue sheds a strictly lower-priority
//!   queued job to admit higher-priority work, or rejects the newcomer
//!   with a retry-after hint derived from observed service time. Only
//!   *queued* jobs are ever shed; an in-flight rank team is never
//!   abandoned — immediate shutdown uses the runtime's cooperative
//!   [`ns_runtime::CancelToken`], a per-step collective, so every rank of
//!   a team stops at the same step boundary.
//! * **Sharding** — a bounded worker pool ([`server::Server`]) executes
//!   jobs on the real backends: the serial [`ns_core::Solver`], the
//!   message-passing `run_parallel` drivers (any comm protocol version),
//!   the fault-tolerant chaos driver, and the shared-memory
//!   [`ns_core::shared::SharedSolver`].
//! * **Result caching** — a content-addressed, single-flight cache
//!   ([`cache::ResultCache`]) keyed by the canonical config hash
//!   ([`job::JobSpec::canonical_key`]). A repeated sweep cell is served
//!   the cold run's `RunSummary` payload byte-for-byte, and cold results
//!   are cross-checked against golden FNV field fingerprints where the
//!   differential oracle guarantees bitwise agreement.
//! * **Telemetry** — per-job queue wait, run wall and cache disposition
//!   are folded into the ns-telemetry [`ns_telemetry::RunSummary`] as its
//!   `serve` block.
//!
//! The crate also hosts the crash-durable daemon (`ns-served`, surfaced
//! as `jetns served`):
//!
//! * **Durability** — every admitted job is journaled in a checksummed
//!   write-ahead log ([`wal::Wal`], PR 3 frame machinery on disk) before
//!   the client's admit is acknowledged, and completed results are
//!   written through to a per-key spill store ([`spill::Spill`]) before
//!   their `Completed` record lands, so `kill -9` mid-campaign restarts
//!   into the same queue state and re-serves finished cells from bytes.
//! * **Transport** — a length-prefixed, checksum-framed request/response
//!   protocol over a Unix socket ([`proto`]), with a blocking client
//!   ([`client::Client`]) that honours per-priority retry-after hints.
//! * **Degradation** — per-job deadlines, brownout shedding of
//!   low-priority work under queue/memory pressure, and a SIGTERM
//!   graceful drain that finishes every admitted job, journals a
//!   `CleanShutdown`, and dumps the flight recorder.
//!
//! [`loadgen`] replays the sweep through the server — in-process or over
//! the socket — and writes the latency/throughput/cache artifact that
//! `jetns loadgen` and CI gate on.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod daemon;
pub mod job;
pub mod loadgen;
pub mod proto;
pub mod queue;
pub mod server;
pub mod spill;
pub mod wal;

pub use cache::{CacheStats, CachedRun, Claim, ResultCache};
pub use client::Client;
pub use daemon::{Daemon, DaemonConfig};
pub use job::{Backend, JobDesc, JobSpec, Priority};
pub use loadgen::{
    run_loadgen, run_loadgen_socket, sweep_jobs, BurstReport, JobRow, LatencyStats, LoadgenOptions, LoadgenReport,
};
pub use proto::{DaemonStatus, Request, Response};
pub use queue::{JobQueue, PushError, Pushed, QueuedJob};
pub use server::{golden_expectation, JobResult, Outcome, ServeStats, Server, ServerConfig, SubmitError};
pub use spill::Spill;
pub use wal::{Wal, WalRecord, WalReplay};
