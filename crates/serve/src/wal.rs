//! Write-ahead job journal.
//!
//! Every job the daemon admits is journaled *before* the client's admit is
//! acknowledged, and journaled again when it settles (completed, or
//! cancelled by shedding / deadline expiry / a failing backend). A daemon
//! that is `kill -9`ed mid-campaign therefore restarts into the same queue
//! state: replaying the journal yields exactly the set of admitted-but-
//! unsettled jobs, which are re-enqueued, while settled keys are left to
//! the spill-backed result cache.
//!
//! The on-disk format reuses the PR 3 frame machinery: each record is a
//! `[u32 len][sealed frame]` where the frame body is the record's JSON and
//! the trailer carries the record index as its sequence number plus the
//! FNV checksum ([`ns_runtime::pack::seal_frame`] /
//! [`ns_runtime::pack::open_frame`]). Replay is torn-write-safe in the
//! spirit of `core::checkpoint`: it stops at the first record that is
//! short, fails its checksum, or carries an out-of-order sequence number
//! (a duplicated append), and the file is truncated back to the last valid
//! record so subsequent appends extend a clean tail. A key that ever
//! reached a terminal record (`Completed`/`Cancelled`) is never
//! resurrected by stray duplicate `Admitted` records, in either order —
//! replay is a state machine over keys, not a log of suggestions.
//!
//! What is fsync-guaranteed (see DESIGN §15): `Admitted` records are
//! fsynced before the admit is acknowledged when the journal is opened
//! with `sync = true`; settle records are appended without fsync — losing
//! one costs at most a redundant re-enqueue whose execution is absorbed by
//! the spill cache, never a wrong or lost result.

use crate::job::JobDesc;
use bytes::Bytes;
use ns_runtime::pack::{open_frame, FRAME_TRAILER};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Largest record body replay will accept; anything bigger is treated as a
/// corrupt length word (a torn write into the length prefix can otherwise
/// ask for gigabytes).
pub const MAX_RECORD_BYTES: usize = 1 << 20;

/// One journal record. Keys are the job's canonical content hash rendered
/// as fixed-width hex (the same identity the result cache and spill use).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// A job was admitted: the full wire description rides along so a
    /// replay can re-enqueue it verbatim.
    Admitted {
        /// Canonical key, `{:016x}`.
        key: String,
        /// The admitted job description.
        desc: JobDesc,
    },
    /// The job's result was computed and written through to the spill
    /// store (the spill write happens first, so a `Completed` record
    /// always points at durable bytes).
    Completed {
        /// Canonical key, `{:016x}`.
        key: String,
    },
    /// The job was settled without a result: shed under overload, expired
    /// past its deadline, or failed in a backend. Replay must not re-run
    /// it.
    Cancelled {
        /// Canonical key, `{:016x}`.
        key: String,
        /// Why the job settled without a result.
        reason: String,
    },
    /// A graceful drain finished with every admitted job settled. Its
    /// presence as the final record is how a restart distinguishes a clean
    /// shutdown from a crash.
    CleanShutdown,
}

impl WalRecord {
    fn key(&self) -> Option<&str> {
        match self {
            WalRecord::Admitted { key, .. } | WalRecord::Completed { key } | WalRecord::Cancelled { key, .. } => {
                Some(key)
            }
            WalRecord::CleanShutdown => None,
        }
    }
}

/// Canonical hex rendering of a cache key, the identity shared by the
/// journal, the spill store and the wire protocol.
pub fn key_hex(key: u64) -> String {
    format!("{key:016x}")
}

/// What replaying a journal found.
#[derive(Clone, Debug, Default)]
pub struct WalReplay {
    /// Jobs admitted but never settled, in admission order: the work a
    /// restarted daemon re-enqueues.
    pub pending: Vec<(String, JobDesc)>,
    /// Keys that reached `Completed`.
    pub completed: u64,
    /// Keys that reached `Cancelled`.
    pub cancelled: u64,
    /// Valid records replayed.
    pub records: u64,
    /// Garbage bytes dropped from the tail (torn write, bit flip, or a
    /// duplicated append; zero for a cleanly written journal).
    pub truncated_bytes: u64,
    /// The final valid record was [`WalRecord::CleanShutdown`].
    pub clean_shutdown: bool,
}

/// The append-only journal. All appends go through one handle; the daemon
/// wraps it in a mutex.
pub struct Wal {
    file: File,
    path: PathBuf,
    next_seq: u64,
    sync: bool,
}

impl Wal {
    /// Open (creating if absent) a journal, replaying whatever is already
    /// there. The file is truncated back to its last valid record, so the
    /// append cursor never extends a corrupt tail.
    pub fn open(path: impl AsRef<Path>, sync: bool) -> std::io::Result<(Self, WalReplay)> {
        let path = path.as_ref().to_path_buf();
        let existing = std::fs::read(&path).unwrap_or_default();
        let (replay, valid_len) = replay_bytes(&existing);
        let mut file = OpenOptions::new().create(true).read(true).append(true).open(&path)?;
        if (existing.len() as u64) > valid_len {
            // re-open without append to drop the corrupt tail
            drop(file);
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(valid_len)?;
            f.sync_data()?;
            drop(f);
            file = OpenOptions::new().create(true).read(true).append(true).open(&path)?;
        }
        Ok((Self { file, path, next_seq: replay.records, sync }, replay))
    }

    /// Append one record; fsyncs when the journal was opened with
    /// `sync = true` *and* the record is load-bearing for admission
    /// (`Admitted` / `CleanShutdown`).
    pub fn append(&mut self, record: &WalRecord) -> std::io::Result<()> {
        let body = serde_json::to_string(record).expect("wal record serializes");
        // PackBuf packs f64/u64 lanes; a WAL body is raw JSON bytes, so the
        // frame is built directly in the same [body][seq][span][checksum]
        // layout `open_frame` validates.
        let mut framed = Vec::with_capacity(body.len() + FRAME_TRAILER + 4);
        let seq = self.next_seq;
        let sum = ns_runtime::pack::frame_checksum(seq, 0, body.as_bytes());
        let frame_len = (body.len() + FRAME_TRAILER) as u32;
        framed.extend_from_slice(&frame_len.to_le_bytes());
        framed.extend_from_slice(body.as_bytes());
        framed.extend_from_slice(&seq.to_le_bytes());
        framed.extend_from_slice(&0u64.to_le_bytes());
        framed.extend_from_slice(&sum.to_le_bytes());
        self.file.write_all(&framed)?;
        if self.sync && matches!(record, WalRecord::Admitted { .. } | WalRecord::CleanShutdown) {
            self.file.sync_data()?;
        }
        self.next_seq += 1;
        Ok(())
    }

    /// Records appended or replayed through this handle so far.
    pub fn records(&self) -> u64 {
        self.next_seq
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Replay journal bytes: returns what was found plus the byte length of
/// the valid prefix. Never panics on garbage — a short length word, an
/// oversized length, a failed checksum, an out-of-order sequence number or
/// unparseable JSON all stop the replay at the previous record.
pub fn replay_bytes(bytes: &[u8]) -> (WalReplay, u64) {
    #[derive(Clone, Copy, PartialEq)]
    enum KeyState {
        Pending,
        Done,
        Dropped,
    }
    let mut replay = WalReplay::default();
    let mut states: BTreeMap<String, KeyState> = BTreeMap::new();
    let mut order: Vec<(String, JobDesc)> = Vec::new();
    let mut off = 0usize;
    let mut valid = 0u64;
    loop {
        if bytes.len() - off < 4 {
            break;
        }
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4-byte slice")) as usize;
        if !(FRAME_TRAILER..=MAX_RECORD_BYTES + FRAME_TRAILER).contains(&len) || bytes.len() - off - 4 < len {
            break;
        }
        let Ok(frame) = open_frame(Bytes::copy_from_slice(&bytes[off + 4..off + 4 + len])) else {
            break;
        };
        if frame.seq != replay.records {
            break; // duplicated or reordered append: stop at the last valid record
        }
        let Ok(record) = serde_json::from_slice::<WalRecord>(&frame.body) else {
            break;
        };
        replay.records += 1;
        replay.clean_shutdown = matches!(record, WalRecord::CleanShutdown);
        match &record {
            WalRecord::Admitted { key, desc } => {
                // a key already settled is never resurrected; a key already
                // pending is not double-enqueued
                if !states.contains_key(key) {
                    states.insert(key.clone(), KeyState::Pending);
                    order.push((key.clone(), desc.clone()));
                }
            }
            WalRecord::Completed { key } => {
                if states.insert(key.clone(), KeyState::Done) != Some(KeyState::Done) {
                    replay.completed += 1;
                }
            }
            WalRecord::Cancelled { key, .. } => {
                if states.insert(key.clone(), KeyState::Dropped) != Some(KeyState::Dropped) {
                    replay.cancelled += 1;
                }
            }
            WalRecord::CleanShutdown => {}
        }
        let _ = record.key();
        off += 4 + len;
        valid = off as u64;
    }
    replay.truncated_bytes = (bytes.len() as u64).saturating_sub(valid);
    replay.pending = order.into_iter().filter(|(k, _)| matches!(states.get(k), Some(KeyState::Pending))).collect();
    (replay, valid)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(steps: u64) -> JobDesc {
        JobDesc {
            label: Some(format!("wal-test-{steps}")),
            regime: "euler".into(),
            nx: 48,
            nr: 16,
            steps,
            version: "V5".into(),
            procs: 1,
            comm: "V5".into(),
            backend: "serial".into(),
            priority: "normal".into(),
            deadline_ms: None,
        }
    }

    #[test]
    fn roundtrip_and_pending_state_machine() {
        let dir = std::env::temp_dir().join(format!("ns-wal-{:x}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.wal");
        let _ = std::fs::remove_file(&path);
        {
            let (mut wal, replay) = Wal::open(&path, true).unwrap();
            assert_eq!(replay.records, 0);
            wal.append(&WalRecord::Admitted { key: key_hex(1), desc: desc(2) }).unwrap();
            wal.append(&WalRecord::Admitted { key: key_hex(2), desc: desc(3) }).unwrap();
            wal.append(&WalRecord::Completed { key: key_hex(1) }).unwrap();
            wal.append(&WalRecord::Cancelled { key: key_hex(3), reason: "shed".into() }).unwrap();
        }
        let (_, replay) = Wal::open(&path, true).unwrap();
        assert_eq!(replay.records, 4);
        assert_eq!(replay.completed, 1);
        assert_eq!(replay.cancelled, 1);
        assert_eq!(replay.truncated_bytes, 0);
        assert!(!replay.clean_shutdown);
        let pending: Vec<&str> = replay.pending.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(pending, vec![key_hex(2)], "only the unsettled key is pending");
        assert_eq!(replay.pending[0].1.steps, 3, "the pending desc rides along");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn clean_shutdown_marker_is_detected_only_as_final_record() {
        let dir = std::env::temp_dir().join(format!("ns-wal-{:x}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("clean.wal");
        let _ = std::fs::remove_file(&path);
        {
            let (mut wal, _) = Wal::open(&path, false).unwrap();
            wal.append(&WalRecord::CleanShutdown).unwrap();
            wal.append(&WalRecord::Admitted { key: key_hex(9), desc: desc(2) }).unwrap();
        }
        let (_, replay) = Wal::open(&path, false).unwrap();
        assert!(!replay.clean_shutdown, "a record after the marker means the daemon came back up");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let dir = std::env::temp_dir().join(format!("ns-wal-{:x}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.wal");
        let _ = std::fs::remove_file(&path);
        {
            let (mut wal, _) = Wal::open(&path, false).unwrap();
            wal.append(&WalRecord::Admitted { key: key_hex(1), desc: desc(2) }).unwrap();
            wal.append(&WalRecord::Completed { key: key_hex(1) }).unwrap();
        }
        // tear the last record: drop its final 5 bytes
        let mut bytes = std::fs::read(&path).unwrap();
        let full = bytes.len();
        bytes.truncate(full - 5);
        std::fs::write(&path, &bytes).unwrap();
        let (mut wal, replay) = Wal::open(&path, false).unwrap();
        assert_eq!(replay.records, 1, "replay stops at the last whole record");
        assert_eq!(replay.pending.len(), 1, "the settle record was torn away, so the job is pending again");
        let first_record_len = 4 + u32::from_le_bytes(bytes[..4].try_into().unwrap()) as u64;
        assert_eq!(std::fs::metadata(&path).unwrap().len(), first_record_len, "torn tail is truncated away on open");
        // the journal keeps working after truncation
        wal.append(&WalRecord::Completed { key: key_hex(1) }).unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path, false).unwrap();
        assert_eq!(replay.records, 2);
        assert!(replay.pending.is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
