//! The job model: what a campaign cell asks for, how it is validated at
//! admission, and the canonical content hash that makes the result cache
//! content-addressed.
//!
//! Two jobs that would compute the same physics must hash identically even
//! when they are *described* differently (a serial job "on 3 procs", a
//! shared-memory job asking for kernel V6 that the driver forces to V5).
//! [`JobSpec::canonical`] normalizes those degrees of freedom away before
//! hashing; priority and label never enter the key — urgency does not
//! change the answer.

use ns_core::config::{Regime, SolverConfig, Version};
use ns_numerics::Grid;
use ns_runtime::CommVersion;
use serde::Serialize;

/// Admission priority. Higher levels are served first; under overload the
/// queue sheds from the lowest level upward.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Backfill work: first to be shed.
    Low,
    /// The default.
    Normal,
    /// Latency-sensitive: served first, never shed in favour of others.
    High,
}

impl Priority {
    /// Numeric level (higher is more urgent).
    pub fn level(self) -> u8 {
        match self {
            Priority::Low => 0,
            Priority::Normal => 1,
            Priority::High => 2,
        }
    }

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }

    /// Parse a lowercase name.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "low" => Ok(Priority::Low),
            "normal" => Ok(Priority::Normal),
            "high" => Ok(Priority::High),
            other => Err(format!("unknown priority {other:?} (expected low|normal|high)")),
        }
    }
}

/// Which execution backend runs the job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Single-threaded reference solver.
    Serial,
    /// Distributed-memory driver (`run_parallel`, one thread per rank).
    Parallel,
    /// Distributed driver with the recovery machinery armed (fault-free
    /// plan: checkpoints are taken, nothing is injected).
    Chaos,
    /// Shared-memory driver (`SharedSolver`, Rayon row bands).
    Shared,
}

impl Backend {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Serial => "serial",
            Backend::Parallel => "parallel",
            Backend::Chaos => "chaos",
            Backend::Shared => "shared",
        }
    }

    /// Parse a lowercase name.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "serial" => Ok(Backend::Serial),
            "parallel" => Ok(Backend::Parallel),
            "chaos" => Ok(Backend::Chaos),
            "shared" => Ok(Backend::Shared),
            other => Err(format!("unknown backend {other:?} (expected serial|parallel|chaos|shared)")),
        }
    }
}

/// Stable name of a comm protocol version.
pub fn comm_name(v: CommVersion) -> &'static str {
    match v {
        CommVersion::V5 => "commV5",
        CommVersion::V6 => "commV6",
        CommVersion::V7 => "commV7",
    }
}

/// One simulation job: the full solver configuration plus the run shape.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Reporting label (never part of the cache key). Empty means "use the
    /// canonical case name".
    pub label: String,
    /// Solver configuration.
    pub cfg: SolverConfig,
    /// Steps to run.
    pub steps: u64,
    /// Processor count (ranks for parallel/chaos, threads for shared,
    /// ignored for serial).
    pub procs: usize,
    /// Comm protocol version (parallel/chaos backends only).
    pub comm: CommVersion,
    /// Execution backend.
    pub backend: Backend,
    /// Admission priority (never part of the cache key).
    pub priority: Priority,
    /// Queue-side deadline measured from admission (never part of the
    /// cache key — urgency does not change the answer). A job still queued
    /// when its deadline passes is settled as failed instead of run.
    pub deadline: Option<std::time::Duration>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl JobSpec {
    /// A job with defaults for everything but the physics: parallel
    /// backend, V5 comm, normal priority, canonical label.
    pub fn new(cfg: SolverConfig, steps: u64, procs: usize) -> Self {
        Self {
            label: String::new(),
            cfg,
            steps,
            procs,
            comm: CommVersion::V5,
            backend: Backend::Parallel,
            priority: Priority::Normal,
            deadline: None,
        }
    }

    /// The spec with description-level degrees of freedom normalized away,
    /// so equal physics hashes equally: serial runs have no meaningful
    /// procs/comm, the shared driver forces kernel V5 and uses no message
    /// protocol.
    pub fn canonical(&self) -> JobSpec {
        let mut c = self.clone();
        c.label = String::new();
        c.deadline = None;
        match c.backend {
            Backend::Serial => {
                c.procs = 1;
                c.comm = CommVersion::V5;
            }
            Backend::Shared => {
                c.cfg.version = Version::V5;
                c.comm = CommVersion::V5;
            }
            Backend::Parallel | Backend::Chaos => {}
        }
        c
    }

    /// Canonical case name of the cell, e.g.
    /// `"euler/V5/parallel/p4/commV6/nx66x24/s6"`.
    pub fn case(&self) -> String {
        let c = self.canonical();
        let rk = match c.cfg.regime {
            Regime::Euler => "euler",
            Regime::NavierStokes => "navier-stokes",
        };
        format!(
            "{rk}/{:?}/{}/p{}/{}/nx{}x{}/s{}",
            c.cfg.version,
            c.backend.name(),
            c.procs,
            comm_name(c.comm),
            c.cfg.grid.nx,
            c.cfg.grid.nr,
            c.steps
        )
    }

    /// Content-addressed cache key: FNV-1a 64 over the canonical spec (the
    /// full serialized solver configuration plus the run shape). Priority
    /// and label are deliberately excluded.
    pub fn canonical_key(&self) -> u64 {
        let c = self.canonical();
        let cfg_json = serde_json::to_string(&c.cfg).expect("solver config serializes");
        let mut h = fnv1a(FNV_OFFSET, cfg_json.as_bytes());
        let shape = format!("|{}|{}|{}|{}", c.steps, c.procs, comm_name(c.comm), c.backend.name());
        h = fnv1a(h, shape.as_bytes());
        h
    }

    /// A dimensionless work estimate for the job, used to scale the
    /// retry-after hint: cells × steps. The absolute value is meaningless;
    /// only the ratio between two jobs matters, and cells × steps tracks
    /// the split scheme's O(nx·nr) per-step cost across every backend.
    pub fn cost_units(&self) -> u64 {
        let cells = (self.cfg.grid.nx as u64).saturating_mul(self.cfg.grid.nr as u64);
        cells.saturating_mul(self.steps).max(1)
    }

    /// Admission-time validation: reject jobs the backends would panic on,
    /// so a bad request costs an error payload, not a worker.
    pub fn validate(&self) -> Result<(), String> {
        if self.steps == 0 {
            return Err("steps must be >= 1".into());
        }
        if self.procs == 0 {
            return Err("procs must be >= 1".into());
        }
        match self.backend {
            Backend::Parallel | Backend::Chaos => {
                if self.cfg.dissipation != 0.0 {
                    return Err("dissipation is serial-only; the parallel drivers reject it".into());
                }
                // the same typed plan validation the drivers run, so a
                // daemon never admits work it would panic on
                ns_runtime::CartTopology::axial(self.procs)
                    .validate(&self.cfg, self.comm)
                    .map_err(|e| e.to_string())?;
            }
            Backend::Shared => {
                if self.cfg.dissipation != 0.0 {
                    return Err("dissipation is serial-only; the shared driver rejects it".into());
                }
                if self.cfg.mms.is_some() {
                    return Err("MMS runs use the serial or distributed drivers".into());
                }
                if self.cfg.scheme != ns_core::config::SchemeOrder::TwoFour {
                    return Err("the shared driver implements the 2-4 scheme only".into());
                }
            }
            Backend::Serial => {}
        }
        Ok(())
    }
}

/// JSON-facing job description, the `jetns serve --jobs` wire format. Grid
/// extents use the paper's domain (50 x 5 jet radii); everything beyond the
/// physics shape has serve-appropriate defaults.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct JobDesc {
    /// Optional reporting label.
    pub label: Option<String>,
    /// `"euler"` or `"navier-stokes"`.
    pub regime: String,
    /// Axial grid points.
    pub nx: usize,
    /// Radial grid points.
    pub nr: usize,
    /// Steps to run.
    pub steps: u64,
    /// Kernel version `"V1"`..`"V7"` (default `"V5"`).
    pub version: String,
    /// Processor count (default 1).
    pub procs: usize,
    /// Comm protocol `"V5"|"V6"|"V7"` (default `"V5"`).
    pub comm: String,
    /// Backend `"serial"|"parallel"|"chaos"|"shared"` (default
    /// `"parallel"`).
    pub backend: String,
    /// Priority `"low"|"normal"|"high"` (default `"normal"`).
    pub priority: String,
    /// Optional queue-side deadline in milliseconds from admission.
    pub deadline_ms: Option<u64>,
}

// Hand-written: the offline serde shim's derive has no `#[serde(default)]`,
// and the wire format wants absent keys to mean "the serve default".
impl serde::Deserialize for JobDesc {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::DeError> {
        let req = |key: &str| serde::map_field(v.as_map().unwrap_or(&[]), key, "JobDesc");
        let opt_str = |key: &str, default: &str| -> Result<String, serde::DeError> {
            match v.get(key) {
                None | Some(serde::Value::Null) => Ok(default.to_string()),
                Some(val) => serde::Deserialize::deserialize(val),
            }
        };
        let label = match v.get("label") {
            None | Some(serde::Value::Null) => None,
            Some(val) => Some(serde::Deserialize::deserialize(val)?),
        };
        let procs = match v.get("procs") {
            None | Some(serde::Value::Null) => 1,
            Some(val) => serde::Deserialize::deserialize(val)?,
        };
        let deadline_ms = match v.get("deadline_ms") {
            None | Some(serde::Value::Null) => None,
            Some(val) => Some(serde::Deserialize::deserialize(val)?),
        };
        Ok(Self {
            label,
            regime: serde::Deserialize::deserialize(req("regime")?)?,
            nx: serde::Deserialize::deserialize(req("nx")?)?,
            nr: serde::Deserialize::deserialize(req("nr")?)?,
            steps: serde::Deserialize::deserialize(req("steps")?)?,
            version: opt_str("version", "V5")?,
            procs,
            comm: opt_str("comm", "V5")?,
            backend: opt_str("backend", "parallel")?,
            priority: opt_str("priority", "normal")?,
            deadline_ms,
        })
    }
}

impl JobDesc {
    /// Resolve the description into an executable spec.
    pub fn to_spec(&self) -> Result<JobSpec, String> {
        let regime = match self.regime.as_str() {
            "euler" => Regime::Euler,
            "navier-stokes" => Regime::NavierStokes,
            other => return Err(format!("unknown regime {other:?} (expected euler|navier-stokes)")),
        };
        let version = Version::ALL
            .iter()
            .copied()
            .find(|v| format!("{v:?}") == self.version)
            .ok_or_else(|| format!("unknown kernel version {:?} (expected V1..V7)", self.version))?;
        let comm = match self.comm.as_str() {
            "V5" => CommVersion::V5,
            "V6" => CommVersion::V6,
            "V7" => CommVersion::V7,
            other => return Err(format!("unknown comm version {other:?} (expected V5|V6|V7)")),
        };
        let mut cfg = SolverConfig::paper(Grid::new(self.nx, self.nr, 50.0, 5.0), regime);
        cfg.version = version;
        let spec = JobSpec {
            label: self.label.clone().unwrap_or_default(),
            cfg,
            steps: self.steps,
            procs: self.procs,
            comm,
            backend: Backend::parse(&self.backend)?,
            priority: Priority::parse(&self.priority)?,
            deadline: self.deadline_ms.map(std::time::Duration::from_millis),
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Describe a spec back as a wire description. The daemon journals
    /// descriptions, not specs, so a replayed job re-enters through the
    /// same validation as a fresh submit. Only paper-domain grids (the
    /// shape every serve entry point constructs) survive the round trip —
    /// a spec with a hand-built exotic `SolverConfig` does not, which is
    /// fine: the socket wire format itself can only express paper grids.
    pub fn from_spec(spec: &JobSpec) -> Self {
        Self {
            label: if spec.label.is_empty() { None } else { Some(spec.label.clone()) },
            regime: match spec.cfg.regime {
                Regime::Euler => "euler".into(),
                Regime::NavierStokes => "navier-stokes".into(),
            },
            nx: spec.cfg.grid.nx,
            nr: spec.cfg.grid.nr,
            steps: spec.steps,
            version: format!("{:?}", spec.cfg.version),
            procs: spec.procs,
            comm: match spec.comm {
                CommVersion::V5 => "V5".into(),
                CommVersion::V6 => "V6".into(),
                CommVersion::V7 => "V7".into(),
            },
            backend: spec.backend.name().into(),
            priority: spec.priority.name().into(),
            deadline_ms: spec.deadline.map(|d| d.as_millis() as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(nx: usize) -> JobSpec {
        JobSpec::new(SolverConfig::paper(Grid::new(nx, 16, 50.0, 5.0), Regime::Euler), 4, 2)
    }

    #[test]
    fn key_ignores_priority_and_label() {
        let a = spec(48);
        let mut b = spec(48);
        b.priority = Priority::High;
        b.label = "urgent sweep cell".into();
        assert_eq!(a.canonical_key(), b.canonical_key());
        assert_eq!(a.case(), b.case());
    }

    #[test]
    fn key_separates_different_physics_and_shape() {
        let base = spec(48);
        let mut other_grid = spec(64);
        other_grid.label.clear();
        let mut other_steps = spec(48);
        other_steps.steps = 6;
        let mut other_comm = spec(48);
        other_comm.comm = CommVersion::V6;
        let mut other_backend = spec(48);
        other_backend.backend = Backend::Chaos;
        let keys: Vec<u64> =
            [&base, &other_grid, &other_steps, &other_comm, &other_backend].iter().map(|s| s.canonical_key()).collect();
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "cells {i} and {j} collide");
            }
        }
    }

    #[test]
    fn canonicalization_merges_equivalent_descriptions() {
        // a serial job's procs/comm are meaningless
        let mut a = spec(48);
        a.backend = Backend::Serial;
        a.procs = 3;
        a.comm = CommVersion::V7;
        let mut b = spec(48);
        b.backend = Backend::Serial;
        b.procs = 1;
        b.comm = CommVersion::V5;
        assert_eq!(a.canonical_key(), b.canonical_key());
        // the shared driver forces kernel V5
        let mut c = spec(48);
        c.backend = Backend::Shared;
        c.cfg.version = Version::V6;
        let mut d = spec(48);
        d.backend = Backend::Shared;
        assert_eq!(c.canonical_key(), d.canonical_key());
    }

    #[test]
    fn validation_rejects_what_the_drivers_would_panic_on() {
        let mut too_fine = spec(48);
        too_fine.procs = 16; // 3 columns per rank
        assert!(too_fine.validate().unwrap_err().contains("fewer than 4 columns"));
        let mut zero_steps = spec(48);
        zero_steps.steps = 0;
        assert!(zero_steps.validate().is_err());
        let mut dissipative = spec(48);
        dissipative.cfg.dissipation = 0.1;
        assert!(dissipative.validate().unwrap_err().contains("serial-only"));
    }

    #[test]
    fn desc_roundtrip_and_defaults() {
        let json = r#"{"regime":"euler","nx":48,"nr":16,"steps":4}"#;
        let desc: JobDesc = serde_json::from_str(json).unwrap();
        let spec = desc.to_spec().unwrap();
        assert_eq!(spec.backend, Backend::Parallel);
        assert_eq!(spec.priority, Priority::Normal);
        assert_eq!(spec.procs, 1);
        assert_eq!(spec.comm, CommVersion::V5);
        let bad: JobDesc = serde_json::from_str(r#"{"regime":"plasma","nx":48,"nr":16,"steps":4}"#).unwrap();
        assert!(bad.to_spec().unwrap_err().contains("unknown regime"));
    }
}
