//! Bounded priority admission queue.
//!
//! Depth is a hard bound — admission control, not a hint. A push onto a
//! full queue either *sheds* a strictly lower-priority queued job to make
//! room (lowest level first; within a level the newest job goes, so older
//! jobs keep their queue progress) or is rejected outright, and the server
//! turns the rejection into a retry-after hint. Dispatch order is highest
//! priority first, FIFO within a priority level.

use crate::job::JobSpec;
use std::cmp::Reverse;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// A job admitted to the queue.
#[derive(Debug)]
pub struct QueuedJob {
    /// Server-assigned id (admission order; doubles as the FIFO tiebreak).
    pub id: u64,
    /// The job.
    pub spec: JobSpec,
    /// When the job was admitted (queue-wait telemetry).
    pub submitted: Instant,
}

/// Why a push failed.
#[derive(Debug)]
pub enum PushError {
    /// Queue at capacity and nothing queued is lower-priority than the
    /// newcomer. The rejected job rides back so the server can derive a
    /// retry-after hint from *its* shape, not from some global average.
    Full(Box<QueuedJob>),
    /// The queue has been closed for new work.
    Closed,
}

/// What a successful push did.
#[derive(Debug)]
pub enum Pushed {
    /// There was room.
    Admitted,
    /// The queue was full; this lower-priority job was evicted to make
    /// room (the server reports it as shed). Boxed: a `QueuedJob` carries a
    /// whole solver config, which would dwarf the `Admitted` variant.
    Shed(Box<QueuedJob>),
}

struct QState {
    jobs: Vec<QueuedJob>,
    closed: bool,
}

/// The bounded priority queue. All methods are thread-safe.
pub struct JobQueue {
    depth: usize,
    state: Mutex<QState>,
    cv: Condvar,
}

impl JobQueue {
    /// A queue admitting at most `depth` jobs at a time.
    pub fn new(depth: usize) -> Self {
        assert!(depth >= 1);
        Self { depth, state: Mutex::new(QState { jobs: Vec::new(), closed: false }), cv: Condvar::new() }
    }

    /// The configured depth bound.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().jobs.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admit a job, shedding a strictly lower-priority one if the queue is
    /// full.
    pub fn push(&self, job: QueuedJob) -> Result<Pushed, PushError> {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return Err(PushError::Closed);
        }
        let mut outcome = Pushed::Admitted;
        if st.jobs.len() >= self.depth {
            // shed candidate: lowest priority level; within it, the newest
            // (highest id) — older jobs keep their queue progress
            let victim = st
                .jobs
                .iter()
                .enumerate()
                .min_by_key(|(_, j)| (j.spec.priority.level(), Reverse(j.id)))
                .map(|(i, j)| (i, j.spec.priority.level()));
            match victim {
                Some((i, level)) if level < job.spec.priority.level() => {
                    outcome = Pushed::Shed(Box::new(st.jobs.swap_remove(i)));
                }
                _ => return Err(PushError::Full(Box::new(job))),
            }
        }
        st.jobs.push(job);
        self.cv.notify_one();
        Ok(outcome)
    }

    /// Block until a job is available (highest priority, FIFO within a
    /// level) or the queue is closed *and* drained; `None` means shutdown.
    pub fn pop(&self) -> Option<QueuedJob> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(i) =
                st.jobs.iter().enumerate().max_by_key(|(_, j)| (j.spec.priority.level(), Reverse(j.id))).map(|(i, _)| i)
            {
                return Some(st.jobs.swap_remove(i));
            }
            if st.closed {
                return None;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Close the queue for new work; blocked `pop`s return once drained.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.cv.notify_all();
    }

    /// Close and empty the queue, returning everything still waiting (the
    /// server reports them as shed on immediate shutdown).
    pub fn drain(&self) -> Vec<QueuedJob> {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        let jobs = std::mem::take(&mut st.jobs);
        self.cv.notify_all();
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Backend, Priority};
    use ns_core::config::{Regime, SolverConfig};
    use ns_numerics::Grid;

    fn job(id: u64, priority: Priority) -> QueuedJob {
        let mut spec = JobSpec::new(SolverConfig::paper(Grid::small(), Regime::Euler), 2, 1);
        spec.backend = Backend::Serial;
        spec.priority = priority;
        QueuedJob { id, spec, submitted: Instant::now() }
    }

    #[test]
    fn dispatch_is_priority_then_fifo() {
        let q = JobQueue::new(8);
        for (id, p) in [(1, Priority::Low), (2, Priority::High), (3, Priority::Normal), (4, Priority::High)] {
            q.push(job(id, p)).unwrap();
        }
        let order: Vec<u64> = (0..4).map(|_| q.pop().unwrap().id).collect();
        assert_eq!(order, vec![2, 4, 3, 1], "priority desc, FIFO within a level");
    }

    #[test]
    fn full_queue_sheds_lowest_priority_newest_first() {
        let q = JobQueue::new(3);
        q.push(job(1, Priority::Low)).unwrap();
        q.push(job(2, Priority::Normal)).unwrap();
        q.push(job(3, Priority::Low)).unwrap();
        // a High arrival sheds the newest Low (id 3), not the older one
        match q.push(job(4, Priority::High)).unwrap() {
            Pushed::Shed(victim) => assert_eq!(victim.id, 3),
            other => panic!("expected shed, got {other:?}"),
        }
        // an arrival that outranks nothing queued is rejected, riding back
        match q.push(job(5, Priority::Low)).unwrap_err() {
            PushError::Full(rejected) => assert_eq!(rejected.id, 5),
            other => panic!("expected Full, got {other:?}"),
        }
        // a normal arrival still outranks the remaining low job
        match q.push(job(6, Priority::Normal)).unwrap() {
            Pushed::Shed(victim) => assert_eq!(victim.id, 1),
            other => panic!("expected shed, got {other:?}"),
        }
        let order: Vec<u64> = (0..3).map(|_| q.pop().unwrap().id).collect();
        assert_eq!(order, vec![4, 2, 6]);
    }

    #[test]
    fn equal_priority_never_sheds() {
        let q = JobQueue::new(2);
        q.push(job(1, Priority::Normal)).unwrap();
        q.push(job(2, Priority::Normal)).unwrap();
        assert!(
            matches!(q.push(job(3, Priority::Normal)).unwrap_err(), PushError::Full(_)),
            "a full queue of equals rejects rather than shedding"
        );
    }

    #[test]
    fn close_drains_then_stops() {
        let q = JobQueue::new(4);
        q.push(job(1, Priority::Normal)).unwrap();
        q.close();
        assert!(matches!(q.push(job(2, Priority::Normal)).unwrap_err(), PushError::Closed));
        assert_eq!(q.pop().unwrap().id, 1, "queued work is still served after close");
        assert!(q.pop().is_none(), "then pops report shutdown");
    }

    #[test]
    fn pop_blocks_until_work_or_close() {
        use std::sync::Arc;
        let q = Arc::new(JobQueue::new(2));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop().map(|j| j.id));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(job(9, Priority::Normal)).unwrap();
        assert_eq!(h.join().unwrap(), Some(9));
        let q3 = Arc::clone(&q);
        let h = std::thread::spawn(move || q3.pop().is_none());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert!(h.join().unwrap(), "close releases blocked pops");
    }
}
