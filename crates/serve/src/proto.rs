//! The client↔daemon wire protocol: length-prefixed, checksum-framed
//! request/response messages over a byte stream (in practice a Unix
//! socket).
//!
//! Each message is `[u32 le length][sealed frame]`, the frame being the
//! PR 3 layout `[body][seq:8][span:8][checksum:8]` with the body a JSON
//! document — the same framing the WAL and the spill use, so a bit flip
//! anywhere in transport is detected by the checksum trailer, not by a
//! JSON parse error three layers up. `seq` carries a per-connection
//! message counter (each direction counts its own messages; a mismatch
//! means a desynchronized stream and kills the connection), `span` is 0.

use bytes::Bytes;
use ns_runtime::pack::{frame_checksum, open_frame, FRAME_TRAILER};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Largest message body accepted; a torn or hostile length prefix reads
/// as an error, not an allocation.
pub const MAX_MESSAGE_BYTES: usize = 16 << 20;

/// What a client can ask.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Submit a job for execution (idempotent by canonical key: a key
    /// that already has a durable result answers `Done` immediately).
    Submit {
        /// The job description (the `jetns serve --jobs` wire format).
        desc: crate::job::JobDesc,
    },
    /// Block until the keyed job settles (or the timeout passes).
    Wait {
        /// Canonical key, `{:016x}` (from an `Admitted` response).
        key: String,
        /// Give up after this many milliseconds.
        timeout_ms: u64,
    },
    /// Daemon status snapshot.
    Status,
    /// Ask the daemon to drain gracefully: stop admitting, finish every
    /// admitted job, journal a clean shutdown, exit.
    Drain,
}

/// Daemon status snapshot returned by [`Request::Status`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DaemonStatus {
    /// Server counters (submissions, completions, cache, brownout...).
    pub stats: crate::server::ServeStats,
    /// Jobs currently queued.
    pub queue_len: u64,
    /// Admitted-but-unsettled jobs the daemon is tracking (queued or
    /// in flight).
    pub inflight: u64,
    /// WAL records written so far (including replayed ones).
    pub wal_records: u64,
    /// True while a drain is in progress.
    pub draining: bool,
    /// True when admission is currently browning out low-priority work.
    pub brownout: bool,
}

/// What the daemon answers.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The job was admitted (journaled durably before this was sent).
    Admitted {
        /// Daemon-assigned job id.
        id: u64,
        /// Canonical key to [`Request::Wait`] on, `{:016x}`.
        key: String,
    },
    /// The job's result (from a fresh run, the cache, or the spill).
    Done {
        /// Canonical key, `{:016x}`.
        key: String,
        /// Canonical case name.
        case: String,
        /// `"cold"`, `"hit"` or `"durable"` (served without re-queueing).
        cache: String,
        /// The run's `RunSummary` JSON, byte-identical across duplicates.
        payload: String,
        /// FNV-1a 64 fingerprint of the final field, `{:016x}`.
        field_hash: String,
        /// Queue wait on the daemon side, milliseconds (0 for durable
        /// short-circuits).
        queue_ms: f64,
        /// Backend wall time, milliseconds (0 for cache/durable serves).
        run_ms: f64,
    },
    /// Not admitted: back off and retry.
    Busy {
        /// Suggested backoff in milliseconds.
        retry_after_ms: u64,
        /// The rejection came from brownout shedding, not a full queue.
        brownout: bool,
    },
    /// Validation failed; the job was never journaled.
    Invalid {
        /// What was wrong.
        reason: String,
    },
    /// The job settled without a result.
    Failed {
        /// Canonical key, `{:016x}`.
        key: String,
        /// Backend error, shed notice, or deadline expiry.
        error: String,
    },
    /// A [`Request::Wait`] timed out; the job may still settle later.
    TimedOut {
        /// Canonical key, `{:016x}`.
        key: String,
    },
    /// Status snapshot.
    Status {
        /// The snapshot.
        status: DaemonStatus,
    },
    /// Drain acknowledged; the daemon stops accepting new connections.
    Draining,
}

/// Frame a message body (JSON bytes) onto a stream.
pub fn write_frame(w: &mut impl Write, seq: u64, body: &[u8]) -> std::io::Result<()> {
    if body.len() > MAX_MESSAGE_BYTES {
        return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "message exceeds MAX_MESSAGE_BYTES"));
    }
    let sum = frame_checksum(seq, 0, body);
    let mut framed = Vec::with_capacity(4 + body.len() + FRAME_TRAILER);
    framed.extend_from_slice(&((body.len() + FRAME_TRAILER) as u32).to_le_bytes());
    framed.extend_from_slice(body);
    framed.extend_from_slice(&seq.to_le_bytes());
    framed.extend_from_slice(&0u64.to_le_bytes());
    framed.extend_from_slice(&sum.to_le_bytes());
    w.write_all(&framed)
}

/// Read one framed message body off a stream, validating length bounds,
/// checksum, and the expected per-connection sequence number.
pub fn read_frame(r: &mut impl Read, expect_seq: u64) -> std::io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if !(FRAME_TRAILER..=MAX_MESSAGE_BYTES + FRAME_TRAILER).contains(&len) {
        return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad frame length {len}")));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    let frame = open_frame(Bytes::from(buf))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("corrupt frame: {e:?}")))?;
    if frame.seq != expect_seq {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("desynchronized stream: seq {} expected {expect_seq}", frame.seq),
        ));
    }
    Ok(frame.body.to_vec())
}

/// Serialize and frame a request.
pub fn write_request(w: &mut impl Write, seq: u64, req: &Request) -> std::io::Result<()> {
    write_frame(w, seq, serde_json::to_string(req).expect("request serializes").as_bytes())
}

/// Read and parse a request.
pub fn read_request(r: &mut impl Read, expect_seq: u64) -> std::io::Result<Request> {
    let body = read_frame(r, expect_seq)?;
    serde_json::from_slice(&body)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad request: {e}")))
}

/// Serialize and frame a response.
pub fn write_response(w: &mut impl Write, seq: u64, resp: &Response) -> std::io::Result<()> {
    write_frame(w, seq, serde_json::to_string(resp).expect("response serializes").as_bytes())
}

/// Read and parse a response.
pub fn read_response(r: &mut impl Read, expect_seq: u64) -> std::io::Result<Response> {
    let body = read_frame(r, expect_seq)?;
    serde_json::from_slice(&body)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad response: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_response_roundtrip_over_a_buffer() {
        let req = Request::Wait { key: "00000000deadbeef".into(), timeout_ms: 250 };
        let mut buf = Vec::new();
        write_request(&mut buf, 0, &req).unwrap();
        let got = read_request(&mut buf.as_slice(), 0).unwrap();
        assert_eq!(got, req);
        let resp = Response::Busy { retry_after_ms: 40, brownout: true };
        let mut buf = Vec::new();
        write_response(&mut buf, 7, &resp).unwrap();
        assert_eq!(read_response(&mut buf.as_slice(), 7).unwrap(), resp);
    }

    #[test]
    fn corruption_and_desync_are_io_errors() {
        let mut buf = Vec::new();
        write_request(&mut buf, 0, &Request::Status).unwrap();
        let mut flipped = buf.clone();
        let mid = 4 + 2; // inside the body
        flipped[mid] ^= 0x40;
        assert!(read_request(&mut flipped.as_slice(), 0).is_err(), "bit flip must fail the checksum");
        assert!(read_request(&mut buf.as_slice(), 1).is_err(), "wrong seq means a desynchronized stream");
        let short = &buf[..buf.len() - 3];
        assert!(read_request(&mut &short[..], 0).is_err(), "truncated frame is an io error");
    }
}
