//! Low-overhead phase profiler.
//!
//! The solver's operators call [`PhaseTimer::start`] at each phase boundary
//! and [`PhaseTimer::pause`] around unattributed work (halo exchanges, which
//! the runtime accounts separately). Starting a phase implicitly closes the
//! previous one, so instrumented code is a flat sequence of `start` calls
//! rather than nested guards.
//!
//! Phase labels are `&'static str` and must come from the shared vocabulary
//! defined by `ns_core::workload` (`r:prims`, `x:flux2`, …; the fused V6
//! kernel path merges each prims phase into its flux sweep and reports the
//! combined phases as `r:fused`, `r:fused2`, `x:fused`, `x:fused2`) plus the
//! runtime's communication labels (`comm:send`, `comm:recv`, `comm:stall`);
//! using the same strings on both the measured and the simulated side is
//! what makes the two breakdowns line up in one report.
//!
//! A disabled timer (the default) returns after a single branch, so leaving
//! the instrumentation compiled into the hot path costs effectively nothing.

use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

/// Accumulated cost of one phase label.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct PhaseStat {
    /// Total seconds attributed to the label.
    pub seconds: f64,
    /// Number of `start`/close cycles.
    pub calls: u64,
}

/// Per-label accumulated phase costs of one solver instance (one rank).
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct PhaseLedger {
    /// Stats keyed by phase label.
    pub by_label: BTreeMap<&'static str, PhaseStat>,
}

impl PhaseLedger {
    /// Attribute `secs` seconds to `label`.
    pub fn add(&mut self, label: &'static str, secs: f64) {
        let e = self.by_label.entry(label).or_default();
        e.seconds += secs;
        e.calls += 1;
    }

    /// Seconds attributed to `label` (0 if never seen).
    pub fn seconds(&self, label: &str) -> f64 {
        self.by_label.get(label).map_or(0.0, |s| s.seconds)
    }

    /// Total attributed seconds over all labels.
    pub fn total_seconds(&self) -> f64 {
        self.by_label.values().map(|s| s.seconds).sum()
    }

    /// Fold another ledger into this one (aggregation over ranks).
    pub fn merge(&mut self, other: &PhaseLedger) {
        for (label, stat) in &other.by_label {
            let e = self.by_label.entry(label).or_default();
            e.seconds += stat.seconds;
            e.calls += stat.calls;
        }
    }

    /// The `label -> seconds` view (the shape `ns-archsim` reports).
    pub fn seconds_by_label(&self) -> BTreeMap<&'static str, f64> {
        self.by_label.iter().map(|(&l, s)| (l, s.seconds)).collect()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.by_label.is_empty()
    }
}

/// One timestamped phase span (recorded only in tracing mode).
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct PhaseEvent {
    /// Phase label.
    pub label: &'static str,
    /// Start, microseconds since the trace origin.
    pub t_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// The phase profiler: disabled by default, accumulate-only when enabled,
/// optionally also recording timestamped [`PhaseEvent`]s for Gantt-style
/// timelines.
#[derive(Clone, Debug)]
pub struct PhaseTimer {
    on: bool,
    tracing: bool,
    t0: Instant,
    current: Option<(&'static str, Instant)>,
    /// Accumulated per-label costs.
    pub ledger: PhaseLedger,
    /// Timestamped spans (tracing mode only).
    pub events: Vec<PhaseEvent>,
}

impl Default for PhaseTimer {
    fn default() -> Self {
        Self {
            on: false,
            tracing: false,
            t0: Instant::now(),
            current: None,
            ledger: PhaseLedger::default(),
            events: Vec::new(),
        }
    }
}

impl PhaseTimer {
    /// Is the timer collecting anything?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.on
    }

    /// Turn on accumulation (no per-event timestamps).
    pub fn enable(&mut self) {
        self.on = true;
    }

    /// Turn on accumulation *and* timestamped span recording, with times
    /// measured from `t0` (share one `t0` across ranks so their timelines
    /// align).
    pub fn enable_traced(&mut self, t0: Instant) {
        self.on = true;
        self.tracing = true;
        self.t0 = t0;
    }

    /// Begin the phase `label`, closing any phase already open.
    #[inline]
    pub fn start(&mut self, label: &'static str) {
        if !self.on {
            return;
        }
        let now = Instant::now();
        self.close(now);
        self.current = Some((label, now));
    }

    /// Close the open phase without starting a new one (call around work
    /// that is accounted elsewhere, e.g. halo exchanges).
    #[inline]
    pub fn pause(&mut self) {
        if !self.on {
            return;
        }
        let now = Instant::now();
        self.close(now);
    }

    fn close(&mut self, now: Instant) {
        if let Some((label, t)) = self.current.take() {
            let dur = now.saturating_duration_since(t);
            self.ledger.add(label, dur.as_secs_f64());
            if self.tracing {
                self.events.push(PhaseEvent {
                    label,
                    t_us: t.saturating_duration_since(self.t0).as_micros() as u64,
                    dur_us: dur.as_micros() as u64,
                });
            }
        }
    }

    /// Take the collected ledger and events, leaving the timer running with
    /// empty accumulators.
    pub fn take(&mut self) -> (PhaseLedger, Vec<PhaseEvent>) {
        self.pause();
        (std::mem::take(&mut self.ledger), std::mem::take(&mut self.events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_timer_records_nothing() {
        let mut t = PhaseTimer::default();
        t.start("x:prims");
        t.start("x:flux");
        t.pause();
        assert!(t.ledger.is_empty());
        assert!(t.events.is_empty());
    }

    #[test]
    fn start_closes_previous_phase_and_accumulates() {
        let mut t = PhaseTimer::default();
        t.enable();
        t.start("x:prims");
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.start("x:flux");
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.pause();
        t.start("x:prims");
        t.pause();
        assert_eq!(t.ledger.by_label["x:prims"].calls, 2);
        assert_eq!(t.ledger.by_label["x:flux"].calls, 1);
        assert!(t.ledger.seconds("x:prims") >= 0.002);
        assert!(t.ledger.seconds("x:flux") >= 0.002);
        assert!((t.ledger.total_seconds() - (t.ledger.seconds("x:prims") + t.ledger.seconds("x:flux"))).abs() < 1e-15);
        // accumulate-only mode records no spans
        assert!(t.events.is_empty());
    }

    #[test]
    fn traced_timer_records_ordered_spans() {
        let mut t = PhaseTimer::default();
        t.enable_traced(Instant::now());
        t.start("r:prims");
        std::thread::sleep(std::time::Duration::from_millis(1));
        t.start("r:flux");
        std::thread::sleep(std::time::Duration::from_millis(1));
        t.pause();
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.events[0].label, "r:prims");
        assert!(t.events[1].t_us >= t.events[0].t_us + t.events[0].dur_us);
    }

    #[test]
    fn merge_aggregates_ranks() {
        let mut a = PhaseLedger::default();
        a.add("x:flux", 1.0);
        let mut b = PhaseLedger::default();
        b.add("x:flux", 2.0);
        b.add("comm:recv", 0.5);
        a.merge(&b);
        assert_eq!(a.seconds("x:flux"), 3.0);
        assert_eq!(a.by_label["x:flux"].calls, 2);
        assert_eq!(a.seconds("comm:recv"), 0.5);
    }

    #[test]
    fn take_resets_but_keeps_enabled() {
        let mut t = PhaseTimer::default();
        t.enable();
        t.start("x:correct");
        t.pause();
        let (ledger, events) = t.take();
        assert!(!ledger.is_empty());
        assert!(events.is_empty());
        assert!(t.ledger.is_empty());
        assert!(t.enabled());
    }
}
