#![warn(missing_docs)]

//! # ns-telemetry
//!
//! Unified observability for the reproduction: the same three instruments
//! the paper wished it had on its 1995 testbed ("unless we have hardware
//! performance monitoring tools", Section 6), applied uniformly to the live
//! solver, the message-passing runtime and the architecture simulator.
//!
//! * [`phase`] — a low-overhead phase profiler ([`PhaseTimer`]) that
//!   attributes wall time to the solver's named phases using the **same
//!   label vocabulary** the simulator's workload model uses
//!   (`r:prims` … `x:correct`, `comm:send` / `comm:recv` / `comm:stall`),
//!   so measured and simulated breakdowns are comparable side by side;
//! * [`trace`] — timestamped [`TraceEvent`] records (phase spans, sends,
//!   receives) with JSONL and Chrome `trace_event` exporters;
//! * [`health`] — a run-health monitor sampling the solver's watchdogs
//!   (max Mach, max wave speed, min density/pressure, invariant drift) on a
//!   configurable cadence, with NaN/positivity early-abort and a
//!   machine-readable [`RunSummary`].
//!
//! The crate is deliberately dependency-light (serde only) and sits *below*
//! `ns-core` in the dependency graph: the solver, runtime and simulator all
//! speak these types without this crate knowing about any of them.
//!
//! Everything is **off by default**: a disabled [`PhaseTimer`] or
//! [`Tracer`] costs one branch per call, which keeps the telemetry-off
//! overhead on the solver kernels well under the 2% budget.

pub mod health;
pub mod phase;
pub mod trace;

pub use health::{
    CommTotals, ConservationSummary, HealthConfig, HealthLimits, HealthMonitor, HealthSample, RecoverySummary,
    RunSummary, ServeJobSummary, RUN_SUMMARY_SCHEMA,
};
pub use ns_metrics::MetricsSummary;
pub use phase::{PhaseEvent, PhaseLedger, PhaseStat, PhaseTimer};
pub use trace::{to_chrome_trace, to_jsonl, trace_from_jsonl, EventKind, TraceEvent, Tracer};
