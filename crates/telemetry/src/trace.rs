//! Timestamped event traces and their exporters.
//!
//! A [`TraceEvent`] is one span on one rank's timeline: a compute phase, a
//! message send, or a (possibly blocking) receive. The runtime's endpoints
//! record send/recv events, the solver's [`crate::PhaseTimer`] contributes
//! phase spans, and the architecture simulator emits the same schema from
//! virtual time — so one set of tools (the JSONL exporter, the Chrome
//! `trace_event` exporter, the ASCII Gantt in `ns-experiments`) renders all
//! three.

use crate::phase::PhaseEvent;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// What kind of span a [`TraceEvent`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A named compute phase.
    Phase,
    /// A message send (duration = time spent in the send call).
    Send,
    /// A message receive (duration = time blocked waiting for the match).
    Recv,
    /// A fault-layer event: an injected fault, a NACK, a resend, a frame
    /// discard, or a recovery rollback.
    Fault,
}

impl EventKind {
    /// Lower-case category name (Chrome trace `cat` field).
    pub fn as_str(&self) -> &'static str {
        match self {
            EventKind::Phase => "phase",
            EventKind::Send => "send",
            EventKind::Recv => "recv",
            EventKind::Fault => "fault",
        }
    }
}

/// One span on a rank's timeline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Start, microseconds since the trace origin (wall clock for the live
    /// runtime, virtual time for the simulator).
    pub t_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Rank the event happened on.
    pub rank: usize,
    /// Span kind.
    pub kind: EventKind,
    /// Phase label (`x:flux`, …) or message kind (`Prims1`, `Flux2`, …).
    pub label: String,
    /// Peer rank for sends/receives.
    pub peer: Option<usize>,
    /// Payload bytes moved (sends and receives); 0 for phases.
    pub bytes: u64,
    /// Causal span the event belongs to (minted per `(generation, step)`;
    /// carried inside the reliability layer's frame trailer, so the send,
    /// the NACK and the resend of one logical message share it across
    /// ranks).
    pub span: Option<u64>,
}

impl TraceEvent {
    /// Lift a profiler span onto a rank's timeline.
    pub fn from_phase(rank: usize, e: &PhaseEvent) -> Self {
        Self {
            t_us: e.t_us,
            dur_us: e.dur_us,
            rank,
            kind: EventKind::Phase,
            label: e.label.to_string(),
            peer: None,
            bytes: 0,
            span: None,
        }
    }
}

/// A per-rank event recorder. Disabled by default: a disabled tracer's
/// `enabled()` check is the only cost on the message path.
#[derive(Clone, Debug)]
pub struct Tracer {
    on: bool,
    t0: Instant,
    /// Recorded events, in record order.
    pub events: Vec<TraceEvent>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self { on: false, t0: Instant::now(), events: Vec::new() }
    }
}

impl Tracer {
    /// Is the tracer recording?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.on
    }

    /// Start recording, with timestamps measured from `t0` (share one `t0`
    /// across ranks so their timelines align).
    pub fn enable(&mut self, t0: Instant) {
        self.on = true;
        self.t0 = t0;
    }

    /// Record a span that started at instant `start` and lasted `dur`.
    /// No-op while disabled.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        kind: EventKind,
        rank: usize,
        label: impl Into<String>,
        peer: Option<usize>,
        bytes: u64,
        start: Instant,
        dur: Duration,
    ) {
        self.record_spanned(kind, rank, label, peer, bytes, start, dur, None);
    }

    /// [`Self::record`] with a causal span attached (`None` for events that
    /// happened outside any step).
    #[allow(clippy::too_many_arguments)]
    pub fn record_spanned(
        &mut self,
        kind: EventKind,
        rank: usize,
        label: impl Into<String>,
        peer: Option<usize>,
        bytes: u64,
        start: Instant,
        dur: Duration,
        span: Option<u64>,
    ) {
        if !self.on {
            return;
        }
        self.events.push(TraceEvent {
            t_us: start.saturating_duration_since(self.t0).as_micros() as u64,
            dur_us: dur.as_micros() as u64,
            rank,
            kind,
            label: label.into(),
            peer,
            bytes,
            span,
        });
    }

    /// Take the recorded events, leaving the tracer running and empty.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

/// Export a trace as JSON Lines: one `TraceEvent` object per line, suitable
/// for `grep`/`jq` pipelines and incremental appends. Accepts owned events
/// or references (`&[TraceEvent]` and `&[&TraceEvent]` both work, so merged
/// views borrowed from per-rank storage need no clone).
pub fn to_jsonl<E: std::borrow::Borrow<TraceEvent>>(events: &[E]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&serde_json::to_string(e.borrow()).expect("trace event serializes"));
        out.push('\n');
    }
    out
}

/// Parse a JSONL trace back (blank lines ignored).
pub fn trace_from_jsonl(s: &str) -> Result<Vec<TraceEvent>, serde_json::Error> {
    s.lines().filter(|l| !l.trim().is_empty()).map(serde_json::from_str).collect()
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Export a trace in the Chrome `trace_event` JSON format (open with
/// `chrome://tracing` or <https://ui.perfetto.dev>): every event becomes a
/// complete (`"ph":"X"`) span with `pid` 0 and `tid` = rank, plus thread
/// metadata naming each rank.
pub fn to_chrome_trace<E: std::borrow::Borrow<TraceEvent>>(events: &[E]) -> String {
    // Build the JSON by hand: the schema is fixed and tiny, and this keeps
    // the exporter independent of any particular serde data model.
    let nranks = events.iter().map(|e| e.borrow().rank + 1).max().unwrap_or(0);
    let mut parts: Vec<String> = Vec::with_capacity(events.len() + nranks);
    for r in 0..nranks {
        parts.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{r},\"args\":{{\"name\":\"rank {r}\"}}}}"
        ));
    }
    for e in events {
        let e = e.borrow();
        let peer = e.peer.map_or("null".to_string(), |p| p.to_string());
        // span goes into args only when present, so span-less traces keep
        // their historical shape
        let span = e.span.map_or(String::new(), |s| format!(",\"span\":{s}"));
        parts.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\"args\":{{\"peer\":{},\"bytes\":{}{}}}}}",
            json_escape(&e.label),
            e.kind.as_str(),
            e.t_us,
            e.dur_us,
            e.rank,
            peer,
            e.bytes,
            span,
        ));
    }
    format!("{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                t_us: 0,
                dur_us: 120,
                rank: 0,
                kind: EventKind::Phase,
                label: "x:flux".into(),
                peer: None,
                bytes: 0,
                span: None,
            },
            TraceEvent {
                t_us: 120,
                dur_us: 3,
                rank: 0,
                kind: EventKind::Send,
                label: "Prims1".into(),
                peer: Some(1),
                bytes: 2400,
                span: None,
            },
            TraceEvent {
                t_us: 40,
                dur_us: 85,
                rank: 1,
                kind: EventKind::Recv,
                label: "Prims1".into(),
                peer: Some(0),
                bytes: 0,
                span: Some(77),
            },
        ]
    }

    #[test]
    fn jsonl_round_trips() {
        let evs = sample();
        let text = to_jsonl(&evs);
        assert_eq!(text.lines().count(), 3);
        let back = trace_from_jsonl(&text).unwrap();
        assert_eq!(back, evs);
    }

    #[test]
    fn chrome_trace_is_parseable_json_with_spans() {
        let text = to_chrome_trace(&sample());
        // must parse as JSON at all
        let _: serde_json::Value = serde_json::from_str(&text).unwrap();
        // two ranks -> two thread-name metadata records
        assert_eq!(text.matches("\"thread_name\"").count(), 2);
        // three complete spans with the right names/categories
        assert_eq!(text.matches("\"ph\":\"X\"").count(), 3);
        assert!(text.contains("\"name\":\"x:flux\",\"cat\":\"phase\""));
        assert!(text.contains("\"cat\":\"send\""));
        assert!(text.contains("\"args\":{\"peer\":1,\"bytes\":2400}"));
        assert!(text.contains("\"tid\":1"));
        // a spanned event carries its span in args; span-less events don't
        assert!(text.contains("\"args\":{\"peer\":0,\"bytes\":0,\"span\":77}"));
    }

    #[test]
    fn chrome_trace_escapes_labels() {
        let evs = vec![TraceEvent {
            t_us: 0,
            dur_us: 1,
            rank: 0,
            kind: EventKind::Phase,
            label: "odd\"label\\".into(),
            peer: None,
            bytes: 0,
            span: None,
        }];
        let text = to_chrome_trace(&evs);
        let _: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert!(text.contains("odd\\\"label\\\\"));
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::default();
        t.record(EventKind::Send, 0, "Flux1", Some(1), 64, Instant::now(), Duration::ZERO);
        assert!(t.events.is_empty());
        assert!(!t.enabled());
    }

    #[test]
    fn enabled_tracer_timestamps_against_origin() {
        let mut t = Tracer::default();
        let t0 = Instant::now();
        t.enable(t0);
        std::thread::sleep(Duration::from_millis(2));
        t.record(EventKind::Recv, 3, "Flux2", Some(2), 0, Instant::now(), Duration::from_micros(7));
        assert_eq!(t.events.len(), 1);
        assert!(t.events[0].t_us >= 2000);
        assert_eq!(t.events[0].dur_us, 7);
        assert_eq!(t.events[0].rank, 3);
    }
}
