//! Run-health monitoring and the machine-readable run summary.
//!
//! The solver samples its diagnostic watchdogs (max Mach number, max
//! convective wave speed, min density/pressure, conserved-quantity totals)
//! on a configurable cadence; [`HealthMonitor`] keeps the series, checks
//! every sample against [`HealthLimits`], and tells the driver to abort the
//! moment a sample goes non-finite or out of bounds — long before a NaN
//! would silently fill the whole field. A finished (or aborted) run is
//! described by [`RunSummary`], which the `jetns` CLI writes as JSON.

use crate::phase::PhaseLedger;
use ns_metrics::MetricsSummary;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Schema version stamped into serialized [`RunSummary`] artifacts.
pub const RUN_SUMMARY_SCHEMA: u32 = 1;

/// One sample of the solver's watchdog diagnostics.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HealthSample {
    /// Step index the sample was taken at.
    pub step: u64,
    /// Simulation time.
    pub t: f64,
    /// Time step in use.
    pub dt: f64,
    /// Max Mach number over the interior.
    pub max_mach: f64,
    /// Max convective wave speed |u|+c, |v|+c over the interior.
    pub max_wave_speed: f64,
    /// Min density over the interior.
    pub min_rho: f64,
    /// Min pressure over the interior.
    pub min_p: f64,
    /// Total mass (integral of rho).
    pub mass: f64,
    /// Total energy (integral of rho E).
    pub energy: f64,
    /// False when any interior value is NaN/inf (checked in-pass; the
    /// min/max fields above silently drop NaNs, so they cannot tell).
    pub finite: bool,
}

/// Abort thresholds for [`HealthMonitor`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HealthLimits {
    /// Abort when the max Mach number exceeds this.
    pub max_mach: f64,
    /// Abort when the min density drops to or below this.
    pub min_rho: f64,
    /// Abort when the min pressure drops to or below this.
    pub min_p: f64,
    /// Abort when |mass - mass0| / |mass0| exceeds this.
    pub max_mass_drift: f64,
}

impl Default for HealthLimits {
    fn default() -> Self {
        // Generous defaults: the paper's jet regimes sit near Mach 1.5, and
        // the explicit scheme dies of positivity loss, not mild drift.
        Self { max_mach: 50.0, min_rho: 0.0, min_p: 0.0, max_mass_drift: 0.5 }
    }
}

impl HealthLimits {
    /// Check one sample; `mass0` is the first sample's mass (drift
    /// reference). Returns the violated condition, if any.
    pub fn check(&self, s: &HealthSample, mass0: Option<f64>) -> Option<String> {
        // Finite first: every comparison below is false for NaN, so a NaN
        // field would sail through the threshold tests.
        if !s.finite || !s.max_mach.is_finite() || !s.min_rho.is_finite() || !s.min_p.is_finite() || !s.mass.is_finite()
        {
            return Some(format!("non-finite field values at step {}", s.step));
        }
        if s.max_mach > self.max_mach {
            return Some(format!("max Mach {:.3} exceeds limit {:.3} at step {}", s.max_mach, self.max_mach, s.step));
        }
        if s.min_rho <= self.min_rho {
            return Some(format!(
                "min density {:.3e} at or below limit {:.3e} at step {}",
                s.min_rho, self.min_rho, s.step
            ));
        }
        if s.min_p <= self.min_p {
            return Some(format!(
                "min pressure {:.3e} at or below limit {:.3e} at step {}",
                s.min_p, self.min_p, s.step
            ));
        }
        if let Some(m0) = mass0 {
            if m0 != 0.0 {
                let drift = ((s.mass - m0) / m0).abs();
                if drift > self.max_mass_drift {
                    return Some(format!(
                        "mass drift {:.3e} exceeds limit {:.3e} at step {}",
                        drift, self.max_mass_drift, s.step
                    ));
                }
            }
        }
        None
    }
}

/// How often to sample, and what to tolerate.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HealthConfig {
    /// Sample every `cadence` steps (step 0 included). 0 disables sampling.
    pub cadence: u64,
    /// Abort thresholds.
    pub limits: HealthLimits,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self { cadence: 10, limits: HealthLimits::default() }
    }
}

/// Collects [`HealthSample`]s on a cadence and decides when to abort.
#[derive(Clone, Debug, Default)]
pub struct HealthMonitor {
    cfg: HealthConfig,
    mass0: Option<f64>,
    /// The recorded series.
    pub samples: Vec<HealthSample>,
    /// The violation that aborted the run, if any.
    pub abort: Option<String>,
}

impl HealthMonitor {
    /// Monitor with the given sampling config.
    pub fn new(cfg: HealthConfig) -> Self {
        Self { cfg, ..Self::default() }
    }

    /// The sampling config in use.
    pub fn config(&self) -> HealthConfig {
        self.cfg
    }

    /// Should the driver take a sample after `step`?
    #[inline]
    pub fn due(&self, step: u64) -> bool {
        self.cfg.cadence != 0 && step.is_multiple_of(self.cfg.cadence)
    }

    /// Record a sample. Returns `true` while the run is healthy; `false`
    /// means the driver must stop (the reason is in [`Self::abort`]).
    pub fn observe(&mut self, sample: HealthSample) -> bool {
        if self.mass0.is_none() && sample.finite {
            self.mass0 = Some(sample.mass);
        }
        let verdict = self.cfg.limits.check(&sample, self.mass0);
        self.samples.push(sample);
        if let Some(reason) = verdict {
            self.abort = Some(reason);
            return false;
        }
        true
    }

    /// True when no sample has violated the limits.
    pub fn healthy(&self) -> bool {
        self.abort.is_none()
    }
}

/// Total message-passing activity of a run, summed over ranks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CommTotals {
    /// Messages sent.
    pub sends: u64,
    /// Messages received.
    pub recvs: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Payload bytes received.
    pub bytes_recvd: u64,
    /// NACKs issued while waiting for overdue/corrupt frames (reliability
    /// layer; 0 on unframed runs).
    pub retries: u64,
    /// Cached frames retransmitted in answer to peer NACKs.
    pub resends: u64,
    /// Received frames discarded for checksum failure.
    pub corrupt_frames: u64,
    /// Received frames discarded as duplicates.
    pub dup_frames: u64,
}

/// What the recovery layer did during a chaos run: how often the universe
/// rolled back, how much work was re-executed, and how much healing the
/// reliability layer performed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoverySummary {
    /// Execution generations (1 = no rollback ever happened).
    pub generations: u32,
    /// Rollbacks to the last consistent checkpoint.
    pub rollbacks: u32,
    /// Global steps re-executed because of rollbacks.
    pub recomputed_steps: u64,
    /// Coordinated checkpoints captured (rank-0 count).
    pub checkpoints: u64,
    /// Rank crashes that fired.
    pub crashes: u32,
    /// Receiver-side retries (NACKs issued), summed over ranks and
    /// generations.
    pub retries: u64,
    /// Frames injected with a fault by the chaos plan.
    pub faults_injected: u64,
}

/// Closed conservation ledger of a run: relative raw drift of the four
/// invariants (mass, x-momentum, r-momentum, energy) and the unexplained
/// residual left after integrating the boundary-flux budget in time. The
/// drift of an open domain is physics; the residual is the conservation
/// defect. Computed by the serial driver path (`ns-verify` ledger) and
/// absent where no ledger was attached.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ConservationSummary {
    /// Steps the ledger audited.
    pub steps: u64,
    /// Relative raw invariant drift per component.
    pub drift_rel: [f64; 4],
    /// Relative unexplained residual per component (drift minus the
    /// time-integrated boundary budget).
    pub residual_rel: [f64; 4],
}

/// Job-level serving telemetry, stamped by `ns-serve` when a run was
/// executed on behalf of a queued job: where the job's latency went and
/// whether the payload was produced cold or replayed from the result
/// cache.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServeJobSummary {
    /// Server-assigned job id (admission order).
    pub job_id: u64,
    /// Admission priority level (higher is more urgent).
    pub priority: u8,
    /// Seconds the job waited in the admission queue before a worker
    /// claimed it.
    pub queue_wait_seconds: f64,
    /// Seconds executing the backend run (0 for cache hits).
    pub run_seconds: f64,
    /// `"cold"` for a computed run; cache hits replay the cold payload
    /// byte-for-byte, so a served summary always reads `"cold"` — hit/miss
    /// accounting lives in the server's own counters.
    pub cache: String,
}

/// Machine-readable description of a finished (or aborted) run: what was
/// asked for, what happened, where the time went, and the watchdog series.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunSummary {
    /// Artifact format version (see [`RUN_SUMMARY_SCHEMA`]).
    pub schema_version: u32,
    /// Case name (CLI-provided).
    pub case: String,
    /// Flow regime (`"euler"` / `"navier-stokes"`).
    pub regime: String,
    /// Axial grid points.
    pub nx: usize,
    /// Radial grid points.
    pub nr: usize,
    /// Ranks the case ran on (1 = serial).
    pub ranks: usize,
    /// Steps requested.
    pub steps_requested: u64,
    /// Steps actually taken (fewer than requested on abort).
    pub steps_taken: u64,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
    /// Why the run aborted early, if it did.
    pub aborted: Option<String>,
    /// Seconds per phase label, summed over ranks.
    pub phase_seconds: BTreeMap<String, f64>,
    /// Message totals, summed over ranks.
    pub comm: CommTotals,
    /// Rollback/recovery accounting (`null` except for chaos runs).
    pub recovery: Option<RecoverySummary>,
    /// Closed conservation ledger (`null` when no ledger was attached).
    pub conservation: Option<ConservationSummary>,
    /// Job-level serving telemetry (`null` unless the run was executed by
    /// `ns-serve` on behalf of a queued job).
    pub serve: Option<ServeJobSummary>,
    /// Live-registry deltas over the run (`null` when the run recorded no
    /// metrics window).
    pub metrics: Option<MetricsSummary>,
    /// The watchdog series.
    pub health: Vec<HealthSample>,
}

impl RunSummary {
    /// Phase ledger -> the summary's owned-string map.
    pub fn set_phases(&mut self, ledger: &PhaseLedger) {
        self.phase_seconds = ledger.by_label.iter().map(|(&l, s)| (l.to_string(), s.seconds)).collect();
    }

    /// Pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("run summary serializes")
    }

    /// Parse a summary artifact, rejecting unknown schema versions loudly.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let summary: RunSummary = serde_json::from_str(text).map_err(|e| format!("parse run summary: {e}"))?;
        if summary.schema_version != RUN_SUMMARY_SCHEMA {
            return Err(format!(
                "run summary schema_version {} unsupported (expected {RUN_SUMMARY_SCHEMA})",
                summary.schema_version
            ));
        }
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good_sample(step: u64) -> HealthSample {
        HealthSample {
            step,
            t: step as f64 * 1e-3,
            dt: 1e-3,
            max_mach: 1.5,
            max_wave_speed: 900.0,
            min_rho: 0.9,
            min_p: 0.4,
            mass: 100.0,
            energy: 250.0,
            finite: true,
        }
    }

    #[test]
    fn cadence_gates_sampling() {
        let mon = HealthMonitor::new(HealthConfig { cadence: 10, ..Default::default() });
        assert!(mon.due(0));
        assert!(!mon.due(7));
        assert!(mon.due(20));
        let off = HealthMonitor::new(HealthConfig { cadence: 0, ..Default::default() });
        assert!(!off.due(0));
    }

    #[test]
    fn healthy_series_never_aborts() {
        let mut mon = HealthMonitor::new(HealthConfig::default());
        for step in (0..100).step_by(10) {
            assert!(mon.observe(good_sample(step)));
        }
        assert!(mon.healthy());
        assert_eq!(mon.samples.len(), 10);
    }

    #[test]
    fn non_finite_sample_aborts_even_with_clean_extrema() {
        // NaN comparisons are all false, so without the explicit finite flag
        // this sample would pass every threshold test.
        let mut s = good_sample(30);
        s.finite = false;
        let mut mon = HealthMonitor::new(HealthConfig::default());
        assert!(mon.observe(good_sample(20)));
        assert!(!mon.observe(s));
        assert!(!mon.healthy());
        assert!(mon.abort.as_deref().unwrap().contains("non-finite"));
    }

    #[test]
    fn nan_watchdog_value_aborts() {
        let mut s = good_sample(10);
        s.max_mach = f64::NAN;
        let mut mon = HealthMonitor::new(HealthConfig::default());
        assert!(!mon.observe(s));
    }

    #[test]
    fn positivity_loss_aborts() {
        let mut s = good_sample(40);
        s.min_p = -0.01;
        let mut mon = HealthMonitor::new(HealthConfig::default());
        assert!(!mon.observe(s));
        assert!(mon.abort.as_deref().unwrap().contains("pressure"));
    }

    #[test]
    fn mass_drift_checked_against_first_sample() {
        let mut mon = HealthMonitor::new(HealthConfig {
            cadence: 1,
            limits: HealthLimits { max_mass_drift: 0.1, ..Default::default() },
        });
        assert!(mon.observe(good_sample(0)));
        let mut drifted = good_sample(1);
        drifted.mass = 120.0; // 20% over the step-0 reference
        assert!(!mon.observe(drifted));
        assert!(mon.abort.as_deref().unwrap().contains("mass drift"));
    }

    #[test]
    fn summary_serializes_with_samples() {
        let mut summary = RunSummary {
            schema_version: RUN_SUMMARY_SCHEMA,
            case: "jet".into(),
            regime: "euler".into(),
            nx: 125,
            nr: 50,
            ranks: 4,
            steps_requested: 100,
            steps_taken: 100,
            wall_seconds: 1.25,
            aborted: None,
            phase_seconds: BTreeMap::new(),
            comm: CommTotals { sends: 16, recvs: 16, bytes_sent: 4096, bytes_recvd: 4096, ..Default::default() },
            recovery: None,
            conservation: Some(ConservationSummary { steps: 100, ..Default::default() }),
            serve: None,
            metrics: Some(MetricsSummary::default()),
            health: vec![good_sample(0), good_sample(10)],
        };
        let mut ledger = PhaseLedger::default();
        ledger.add("x:flux", 0.5);
        summary.set_phases(&ledger);
        let json = summary.to_json();
        assert!(json.contains("\"case\""));
        assert!(json.contains("x:flux"));
        assert!(json.contains("\"max_mach\""));
        assert!(json.contains("\"schema_version\""));
        // the samples round-trip through the derived Deserialize
        let back: Vec<HealthSample> = serde_json::from_str(&serde_json::to_string(&summary.health).unwrap()).unwrap();
        assert_eq!(back, summary.health);
        // the whole artifact round-trips through the validating loader
        let loaded = RunSummary::from_json(&json).unwrap();
        assert_eq!(loaded.case, "jet");
        assert_eq!(loaded.phase_seconds["x:flux"], 0.5);
        // a foreign schema version is rejected loudly
        let mut foreign = summary.clone();
        foreign.schema_version = 99;
        let err = RunSummary::from_json(&foreign.to_json()).unwrap_err();
        assert!(err.contains("schema_version 99"), "{err}");
    }
}
