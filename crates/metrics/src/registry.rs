//! The lock-free metrics registry.
//!
//! Instrumented code obtains an `Arc` handle once ([`Registry::counter`],
//! [`Registry::gauge`], [`Registry::histogram`]) and afterwards touches only
//! that handle: one relaxed atomic RMW per update, no lock, no allocation.
//! The registry's own lock guards only registration and snapshotting — both
//! cold paths.
//!
//! Names follow the Prometheus convention (`ns_comm_sends_total`,
//! `ns_step_latency_us`); a fixed label can be folded into the name
//! (`ns_serve_backend_runs_total{backend="parallel"}`) since the cardinality
//! here is a handful of ranks and backends, not an open set.
//!
//! A [`MetricsSnapshot`] is a point-in-time read of every metric. Snapshots
//! **merge** (aggregation across ranks or processes) and **diff**
//! (before/after a run, which is how a [`MetricsSummary`] for one run is
//! cut from the process-lifetime registry).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Schema version stamped into serialized snapshots.
pub const SNAPSHOT_SCHEMA: u32 = 1;

/// Number of log2 histogram buckets (bucket `i` counts values whose bit
/// length is `i`, i.e. `[2^(i-1), 2^i)`; bucket 0 counts zeros).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways (queue depth, workers
/// busy).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log2-bucketed histogram of non-negative integer samples (typically
/// latencies in microseconds or nanoseconds).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self { buckets: std::array::from_fn(|_| AtomicU64::new(0)), count: AtomicU64::new(0), sum: AtomicU64::new(0) }
    }
}

/// Bucket index of a sample: its bit length (0 for 0).
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v).min(HISTOGRAM_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the buckets and totals.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one [`Histogram`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts ([`HISTOGRAM_BUCKETS`] entries; bucket `i`
    /// covers values of bit length `i`).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Fold another snapshot into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Bucket-wise `self - baseline`, saturating (the before/after cut of a
    /// live registry).
    pub fn diff(&self, baseline: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = self.clone();
        for (i, a) in out.buckets.iter_mut().enumerate() {
            *a = a.saturating_sub(baseline.buckets.get(i).copied().unwrap_or(0));
        }
        out.count = out.count.saturating_sub(baseline.count);
        out.sum = out.sum.saturating_sub(baseline.sum);
        out
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile sample (log2
    /// resolution: within a factor of 2 of the true quantile).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper(i);
            }
        }
        bucket_upper(self.buckets.len().saturating_sub(1))
    }
}

/// Inclusive upper bound of bucket `i` (`2^i - 1`; saturates at `u64::MAX`).
fn bucket_upper(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A point-in-time read of every metric in a registry, as three typed maps
/// (the vendored serde shim has no tagged enums, and three maps are easier
/// to merge anyway).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Snapshot format version (see [`SNAPSHOT_SCHEMA`]).
    pub schema_version: u32,
    /// Counter readings by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge readings by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram readings by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// An empty snapshot at the current schema version.
    pub fn new() -> Self {
        Self { schema_version: SNAPSHOT_SCHEMA, ..Default::default() }
    }

    /// Fold `other` into this snapshot: counters and histograms add, and
    /// gauges add too (a merged queue depth over shards is the sum of the
    /// shard depths).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// `self - baseline` for counters and histograms (gauges keep their
    /// current reading — a depth has no meaningful delta). This is how a
    /// per-run [`MetricsSummary`] is cut from the process-lifetime registry:
    /// snapshot before, snapshot after, diff.
    pub fn diff(&self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = self.clone();
        for (name, v) in &mut out.counters {
            *v = v.saturating_sub(baseline.counters.get(name).copied().unwrap_or(0));
        }
        for (name, h) in &mut out.histograms {
            if let Some(b) = baseline.histograms.get(name) {
                *h = h.diff(b);
            }
        }
        out
    }

    /// Counter reading by name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge reading by name (0 if absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram reading by name (`None` if absent).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("metrics snapshot serializes")
    }

    /// Parse a snapshot, rejecting unknown schema versions loudly.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let snap: MetricsSnapshot = serde_json::from_str(text).map_err(|e| format!("parse metrics snapshot: {e}"))?;
        if snap.schema_version != SNAPSHOT_SCHEMA {
            return Err(format!(
                "metrics snapshot schema_version {} unsupported (expected {SNAPSHOT_SCHEMA})",
                snap.schema_version
            ));
        }
        Ok(snap)
    }

    /// Render the snapshot as a Prometheus text-format page.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, n) in &self.counters {
            out.push_str(&format!("# TYPE {} counter\n{name} {n}\n", base_name(name)));
        }
        for (name, n) in &self.gauges {
            out.push_str(&format!("# TYPE {} gauge\n{name} {n}\n", base_name(name)));
        }
        for (name, h) in &self.histograms {
            let base = base_name(name);
            out.push_str(&format!("# TYPE {base} histogram\n"));
            let mut cum = 0u64;
            for (i, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cum += n;
                out.push_str(&format!("{base}_bucket{{le=\"{}\"}} {cum}\n", bucket_upper(i)));
            }
            out.push_str(&format!("{base}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{base}_sum {}\n{base}_count {}\n", h.sum, h.count));
        }
        out
    }
}

/// A folded label `base{k="v"}` keeps the base name for `# TYPE` lines.
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Compact per-run digest of a (diffed) snapshot — the block folded into
/// `RunSummary`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSummary {
    /// Counter deltas over the run (zero-valued counters omitted).
    pub counters: BTreeMap<String, u64>,
    /// Gauge readings at the end of the run.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram digests over the run (empty histograms omitted).
    pub histograms: BTreeMap<String, HistogramSummary>,
}

/// Digest of one histogram: count, mean and log2-resolution quantiles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Mean sample value.
    pub mean: f64,
    /// Median (upper bucket bound).
    pub p50: u64,
    /// 90th percentile (upper bucket bound).
    pub p90: u64,
    /// 99th percentile (upper bucket bound).
    pub p99: u64,
}

impl MetricsSummary {
    /// Digest a snapshot (typically an after-minus-before diff).
    pub fn from_snapshot(snap: &MetricsSnapshot) -> Self {
        let mut out = Self::default();
        for (name, n) in &snap.counters {
            if *n > 0 {
                out.counters.insert(name.clone(), *n);
            }
        }
        out.gauges = snap.gauges.clone();
        for (name, h) in &snap.histograms {
            if h.count > 0 {
                out.histograms.insert(
                    name.clone(),
                    HistogramSummary {
                        count: h.count,
                        mean: h.mean(),
                        p50: h.quantile(0.50),
                        p90: h.quantile(0.90),
                        p99: h.quantile(0.99),
                    },
                );
            }
        }
        out
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// The registry: name → metric, instantiable for tests, with one
/// process-wide instance ([`Registry::global`]) that all default-path
/// instrumentation shares.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry (tests; the product code uses [`Registry::global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Get or register the counter `name`.
    ///
    /// Panics if `name` is already registered as a different kind — that is
    /// an instrumentation bug, not a runtime condition.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.metrics.lock().expect("metrics registry lock");
        match m.entry(name.to_string()).or_insert_with(|| Metric::Counter(Arc::default())) {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Get or register the gauge `name` (same contract as [`Self::counter`]).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.metrics.lock().expect("metrics registry lock");
        match m.entry(name.to_string()).or_insert_with(|| Metric::Gauge(Arc::default())) {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Get or register the histogram `name` (same contract as
    /// [`Self::counter`]).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.metrics.lock().expect("metrics registry lock");
        match m.entry(name.to_string()).or_insert_with(|| Metric::Histogram(Arc::default())) {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Point-in-time read of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.metrics.lock().expect("metrics registry lock");
        let mut snap = MetricsSnapshot::new();
        for (name, v) in m.iter() {
            match v {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counters_and_gauges_read_back() {
        let r = Registry::new();
        let c = r.counter("ns_test_total");
        let g = r.gauge("ns_test_depth");
        c.inc();
        c.add(4);
        g.set(7);
        g.add(-2);
        let snap = r.snapshot();
        assert_eq!(snap.counter("ns_test_total"), 5);
        assert_eq!(snap.gauge("ns_test_depth"), 5);
        // a second lookup returns the same underlying atomic
        r.counter("ns_test_total").inc();
        assert_eq!(c.get(), 6);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_clash_panics() {
        let r = Registry::new();
        let _c = r.counter("ns_clash");
        let _g = r.gauge("ns_clash");
    }

    #[test]
    fn histogram_buckets_cover_the_range() {
        let h = Histogram::default();
        for v in [0u64, 1, 2, 3, 1000, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.buckets.iter().sum::<u64>(), 6);
        assert_eq!(s.buckets[0], 1, "zero lands in bucket 0");
        assert_eq!(s.buckets[1], 1, "one lands in bucket 1");
        assert_eq!(s.buckets[2], 2, "2 and 3 share bucket 2");
        assert_eq!(s.buckets[10], 1, "1000 has bit length 10");
        assert_eq!(s.buckets[63], 1, "u64::MAX clamps to the last bucket");
    }

    #[test]
    fn quantiles_bound_the_samples() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert!((s.mean() - 500.5).abs() < 1e-9);
        let p50 = s.quantile(0.5);
        assert!((500..=1023).contains(&p50), "p50 bucket bound {p50} must cover the true median");
        assert!(s.quantile(1.0) >= 1000);
        assert!(s.quantile(0.0) >= 1);
    }

    #[test]
    fn snapshot_diff_cuts_a_run_window() {
        let r = Registry::new();
        let c = r.counter("ns_run_total");
        let h = r.histogram("ns_run_us");
        c.add(10);
        h.record(5);
        let before = r.snapshot();
        c.add(3);
        h.record(9);
        let delta = r.snapshot().diff(&before);
        assert_eq!(delta.counter("ns_run_total"), 3);
        assert_eq!(delta.histogram("ns_run_us").unwrap().count, 1);
        let summary = MetricsSummary::from_snapshot(&delta);
        assert_eq!(summary.counters["ns_run_total"], 3);
        assert_eq!(summary.histograms["ns_run_us"].count, 1);
    }

    #[test]
    fn snapshot_json_round_trips_and_validates_schema() {
        let r = Registry::new();
        r.counter("ns_x_total").add(2);
        r.histogram("ns_x_us").record(17);
        let snap = r.snapshot();
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(snap, back);
        let mut foreign = snap.clone();
        foreign.schema_version = 99;
        let err = MetricsSnapshot::from_json(&foreign.to_json()).unwrap_err();
        assert!(err.contains("schema_version 99"), "{err}");
    }

    #[test]
    fn prometheus_page_has_types_buckets_and_totals() {
        let r = Registry::new();
        r.counter("ns_a_total").add(3);
        r.gauge("ns_b_depth").set(-1);
        let h = r.histogram("ns_c_us");
        h.record(1);
        h.record(100);
        r.counter("ns_d_total{backend=\"serial\"}").inc();
        let page = r.snapshot().to_prometheus();
        assert!(page.contains("# TYPE ns_a_total counter\nns_a_total 3\n"));
        assert!(page.contains("# TYPE ns_b_depth gauge\nns_b_depth -1\n"));
        assert!(page.contains("# TYPE ns_c_us histogram\n"));
        assert!(page.contains("ns_c_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(page.contains("ns_c_us_sum 101\n"));
        assert!(page.contains("ns_c_us_count 2\n"));
        // cumulative le buckets are monotone: the le="1" bucket holds 1, +Inf holds 2
        assert!(page.contains("ns_c_us_bucket{le=\"1\"} 1\n"));
        // folded label keeps the base name in # TYPE
        assert!(page.contains("# TYPE ns_d_total counter\nns_d_total{backend=\"serial\"} 1\n"));
    }

    #[test]
    fn concurrent_snapshots_never_go_backwards() {
        let r = std::sync::Arc::new(Registry::new());
        let c = r.counter("ns_mono_total");
        let h = r.histogram("ns_mono_us");
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let (stop, c, h) = (stop.clone(), c.clone(), h.clone());
            std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    c.inc();
                    h.record(n % 1000);
                    n += 1;
                }
                n
            })
        };
        let mut last_c = 0u64;
        let mut last_h = 0u64;
        for _ in 0..200 {
            let snap = r.snapshot();
            let cv = snap.counter("ns_mono_total");
            let hv = snap.histogram("ns_mono_us").map_or(0, |h| h.count);
            assert!(cv >= last_c, "counter snapshot went backwards: {cv} < {last_c}");
            assert!(hv >= last_h, "histogram count went backwards: {hv} < {last_h}");
            last_c = cv;
            last_h = hv;
        }
        stop.store(true, Ordering::Relaxed);
        let total = writer.join().unwrap();
        let snap = r.snapshot();
        assert_eq!(snap.counter("ns_mono_total"), total, "final snapshot sees every increment");
        assert_eq!(snap.histogram("ns_mono_us").unwrap().count, total);
    }

    fn arb_hist() -> impl Strategy<Value = HistogramSnapshot> {
        (prop::collection::vec(0u64..1000, HISTOGRAM_BUCKETS), 0u64..100_000).prop_map(|(buckets, sum)| {
            let count = buckets.iter().sum();
            HistogramSnapshot { buckets, count, sum }
        })
    }

    proptest! {
        #[test]
        fn histogram_merge_is_commutative(a in arb_hist(), b in arb_hist()) {
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(ab, ba);
        }

        #[test]
        fn histogram_merge_is_associative(a in arb_hist(), b in arb_hist(), c in arb_hist()) {
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            prop_assert_eq!(left, right);
        }

        #[test]
        fn merge_then_diff_recovers_the_addend(a in arb_hist(), b in arb_hist()) {
            let mut ab = a.clone();
            ab.merge(&b);
            prop_assert_eq!(ab.diff(&a), b);
        }

        #[test]
        fn bucket_of_is_monotone(v in 0u64..u64::MAX) {
            prop_assert!(bucket_of(v) <= bucket_of(v.saturating_add(1)));
            let i = bucket_of(v);
            if v > 0 {
                prop_assert!(v >= 1u64 << (i - 1), "lower bound");
                prop_assert!(v <= bucket_upper(i), "upper bound");
            }
        }
    }
}
