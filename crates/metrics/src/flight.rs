//! The flight recorder: a fixed-size ring of recent per-rank events.
//!
//! Every rank keeps recording the whole run — frames sent and admitted,
//! faults injected and healed, step/phase transitions, checkpoints — into a
//! bounded ring (old events fall off the back, with a drop counter so the
//! dump says how much history was lost). Nothing is written anywhere until
//! something goes wrong: a rank crash, a rollback, a watchdog abort or a
//! serve-job cancellation turns the ring into a [`FlightDump`], which the
//! CLI writes as `FLIGHT_<rank>.json`. The dump is the black box that makes
//! a chaos failure diagnosable after the fact: the event sequence
//! reconstructs what the failing generation was doing, frame by frame.
//!
//! The recorder is single-writer (one per rank, owned by that rank's
//! endpoint), so recording is a ring push — no atomics, no locking.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::time::Instant;

/// Schema version stamped into every dump.
pub const FLIGHT_SCHEMA: u32 = 1;

/// Default ring capacity: enough for several steps of 4-neighbour halo
/// traffic plus the fault churn around a crash, small enough to be free.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// One recorded event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Microseconds since the recorder's origin.
    pub t_us: u64,
    /// Event class (`"send"`, `"recv"`, `"fault"`, `"step"`, `"checkpoint"`,
    /// `"crash"`, …).
    pub kind: String,
    /// Event detail (message kind, fault action, phase label…).
    pub label: String,
    /// Peer rank, for comm events.
    pub peer: Option<usize>,
    /// Frame sequence number, for framed traffic.
    pub seq: Option<u64>,
    /// Causal span (see [`crate::span_id`]), when the event happened inside
    /// a step.
    pub span: Option<u64>,
    /// Payload bytes, for comm events.
    pub bytes: u64,
}

/// The per-rank ring buffer.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    origin: Instant,
    cap: usize,
    ring: VecDeque<FlightEvent>,
    dropped: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder holding at most `cap` events (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Self { origin: Instant::now(), cap, ring: VecDeque::with_capacity(cap), dropped: 0 }
    }

    /// Re-anchor timestamps to `origin` (share one origin across ranks so
    /// their dumps line up on a common clock).
    pub fn set_origin(&mut self, origin: Instant) {
        self.origin = origin;
    }

    /// Record an event; the oldest event is evicted when the ring is full.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        kind: impl Into<String>,
        label: impl Into<String>,
        peer: Option<usize>,
        seq: Option<u64>,
        span: Option<u64>,
        bytes: u64,
    ) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(FlightEvent {
            t_us: self.origin.elapsed().as_micros() as u64,
            kind: kind.into(),
            label: label.into(),
            peer,
            seq,
            span,
            bytes,
        });
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Freeze the ring into a dump (the recorder keeps recording).
    pub fn dump(&self, rank: usize, reason: impl Into<String>) -> FlightDump {
        FlightDump {
            schema_version: FLIGHT_SCHEMA,
            rank,
            reason: reason.into(),
            dropped: self.dropped,
            events: self.ring.iter().cloned().collect(),
        }
    }
}

/// A frozen flight-recorder ring, ready to write as `FLIGHT_<rank>.json`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlightDump {
    /// Dump format version (see [`FLIGHT_SCHEMA`]).
    pub schema_version: u32,
    /// Rank the recorder belonged to.
    pub rank: usize,
    /// Why the dump was taken (`"rank-crash"`, `"rollback"`,
    /// `"watchdog-abort"`, `"cancelled"`).
    pub reason: String,
    /// Events that fell off the back of the ring before the dump.
    pub dropped: u64,
    /// The retained events, oldest first.
    pub events: Vec<FlightEvent>,
}

impl FlightDump {
    /// Canonical artifact name for a rank's dump.
    pub fn file_name(rank: usize) -> String {
        format!("FLIGHT_{rank}.json")
    }

    /// Pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("flight dump serializes")
    }

    /// Parse a dump, rejecting unknown schema versions loudly.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let dump: FlightDump = serde_json::from_str(text).map_err(|e| format!("parse flight dump: {e}"))?;
        if dump.schema_version != FLIGHT_SCHEMA {
            return Err(format!(
                "flight dump schema_version {} unsupported (expected {FLIGHT_SCHEMA})",
                dump.schema_version
            ));
        }
        Ok(dump)
    }

    /// Events belonging to one causal span, in recorded order.
    pub fn events_for_span(&self, span: u64) -> Vec<&FlightEvent> {
        self.events.iter().filter(|e| e.span == Some(span)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut fr = FlightRecorder::new(3);
        for i in 0..5u64 {
            fr.record("send", "Prims1", Some(1), Some(i), None, 16);
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 2);
        let dump = fr.dump(0, "rollback");
        assert_eq!(dump.events.len(), 3);
        assert_eq!(dump.events[0].seq, Some(2), "oldest retained event is seq 2");
        assert_eq!(dump.events[2].seq, Some(4));
        assert_eq!(dump.dropped, 2);
    }

    #[test]
    fn dump_round_trips_and_validates_schema() {
        let mut fr = FlightRecorder::new(8);
        fr.record("step", "begin", None, None, Some(crate::span_id(0, 3)), 0);
        fr.record("fault", "drop", Some(1), Some(9), Some(crate::span_id(0, 3)), 0);
        let dump = fr.dump(1, "rank-crash");
        let back = FlightDump::from_json(&dump.to_json()).unwrap();
        assert_eq!(dump, back);
        assert_eq!(back.events_for_span(crate::span_id(0, 3)).len(), 2);

        let mut foreign = dump.clone();
        foreign.schema_version = 42;
        let err = FlightDump::from_json(&foreign.to_json()).unwrap_err();
        assert!(err.contains("schema_version 42"), "{err}");
    }

    #[test]
    fn timestamps_are_monotone_and_file_name_is_canonical() {
        let mut fr = FlightRecorder::default();
        fr.record("a", "x", None, None, None, 0);
        fr.record("b", "y", None, None, None, 0);
        let d = fr.dump(7, "cancelled");
        assert!(d.events[1].t_us >= d.events[0].t_us);
        assert_eq!(FlightDump::file_name(7), "FLIGHT_7.json");
    }
}
