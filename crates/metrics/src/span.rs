//! Causal span IDs.
//!
//! A span identifies one `(generation, step)` of the distributed solver: the
//! plain runtime always runs generation 0, while the chaos runtime bumps the
//! generation on every rollback. The ID is stamped into every sealed frame's
//! trailer by the reliability layer, so the send, the NACK round-trip and
//! the resend of one logical message — possibly observed on different ranks
//! — all carry the same span and stitch into a single cross-rank trace.
//!
//! Zero is reserved for "no span" (control traffic sent outside a step, and
//! traces taken before the first step begins).

/// Bits of the step component (low bits of the ID).
const STEP_BITS: u64 = 40;
const STEP_MASK: u64 = (1 << STEP_BITS) - 1;

/// Mint the span ID for `step` of `generation`. Never returns 0: generation
/// and step are both offset by one, so `(0, 0)` maps to a valid span and 0
/// stays reserved for "no span".
#[inline]
pub fn span_id(generation: u64, step: u64) -> u64 {
    ((generation + 1) << STEP_BITS) | ((step + 1) & STEP_MASK)
}

/// Recover the generation a span was minted for.
#[inline]
pub fn span_generation(span: u64) -> u64 {
    (span >> STEP_BITS).saturating_sub(1)
}

/// Recover the step a span was minted for.
#[inline]
pub fn span_step(span: u64) -> u64 {
    (span & STEP_MASK).saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_are_nonzero_and_invertible() {
        for (g, s) in [(0u64, 0u64), (0, 7), (3, 0), (12, 1 << 20)] {
            let id = span_id(g, s);
            assert_ne!(id, 0, "span for ({g},{s}) must not collide with the no-span sentinel");
            assert_eq!(span_generation(id), g);
            assert_eq!(span_step(id), s);
        }
    }

    #[test]
    fn spans_distinguish_generations_and_steps() {
        assert_ne!(span_id(0, 5), span_id(1, 5), "same step of a later generation is a new span");
        assert_ne!(span_id(0, 5), span_id(0, 6), "successive steps are distinct spans");
    }
}
