#![warn(missing_docs)]

//! # ns-metrics
//!
//! Live observability primitives for the reproduction: the instrumentation
//! the paper's 1995 testbed lacked ("unless we have hardware performance
//! monitoring tools", Section 6), kept cheap enough to stay compiled into
//! the default hot paths.
//!
//! * [`registry`] — a lock-free metrics registry: [`Counter`]s, [`Gauge`]s
//!   and log2-bucketed latency [`Histogram`]s behind `Arc` handles, so the
//!   hot path is one relaxed atomic op per update while a concurrent reader
//!   takes a mergeable, diffable [`MetricsSnapshot`] at any moment and
//!   renders it as a Prometheus-style text page;
//! * [`span`] — causal span IDs minted per `(generation, step)` and carried
//!   inside the reliability layer's frame trailer, so a halo exchange or a
//!   NACK/resend chain stitches into one cross-rank trace;
//! * [`flight`] — a fixed-size per-rank ring buffer of recent events (comm
//!   frames, faults, phase transitions) dumped to `FLIGHT_<rank>.json` when
//!   a rank crashes, a rollback fires, a watchdog aborts, or a serve job is
//!   cancelled — so chaos failures are diagnosable, not only survivable.
//!
//! The crate sits at the very bottom of the dependency graph (serde only):
//! `ns-telemetry`, `ns-runtime`, `ns-core` and `ns-serve` all speak these
//! types without this crate knowing about any of them.

pub mod flight;
pub mod registry;
pub mod span;

pub use flight::{FlightDump, FlightEvent, FlightRecorder, FLIGHT_SCHEMA};
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, HistogramSummary, MetricsSnapshot, MetricsSummary, Registry,
    SNAPSHOT_SCHEMA,
};
pub use span::{span_generation, span_id, span_step};
