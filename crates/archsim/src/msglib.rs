//! Message-passing library overhead models.
//!
//! The paper's central NOW lesson is that library software costs — "the
//! multiple times that data to be communicated is copied and ... the context
//! switching overheads that arise in transferring a message between the
//! application level and the physical layer" — dominate message cost. Each
//! model charges a fixed per-message overhead plus a per-byte copy cost on
//! both the sending and receiving side; those charges are *processor busy
//! time* (the paper: "the computation part also includes the setup overheads
//! of communication"), not network time.

use serde::{Deserialize, Serialize};

/// A message-passing library cost model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MsgLib {
    /// Library name.
    pub name: &'static str,
    /// Fixed software overhead per send, seconds.
    pub send_overhead: f64,
    /// Fixed software overhead per receive, seconds.
    pub recv_overhead: f64,
    /// Per-byte copy cost on each side, seconds.
    pub per_byte: f64,
    /// Whether sends block until the message is on the wire and delivered
    /// (the paper: "we were forced to use either blocking send or a
    /// constrained form of non-blocking send" with MPL).
    pub blocking_send: bool,
}

impl MsgLib {
    /// Off-the-shelf PVM 3.2.2 over UDP/IP, as used on LACE: large fixed
    /// overhead (daemon hop, fragmentation) and two copies per side.
    pub fn pvm() -> Self {
        Self { name: "PVM", send_overhead: 0.9e-3, recv_overhead: 0.9e-3, per_byte: 0.15e-6, blocking_send: false }
    }

    /// IBM's native MPL on the SP: lower fixed cost and one less copy, but
    /// effectively blocking sends.
    pub fn mpl() -> Self {
        Self { name: "MPL", send_overhead: 1.1e-3, recv_overhead: 1.1e-3, per_byte: 0.10e-6, blocking_send: true }
    }

    /// PVMe, IBM's PVM port for the SP: PVM semantics layered over the
    /// switch, with the heavy per-message costs Figure 11/12 exposes.
    pub fn pvme() -> Self {
        Self { name: "PVMe", send_overhead: 4.0e-3, recv_overhead: 4.0e-3, per_byte: 0.6e-6, blocking_send: true }
    }

    /// Cray's customized PVM on the T3D: thin shim over fast hardware.
    pub fn cray_pvm() -> Self {
        Self {
            name: "CrayPVM",
            send_overhead: 0.25e-3,
            recv_overhead: 0.25e-3,
            per_byte: 0.02e-6,
            blocking_send: false,
        }
    }

    /// PVM with `PvmRouteDirect`: task-to-task TCP, skipping the daemon hop
    /// (one fewer context switch and copy per side) — the standard tuning
    /// knob 1995 PVM users reached for first.
    pub fn pvm_direct() -> Self {
        Self {
            name: "PVM-direct",
            send_overhead: 0.45e-3,
            recv_overhead: 0.45e-3,
            per_byte: 0.10e-6,
            blocking_send: false,
        }
    }

    /// A lean user-level library of the Active-Messages class — what the
    /// Berkeley NOW project (the paper's reference \[18\]) was building. Used
    /// by the projection study that tests the paper's concluding claim.
    pub fn lean_user_level() -> Self {
        Self {
            name: "AM-class",
            send_overhead: 0.05e-3,
            recv_overhead: 0.05e-3,
            per_byte: 0.02e-6,
            blocking_send: false,
        }
    }

    /// Busy seconds charged to the sender for a message of `bytes`.
    pub fn send_cost(&self, bytes: u64) -> f64 {
        self.send_overhead + bytes as f64 * self.per_byte
    }

    /// Busy seconds charged to the receiver for a message of `bytes`.
    pub fn recv_cost(&self, bytes: u64) -> f64 {
        self.recv_overhead + bytes as f64 * self.per_byte
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_overhead_dominates_small_messages() {
        // the paper: "the startup cost is 2-3 orders of magnitude higher
        // than the per word transfer cost"
        for lib in [MsgLib::pvm(), MsgLib::mpl(), MsgLib::pvme(), MsgLib::cray_pvm()] {
            let one_word = lib.send_cost(8) - lib.send_overhead;
            assert!(
                lib.send_overhead > 100.0 * one_word,
                "{}: startup {} vs per-word {}",
                lib.name,
                lib.send_overhead,
                one_word
            );
        }
    }

    #[test]
    fn pvme_is_heavier_than_mpl() {
        let mpl = MsgLib::mpl();
        let pvme = MsgLib::pvme();
        for bytes in [100, 2400, 6400] {
            assert!(pvme.send_cost(bytes) > 1.5 * mpl.send_cost(bytes));
        }
    }

    #[test]
    fn cray_pvm_is_the_lightest() {
        let c = MsgLib::cray_pvm();
        for other in [MsgLib::pvm(), MsgLib::mpl(), MsgLib::pvme()] {
            assert!(c.send_cost(6400) < other.send_cost(6400), "vs {}", other.name);
        }
    }

    #[test]
    fn costs_scale_linearly_in_bytes() {
        let lib = MsgLib::pvm();
        let a = lib.send_cost(1000) - lib.send_cost(0);
        let b = lib.send_cost(2000) - lib.send_cost(1000);
        assert!((a - b).abs() < 1e-15);
    }
}
