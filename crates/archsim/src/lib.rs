#![warn(missing_docs)]

//! # ns-archsim
//!
//! Discrete-event simulation of the paper's 1995 platforms — the
//! substitution (documented in DESIGN.md) for hardware that no longer
//! exists. Three layers:
//!
//! * **Node**: a trace-driven cache simulator ([`cache`]) feeding a
//!   calibrated cycles-per-flop CPU model ([`cpu`]); the only calibrated
//!   scalars come from the paper's own Figure 2 anchors.
//! * **Interconnect**: contention-aware models of shared Ethernet, FDDI,
//!   the ALLNODE switches, ATM, the SP switch and the T3D torus
//!   ([`network`]), plus message-library software-cost models for PVM,
//!   PVMe, MPL and Cray PVM ([`msglib`]).
//! * **Program**: the solver's real per-step phase/message structure (from
//!   `ns_core::workload`) executed by an event-driven SPMD engine
//!   ([`spmd`]) that reports the paper's busy / non-overlapped-communication
//!   decomposition.
//!
//! The platform catalog ([`platform`]) names the paper's machines; the
//! shared-memory Cray Y-MP uses the analytic [`cpu::YmpModel`].

pub mod cache;
pub mod cpu;
pub mod msglib;
pub mod network;
pub mod platform;
pub mod spmd;

pub use cache::{CacheGeometry, CacheSim, SweepOrder};
pub use cpu::{Calibration, CpuSpec, YmpModel};
pub use msglib::MsgLib;
pub use network::{NetKind, Network};
pub use platform::Platform;
pub use spmd::{simulate, simulate_traced, CommMode, SimConfig, SimResult};
