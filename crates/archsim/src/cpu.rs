//! Single-processor performance model.
//!
//! Execution time of a compute phase is `flops * flop_scale / rate`, where
//! the sustained rate comes from a cycles-per-flop model:
//!
//! ```text
//! cpi(flop) = base_cpi * base_scale + arith_extra(version)
//!           + refs_per_flop * miss_ratio * miss_penalty_cycles
//! rate      = clock / cpi
//! ```
//!
//! * `miss_ratio` is **measured** by the trace-driven cache simulator on the
//!   platform's real cache geometry and the version's loop order
//!   ([`crate::cache`]).
//! * `miss_penalty_cycles = penalty_ns * penalty_scale * clock` — memory
//!   latency is roughly constant in nanoseconds, so a faster clock pays more
//!   cycles per miss. This single mechanism is why the 150 MHz T3D node
//!   underperforms the 50 MHz RS6000/560 (paper Section 7.2).
//! * Exactly two scalars are calibrated from the paper's own Figure 2
//!   anchors — the RS6000/560 runs Navier-Stokes at 9.3 MFLOPS in Version 1
//!   and 16.0 MFLOPS in Version 5; everything else is specification data or
//!   measured miss ratios.
//! * `flop_scale` converts our canonical operation counts to the paper's
//!   (the 1995 Fortran performs about 3x the canonical arithmetic per point;
//!   Table 1 reports 145 GFLOP where the canonical count is ~48 GFLOP), so
//!   simulated times land on the paper's absolute scale.

use crate::cache::{solver_miss_ratio, CacheGeometry, SweepOrder};
use ns_core::config::{Regime, Version};
use ns_core::workload;
use ns_numerics::Grid;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Figure 2 anchor: the original code on the RS6000/560.
pub const ANCHOR_V1_MFLOPS: f64 = 9.3;
/// Figure 2 anchor: the fully optimized code on the RS6000/560.
pub const ANCHOR_V5_MFLOPS: f64 = 16.0;
/// Figure 2 anchor: Navier-Stokes Version 5 wall time on one RS6000/560
/// (paper FLOPs / paper MFLOPS = 145e9 / 16e6 ≈ 9062 s for 5000 steps).
pub const ANCHOR_V5_SECONDS: f64 = 145.0e9 / (ANCHOR_V5_MFLOPS * 1e6);

/// A processing-node specification.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Clock rate in Hz.
    pub clock_hz: f64,
    /// Data-cache geometry.
    pub cache: CacheGeometry,
    /// Memory-latency multiplier relative to the RS6000/560 (the /590's bus
    /// is 4x wider -> 0.5; the T3D pays a little extra per miss).
    pub penalty_scale: f64,
    /// Microarchitecture factor on the cache-perfect CPI, set so the
    /// single-node ordering matches the paper's Section 7.2 observations
    /// (the 21064's write-through cache and tiny write buffer stall this
    /// store-heavy code; the RS6K/370's memory system is thinner than the
    /// 560's).
    pub base_scale: f64,
}

impl CpuSpec {
    /// RS6000/560: 50 MHz, 64 KB 4-way.
    pub fn rs6000_560() -> Self {
        Self {
            name: "RS6000/560",
            clock_hz: 50e6,
            cache: CacheGeometry::rs6000_560(),
            penalty_scale: 1.0,
            base_scale: 1.0,
        }
    }

    /// RS6000/590: 66.5 MHz, 256 KB 4-way, 4x wider memory bus.
    pub fn rs6000_590() -> Self {
        Self {
            name: "RS6000/590",
            clock_hz: 66.5e6,
            cache: CacheGeometry::rs6000_590(),
            penalty_scale: 0.5,
            base_scale: 1.0,
        }
    }

    /// IBM SP node (RS6K/370): 62.5 MHz, 32 KB cache.
    pub fn rs6000_370() -> Self {
        Self {
            name: "RS6K/370",
            clock_hz: 62.5e6,
            cache: CacheGeometry::rs6000_370(),
            penalty_scale: 1.2,
            base_scale: 1.5,
        }
    }

    /// Cray T3D node (Alpha 21064): 150 MHz, 8 KB direct-mapped,
    /// write-through. The large base scale reflects the 21064's
    /// write-through, no-write-allocate cache whose 4-entry write buffer
    /// stalls this store-heavy code on nearly every store burst — a stall
    /// that, unlike read misses, does not shrink when the subdomain fits
    /// the cache. That mechanism (rather than read-miss latency alone) is
    /// what keeps the T3D's scaling near-linear in the paper's Figure 9
    /// while its single-node speed trails even the 50 MHz 560.
    pub fn t3d() -> Self {
        Self { name: "T3D/EV4", clock_hz: 150e6, cache: CacheGeometry::t3d(), penalty_scale: 1.5, base_scale: 3.0 }
    }
}

/// Loop order, arithmetic-style CPI surcharge, and memory-reference scale
/// of each version.
///
/// V1 pays for `powf` calls and per-point divisions, V2 drops the `powf`,
/// V4 converts divisions to reciprocal multiplies, V5 removes the last of
/// the per-access index arithmetic. V6 fuses the primitive recovery into
/// the flux sweep: each radial line's primitives are consumed while still
/// in cache instead of being written out and re-read a whole plane later,
/// which trims the references-per-flop of the compute phase (the
/// arithmetic is bit-identical to V5, so the surcharge stays zero). V7
/// moves the sweep onto lane-padded SoA buffers with cache-blocked radial
/// tiles: the station's whole recover→flux working set stays in L1 and the
/// branch-free lane loops retire more of the traffic from registers,
/// trimming references-per-flop further (arithmetic still bit-identical).
pub fn version_params(v: Version) -> (SweepOrder, f64, f64) {
    match v {
        Version::V1 => (SweepOrder::Strided, 1.20, 1.0),
        Version::V2 => (SweepOrder::Strided, 0.55, 1.0),
        Version::V3 => (SweepOrder::Unit, 0.55, 1.0),
        Version::V4 => (SweepOrder::Unit, 0.10, 1.0),
        Version::V5 => (SweepOrder::Unit, 0.0, 1.0),
        Version::V6 => (SweepOrder::Unit, 0.0, 0.75),
        Version::V7 => (SweepOrder::Unit, 0.0, 0.62),
    }
}

/// Calibrated model constants (see module docs).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Calibration {
    /// Cache-perfect cycles per flop (solved from the Figure 2 anchors).
    pub base_cpi: f64,
    /// Memory references per flop (fixed, audited against the kernels'
    /// ~1.0-1.5 loads+stores per arithmetic operation).
    pub refs_per_flop: f64,
    /// RS6000/560 miss penalty in nanoseconds (solved from the anchors).
    pub penalty_ns: f64,
    /// Canonical-to-paper operation-count scale (solved from Table 1 /
    /// Figure 2 absolute seconds).
    pub flop_scale: f64,
}

/// Memo key: (geometry, loop order, local columns, radial points).
type MrKey = (CacheGeometry, SweepOrder, usize, usize);

fn mr_cache() -> &'static Mutex<HashMap<MrKey, f64>> {
    static MEMO: OnceLock<Mutex<HashMap<MrKey, f64>>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Memoized solver-trace miss ratio.
pub fn miss_ratio(geom: CacheGeometry, order: SweepOrder, nxl: usize, nr: usize) -> f64 {
    let key = (geom, order, nxl, nr);
    if let Some(&v) = mr_cache().lock().unwrap().get(&key) {
        return v;
    }
    let v = solver_miss_ratio(geom, nxl, nr, order);
    mr_cache().lock().unwrap().insert(key, v);
    v
}

impl Calibration {
    /// Solve the two free scalars from the Figure 2 anchors, measuring the
    /// Version 1 and Version 5 miss ratios on the RS6000/560 geometry over
    /// the paper's full 250x100 grid.
    pub fn standard() -> &'static Calibration {
        static CAL: OnceLock<Calibration> = OnceLock::new();
        CAL.get_or_init(|| {
            let grid = Grid::paper();
            let cpu = CpuSpec::rs6000_560();
            let refs_per_flop = 1.2;
            let (o1, a1, _) = version_params(Version::V1);
            let (o5, a5, _) = version_params(Version::V5);
            let mr1 = miss_ratio(cpu.cache, o1, grid.nx, grid.nr);
            let mr5 = miss_ratio(cpu.cache, o5, grid.nx, grid.nr);
            assert!(mr1 > mr5, "strided trace must miss more: {mr1} vs {mr5}");
            let cpi1 = cpu.clock_hz / (ANCHOR_V1_MFLOPS * 1e6);
            let cpi5 = cpu.clock_hz / (ANCHOR_V5_MFLOPS * 1e6);
            // cpi_k = base + a_k + refs * mr_k * pen_cycles
            let pen_cycles = ((cpi1 - a1) - (cpi5 - a5)) / (refs_per_flop * (mr1 - mr5));
            let base_cpi = cpi5 - a5 - refs_per_flop * mr5 * pen_cycles;
            assert!(pen_cycles > 0.0 && base_cpi > 0.0, "calibration degenerate: pen={pen_cycles} base={base_cpi}");
            let penalty_ns = pen_cycles / cpu.clock_hz * 1e9;
            // flop_scale: V5 N-S on one 560 must take the paper's ~9062 s
            let model_flops =
                workload::step_workload(Regime::NavierStokes, &grid, grid.nx).compute_flops() as f64 * 5000.0;
            let flop_scale = ANCHOR_V5_SECONDS * (ANCHOR_V5_MFLOPS * 1e6) / model_flops;
            Calibration { base_cpi, refs_per_flop, penalty_ns, flop_scale }
        })
    }

    /// Sustained MFLOPS of `cpu` running version `v` on an `nxl x nr`
    /// subdomain.
    pub fn mflops(&self, cpu: &CpuSpec, v: Version, nxl: usize, nr: usize) -> f64 {
        let (order, arith, refs_scale) = version_params(v);
        let mr = miss_ratio(cpu.cache, order, nxl, nr);
        let pen_cycles = self.penalty_ns * cpu.penalty_scale * 1e-9 * cpu.clock_hz;
        let cpi = self.base_cpi * cpu.base_scale + arith + self.refs_per_flop * refs_scale * mr * pen_cycles;
        cpu.clock_hz / cpi / 1e6
    }

    /// Seconds to execute `flops` canonical operations.
    pub fn seconds_for(&self, cpu: &CpuSpec, v: Version, nxl: usize, nr: usize, flops: u64) -> f64 {
        flops as f64 * self.flop_scale / (self.mflops(cpu, v, nxl, nr) * 1e6)
    }
}

/// Analytic Cray Y-MP model: vector processors see no cache effects; the
/// DOALL parallelization scales with a mild efficiency loss per doubling,
/// and the paper's reported time includes a constant I/O component it could
/// not separate ("the execution time shown is the connect time in single
/// user mode (this includes the I/O time also)").
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct YmpModel {
    /// Sustained per-processor MFLOPS on this vectorizable code.
    pub vector_mflops: f64,
    /// Parallel efficiency per processor doubling.
    pub doubling_efficiency: f64,
    /// Constant I/O + connect overhead in seconds.
    pub io_seconds: f64,
}

impl YmpModel {
    /// Calibration-free defaults: ~210 sustained MFLOPS per CPU (the Y-MP's
    /// 333 MFLOPS peak at the ~0.6 vectorization efficiency typical of this
    /// scheme), 97% efficiency per doubling, 40 s of I/O.
    pub fn standard() -> Self {
        Self { vector_mflops: 210.0, doubling_efficiency: 0.97, io_seconds: 40.0 }
    }

    /// Execution time for `flops` canonical operations on `p` processors.
    pub fn seconds_for(&self, cal: &Calibration, p: usize, flops: u64) -> f64 {
        assert!((1..=8).contains(&p), "the Y-MP/8 has eight processors");
        let eff = self.doubling_efficiency.powf((p as f64).log2());
        flops as f64 * cal.flop_scale / (p as f64 * eff * self.vector_mflops * 1e6) + self.io_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_reproduces_figure2_anchors() {
        let cal = Calibration::standard();
        let cpu = CpuSpec::rs6000_560();
        let g = Grid::paper();
        let v1 = cal.mflops(&cpu, Version::V1, g.nx, g.nr);
        let v5 = cal.mflops(&cpu, Version::V5, g.nx, g.nr);
        assert!((v1 - ANCHOR_V1_MFLOPS).abs() < 1e-6, "V1 anchor: {v1}");
        assert!((v5 - ANCHOR_V5_MFLOPS).abs() < 1e-6, "V5 anchor: {v5}");
    }

    #[test]
    fn versions_improve_monotonically() {
        let cal = Calibration::standard();
        let cpu = CpuSpec::rs6000_560();
        let g = Grid::paper();
        let rates: Vec<f64> = Version::ALL.iter().map(|&v| cal.mflops(&cpu, v, g.nx, g.nr)).collect();
        for w in rates.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "rates must not regress: {rates:?}");
        }
        // loop interchange (V2 -> V3) is the biggest single jump, as in the paper
        let jumps: Vec<f64> = rates.windows(2).map(|w| w[1] / w[0]).collect();
        let max = jumps.iter().cloned().fold(0.0_f64, f64::max);
        assert!((jumps[1] - max).abs() < 1e-12, "V2->V3 should dominate: {jumps:?}");
    }

    #[test]
    fn t3d_node_is_slower_than_560_despite_3x_clock() {
        let cal = Calibration::standard();
        let g = Grid::paper();
        let t3d = cal.mflops(&CpuSpec::t3d(), Version::V5, g.nx / 4, g.nr);
        let m560 = cal.mflops(&CpuSpec::rs6000_560(), Version::V5, g.nx / 4, g.nr);
        assert!(t3d < m560, "paper Section 7.2: T3D {t3d:.1} must trail the 560 {m560:.1}");
    }

    #[test]
    fn the_590_beats_the_560() {
        let cal = Calibration::standard();
        let g = Grid::paper();
        let m590 = cal.mflops(&CpuSpec::rs6000_590(), Version::V5, g.nx, g.nr);
        let m560 = cal.mflops(&CpuSpec::rs6000_560(), Version::V5, g.nx, g.nr);
        assert!(m590 > 1.2 * m560, "590 {m590:.1} vs 560 {m560:.1}");
    }

    #[test]
    fn single_560_navier_stokes_takes_paper_hours() {
        let cal = Calibration::standard();
        let g = Grid::paper();
        let w = ns_core::workload::step_workload(Regime::NavierStokes, &g, g.nx);
        let secs = cal.seconds_for(&CpuSpec::rs6000_560(), Version::V5, g.nx, g.nr, w.compute_flops() * 5000);
        assert!((secs - ANCHOR_V5_SECONDS).abs() / ANCHOR_V5_SECONDS < 1e-9, "anchor seconds: {secs}");
    }

    #[test]
    fn ymp_scales_well_and_beats_everything() {
        let cal = Calibration::standard();
        let g = Grid::paper();
        let w = ns_core::workload::step_workload(Regime::NavierStokes, &g, g.nx);
        let flops = w.compute_flops() * 5000;
        let ymp = YmpModel::standard();
        let t1 = ymp.seconds_for(cal, 1, flops);
        let t8 = ymp.seconds_for(cal, 8, flops);
        assert!(t1 < ANCHOR_V5_SECONDS / 8.0, "one Y-MP CPU ~ an order faster than a workstation");
        assert!(t8 < t1 / 5.0, "good scaling to 8 CPUs");
        assert!(t8 > t1 / 8.0, "but not superlinear");
    }

    #[test]
    fn smaller_subdomains_cache_better() {
        let cal = Calibration::standard();
        let g = Grid::paper();
        let whole = cal.mflops(&CpuSpec::t3d(), Version::V5, g.nx, g.nr);
        let sixteenth = cal.mflops(&CpuSpec::t3d(), Version::V5, g.nx / 16, g.nr);
        assert!(sixteenth >= whole, "working set shrinks with P: {sixteenth} vs {whole}");
    }
}
