//! Interconnect models.
//!
//! Each model answers one question: a message of `bytes` injected at `now`
//! from `src` to `dst` — when does it arrive? The answer captures the
//! mechanism the paper credits for each network's behaviour:
//!
//! * **Ethernet** — a single shared 10 Mbps medium: transmissions serialize,
//!   and once per-step traffic approaches the medium's capacity the queueing
//!   delay explodes (the paper's back-of-envelope in Section 7.1 predicts
//!   saturation beyond 8 processors — our model reproduces it because the
//!   mechanism is the same).
//! * **FDDI** — a shared 100 Mbps token ring: same serialization, 10x the
//!   bandwidth, plus a token-rotation latency per frame.
//! * **ALLNODE (F/S)** — an Omega-network variant providing "multiple
//!   contentionless paths": only the endpoints' ports serialize; link
//!   bandwidth 64 / 32 Mbps per the paper.
//! * **ATM** — a 155 Mbps port-switched fabric (the paper finds it performs
//!   like ALLNODE-F: faster links, no multiple paths).
//! * **SP switch** — Omega topology like ALLNODE but with 40 MB/s links
//!   (Stunkel et al.); its hardware is never the SP's problem.
//! * **T3D torus** — 3-D torus with 150 MB/s links and sub-microsecond
//!   per-hop latency; messages traverse dimension-ordered routes.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A point-to-point interconnect model with internal contention state.
pub trait Network: Send {
    /// Inject a message; returns its delivery time at `dst`.
    fn transfer(&mut self, now: f64, src: usize, dst: usize, bytes: u64) -> f64;
    /// Model name.
    fn name(&self) -> &'static str;
}

/// Which interconnect a platform uses (constructor selector).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetKind {
    /// Shared 10 Mbps Ethernet.
    Ethernet,
    /// Shared 100 Mbps FDDI ring.
    Fddi,
    /// ALLNODE prototype, 32 Mbps per link, multiple paths.
    AllnodeS,
    /// ALLNODE fast, 64 Mbps per link, multiple paths.
    AllnodeF,
    /// ATM at 155 Mbps, port-switched.
    Atm,
    /// IBM SP switch, 40 MB/s per link.
    SpSwitch,
    /// Cray T3D 3-D torus, 150 MB/s per link.
    Torus3d,
    /// Radix-4 fat tree, 1.25 GB/s per link (a 10 Gbps cluster fabric),
    /// full bisection above the leaves.
    FatTree,
}

impl NetKind {
    /// Instantiate the model for `nprocs` nodes.
    pub fn build(self, nprocs: usize) -> Box<dyn Network> {
        match self {
            NetKind::Ethernet => Box::new(SharedBus::new("Ethernet", 10e6, 50e-6)),
            NetKind::Fddi => Box::new(SharedBus::new("FDDI", 100e6, 90e-6)),
            NetKind::AllnodeS => Box::new(PortSwitch::new("ALLNODE-S", 32e6, 25e-6, nprocs)),
            NetKind::AllnodeF => Box::new(PortSwitch::new("ALLNODE-F", 64e6, 25e-6, nprocs)),
            NetKind::Atm => Box::new(PortSwitch::new("ATM", 155e6, 40e-6, nprocs)),
            NetKind::SpSwitch => Box::new(PortSwitch::new("SP-switch", 320e6, 5e-6, nprocs)),
            NetKind::Torus3d => Box::new(Torus3d::new(nprocs)),
            NetKind::FatTree => Box::new(FatTree::new(nprocs)),
        }
    }
}

/// A single shared medium: every transmission serializes behind every other.
pub struct SharedBus {
    name: &'static str,
    bits_per_sec: f64,
    latency: f64,
    busy_until: f64,
}

impl SharedBus {
    /// New bus with the given raw bandwidth and per-frame access latency.
    pub fn new(name: &'static str, bits_per_sec: f64, latency: f64) -> Self {
        Self { name, bits_per_sec, latency, busy_until: 0.0 }
    }
}

impl Network for SharedBus {
    fn transfer(&mut self, now: f64, _src: usize, _dst: usize, bytes: u64) -> f64 {
        let start = now.max(self.busy_until) + self.latency;
        let tx = bytes as f64 * 8.0 / self.bits_per_sec;
        self.busy_until = start + tx;
        self.busy_until
    }
    fn name(&self) -> &'static str {
        self.name
    }
}

/// A switch with per-node port serialization but contention-free internal
/// paths (the ALLNODE property; also a good model for ATM and the SP
/// switch at our traffic levels).
pub struct PortSwitch {
    name: &'static str,
    bits_per_sec: f64,
    latency: f64,
    out_busy: Vec<f64>,
    in_busy: Vec<f64>,
}

impl PortSwitch {
    /// New switch for `nprocs` nodes.
    pub fn new(name: &'static str, bits_per_sec: f64, latency: f64, nprocs: usize) -> Self {
        Self { name, bits_per_sec, latency, out_busy: vec![0.0; nprocs], in_busy: vec![0.0; nprocs] }
    }
}

impl Network for PortSwitch {
    fn transfer(&mut self, now: f64, src: usize, dst: usize, bytes: u64) -> f64 {
        let tx = bytes as f64 * 8.0 / self.bits_per_sec;
        // source port: wait for previous outbound transmissions
        let start_out = now.max(self.out_busy[src]);
        self.out_busy[src] = start_out + tx;
        // destination port: the message also occupies the receiver's link
        let start_in = (start_out + self.latency).max(self.in_busy[dst]);
        self.in_busy[dst] = start_in + tx;
        self.in_busy[dst]
    }
    fn name(&self) -> &'static str {
        self.name
    }
}

/// 3-D torus with dimension-order routing (the T3D is 8 x 4 x 2; smaller
/// processor counts use a sub-torus of the same shape family).
pub struct Torus3d {
    dims: [usize; 3],
    link_busy: HashMap<(usize, usize, bool), f64>,
    bytes_per_sec: f64,
    hop_latency: f64,
}

impl Torus3d {
    /// Torus sized for `nprocs` nodes (8 x 4 x 2 geometry family).
    pub fn new(nprocs: usize) -> Self {
        let dims = match nprocs {
            0..=2 => [2, 1, 1],
            3..=4 => [2, 2, 1],
            5..=8 => [4, 2, 1],
            9..=16 => [4, 2, 2],
            17..=32 => [8, 2, 2],
            33..=64 => [8, 4, 2],
            _ => [8, 4, 4],
        };
        Self { dims, link_busy: HashMap::new(), bytes_per_sec: 150e6, hop_latency: 0.5e-6 }
    }

    fn coords(&self, node: usize) -> [usize; 3] {
        let x = node % self.dims[0];
        let y = (node / self.dims[0]) % self.dims[1];
        let z = node / (self.dims[0] * self.dims[1]);
        [x, y, z]
    }

    /// Hops of the dimension-order route (torus wraparound).
    pub fn route_len(&self, src: usize, dst: usize) -> usize {
        let a = self.coords(src);
        let b = self.coords(dst);
        let mut hops = 0;
        for d in 0..3 {
            let n = self.dims[d];
            let fwd = (b[d] + n - a[d]) % n;
            hops += fwd.min(n - fwd);
        }
        hops
    }
}

impl Network for Torus3d {
    fn transfer(&mut self, now: f64, src: usize, dst: usize, bytes: u64) -> f64 {
        // wormhole-ish: the head rides hop latencies; the body streams at
        // link bandwidth, serialized on each traversed link in dimension
        // order. We conservatively charge the full transmission on each
        // link's schedule (store-and-forward upper bound; routes here are
        // 1-2 hops so the difference is small).
        let tx = bytes as f64 / self.bytes_per_sec;
        let mut t = now;
        let mut a = self.coords(src);
        let b = self.coords(dst);
        for d in 0..3 {
            let n = self.dims[d];
            if n == 1 {
                continue;
            }
            while a[d] != b[d] {
                let fwd = (b[d] + n - a[d]) % n;
                let step_up = fwd <= n - fwd;
                let here = a[0] + self.dims[0] * (a[1] + self.dims[1] * a[2]);
                let key = (here, d, step_up);
                let busy = self.link_busy.entry(key).or_insert(0.0);
                let start = t.max(*busy) + self.hop_latency;
                *busy = start + tx;
                t = start + tx;
                a[d] = if step_up { (a[d] + 1) % n } else { (a[d] + n - 1) % n };
            }
        }
        t
    }
    fn name(&self) -> &'static str {
        "T3D-torus"
    }
}

/// A radix-4 fat tree with full bisection bandwidth above the leaf
/// switches: nodes are packed 4 per leaf in rank order, so a Cartesian
/// pencil numbered axial-fastest keeps its axial neighbours inside one leaf
/// (2 hops) while radial neighbours climb towards the common ancestor. The
/// upper tiers are "fat" — aggregate capacity matches the leaves — so only
/// the endpoint ports serialize and distance shows up as per-hop latency,
/// the behaviour of a non-blocking Clos/fat-tree cluster fabric.
pub struct FatTree {
    radix: usize,
    bytes_per_sec: f64,
    hop_latency: f64,
    out_busy: Vec<f64>,
    in_busy: Vec<f64>,
}

impl FatTree {
    /// Fat tree for `nprocs` nodes: 1.25 GB/s links (10 Gbps), 1.5 us per
    /// switch hop, radix 4.
    pub fn new(nprocs: usize) -> Self {
        Self {
            radix: 4,
            bytes_per_sec: 1.25e9,
            hop_latency: 1.5e-6,
            out_busy: vec![0.0; nprocs],
            in_busy: vec![0.0; nprocs],
        }
    }

    /// Switch hops of the up-then-down route: 2 within a leaf, +2 per tier
    /// climbed to the lowest common ancestor.
    pub fn route_len(&self, src: usize, dst: usize) -> usize {
        if src == dst {
            return 0;
        }
        let (mut a, mut b) = (src / self.radix, dst / self.radix);
        let mut hops = 2;
        while a != b {
            a /= self.radix;
            b /= self.radix;
            hops += 2;
        }
        hops
    }
}

impl Network for FatTree {
    fn transfer(&mut self, now: f64, src: usize, dst: usize, bytes: u64) -> f64 {
        let tx = bytes as f64 / self.bytes_per_sec;
        let lat = self.route_len(src, dst) as f64 * self.hop_latency;
        let start_out = now.max(self.out_busy[src]);
        self.out_busy[src] = start_out + tx;
        let start_in = (start_out + lat).max(self.in_busy[dst]);
        self.in_busy[dst] = start_in + tx;
        self.in_busy[dst]
    }
    fn name(&self) -> &'static str {
        "fat-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_bus_serializes() {
        let mut bus = SharedBus::new("e", 10e6, 0.0);
        let t1 = bus.transfer(0.0, 0, 1, 12_500); // 100 kbit = 10 ms at 10 Mbps
        let t2 = bus.transfer(0.0, 2, 3, 12_500);
        assert!((t1 - 0.01).abs() < 1e-9);
        assert!((t2 - 0.02).abs() < 1e-9, "second frame queues behind the first: {t2}");
    }

    #[test]
    fn port_switch_allows_disjoint_pairs_in_parallel() {
        let mut sw = PortSwitch::new("a", 32e6, 0.0, 4);
        let t1 = sw.transfer(0.0, 0, 1, 40_000); // 10 ms at 32 Mbps
        let t2 = sw.transfer(0.0, 2, 3, 40_000);
        assert!((t1 - t2).abs() < 1e-9, "disjoint pairs do not contend: {t1} vs {t2}");
        // same source port serializes
        let t3 = sw.transfer(0.0, 0, 2, 40_000);
        assert!(t3 > 1.5 * t1, "port contention: {t3}");
    }

    #[test]
    fn faster_allnode_is_twice_as_fast() {
        let mut s = NetKind::AllnodeS.build(4);
        let mut f = NetKind::AllnodeF.build(4);
        let ts = s.transfer(0.0, 0, 1, 6400);
        let tf = f.transfer(0.0, 0, 1, 6400);
        let tx_s = ts - 25e-6;
        let tx_f = tf - 25e-6;
        assert!((tx_s / tx_f - 2.0).abs() < 1e-6, "{tx_s} vs {tx_f}");
    }

    #[test]
    fn ethernet_saturates_under_16_processor_load() {
        // inject one step of 16-processor N-S traffic (16 ranks x ~35 KB)
        // into both Ethernet and ALLNODE-S: Ethernet's last delivery must be
        // an order of magnitude later.
        let mut eth = NetKind::Ethernet.build(16);
        let mut aln = NetKind::AllnodeS.build(16);
        let mut worst_eth: f64 = 0.0;
        let mut worst_aln: f64 = 0.0;
        for src in 0..16 {
            for msg in 0..4 {
                let dst = if (src + msg) % 2 == 0 { (src + 1) % 16 } else { (src + 15) % 16 };
                let bytes = if msg % 2 == 0 { 2400 } else { 6400 };
                worst_eth = worst_eth.max(eth.transfer(0.0, src, dst, bytes));
                worst_aln = worst_aln.max(aln.transfer(0.0, src, dst, bytes));
            }
        }
        assert!(worst_eth > 5.0 * worst_aln, "ethernet {worst_eth:.4} vs allnode {worst_aln:.4}");
    }

    #[test]
    fn torus_routes_have_torus_distances() {
        let t = Torus3d::new(64); // 8 x 4 x 2
        assert_eq!(t.route_len(0, 1), 1);
        assert_eq!(t.route_len(0, 7), 1, "wraparound in x");
        assert_eq!(t.route_len(0, 8), 1, "one hop in y");
        assert_eq!(t.route_len(0, 0), 0);
        // opposite corner: 4 + 2 + 1
        assert_eq!(t.route_len(0, 4 + 8 * 2 + 32), 7);
    }

    #[test]
    fn torus_neighbor_transfer_is_fast() {
        let mut t = Torus3d::new(16);
        let done = t.transfer(0.0, 0, 1, 6400);
        // 6400 B at 150 MB/s = 42.7 us + 0.5 us hop
        assert!(done < 60e-6, "{done}");
    }

    #[test]
    fn fat_tree_distance_grows_by_tier() {
        let t = FatTree::new(64);
        assert_eq!(t.route_len(0, 0), 0);
        assert_eq!(t.route_len(0, 3), 2, "same leaf");
        assert_eq!(t.route_len(0, 4), 4, "adjacent leaf");
        assert_eq!(t.route_len(0, 63), 6, "across the spine");
    }

    #[test]
    fn fat_tree_disjoint_pairs_do_not_contend() {
        let mut t = FatTree::new(64);
        // both cross the spine; a blocking fabric would serialize them
        let a = t.transfer(0.0, 0, 60, 1_250_000); // 1 ms of wire time
        let b = t.transfer(0.0, 1, 61, 1_250_000);
        assert!((a - b).abs() < 1e-9, "full bisection: {a} vs {b}");
        // same source port serializes
        let c = t.transfer(0.0, 0, 32, 1_250_000);
        assert!(c > a + 0.9e-3, "port contention: {c}");
    }

    #[test]
    fn torus_link_contention_serializes() {
        let mut t = Torus3d::new(16);
        let a = t.transfer(0.0, 0, 1, 150_000); // 1 ms
        let b = t.transfer(0.0, 0, 1, 150_000);
        assert!(b > a + 0.9e-3, "same link serializes: {a} {b}");
    }
}
