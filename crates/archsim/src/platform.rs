//! Platform catalog: the paper's machines as (CPU, network, library)
//! triples.

use crate::cpu::CpuSpec;
use crate::msglib::MsgLib;
use crate::network::NetKind;
use serde::{Deserialize, Serialize};

/// A message-passing platform configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Display name (matches the paper's figure legends).
    pub name: &'static str,
    /// Node CPU.
    pub cpu: CpuSpec,
    /// Message library.
    pub lib: MsgLib,
    /// Interconnect.
    pub net: NetKind,
    /// Largest processor count the paper could use.
    pub max_procs: usize,
}

impl Platform {
    /// LACE lower half over dedicated Ethernet (10 Mbps).
    pub fn lace560_ethernet() -> Self {
        Self {
            name: "LACE/560 Ethernet",
            cpu: CpuSpec::rs6000_560(),
            lib: MsgLib::pvm(),
            net: NetKind::Ethernet,
            max_procs: 16,
        }
    }

    /// LACE lower half over the ALLNODE prototype (32 Mbps/link).
    pub fn lace560_allnode_s() -> Self {
        Self {
            name: "ALLNODE-S",
            cpu: CpuSpec::rs6000_560(),
            lib: MsgLib::pvm(),
            net: NetKind::AllnodeS,
            max_procs: 16,
        }
    }

    /// LACE nodes 9-24 over FDDI (100 Mbps shared).
    pub fn lace560_fddi() -> Self {
        Self {
            name: "LACE/560 FDDI",
            cpu: CpuSpec::rs6000_560(),
            lib: MsgLib::pvm(),
            net: NetKind::Fddi,
            max_procs: 16,
        }
    }

    /// LACE upper half over the fast ALLNODE switch (64 Mbps/link).
    pub fn lace590_allnode_f() -> Self {
        Self {
            name: "ALLNODE-F",
            cpu: CpuSpec::rs6000_590(),
            lib: MsgLib::pvm(),
            net: NetKind::AllnodeF,
            max_procs: 16,
        }
    }

    /// LACE upper half over ATM (155 Mbps).
    pub fn lace590_atm() -> Self {
        Self { name: "LACE/590 ATM", cpu: CpuSpec::rs6000_590(), lib: MsgLib::pvm(), net: NetKind::Atm, max_procs: 16 }
    }

    /// IBM SP with the native MPL library.
    pub fn ibm_sp_mpl() -> Self {
        Self {
            name: "IBM SP (MPL)",
            cpu: CpuSpec::rs6000_370(),
            lib: MsgLib::mpl(),
            net: NetKind::SpSwitch,
            max_procs: 16,
        }
    }

    /// IBM SP with PVMe.
    pub fn ibm_sp_pvme() -> Self {
        Self {
            name: "IBM SP (PVMe)",
            cpu: CpuSpec::rs6000_370(),
            lib: MsgLib::pvme(),
            net: NetKind::SpSwitch,
            max_procs: 16,
        }
    }

    /// Cray T3D with Cray's PVM.
    pub fn cray_t3d() -> Self {
        Self { name: "Cray T3D", cpu: CpuSpec::t3d(), lib: MsgLib::cray_pvm(), net: NetKind::Torus3d, max_procs: 16 }
    }

    /// A projection platform beyond the paper's catalog: LACE's fastest
    /// nodes on a 10 Gbps radix-4 fat tree with a lean user-level message
    /// library. This is the testbed for the 2-D pencil strong-scaling
    /// study, where processor counts (32–128) outgrow every 1995 machine.
    pub fn cluster_fat_tree() -> Self {
        Self {
            name: "Fat-tree cluster",
            cpu: CpuSpec::rs6000_590(),
            lib: MsgLib::lean_user_level(),
            net: NetKind::FatTree,
            max_procs: 128,
        }
    }

    /// The T3D's torus scaled out to 128 nodes, same links and library —
    /// the second fabric of the pencil scaling study.
    pub fn torus_cluster() -> Self {
        Self {
            name: "Torus cluster",
            cpu: CpuSpec::t3d(),
            lib: MsgLib::cray_pvm(),
            net: NetKind::Torus3d,
            max_procs: 128,
        }
    }

    /// All message-passing platforms in the study.
    pub fn all() -> Vec<Platform> {
        vec![
            Self::lace560_ethernet(),
            Self::lace560_allnode_s(),
            Self::lace560_fddi(),
            Self::lace590_allnode_f(),
            Self::lace590_atm(),
            Self::ibm_sp_mpl(),
            Self::ibm_sp_pvme(),
            Self::cray_t3d(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_complete_and_distinct() {
        let all = Platform::all();
        assert_eq!(all.len(), 8);
        let mut names: Vec<_> = all.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8, "platform names are unique");
    }

    #[test]
    fn lace_halves_use_the_right_cpus() {
        assert_eq!(Platform::lace560_allnode_s().cpu.name, "RS6000/560");
        assert_eq!(Platform::lace590_allnode_f().cpu.name, "RS6000/590");
        assert_eq!(Platform::ibm_sp_mpl().cpu.name, "RS6K/370");
    }

    #[test]
    fn sp_variants_share_hardware() {
        let mpl = Platform::ibm_sp_mpl();
        let pvme = Platform::ibm_sp_pvme();
        assert_eq!(mpl.cpu, pvme.cpu);
        assert_eq!(mpl.net, pvme.net);
        assert_ne!(mpl.lib.name, pvme.lib.name);
    }
}
