//! Trace-driven cache simulator.
//!
//! The paper attributes most of the cross-platform single-node differences
//! to cache geometry: the T3D's "small, direct-mapped cache of 8KB" against
//! the RS6000/590's 256KB 4-way data cache, and the ~50% gain from
//! converting strided sweeps to stride-1 (Version 3). This module provides
//! a set-associative LRU cache simulator plus a generator for the solver's
//! actual memory-access pattern, so those miss ratios are *measured*, not
//! assumed.

use serde::{Deserialize, Serialize};

/// Cache geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Line size in bytes.
    pub line: usize,
    /// Associativity (1 = direct-mapped).
    pub ways: usize,
}

impl CacheGeometry {
    /// Construct and validate a geometry.
    pub fn new(capacity: usize, line: usize, ways: usize) -> Self {
        assert!(line.is_power_of_two() && capacity.is_multiple_of(line * ways), "invalid cache geometry");
        Self { capacity, line, ways }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.capacity / (self.line * self.ways)
    }

    /// RS6000/560 data cache: 64 KB, 4-way (paper Section 4.1 / 7.2).
    pub fn rs6000_560() -> Self {
        Self::new(64 * 1024, 64, 4)
    }

    /// RS6000/590 data cache: 256 KB, 4-way.
    pub fn rs6000_590() -> Self {
        Self::new(256 * 1024, 64, 4)
    }

    /// IBM SP node (RS6K/370) data cache: 32 KB (paper Section 7.2).
    pub fn rs6000_370() -> Self {
        Self::new(32 * 1024, 64, 4)
    }

    /// Cray T3D node (Alpha 21064): 8 KB direct-mapped (paper Section 4.3).
    pub fn t3d() -> Self {
        Self::new(8 * 1024, 32, 1)
    }
}

/// Hit/miss statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Misses.
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Set-associative LRU cache simulator.
#[derive(Clone, Debug)]
pub struct CacheSim {
    geom: CacheGeometry,
    /// `sets x ways` tags; `u64::MAX` = invalid. Lower index = more recent.
    tags: Vec<u64>,
    /// Statistics.
    pub stats: CacheStats,
}

impl CacheSim {
    /// Empty (cold) cache of the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        Self { geom, tags: vec![u64::MAX; geom.sets() * geom.ways], stats: CacheStats::default() }
    }

    /// Geometry in use.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Access one byte address; returns `true` on hit. Loads and stores are
    /// treated alike (allocate-on-write, as the POWER and Alpha caches of
    /// the period effectively behaved for this workload).
    pub fn access(&mut self, addr: u64) -> bool {
        self.stats.accesses += 1;
        let line_addr = addr / self.geom.line as u64;
        let set = (line_addr % self.geom.sets() as u64) as usize;
        let tag = line_addr;
        let ways = self.geom.ways;
        let base = set * ways;
        let slot = self.tags[base..base + ways].iter().position(|&t| t == tag);
        match slot {
            Some(k) => {
                // move to front (LRU)
                self.tags[base..base + k + 1].rotate_right(1);
                true
            }
            None => {
                self.stats.misses += 1;
                self.tags[base..base + ways].rotate_right(1);
                self.tags[base] = tag;
                false
            }
        }
    }

    /// Reset statistics (e.g., after a warm-up pass).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

/// Loop order of the generated solver trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SweepOrder {
    /// Axial index innermost — strided accesses (paper Versions 1-2).
    Strided,
    /// Radial index innermost — stride-1 accesses (Versions 3-5).
    Unit,
}

/// Generate the solver's characteristic access trace for one predictor or
/// corrector stage over an `nxl x nr` subdomain and feed it to `sim`.
///
/// The trace walks the actual planes the solver touches: the primitive
/// recovery reads the four conservative planes and writes five primitive
/// planes; the flux kernel reads the five-point stencil of three primitive
/// planes plus the local density/pressure, and writes four flux planes.
/// Plane base addresses are laid out back-to-back, like the solver's
/// separately boxed `Array2` buffers.
pub fn run_solver_trace(sim: &mut CacheSim, nxl: usize, nr: usize, order: SweepOrder) {
    const W: u64 = 8; // f64
    let ni = (nxl + 4) as u64;
    let nj = (nr + 4) as u64;
    let plane = ni * nj * W;
    // plane ids: 0-3 conservative, 4-8 primitives (rho,u,v,p,t), 9-12 flux
    let at = |pl: u64, i: u64, j: u64| pl * plane + ((i + 2) * nj + (j + 2)) * W;

    let visit = |f: &mut dyn FnMut(u64, u64)| match order {
        SweepOrder::Unit => {
            for i in 0..nxl as u64 {
                for j in 0..nr as u64 {
                    f(i, j);
                }
            }
        }
        SweepOrder::Strided => {
            for j in 0..nr as u64 {
                for i in 0..nxl as u64 {
                    f(i, j);
                }
            }
        }
    };

    // primitive recovery: read q0..q3, write rho,u,v,p,t
    visit(&mut |i, j| {
        for q in 0..4 {
            sim.access(at(q, i, j));
        }
        for p in 4..9 {
            sim.access(at(p, i, j));
        }
    });
    // flux kernel: stencil reads of u,v,t (planes 5,6,8), point reads of
    // rho,p (4,7), writes of flux planes 9..13
    visit(&mut |i, j| {
        for p in [5u64, 6, 8] {
            sim.access(at(p, i, j));
            sim.access(at(p, i + 1, j));
            sim.access(at(p, i.saturating_sub(1), j));
            sim.access(at(p, i, j + 1));
            sim.access(at(p, i, j.saturating_sub(1)));
        }
        sim.access(at(4, i, j));
        sim.access(at(7, i, j));
        for fpl in 9..13 {
            sim.access(at(fpl, i, j));
        }
    });
}

/// Measured miss ratio of the solver trace on a geometry (one warm-up stage,
/// one measured stage).
pub fn solver_miss_ratio(geom: CacheGeometry, nxl: usize, nr: usize, order: SweepOrder) -> f64 {
    let mut sim = CacheSim::new(geom);
    run_solver_trace(&mut sim, nxl, nr, order);
    sim.reset_stats();
    run_solver_trace(&mut sim, nxl, nr, order);
    sim.stats.miss_ratio()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = CacheSim::new(CacheGeometry::new(1024, 64, 2));
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.stats.misses, 2);
        assert_eq!(c.stats.accesses, 4);
    }

    #[test]
    fn direct_mapped_conflicts_thrash() {
        // two addresses mapping to the same set alternate: every access a
        // miss in direct-mapped, all hits (after warm-up) in 2-way
        let dm = CacheGeometry::new(1024, 64, 1);
        let tw = CacheGeometry::new(1024, 64, 2);
        let conflict_stride = 1024; // same set in both
        let run = |geom: CacheGeometry| {
            let mut c = CacheSim::new(geom);
            for _ in 0..100 {
                c.access(0);
                c.access(conflict_stride);
            }
            c.stats.miss_ratio()
        };
        assert!(run(dm) > 0.95, "direct-mapped thrashes");
        assert!(run(tw) < 0.05, "2-way holds both lines");
    }

    #[test]
    fn lru_keeps_recent_lines() {
        let mut c = CacheSim::new(CacheGeometry::new(256, 64, 2)); // 2 sets x 2 ways
                                                                   // set 0 lines: 0, 128, 256 (three lines, two ways)
        c.access(0);
        c.access(128);
        c.access(0); // 0 is now MRU
        c.access(256); // evicts 128 (LRU)
        assert!(c.access(0), "MRU line survived");
        assert!(!c.access(128), "LRU line evicted");
    }

    #[test]
    fn stride1_beats_strided_on_small_cache() {
        let geom = CacheGeometry::t3d();
        let unit = solver_miss_ratio(geom, 64, 100, SweepOrder::Unit);
        let strided = solver_miss_ratio(geom, 64, 100, SweepOrder::Strided);
        assert!(
            strided > 1.5 * unit,
            "strided sweeps must miss far more on an 8KB direct-mapped cache: unit={unit:.4} strided={strided:.4}"
        );
    }

    #[test]
    fn bigger_cache_has_fewer_misses() {
        let small = solver_miss_ratio(CacheGeometry::t3d(), 64, 100, SweepOrder::Unit);
        let big = solver_miss_ratio(CacheGeometry::rs6000_590(), 64, 100, SweepOrder::Unit);
        assert!(big < small, "256KB 4-way {big:.4} must beat 8KB DM {small:.4}");
    }

    #[test]
    fn associativity_helps_at_fixed_capacity() {
        let dm = CacheGeometry::new(8 * 1024, 32, 1);
        let assoc = CacheGeometry::new(8 * 1024, 32, 4);
        let a = solver_miss_ratio(dm, 32, 100, SweepOrder::Unit);
        let b = solver_miss_ratio(assoc, 32, 100, SweepOrder::Unit);
        assert!(b <= a, "4-way {b:.4} must not be worse than direct-mapped {a:.4}");
    }

    #[test]
    fn geometry_catalog_matches_paper() {
        assert_eq!(CacheGeometry::rs6000_560().capacity, 64 * 1024);
        assert_eq!(CacheGeometry::rs6000_590().capacity, 256 * 1024);
        assert_eq!(CacheGeometry::rs6000_370().capacity, 32 * 1024);
        let t3d = CacheGeometry::t3d();
        assert_eq!(t3d.capacity, 8 * 1024);
        assert_eq!(t3d.ways, 1, "the T3D cache the paper blames is direct-mapped");
    }
}
