//! Discrete-event simulation of the SPMD solver on a modeled platform.
//!
//! Each rank executes the solver's real per-step program (from
//! `ns_core::workload`): compute phases whose durations come from the
//! calibrated CPU model, interleaved with the paper's message protocol whose
//! software costs come from the library model and whose transport times come
//! from the network model. The engine advances the globally earliest
//! runnable rank, so shared-resource contention (the Ethernet bus, switch
//! ports, torus links) is resolved in time order.
//!
//! Output is the paper's own decomposition: per-rank **processor busy time**
//! (compute + message software overheads) and **non-overlapped communication
//! time** (blocked in receives), per Section 6.

use crate::cpu::{Calibration, CpuSpec};
use crate::msglib::MsgLib;

use crate::platform::Platform;
use ns_core::config::{Regime, Version};
use ns_core::workload::{self, Decomposition, PhaseOp};
use ns_numerics::Grid;
use ns_telemetry::{EventKind, TraceEvent};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Communication-structure variant (paper Versions 5-7).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommMode {
    /// Grouped sends, no overlap (the production version).
    V5,
    /// Overlap: post sends, compute the interior flux while boundary data is
    /// in flight, then finish the edges. Splitting the loop costs setup
    /// overhead and temporal locality (paper Section 6), modeled as a small
    /// inflation of the split phases.
    V6,
    /// Split each two-column flux packet into two sends (less bursty, twice
    /// the start-ups).
    V7,
}

/// Low-level per-rank event.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Ev {
    /// Busy for a fixed duration (compute or message software overhead),
    /// attributed to a named phase — the per-phase separation the paper
    /// could not make "unless we have hardware performance monitoring
    /// tools" (Section 6); the simulator is that tool.
    Busy { secs: f64, label: &'static str },
    /// Inject a message to `to`.
    Send { to: usize, bytes: u64 },
    /// Block until the next message from `from` is delivered.
    Recv { from: usize },
}

/// Simulation configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The platform to model.
    pub platform: Platform,
    /// Processor count.
    pub nprocs: usize,
    /// Which equations (sets compute cost and protocol).
    pub regime: Regime,
    /// Grid (the paper's 250x100 unless studying something else).
    pub grid: Grid,
    /// Steps to *report* (the paper runs 5000).
    pub report_steps: u64,
    /// Steps to *simulate*; per-step behaviour is stationary, so results are
    /// scaled up to `report_steps` (use `report_steps` itself for an exact
    /// run).
    pub sim_steps: u64,
    /// Single-processor code version (the parallel studies all use V5).
    pub version: Version,
    /// Communication variant.
    pub comm: CommMode,
    /// Decomposition direction (the paper uses axial blocks; radial is the
    /// future-work ablation).
    pub decomposition: Decomposition,
    /// 2-D pencil rank grid `(px, pr)`, axial-fastest numbering. When set
    /// it overrides `decomposition` and must satisfy `px * pr == nprocs`;
    /// `(nprocs, 1)` reproduces the axial layout exactly.
    pub pencil: Option<(usize, usize)>,
}

impl SimConfig {
    /// The paper's standard experiment on a platform: 5000 steps reported,
    /// 50 simulated (stationary), V5 kernels.
    pub fn paper(platform: Platform, nprocs: usize, regime: Regime) -> Self {
        Self {
            platform,
            nprocs,
            regime,
            grid: Grid::paper(),
            report_steps: 5000,
            sim_steps: 50,
            version: Version::V5,
            comm: CommMode::V5,
            decomposition: Decomposition::Axial,
            pencil: None,
        }
    }

    /// The pencil scaling experiment: `px × pr` ranks on a platform, with
    /// the grid chosen by the caller (strong-scaling studies outgrow the
    /// paper's 250 × 100 domain).
    pub fn pencil(platform: Platform, grid: Grid, px: usize, pr: usize, regime: Regime) -> Self {
        let mut cfg = Self::paper(platform, px * pr, regime);
        cfg.grid = grid;
        cfg.pencil = Some((px, pr));
        cfg
    }
}

/// Per-rank and aggregate results (seconds, scaled to `report_steps`).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct SimResult {
    /// Wall-clock execution time (slowest rank).
    pub total: f64,
    /// Per-rank busy time (compute + message software overheads).
    pub busy: Vec<f64>,
    /// Per-rank non-overlapped communication (blocked in receives).
    pub wait: Vec<f64>,
    /// Per-rank message start-ups (sends + receives).
    pub startups: Vec<u64>,
    /// Per-rank bytes sent.
    pub bytes_sent: Vec<u64>,
    /// Busy seconds attributed to each phase label, aggregated over ranks
    /// (compute phases carry the solver's labels, message software costs
    /// appear as `comm:send` / `comm:recv` / `comm:stall`).
    pub phase_seconds: std::collections::BTreeMap<&'static str, f64>,
}

impl SimResult {
    /// Mean busy time across ranks.
    pub fn mean_busy(&self) -> f64 {
        self.busy.iter().sum::<f64>() / self.busy.len() as f64
    }

    /// Max non-overlapped communication across ranks.
    pub fn max_wait(&self) -> f64 {
        self.wait.iter().cloned().fold(0.0, f64::max)
    }
}

/// Compile one rank's per-step program into low-level events.
#[allow(clippy::too_many_arguments)]
fn compile_rank(cal: &Calibration, cpu: &CpuSpec, lib: &MsgLib, cfg: &SimConfig, rank: usize) -> Vec<Ev> {
    // neighbours on the Cartesian rank grid (1-D layouts are the
    // degenerate rows/columns of it), and the local subdomain shape seen by
    // the cache model
    let (left, right, down, up, nxl, nr, owns_top);
    let mut w = match cfg.pencil {
        Some((px, pr)) => {
            assert_eq!(px * pr, cfg.nprocs, "pencil shape must cover the rank count");
            let (cx, cr) = (rank % px, rank / px);
            left = (cx > 0).then(|| rank - 1);
            right = (cx + 1 < px).then(|| rank + 1);
            down = (cr > 0).then(|| rank - px);
            up = (cr + 1 < pr).then(|| rank + px);
            nxl = workload::block_len(cfg.grid.nx, cx, px);
            nr = workload::block_len(cfg.grid.nr, cr, pr);
            owns_top = cr + 1 == pr;
            workload::step_workload_pencil(cfg.regime, &cfg.grid, nxl, nr, owns_top)
        }
        None => {
            left = (rank > 0).then(|| rank - 1);
            right = (rank + 1 < cfg.nprocs).then_some(rank + 1);
            (down, up) = (None, None);
            let local;
            (local, nxl, nr, owns_top) = match cfg.decomposition {
                Decomposition::Axial => {
                    let n = workload::block_len(cfg.grid.nx, rank, cfg.nprocs);
                    (n, n, cfg.grid.nr, true)
                }
                Decomposition::Radial => {
                    let n = workload::block_len(cfg.grid.nr, rank, cfg.nprocs);
                    (n, cfg.grid.nx, n, rank + 1 == cfg.nprocs)
                }
            };
            workload::step_workload_decomposed(cfg.regime, &cfg.grid, local, cfg.decomposition, owns_top)
        }
    };
    if cfg.version >= Version::V6 {
        w.relabel_fused();
    }
    let busy_for = |flops: u64| cal.seconds_for(cpu, cfg.version, nxl, nr, flops);

    let mut evs: Vec<Ev> = Vec::new();
    let push_exchange = |evs: &mut Vec<Ev>, pair: [Option<usize>; 2], bytes: u64, pieces: u64| {
        // all sends first (buffered), then receives — the solver's order
        for n in pair.into_iter().flatten() {
            for _ in 0..pieces {
                evs.push(Ev::Busy { secs: lib.send_cost(bytes / pieces), label: "comm:send" });
                evs.push(Ev::Send { to: n, bytes: bytes / pieces });
            }
        }
        for n in pair.into_iter().flatten() {
            for _ in 0..pieces {
                evs.push(Ev::Recv { from: n });
                evs.push(Ev::Busy { secs: lib.recv_cost(bytes / pieces), label: "comm:recv" });
            }
        }
    };

    let ops = &w.ops;
    let mut k = 0;
    while k < ops.len() {
        match &ops[k] {
            PhaseOp::Compute { label, flops } => evs.push(Ev::Busy { secs: busy_for(*flops), label }),
            PhaseOp::ExchangePrims { bytes } => {
                // Version 6: overlap this wait with the interior part of the
                // flux phase that follows (labeled `*:flux*` on the V1–V5
                // kernel ladder, `*:fused*` on the fused V6 path).
                let next_is_flux = matches!(
                    ops.get(k + 1),
                    Some(PhaseOp::Compute { label, .. }) if label.contains("flux") || label.contains("fused")
                );
                if cfg.comm == CommMode::V6 && next_is_flux {
                    let Some(PhaseOp::Compute { label, flops }) = ops.get(k + 1) else { unreachable!() };
                    let flux_time = busy_for(*flops) * V6_SPLIT_PENALTY;
                    let interior = flux_time * (nxl.saturating_sub(2)) as f64 / nxl as f64;
                    let edge = flux_time - interior;
                    // post sends
                    for n in [left, right].into_iter().flatten() {
                        evs.push(Ev::Busy { secs: lib.send_cost(*bytes), label: "comm:send" });
                        evs.push(Ev::Send { to: n, bytes: *bytes });
                    }
                    // compute the interior while data is in flight
                    evs.push(Ev::Busy { secs: interior, label });
                    for n in [left, right].into_iter().flatten() {
                        evs.push(Ev::Recv { from: n });
                        evs.push(Ev::Busy { secs: lib.recv_cost(*bytes), label: "comm:recv" });
                    }
                    evs.push(Ev::Busy { secs: edge, label });
                    k += 2; // consumed the flux phase too
                    continue;
                }
                push_exchange(&mut evs, [left, right], *bytes, 1);
            }
            PhaseOp::ExchangeFlux { bytes } => {
                let pieces = if cfg.comm == CommMode::V7 { 2 } else { 1 };
                push_exchange(&mut evs, [left, right], *bytes, pieces);
            }
            // the radial row exchanges of the pencil protocol, always the
            // grouped (V5) shape — validation restricts radial splits to it
            PhaseOp::ExchangePrimsR { bytes } | PhaseOp::ExchangeFluxR { bytes } => {
                push_exchange(&mut evs, [down, up], *bytes, 1);
            }
        }
        k += 1;
    }
    evs
}

/// Loop-splitting and locality penalty of the Version 6 overlap (paper
/// Section 7.1: "the loop setup overheads are higher. Further, the cache
/// performance also degrades slightly due to loss of temporal locality").
const V6_SPLIT_PENALTY: f64 = 1.06;

/// Run the discrete-event simulation.
pub fn simulate(cfg: &SimConfig) -> SimResult {
    simulate_impl(cfg, false).0
}

/// Run the simulation and also return the virtual-time event trace: the
/// same [`TraceEvent`] schema the live runtime records, so the simulated
/// timeline opens in the same viewers (JSONL, Chrome `trace_event`, the
/// ASCII Gantt). Timestamps are virtual microseconds over the `sim_steps`
/// horizon — unlike the aggregate numbers in [`SimResult`], the trace is
/// *not* scaled up to `report_steps`.
pub fn simulate_traced(cfg: &SimConfig) -> (SimResult, Vec<TraceEvent>) {
    simulate_impl(cfg, true)
}

fn simulate_impl(cfg: &SimConfig, traced: bool) -> (SimResult, Vec<TraceEvent>) {
    assert!(cfg.nprocs >= 1 && cfg.nprocs <= cfg.platform.max_procs, "processor count out of range");
    assert!(cfg.sim_steps >= 1 && cfg.sim_steps <= cfg.report_steps);
    let cal = Calibration::standard();
    let mut net = cfg.platform.net.build(cfg.nprocs);
    let lib = cfg.platform.lib;

    struct Proc {
        evs: Vec<Ev>,
        pc: usize,
        clock: f64,
        busy: f64,
        wait: f64,
        startups: u64,
        bytes_sent: u64,
    }

    let mut procs: Vec<Proc> = (0..cfg.nprocs)
        .map(|r| {
            let step_evs = compile_rank(cal, &cfg.platform.cpu, &lib, cfg, r);
            let mut evs = Vec::with_capacity(step_evs.len() * cfg.sim_steps as usize);
            for _ in 0..cfg.sim_steps {
                evs.extend_from_slice(&step_evs);
            }
            Proc { evs, pc: 0, clock: 0.0, busy: 0.0, wait: 0.0, startups: 0, bytes_sent: 0 }
        })
        .collect();

    // in-flight deliveries per (src, dst)
    let mut inflight: Vec<VecDeque<f64>> = vec![VecDeque::new(); cfg.nprocs * cfg.nprocs];
    let key = |src: usize, dst: usize| src * cfg.nprocs + dst;
    let mut phase_seconds: std::collections::BTreeMap<&'static str, f64> = std::collections::BTreeMap::new();
    let mut trace: Vec<TraceEvent> = Vec::new();
    let us = |secs: f64| (secs * 1e6).round() as u64;

    loop {
        // pick the earliest runnable process
        let mut pick: Option<usize> = None;
        for (idx, p) in procs.iter().enumerate() {
            if p.pc >= p.evs.len() {
                continue;
            }
            let runnable = match p.evs[p.pc] {
                Ev::Recv { from } => !inflight[key(from, idx)].is_empty(),
                _ => true,
            };
            if runnable && pick.is_none_or(|b| p.clock < procs[b].clock) {
                pick = Some(idx);
            }
        }
        let Some(idx) = pick else {
            assert!(procs.iter().all(|p| p.pc >= p.evs.len()), "deadlock: some rank blocked on a message never sent");
            break;
        };
        let ev = procs[idx].evs[procs[idx].pc];
        procs[idx].pc += 1;
        match ev {
            Ev::Busy { secs: t, label } => {
                let now = procs[idx].clock;
                procs[idx].clock += t;
                procs[idx].busy += t;
                *phase_seconds.entry(label).or_insert(0.0) += t;
                if traced {
                    trace.push(TraceEvent {
                        t_us: us(now),
                        dur_us: us(t),
                        rank: idx,
                        kind: EventKind::Phase,
                        label: label.to_string(),
                        peer: None,
                        bytes: 0,
                        span: None,
                    });
                }
            }
            Ev::Send { to, bytes } => {
                let now = procs[idx].clock;
                let delivery = net.transfer(now, idx, to, bytes);
                procs[idx].startups += 1;
                procs[idx].bytes_sent += bytes;
                let mut stall = 0.0;
                if lib.blocking_send {
                    // the CPU spins in the library until the wire is done —
                    // measured as *busy* time by the paper's instrumentation
                    stall = (delivery - now).max(0.0);
                    procs[idx].busy += stall;
                    procs[idx].clock = now.max(delivery);
                    *phase_seconds.entry("comm:stall").or_insert(0.0) += stall;
                }
                inflight[key(idx, to)].push_back(delivery);
                if traced {
                    trace.push(TraceEvent {
                        t_us: us(now),
                        dur_us: us(stall),
                        rank: idx,
                        kind: EventKind::Send,
                        label: "msg".to_string(),
                        peer: Some(to),
                        bytes,
                        span: None,
                    });
                }
            }
            Ev::Recv { from } => {
                let delivery = inflight[key(from, idx)].pop_front().expect("runnable recv");
                procs[idx].startups += 1;
                let now = procs[idx].clock;
                if delivery > now {
                    procs[idx].wait += delivery - now;
                    procs[idx].clock = delivery;
                }
                if traced {
                    trace.push(TraceEvent {
                        t_us: us(now),
                        dur_us: us((delivery - now).max(0.0)),
                        rank: idx,
                        kind: EventKind::Recv,
                        label: "msg".to_string(),
                        peer: Some(from),
                        bytes: 0,
                        span: None,
                    });
                }
            }
        }
    }

    let scale = cfg.report_steps as f64 / cfg.sim_steps as f64;
    let total = procs.iter().map(|p| p.clock).fold(0.0, f64::max) * scale;
    for v in phase_seconds.values_mut() {
        *v *= scale;
    }
    if traced {
        trace.sort_by_key(|e| (e.t_us, e.rank));
    }
    (
        SimResult {
            total,
            busy: procs.iter().map(|p| p.busy * scale).collect(),
            wait: procs.iter().map(|p| p.wait * scale).collect(),
            startups: procs.iter().map(|p| (p.startups as f64 * scale) as u64).collect(),
            bytes_sent: procs.iter().map(|p| (p.bytes_sent as f64 * scale) as u64).collect(),
            phase_seconds,
        },
        trace,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::ANCHOR_V5_SECONDS;

    fn quick(platform: Platform, nprocs: usize, regime: Regime) -> SimResult {
        let mut cfg = SimConfig::paper(platform, nprocs, regime);
        cfg.sim_steps = 10;
        simulate(&cfg)
    }

    #[test]
    fn single_processor_matches_figure2_anchor() {
        let r = quick(Platform::lace560_allnode_s(), 1, Regime::NavierStokes);
        assert!((r.total - ANCHOR_V5_SECONDS).abs() / ANCHOR_V5_SECONDS < 0.02, "total {}", r.total);
        assert_eq!(r.startups[0], 0, "no neighbours, no messages");
    }

    #[test]
    fn allnode_scales_then_flattens() {
        let t1 = quick(Platform::lace560_allnode_s(), 1, Regime::NavierStokes).total;
        let t4 = quick(Platform::lace560_allnode_s(), 4, Regime::NavierStokes).total;
        let t16 = quick(Platform::lace560_allnode_s(), 16, Regime::NavierStokes).total;
        assert!(t4 < t1 / 3.0, "near-linear at 4: {t4} vs {t1}");
        assert!(t16 < t4, "still improving at 16");
        let speedup16 = t1 / t16;
        assert!(speedup16 < 14.0, "but sublinear by 16 (paper Section 7.1): speedup {speedup16:.1}");
    }

    #[test]
    fn ethernet_gets_worse_past_its_peak() {
        let times: Vec<f64> = [4, 8, 12, 16]
            .iter()
            .map(|&p| quick(Platform::lace560_ethernet(), p, Regime::NavierStokes).total)
            .collect();
        // paper: N-S Ethernet peaks around 8 processors, then degrades
        let t8 = times[1];
        let t16 = times[3];
        assert!(t8 < times[0], "8 beats 4 on Ethernet");
        assert!(t16 > t8, "16 must be worse than 8 on Ethernet: {times:?}");
    }

    #[test]
    fn startup_counts_match_table1() {
        let r = quick(Platform::lace560_allnode_s(), 16, Regime::NavierStokes);
        // interior rank: 16 start-ups per step x 5000 steps
        assert_eq!(r.startups[7], 80_000);
        let e = quick(Platform::lace560_allnode_s(), 16, Regime::Euler);
        assert_eq!(e.startups[7], 60_000);
    }

    #[test]
    fn v7_doubles_flux_startups() {
        let mut cfg = SimConfig::paper(Platform::lace560_ethernet(), 8, Regime::NavierStokes);
        cfg.sim_steps = 5;
        let v5 = simulate(&cfg);
        cfg.comm = CommMode::V7;
        let v7 = simulate(&cfg);
        // V5: 16/step interior; V7 adds 2 flux messages/side/step -> 24/step
        assert_eq!(v5.startups[3], 80_000);
        assert_eq!(v7.startups[3], 120_000);
        assert_eq!(v5.bytes_sent[3], v7.bytes_sent[3], "same volume");
    }

    #[test]
    fn v6_changes_little_on_allnode() {
        // the paper: Version 6 ~ Version 5 (overheads offset the overlap)
        let mut cfg = SimConfig::paper(Platform::lace560_allnode_s(), 8, Regime::NavierStokes);
        cfg.sim_steps = 10;
        let v5 = simulate(&cfg);
        cfg.comm = CommMode::V6;
        let v6 = simulate(&cfg);
        let rel = (v6.total - v5.total).abs() / v5.total;
        assert!(rel < 0.08, "V6 within a few percent of V5: {rel}");
    }

    #[test]
    fn fused_v6_kernels_speed_compute_and_relabel_phases() {
        let mut cfg = SimConfig::paper(Platform::lace560_allnode_s(), 4, Regime::NavierStokes);
        cfg.sim_steps = 5;
        let v5 = simulate(&cfg);
        cfg.version = Version::V6;
        let v6 = simulate(&cfg);
        assert!(v6.total < v5.total, "fused kernels must be faster: {} vs {}", v6.total, v5.total);
        assert!(v6.phase_seconds.contains_key("x:fused") && v6.phase_seconds.contains_key("r:fused2"));
        assert!(!v6.phase_seconds.keys().any(|l| l.contains("prims")), "prims phases merge into the fused sweeps");
        assert_eq!(v6.startups, v5.startups, "the message protocol is version-independent");
    }

    #[test]
    fn load_is_balanced_at_16_processors() {
        // Figure 13: per-processor busy times nearly equal
        let r = quick(Platform::ibm_sp_mpl(), 16, Regime::NavierStokes);
        let mn = r.busy.iter().cloned().fold(f64::INFINITY, f64::min);
        let mx = r.busy.iter().cloned().fold(0.0, f64::max);
        // 250 columns over 16 ranks leaves blocks of 15 or 16 columns
        // (6.7% compute imbalance) and the edge ranks do half the message
        // work; the distribution must still be tight
        assert!((mx - mn) / mx < 0.2, "busy spread {mn}..{mx}");
    }

    #[test]
    fn traced_run_matches_untraced_and_covers_all_ranks() {
        let mut cfg = SimConfig::paper(Platform::lace560_allnode_s(), 4, Regime::NavierStokes);
        cfg.sim_steps = 3;
        let plain = simulate(&cfg);
        let (traced, trace) = simulate_traced(&cfg);
        assert_eq!(plain, traced, "tracing must not perturb the simulation");
        assert!(!trace.is_empty());
        assert!(trace.windows(2).all(|w| w[0].t_us <= w[1].t_us), "sorted by start");
        for rank in 0..4 {
            assert!(trace.iter().any(|e| e.rank == rank && e.kind == ns_telemetry::EventKind::Phase));
        }
        // interior ranks exchange with both neighbours
        assert!(trace.iter().any(|e| e.rank == 1 && e.kind == ns_telemetry::EventKind::Send && e.peer == Some(2)));
        assert!(trace.iter().any(|e| e.rank == 1 && e.kind == ns_telemetry::EventKind::Recv && e.peer == Some(0)));
        // phase labels on the timeline use the shared vocabulary
        assert!(trace.iter().any(|e| e.label == "x:flux"));
    }

    #[test]
    fn degenerate_pencil_reproduces_axial_simulation() {
        let mut axial = SimConfig::paper(Platform::lace560_allnode_s(), 8, Regime::NavierStokes);
        axial.sim_steps = 5;
        let mut pencil = axial.clone();
        pencil.pencil = Some((8, 1));
        assert_eq!(simulate(&axial), simulate(&pencil), "(P, 1) is the axial layout, not an approximation of it");
    }

    #[test]
    fn near_square_pencil_beats_slabs_on_comm() {
        // strong scaling at P=64 on a square grid: the near-square pencil
        // moves less halo data than either slab orientation
        let grid = Grid::new(512, 512, 50.0, 5.0);
        let run = |px: usize, pr: usize| {
            let mut c = SimConfig::pencil(Platform::cluster_fat_tree(), grid.clone(), px, pr, Regime::NavierStokes);
            c.sim_steps = 3;
            c.report_steps = 3;
            simulate(&c)
        };
        let radial = run(1, 64);
        let axial = run(64, 1);
        let square = run(8, 8);
        let sent = |r: &SimResult| r.bytes_sent.iter().sum::<u64>();
        assert!(sent(&square) < sent(&axial) && sent(&square) < sent(&radial), "pencil halo surface is smaller");
        let comm = |r: &SimResult| {
            r.wait.iter().sum::<f64>()
                + ["comm:send", "comm:recv", "comm:stall"].iter().filter_map(|l| r.phase_seconds.get(l)).sum::<f64>()
        };
        assert!(comm(&square) < comm(&radial), "{} vs {}", comm(&square), comm(&radial));
    }

    #[test]
    fn wait_plus_busy_bounds_total() {
        let r = quick(Platform::lace560_ethernet(), 8, Regime::Euler);
        for k in 0..8 {
            let sum = r.busy[k] + r.wait[k];
            assert!(sum <= r.total * 1.0001, "rank {k}: busy+wait {sum} vs total {}", r.total);
        }
    }
}
