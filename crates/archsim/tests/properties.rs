//! Property-based tests of the architecture simulator: cache invariants,
//! network causality and contention monotonicity, engine determinism.

use ns_archsim::network::{Network, SharedBus, Torus3d};
use ns_archsim::{simulate, CacheGeometry, CacheSim, CommMode, NetKind, Platform, SimConfig};
use ns_core::config::Regime;
use ns_core::workload::Decomposition;
use proptest::prelude::*;

proptest! {
    /// Immediately re-accessing any address is always a hit.
    #[test]
    fn cache_hit_after_access(addrs in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut c = CacheSim::new(CacheGeometry::new(4096, 64, 2));
        for &a in &addrs {
            c.access(a);
            prop_assert!(c.access(a), "address {a} must hit right after access");
        }
    }

    /// On any trace, a larger cache of the same shape never misses more
    /// (same line size and associativity, more sets: for LRU this inclusion
    /// holds per set-group and is a classic stack property).
    #[test]
    fn bigger_cache_never_worse_on_solver_like_traces(stride in 1u64..256, n in 50usize..400) {
        let trace: Vec<u64> = (0..n as u64).map(|k| k * stride * 8).collect();
        let run = |capacity: usize| {
            let mut c = CacheSim::new(CacheGeometry::new(capacity, 64, 4));
            // warm + measure two passes
            for &a in &trace { c.access(a); }
            c.reset_stats();
            for &a in &trace { c.access(a); }
            c.stats.misses
        };
        let small = run(8 * 1024);
        let large = run(64 * 1024);
        prop_assert!(large <= small, "64KB ({large}) vs 8KB ({small})");
    }

    /// Fully-associative (ways = sets-capacity) LRU never misses more than
    /// direct-mapped at the same capacity on repeated traces.
    #[test]
    fn associativity_never_hurts_on_cyclic_traces(period in 2usize..64) {
        let trace: Vec<u64> = (0..period as u64).map(|k| k * 4096).collect();
        let run = |ways: usize| {
            let mut c = CacheSim::new(CacheGeometry::new(16 * 1024, 64, ways));
            for _ in 0..3 {
                for &a in &trace { c.access(a); }
            }
            c.reset_stats();
            for &a in &trace { c.access(a); }
            c.stats.misses
        };
        prop_assert!(run(256) <= run(1));
    }

    /// Network causality: a transfer never completes before it starts, and
    /// a bus's deliveries are non-decreasing in injection order.
    #[test]
    fn shared_bus_causal_and_fifo(sizes in prop::collection::vec(1u64..20_000, 1..40)) {
        let mut bus = SharedBus::new("test", 10e6, 10e-6);
        let mut last = 0.0f64;
        let mut now = 0.0f64;
        for (k, &b) in sizes.iter().enumerate() {
            now += 0.0001 * (k % 3) as f64;
            let done = bus.transfer(now, 0, 1, b);
            prop_assert!(done > now, "delivery after injection");
            prop_assert!(done >= last, "FIFO deliveries");
            last = done;
        }
    }

    /// More traffic on the torus never makes an individual delivery earlier.
    #[test]
    fn torus_contention_monotone(loads in prop::collection::vec(100u64..50_000, 0..20)) {
        let probe = |preload: &[u64]| {
            let mut t = Torus3d::new(16);
            for &b in preload {
                t.transfer(0.0, 0, 1, b);
            }
            t.transfer(0.0, 0, 1, 6400)
        };
        let empty = probe(&[]);
        let loaded = probe(&loads);
        prop_assert!(loaded >= empty - 1e-12);
    }

    /// The SPMD engine is deterministic: identical configs produce
    /// identical results.
    #[test]
    fn simulation_is_deterministic(p in 1usize..9, viscous in prop::bool::ANY) {
        let regime = if viscous { Regime::NavierStokes } else { Regime::Euler };
        let mut cfg = SimConfig::paper(Platform::lace560_allnode_s(), p, regime);
        cfg.sim_steps = 3;
        let a = simulate(&cfg);
        let b = simulate(&cfg);
        prop_assert_eq!(a, b);
    }

    /// Simulated total time is monotone in the per-step workload: N-S never
    /// beats Euler on the same platform and processor count.
    #[test]
    fn ns_never_faster_than_euler(p in 1usize..16, which in 0usize..4) {
        let platform = [
            Platform::lace560_allnode_s(),
            Platform::lace590_allnode_f(),
            Platform::ibm_sp_mpl(),
            Platform::cray_t3d(),
        ][which];
        let mut cfg = SimConfig::paper(platform, p.max(1), Regime::Euler);
        cfg.sim_steps = 3;
        let euler = simulate(&cfg).total;
        cfg.regime = Regime::NavierStokes;
        let ns = simulate(&cfg).total;
        prop_assert!(ns > euler, "{}: N-S {ns} vs Euler {euler}", platform.name);
    }

    /// Busy + wait never exceeds a rank's completion time, and the reported
    /// total is the max over ranks, for any platform/P.
    #[test]
    fn accounting_identities(p in 1usize..16, which in 0usize..8) {
        let platform = Platform::all()[which];
        let mut cfg = SimConfig::paper(platform, p.max(1), Regime::NavierStokes);
        cfg.sim_steps = 2;
        let r = simulate(&cfg);
        for k in 0..r.busy.len() {
            prop_assert!(r.busy[k] >= 0.0 && r.wait[k] >= 0.0);
            prop_assert!(r.busy[k] + r.wait[k] <= r.total * (1.0 + 1e-9), "rank {k}");
        }
        let slowest = r.busy.iter().zip(&r.wait).map(|(b, w)| b + w).fold(0.0f64, f64::max);
        prop_assert!((slowest - r.total).abs() / r.total < 1e-9, "total is the slowest rank");
    }

    /// Start-up counts follow the protocol arithmetic for every P.
    #[test]
    fn startup_arithmetic(p in 2usize..16) {
        let mut cfg = SimConfig::paper(Platform::lace560_ethernet(), p, Regime::NavierStokes);
        cfg.sim_steps = cfg.report_steps.min(4);
        cfg.report_steps = cfg.sim_steps;
        let r = simulate(&cfg);
        for (k, &s) in r.startups.iter().enumerate() {
            let neighbors = usize::from(k > 0) + usize::from(k + 1 < p);
            prop_assert_eq!(s, (8 * neighbors) as u64 * cfg.sim_steps, "rank {}", k);
        }
    }

    /// The per-phase attribution is exhaustive: `phase_seconds` summed over
    /// labels equals busy time summed over ranks (blocking-send stalls are
    /// charged to `comm:stall` *and* to busy, so both sides agree) for random
    /// decompositions, comm modes and P ∈ {2, 4, 8, 16}.
    #[test]
    fn phase_seconds_sum_to_total_busy(
        pidx in 0usize..4,
        which in 0usize..8,
        viscous in prop::bool::ANY,
        radial in prop::bool::ANY,
        mode in 0usize..3,
    ) {
        let platform = Platform::all()[which];
        let p = [2usize, 4, 8, 16][pidx].min(platform.max_procs);
        let regime = if viscous { Regime::NavierStokes } else { Regime::Euler };
        let mut cfg = SimConfig::paper(platform, p, regime);
        cfg.sim_steps = 2;
        cfg.decomposition = if radial { Decomposition::Radial } else { Decomposition::Axial };
        cfg.comm = [CommMode::V5, CommMode::V6, CommMode::V7][mode];
        let r = simulate(&cfg);
        let busy: f64 = r.busy.iter().sum();
        let phases: f64 = r.phase_seconds.values().sum();
        prop_assert!(
            (phases - busy).abs() <= 1e-9 * busy.max(1.0),
            "phase sum {phases} vs busy sum {busy} on {}",
            platform.name
        );
    }

    /// V7 moves exactly the same volume as V5 with strictly more start-ups;
    /// V6 moves the same volume with the same start-ups.
    #[test]
    fn comm_mode_invariants(p in 2usize..12) {
        let mk = |mode: CommMode| {
            let mut cfg = SimConfig::paper(Platform::lace560_allnode_s(), p, Regime::NavierStokes);
            cfg.sim_steps = 2;
            cfg.report_steps = 2;
            cfg.comm = mode;
            simulate(&cfg)
        };
        let v5 = mk(CommMode::V5);
        let v6 = mk(CommMode::V6);
        let v7 = mk(CommMode::V7);
        for k in 0..p {
            prop_assert_eq!(v5.bytes_sent[k], v7.bytes_sent[k]);
            prop_assert_eq!(v5.bytes_sent[k], v6.bytes_sent[k]);
            prop_assert_eq!(v5.startups[k], v6.startups[k]);
            if k > 0 && k + 1 < p {
                prop_assert!(v7.startups[k] > v5.startups[k]);
            }
        }
    }
}

/// Non-proptest: the network constructors cover every kind and report
/// sensible names.
#[test]
fn all_network_kinds_construct() {
    for kind in [
        NetKind::Ethernet,
        NetKind::Fddi,
        NetKind::AllnodeS,
        NetKind::AllnodeF,
        NetKind::Atm,
        NetKind::SpSwitch,
        NetKind::Torus3d,
    ] {
        let mut net = kind.build(16);
        let done = net.transfer(0.0, 0, 1, 1000);
        assert!(done > 0.0, "{}", net.name());
        assert!(!net.name().is_empty());
    }
}
