//! Property-based tests for the numerics foundation.

use ns_numerics::extrap::{cubic_extrap_1, cubic_extrap_2, fill_left_ghosts, fill_right_ghosts};
use ns_numerics::gas::{GasModel, Primitive};
use ns_numerics::profile::ShearLayer;
use ns_numerics::stencil;
use ns_numerics::{norms, Array2};
use proptest::prelude::*;

fn finite_f64(lo: f64, hi: f64) -> impl Strategy<Value = f64> {
    prop::num::f64::NORMAL.prop_map(move |v| lo + (v.abs() % 1.0) * (hi - lo)).prop_filter("finite", |v| v.is_finite())
}

proptest! {
    /// Cubic extrapolation is exact on every cubic polynomial.
    #[test]
    fn extrapolation_exact_on_random_cubics(
        a in finite_f64(-3.0, 3.0),
        b in finite_f64(-3.0, 3.0),
        c in finite_f64(-3.0, 3.0),
        d in finite_f64(-3.0, 3.0),
    ) {
        let f = |x: f64| a * x * x * x + b * x * x + c * x + d;
        let v: Vec<f64> = (0..4).map(|k| f(k as f64)).collect();
        let scale = v.iter().fold(1.0_f64, |m, x| m.max(x.abs()));
        prop_assert!((cubic_extrap_1(v[0], v[1], v[2], v[3]) - f(4.0)).abs() < 1e-9 * scale.max(1.0));
        prop_assert!((cubic_extrap_2(v[0], v[1], v[2], v[3]) - f(5.0)).abs() < 1e-8 * scale.max(1.0));
    }

    /// Left and right ghost fills are mirror images of each other.
    #[test]
    fn ghost_fills_are_mirror_symmetric(vals in prop::collection::vec(finite_f64(-10.0, 10.0), 6..20)) {
        let mut right = [0.0; 2];
        fill_right_ghosts(&vals, &mut right);
        let reversed: Vec<f64> = vals.iter().rev().copied().collect();
        let mut left = [0.0; 2];
        fill_left_ghosts(&reversed, &mut left);
        prop_assert!((right[0] - left[0]).abs() < 1e-9);
        prop_assert!((right[1] - left[1]).abs() < 1e-9);
    }

    /// The averaged forward/backward 2-4 pair is exact on quadratics for any
    /// spacing and offset.
    #[test]
    fn averaged_24_pair_exact_on_quadratics(
        a in finite_f64(-2.0, 2.0),
        b in finite_f64(-2.0, 2.0),
        x in finite_f64(-5.0, 5.0),
        h in finite_f64(0.01, 1.0),
    ) {
        let f = |t: f64| a * t * t + b * t;
        let fwd = stencil::d_forward(f(x), f(x + h), f(x + 2.0 * h), h);
        let bwd = stencil::d_backward(f(x - 2.0 * h), f(x - h), f(x), h);
        let exact = 2.0 * a * x + b;
        prop_assert!((0.5 * (fwd + bwd) - exact).abs() < 1e-7 * (1.0 + exact.abs()));
    }

    /// Primitive <-> conservative conversion round-trips for any physically
    /// admissible state.
    #[test]
    fn gas_roundtrip(
        rho in finite_f64(0.05, 10.0),
        u in finite_f64(-3.0, 3.0),
        v in finite_f64(-3.0, 3.0),
        p in finite_f64(0.01, 10.0),
    ) {
        let gas = GasModel::air(1.2e6, 1.5);
        let w = Primitive { rho, u, v, p };
        let q = w.to_conservative(&gas);
        let w2 = Primitive::from_conservative(q, &gas);
        prop_assert!((w.rho - w2.rho).abs() < 1e-10 * rho);
        prop_assert!((w.u - w2.u).abs() < 1e-9 * (1.0 + u.abs()));
        prop_assert!((w.p - w2.p).abs() < 1e-9 * (1.0 + p));
        // total energy is positive and at least the kinetic energy
        prop_assert!(q[3] > 0.5 * rho * (u * u + v * v));
    }

    /// Sound speed scales as sqrt(p / rho).
    #[test]
    fn sound_speed_scaling(rho in finite_f64(0.1, 5.0), p in finite_f64(0.1, 5.0), k in finite_f64(1.1, 4.0)) {
        let gas = GasModel::air(1e6, 1.5);
        let c1 = gas.sound_speed(rho, p);
        let c2 = gas.sound_speed(rho, p * k);
        prop_assert!((c2 / c1 - k.sqrt()).abs() < 1e-9);
        let c3 = gas.sound_speed(rho * k, p);
        prop_assert!((c3 * k.sqrt() / c1 - 1.0).abs() < 1e-9);
    }

    /// The shear-layer profile is monotone in radius and bounded by its
    /// centerline and free-stream values.
    #[test]
    fn shear_profile_monotone_and_bounded(r1 in finite_f64(0.0, 4.9), dr in finite_f64(0.001, 1.0)) {
        let s = ShearLayer::paper();
        let r2 = r1 + dr;
        prop_assert!(s.u(r1) >= s.u(r2) - 1e-12, "u monotone decreasing");
        for r in [r1, r2] {
            prop_assert!(s.u(r) <= s.u_c + 1e-12 && s.u(r) >= s.u_inf - 1e-12);
            prop_assert!(s.rho(r) > 0.0);
            prop_assert!(s.t(r) > 0.0);
        }
    }

    /// Norms: l_inf >= l2 >= l1 for any field, and the l2 difference obeys
    /// the triangle inequality.
    #[test]
    fn norm_inequalities(vals in prop::collection::vec(finite_f64(-5.0, 5.0), 12)) {
        let a = Array2::from_fn(3, 4, |i, j| vals[i * 4 + j]);
        let l1 = norms::l1(&a);
        let l2 = norms::l2(&a);
        let li = norms::linf(&a);
        prop_assert!(li >= l2 - 1e-12);
        prop_assert!(l2 >= l1 - 1e-12);
    }

    #[test]
    fn l2_diff_triangle_inequality(
        xs in prop::collection::vec(finite_f64(-5.0, 5.0), 12),
        ys in prop::collection::vec(finite_f64(-5.0, 5.0), 12),
        zs in prop::collection::vec(finite_f64(-5.0, 5.0), 12),
    ) {
        let a = Array2::from_fn(3, 4, |i, j| xs[i * 4 + j]);
        let b = Array2::from_fn(3, 4, |i, j| ys[i * 4 + j]);
        let c = Array2::from_fn(3, 4, |i, j| zs[i * 4 + j]);
        let ab = norms::l2_diff(&a, &b);
        let bc = norms::l2_diff(&b, &c);
        let ac = norms::l2_diff(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-12);
    }

    /// Block/paste round-trips preserve the block for any in-bounds window.
    #[test]
    fn block_paste_roundtrip(i0 in 0usize..5, j0 in 0usize..5, ni in 1usize..4, nj in 1usize..4) {
        let src = Array2::from_fn(8, 8, |i, j| (i * 8 + j) as f64);
        let blk = src.block(i0, j0, ni, nj);
        let mut dst = Array2::zeros(8, 8);
        dst.paste(i0, j0, &blk);
        for i in 0..ni {
            for j in 0..nj {
                prop_assert_eq!(dst[(i0 + i, j0 + j)], src[(i0 + i, j0 + j)]);
            }
        }
    }

    /// Column gather/scatter round-trips on random data.
    #[test]
    fn gather_scatter_roundtrip(vals in prop::collection::vec(finite_f64(-9.0, 9.0), 6), col in 0usize..3) {
        let mut a = Array2::zeros(6, 3);
        a.scatter_col(col, &vals);
        let mut out = vec![0.0; 6];
        a.gather_col(col, &mut out);
        prop_assert_eq!(out, vals);
    }
}
