//! Structured grid for the axisymmetric `(x, r)` domain.
//!
//! The paper's computational domain is 50 jet radii in the axial (`x`)
//! direction and 5 radii in the radial (`r`) direction, discretized on a
//! `250 x 100` grid. The radial coordinate is staggered by half a cell
//! (`r_j = (j + 1/2) dr`) so no solution point sits on the `r = 0` axis
//! singularity; axis conditions are imposed through symmetry ghost rows.

use serde::{Deserialize, Serialize};

/// Uniform structured grid.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    /// Number of axial points.
    pub nx: usize,
    /// Number of radial points.
    pub nr: usize,
    /// Axial extent (in jet radii).
    pub lx: f64,
    /// Radial extent (in jet radii).
    pub lr: f64,
    /// Axial spacing.
    pub dx: f64,
    /// Radial spacing.
    pub dr: f64,
}

impl Grid {
    /// Build a grid with `nx x nr` points covering `lx x lr`.
    ///
    /// Axial points sit at `x_i = i * dx` with `dx = lx / (nx - 1)` (the
    /// first point is the inflow plane, the last the outflow plane); radial
    /// points are cell-centered, `r_j = (j + 1/2) * dr` with `dr = lr / nr`.
    pub fn new(nx: usize, nr: usize, lx: f64, lr: f64) -> Self {
        assert!(nx >= 5 && nr >= 5, "the 2-4 scheme needs at least 5 points per direction");
        assert!(lx > 0.0 && lr > 0.0);
        Self { nx, nr, lx, lr, dx: lx / (nx as f64 - 1.0), dr: lr / nr as f64 }
    }

    /// The paper's production grid: 250 x 100 over 50R x 5R.
    pub fn paper() -> Self {
        Self::new(250, 100, 50.0, 5.0)
    }

    /// A small grid of the same aspect ratio for tests and workload probing.
    pub fn small() -> Self {
        Self::new(50, 20, 50.0, 5.0)
    }

    /// Axial coordinate of point `i`.
    #[inline(always)]
    pub fn x(&self, i: usize) -> f64 {
        i as f64 * self.dx
    }

    /// Radial coordinate of point `j` (half-cell staggered off the axis).
    #[inline(always)]
    pub fn r(&self, j: usize) -> f64 {
        (j as f64 + 0.5) * self.dr
    }

    /// Radial coordinate for a signed index; negative indices mirror across
    /// the axis (`r_{-1} = -r_0`), which is what the symmetry ghost rows use.
    #[inline(always)]
    pub fn r_signed(&self, j: isize) -> f64 {
        (j as f64 + 0.5) * self.dr
    }

    /// Total number of solution points.
    #[inline(always)]
    pub fn num_points(&self) -> usize {
        self.nx * self.nr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_dimensions() {
        let g = Grid::paper();
        assert_eq!(g.nx, 250);
        assert_eq!(g.nr, 100);
        assert!((g.dx - 50.0 / 249.0).abs() < 1e-12);
        assert!((g.dr - 0.05).abs() < 1e-12);
        assert_eq!(g.num_points(), 25_000);
    }

    #[test]
    fn staggering_avoids_axis() {
        let g = Grid::paper();
        assert!(g.r(0) > 0.0);
        assert!((g.r(0) - 0.025).abs() < 1e-12);
        // last point is half a cell inside the far-field boundary
        assert!(g.r(g.nr - 1) < g.lr);
    }

    #[test]
    fn signed_radius_mirrors_across_axis() {
        let g = Grid::paper();
        assert!((g.r_signed(-1) + g.r(0)).abs() < 1e-12);
        assert!((g.r_signed(-2) + g.r(1)).abs() < 1e-12);
    }

    #[test]
    fn endpoints() {
        let g = Grid::new(11, 10, 10.0, 2.0);
        assert_eq!(g.x(0), 0.0);
        assert!((g.x(10) - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn rejects_tiny_grids() {
        let _ = Grid::new(4, 10, 1.0, 1.0);
    }
}
