#![warn(missing_docs)]

//! # ns-numerics
//!
//! Foundation numerics for the jetns workspace: dense 2-D arrays, structured
//! grids, perfect-gas thermodynamics, shear-layer profiles, one-sided /
//! central difference stencils and cubic boundary extrapolation.
//!
//! Everything here is deliberately dependency-light and allocation-aware:
//! the hot solver loops in `ns-core` are built on [`Array2`], which is a
//! single contiguous buffer with explicit row-major `(i, j)` indexing so the
//! cache behaviour of every sweep is predictable (see the single-processor
//! optimization study, Figure 2 of the paper).

pub mod array;
pub mod extrap;
pub mod gas;
pub mod grid;
pub mod norms;
pub mod profile;
pub mod stencil;

pub use array::Array2;
pub use gas::GasModel;
pub use grid::Grid;
