//! Cubic extrapolation to artificial points outside the domain.
//!
//! "In order to advance the scheme near boundaries the fluxes are
//! extrapolated outside the domain to artificial points using a cubic
//! extrapolation" (paper, Section 3). A cubic through the last four interior
//! values, evaluated one and two spacings beyond the boundary, gives the
//! classic coefficients below.

/// Cubic extrapolation one spacing past the last point.
///
/// Given equally spaced values `f0..f3` with `f3` the boundary-most point,
/// returns the cubic-extrapolated value at the first artificial point.
#[inline(always)]
pub fn cubic_extrap_1(f0: f64, f1: f64, f2: f64, f3: f64) -> f64 {
    // p(4) for the cubic interpolating p(0..3) = f0..f3
    4.0 * f3 - 6.0 * f2 + 4.0 * f1 - f0
}

/// Cubic extrapolation two spacings past the last point.
#[inline(always)]
pub fn cubic_extrap_2(f0: f64, f1: f64, f2: f64, f3: f64) -> f64 {
    // p(5) for the cubic interpolating p(0..3) = f0..f3
    10.0 * f3 - 20.0 * f2 + 15.0 * f1 - 4.0 * f0
}

/// Fill `ghost[0]` (nearest) and `ghost[1]` (farthest) past the *right* end
/// of `interior` using cubic extrapolation of its last four values.
pub fn fill_right_ghosts(interior: &[f64], ghost: &mut [f64; 2]) {
    let n = interior.len();
    assert!(n >= 4, "cubic extrapolation needs 4 interior points");
    let (f0, f1, f2, f3) = (interior[n - 4], interior[n - 3], interior[n - 2], interior[n - 1]);
    ghost[0] = cubic_extrap_1(f0, f1, f2, f3);
    ghost[1] = cubic_extrap_2(f0, f1, f2, f3);
}

/// Fill `ghost[0]` (nearest) and `ghost[1]` (farthest) past the *left* end
/// of `interior` using cubic extrapolation of its first four values.
pub fn fill_left_ghosts(interior: &[f64], ghost: &mut [f64; 2]) {
    let n = interior.len();
    assert!(n >= 4, "cubic extrapolation needs 4 interior points");
    // mirror the right-end formulas
    let (f0, f1, f2, f3) = (interior[3], interior[2], interior[1], interior[0]);
    ghost[0] = cubic_extrap_1(f0, f1, f2, f3);
    ghost[1] = cubic_extrap_2(f0, f1, f2, f3);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_on_cubics() {
        let f = |x: f64| 2.0 * x * x * x - x * x + 3.0 * x - 5.0;
        let vals: Vec<f64> = (0..4).map(|k| f(k as f64)).collect();
        let e1 = cubic_extrap_1(vals[0], vals[1], vals[2], vals[3]);
        let e2 = cubic_extrap_2(vals[0], vals[1], vals[2], vals[3]);
        assert!((e1 - f(4.0)).abs() < 1e-10);
        assert!((e2 - f(5.0)).abs() < 1e-10);
    }

    #[test]
    fn exact_on_constants_and_linears() {
        let c1 = cubic_extrap_1(7.0, 7.0, 7.0, 7.0);
        let c2 = cubic_extrap_2(7.0, 7.0, 7.0, 7.0);
        assert_eq!(c1, 7.0);
        assert_eq!(c2, 7.0);
        // linear f(x) = 2x
        assert!((cubic_extrap_1(0.0, 2.0, 4.0, 6.0) - 8.0).abs() < 1e-12);
        assert!((cubic_extrap_2(0.0, 2.0, 4.0, 6.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn right_ghost_helper_matches_direct_formula() {
        let f = |x: f64| x * x * x;
        let interior: Vec<f64> = (0..8).map(|k| f(k as f64)).collect();
        let mut g = [0.0; 2];
        fill_right_ghosts(&interior, &mut g);
        assert!((g[0] - f(8.0)).abs() < 1e-9);
        assert!((g[1] - f(9.0)).abs() < 1e-9);
    }

    #[test]
    fn left_ghost_helper_extrapolates_backwards() {
        let f = |x: f64| x * x * x - 2.0 * x;
        let interior: Vec<f64> = (0..8).map(|k| f(k as f64)).collect();
        let mut g = [0.0; 2];
        fill_left_ghosts(&interior, &mut g);
        assert!((g[0] - f(-1.0)).abs() < 1e-9);
        assert!((g[1] - f(-2.0)).abs() < 1e-9);
    }
}
