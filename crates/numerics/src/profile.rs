//! Jet mean-flow profiles.
//!
//! The paper's inflow (Section 3) is a tanh shear layer
//!
//! ```text
//! U(r)  = U_inf + (U_c - U_inf) g(r)
//! T(r)  = T_inf + (T_c - T_inf) g(r) + (gamma-1)/2 * M_c^2 * (1 - g) g
//! g(r)  = 1/2 [1 + tanh((R - r) / (2 theta))]
//! ```
//!
//! where `theta` is the momentum thickness, subscript `c` the centerline and
//! `inf` the free stream. The temperature relation is the Crocco–Busemann
//! profile. The radial velocity is zero at inflow and the static pressure is
//! constant.

use serde::{Deserialize, Serialize};

/// Tanh shear-layer profile parameters (nondimensional; jet radius = 1).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ShearLayer {
    /// Centerline axial velocity.
    pub u_c: f64,
    /// Free-stream (coflow) axial velocity.
    pub u_inf: f64,
    /// Centerline temperature.
    pub t_c: f64,
    /// Free-stream temperature.
    pub t_inf: f64,
    /// Momentum thickness of the shear layer.
    pub theta: f64,
    /// Centerline Mach number (enters the Crocco–Busemann term).
    pub mach_c: f64,
    /// Ratio of specific heats.
    pub gamma: f64,
}

impl ShearLayer {
    /// The paper's configuration: `M_c = 1.5`, `U_inf / U_c = 1/4`,
    /// `T_inf / T_c = 1/2`, `theta = R/8` (see DESIGN.md Section 2 for the
    /// OCR-recovered parameter choices).
    pub fn paper() -> Self {
        let u_c = 1.5; // M_c * c_c with c_c = 1
        Self { u_c, u_inf: 0.25 * u_c, t_c: 1.0, t_inf: 0.5, theta: 0.125, mach_c: 1.5, gamma: 1.4 }
    }

    /// Shape function `g(r) = 1/2 [1 + tanh((1 - r) / (2 theta))]`.
    #[inline(always)]
    pub fn g(&self, r: f64) -> f64 {
        0.5 * (1.0 + ((1.0 - r) / (2.0 * self.theta)).tanh())
    }

    /// Mean axial velocity at radius `r`.
    #[inline(always)]
    pub fn u(&self, r: f64) -> f64 {
        self.u_inf + (self.u_c - self.u_inf) * self.g(r)
    }

    /// Mean temperature at radius `r` (Crocco–Busemann).
    #[inline(always)]
    pub fn t(&self, r: f64) -> f64 {
        let g = self.g(r);
        self.t_inf + (self.t_c - self.t_inf) * g + 0.5 * (self.gamma - 1.0) * self.mach_c * self.mach_c * (1.0 - g) * g
    }

    /// Mean density at radius `r`, from constant static pressure
    /// `p = rho_c R_gas T_c` and the perfect-gas law.
    #[inline(always)]
    pub fn rho(&self, r: f64) -> f64 {
        // rho(r) T(r) = rho_c T_c = 1 * t_c
        self.t_c / self.t(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_function_limits() {
        let s = ShearLayer::paper();
        assert!((s.g(0.0) - 1.0).abs() < 1e-3, "g -> 1 on the axis");
        assert!(s.g(5.0).abs() < 1e-6, "g -> 0 in the free stream");
        assert!((s.g(1.0) - 0.5).abs() < 1e-12, "g = 1/2 at the lip line");
    }

    #[test]
    fn velocity_limits() {
        let s = ShearLayer::paper();
        assert!((s.u(0.0) - s.u_c).abs() < 1e-2);
        assert!((s.u(5.0) - s.u_inf).abs() < 1e-6);
        // monotone decreasing across the shear layer
        assert!(s.u(0.5) > s.u(1.0));
        assert!(s.u(1.0) > s.u(1.5));
    }

    #[test]
    fn crocco_busemann_exceeds_linear_mix_inside_layer() {
        let s = ShearLayer::paper();
        let g = s.g(1.0);
        let linear = s.t_inf + (s.t_c - s.t_inf) * g;
        assert!(s.t(1.0) > linear, "friction heating raises T in the layer");
    }

    #[test]
    fn density_balances_pressure() {
        let s = ShearLayer::paper();
        for &r in &[0.0, 0.5, 1.0, 2.0, 5.0] {
            let p_over_rgas = s.rho(r) * s.t(r);
            assert!((p_over_rgas - 1.0).abs() < 1e-12, "constant static pressure at r={r}");
        }
    }

    #[test]
    fn centerline_density_is_unity() {
        let s = ShearLayer::paper();
        assert!((s.rho(0.0) - 1.0).abs() < 1e-2);
    }
}
