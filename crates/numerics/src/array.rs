//! Contiguous 2-D array with row-major layout.
//!
//! The solver indexes fields as `(i, j)` where `i` is the axial direction and
//! `j` the radial direction. Storage is row-major in `j`: element `(i, j)`
//! lives at `i * nj + j`, so radial sweeps (`j` innermost) are stride-1 and
//! axial sweeps (`i` innermost) have stride `nj`. The paper's Version 1 vs
//! Version 3 "loop interchange" study (Figure 2) is reproduced by running the
//! same kernels with the two loop orders over this layout.

use serde::{Deserialize, Serialize};
use std::ops::{Index, IndexMut};

/// Dense row-major 2-D array of `f64`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Array2 {
    ni: usize,
    nj: usize,
    data: Vec<f64>,
}

impl Array2 {
    /// Create an `ni x nj` array filled with zeros.
    pub fn zeros(ni: usize, nj: usize) -> Self {
        Self { ni, nj, data: vec![0.0; ni * nj] }
    }

    /// Create an `ni x nj` array filled with `v`.
    pub fn filled(ni: usize, nj: usize, v: f64) -> Self {
        Self { ni, nj, data: vec![v; ni * nj] }
    }

    /// Create from a generator `f(i, j)`.
    pub fn from_fn(ni: usize, nj: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut a = Self::zeros(ni, nj);
        for i in 0..ni {
            for j in 0..nj {
                a[(i, j)] = f(i, j);
            }
        }
        a
    }

    /// Number of rows (axial extent).
    #[inline(always)]
    pub fn ni(&self) -> usize {
        self.ni
    }

    /// Number of columns (radial extent).
    #[inline(always)]
    pub fn nj(&self) -> usize {
        self.nj
    }

    /// Total number of elements.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the array has no elements.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat index of `(i, j)`.
    #[inline(always)]
    pub fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.ni && j < self.nj, "index ({i},{j}) out of bounds ({}x{})", self.ni, self.nj);
        i * self.nj + j
    }

    /// Unchecked read used by the hot kernels (bounds enforced in debug builds).
    #[inline(always)]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        let k = self.idx(i, j);
        debug_assert!(k < self.data.len());
        // SAFETY: `idx` asserts bounds in debug; release callers stay in-grid
        // by construction of the sweep ranges.
        unsafe { *self.data.get_unchecked(k) }
    }

    /// Unchecked write counterpart of [`Array2::at`].
    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        let k = self.idx(i, j);
        debug_assert!(k < self.data.len());
        // SAFETY: see `at`.
        unsafe { *self.data.get_unchecked_mut(k) = v }
    }

    /// Borrow the underlying buffer.
    #[inline(always)]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying buffer.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` (contiguous, length `nj`).
    #[inline(always)]
    pub fn row(&self, i: usize) -> &[f64] {
        let s = i * self.nj;
        &self.data[s..s + self.nj]
    }

    /// Mutably borrow row `i`.
    #[inline(always)]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        let s = i * self.nj;
        &mut self.data[s..s + self.nj]
    }

    /// Copy column `j` into `out` (strided gather; `out.len() == ni`).
    pub fn gather_col(&self, j: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.ni);
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.at(i, j);
        }
    }

    /// Scatter `src` into column `j` (`src.len() == ni`).
    pub fn scatter_col(&mut self, j: usize, src: &[f64]) {
        assert_eq!(src.len(), self.ni);
        for (i, &v) in src.iter().enumerate() {
            self.set(i, j, v);
        }
    }

    /// Fill the whole array with `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Copy the contents of `other` (same shape) into `self`.
    pub fn copy_from(&mut self, other: &Array2) {
        assert_eq!((self.ni, self.nj), (other.ni, other.nj), "shape mismatch");
        self.data.copy_from_slice(&other.data);
    }

    /// Elementwise maximum absolute value.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Iterate `(i, j, value)` over all elements in storage order.
    pub fn indexed_iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let nj = self.nj;
        self.data.iter().enumerate().map(move |(k, &v)| (k / nj, k % nj, v))
    }

    /// Extract the sub-block `i0..i0+ni`, `j0..j0+nj` as a new array.
    pub fn block(&self, i0: usize, j0: usize, ni: usize, nj: usize) -> Array2 {
        assert!(i0 + ni <= self.ni && j0 + nj <= self.nj, "block out of bounds");
        Array2::from_fn(ni, nj, |i, j| self.at(i0 + i, j0 + j))
    }

    /// Paste `src` into this array with its `(0,0)` at `(i0, j0)`.
    pub fn paste(&mut self, i0: usize, j0: usize, src: &Array2) {
        assert!(i0 + src.ni <= self.ni && j0 + src.nj <= self.nj, "paste out of bounds");
        for i in 0..src.ni {
            let d = (i0 + i) * self.nj + j0;
            let s = i * src.nj;
            self.data[d..d + src.nj].copy_from_slice(&src.data[s..s + src.nj]);
        }
    }
}

impl Index<(usize, usize)> for Array2 {
    type Output = f64;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[self.idx(i, j)]
    }
}

impl IndexMut<(usize, usize)> for Array2 {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        let k = self.idx(i, j);
        &mut self.data[k]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_shape_and_is_zero() {
        let a = Array2::zeros(3, 5);
        assert_eq!(a.ni(), 3);
        assert_eq!(a.nj(), 5);
        assert_eq!(a.len(), 15);
        assert!(a.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn row_major_layout() {
        let a = Array2::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(a.as_slice(), &[0., 1., 2., 10., 11., 12.]);
        assert_eq!(a[(1, 2)], 12.0);
        assert_eq!(a.row(1), &[10., 11., 12.]);
    }

    #[test]
    fn gather_scatter_col_roundtrip() {
        let mut a = Array2::from_fn(4, 3, |i, j| (i + j) as f64);
        let mut col = vec![0.0; 4];
        a.gather_col(2, &mut col);
        assert_eq!(col, vec![2., 3., 4., 5.]);
        let new = vec![9., 8., 7., 6.];
        a.scatter_col(2, &new);
        a.gather_col(2, &mut col);
        assert_eq!(col, new);
    }

    #[test]
    fn block_and_paste_roundtrip() {
        let a = Array2::from_fn(5, 6, |i, j| (i * 6 + j) as f64);
        let b = a.block(1, 2, 3, 3);
        assert_eq!(b[(0, 0)], a[(1, 2)]);
        assert_eq!(b[(2, 2)], a[(3, 4)]);
        let mut c = Array2::zeros(5, 6);
        c.paste(1, 2, &b);
        assert_eq!(c[(1, 2)], a[(1, 2)]);
        assert_eq!(c[(3, 4)], a[(3, 4)]);
        assert_eq!(c[(0, 0)], 0.0);
    }

    #[test]
    fn max_abs_and_finiteness() {
        let mut a = Array2::from_fn(2, 2, |i, j| -((i + j) as f64));
        assert_eq!(a.max_abs(), 2.0);
        assert!(a.all_finite());
        a[(0, 1)] = f64::NAN;
        assert!(!a.all_finite());
    }

    #[test]
    #[should_panic]
    fn copy_from_rejects_shape_mismatch() {
        let mut a = Array2::zeros(2, 2);
        let b = Array2::zeros(2, 3);
        a.copy_from(&b);
    }

    #[test]
    fn indexed_iter_is_storage_order() {
        let a = Array2::from_fn(2, 2, |i, j| (i * 2 + j) as f64);
        let v: Vec<_> = a.indexed_iter().collect();
        assert_eq!(v, vec![(0, 0, 0.0), (0, 1, 1.0), (1, 0, 2.0), (1, 1, 3.0)]);
    }
}
