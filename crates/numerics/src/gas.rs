//! Perfect-gas thermodynamics and transport properties.
//!
//! Nondimensionalization: lengths by the jet radius `R`, density by the jet
//! centerline density `rho_c`, temperature by the centerline temperature
//! `T_c`, and velocity by the centerline sound speed `c_c`. With the gas
//! constant chosen as `R_gas = 1/gamma`, the centerline sound speed is
//! exactly 1 and the centerline axial velocity is the jet Mach number `M_c`.

use serde::{Deserialize, Serialize};

/// Perfect-gas model with constant transport coefficients.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GasModel {
    /// Ratio of specific heats.
    pub gamma: f64,
    /// Nondimensional gas constant (`p = rho * r_gas * t`).
    pub r_gas: f64,
    /// Dynamic viscosity (constant; set from the Reynolds number).
    pub mu: f64,
    /// Thermal conductivity (set from `mu` via the Prandtl number).
    pub kappa: f64,
    /// Prandtl number used to derive `kappa`.
    pub prandtl: f64,
}

impl GasModel {
    /// Air-like gas (`gamma = 1.4`, `Pr = 0.72`) with viscosity chosen so the
    /// Reynolds number based on jet *diameter* and centerline conditions is
    /// `re_d` when the centerline velocity is `u_c` (all nondimensional).
    pub fn air(re_d: f64, u_c: f64) -> Self {
        let gamma = 1.4;
        let r_gas = 1.0 / gamma;
        let prandtl = 0.72;
        // Re_D = rho_c * u_c * D / mu with rho_c = 1, D = 2R = 2.
        let mu = u_c * 2.0 / re_d;
        let cp = gamma * r_gas / (gamma - 1.0);
        let kappa = mu * cp / prandtl;
        Self { gamma, r_gas, mu, kappa, prandtl }
    }

    /// Inviscid variant: identical thermodynamics, zero transport
    /// coefficients. This is exactly the paper's Euler mode ("one obtains the
    /// Euler equations ... by setting kappa and all tau_ij equal to zero").
    pub fn inviscid(&self) -> Self {
        Self { mu: 0.0, kappa: 0.0, ..*self }
    }

    /// True when the transport coefficients are all zero.
    #[inline(always)]
    pub fn is_inviscid(&self) -> bool {
        self.mu == 0.0 && self.kappa == 0.0
    }

    /// Pressure from density and temperature.
    #[inline(always)]
    pub fn pressure(&self, rho: f64, t: f64) -> f64 {
        rho * self.r_gas * t
    }

    /// Temperature from density and pressure.
    #[inline(always)]
    pub fn temperature(&self, rho: f64, p: f64) -> f64 {
        p / (rho * self.r_gas)
    }

    /// Speed of sound.
    #[inline(always)]
    pub fn sound_speed(&self, rho: f64, p: f64) -> f64 {
        (self.gamma * p / rho).sqrt()
    }

    /// Total energy per unit volume from primitives.
    #[inline(always)]
    pub fn total_energy(&self, rho: f64, u: f64, v: f64, p: f64) -> f64 {
        p / (self.gamma - 1.0) + 0.5 * rho * (u * u + v * v)
    }

    /// Pressure from conservative variables.
    #[inline(always)]
    pub fn pressure_from_conservative(&self, rho: f64, mx: f64, mr: f64, e: f64) -> f64 {
        (self.gamma - 1.0) * (e - 0.5 * (mx * mx + mr * mr) / rho)
    }

    /// Specific total enthalpy `H = (E + p) / rho`.
    #[inline(always)]
    pub fn total_enthalpy(&self, rho: f64, e: f64, p: f64) -> f64 {
        (e + p) / rho
    }

    /// Specific heat at constant pressure.
    #[inline(always)]
    pub fn cp(&self) -> f64 {
        self.gamma * self.r_gas / (self.gamma - 1.0)
    }
}

/// Primitive state at a point.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Primitive {
    /// Density.
    pub rho: f64,
    /// Axial velocity.
    pub u: f64,
    /// Radial velocity.
    pub v: f64,
    /// Pressure.
    pub p: f64,
}

impl Primitive {
    /// Convert to the conservative vector `(rho, rho u, rho v, E)`.
    #[inline(always)]
    pub fn to_conservative(&self, gas: &GasModel) -> [f64; 4] {
        [self.rho, self.rho * self.u, self.rho * self.v, gas.total_energy(self.rho, self.u, self.v, self.p)]
    }

    /// Convert from a conservative vector.
    #[inline(always)]
    pub fn from_conservative(q: [f64; 4], gas: &GasModel) -> Self {
        let rho = q[0];
        let u = q[1] / rho;
        let v = q[2] / rho;
        let p = gas.pressure_from_conservative(rho, q[1], q[2], q[3]);
        Self { rho, u, v, p }
    }

    /// Local temperature.
    #[inline(always)]
    pub fn temperature(&self, gas: &GasModel) -> f64 {
        gas.temperature(self.rho, self.p)
    }

    /// Local sound speed.
    #[inline(always)]
    pub fn sound_speed(&self, gas: &GasModel) -> f64 {
        gas.sound_speed(self.rho, self.p)
    }

    /// Local Mach number.
    #[inline(always)]
    pub fn mach(&self, gas: &GasModel) -> f64 {
        (self.u * self.u + self.v * self.v).sqrt() / self.sound_speed(gas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gas() -> GasModel {
        GasModel::air(1.2e6, 1.5)
    }

    #[test]
    fn centerline_sound_speed_is_unity() {
        let g = gas();
        // rho_c = 1, T_c = 1 => p = r_gas, c = sqrt(gamma * r_gas) = 1.
        let p = g.pressure(1.0, 1.0);
        assert!((g.sound_speed(1.0, p) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn reynolds_number_recovered() {
        let g = gas();
        // Re = rho u D / mu = 1 * 1.5 * 2 / mu
        assert!((1.5 * 2.0 / g.mu - 1.2e6).abs() / 1.2e6 < 1e-12);
    }

    #[test]
    fn inviscid_zeroes_transport_only() {
        let g = gas();
        let e = g.inviscid();
        assert!(e.is_inviscid());
        assert_eq!(e.gamma, g.gamma);
        assert_eq!(e.r_gas, g.r_gas);
        assert!(!g.is_inviscid());
    }

    #[test]
    fn primitive_conservative_roundtrip() {
        let g = gas();
        let w = Primitive { rho: 1.7, u: 0.9, v: -0.2, p: 0.55 };
        let q = w.to_conservative(&g);
        let w2 = Primitive::from_conservative(q, &g);
        assert!((w.rho - w2.rho).abs() < 1e-13);
        assert!((w.u - w2.u).abs() < 1e-13);
        assert!((w.v - w2.v).abs() < 1e-13);
        assert!((w.p - w2.p).abs() < 1e-13);
    }

    #[test]
    fn enthalpy_consistent_with_energy() {
        let g = gas();
        let w = Primitive { rho: 2.0, u: 1.0, v: 0.5, p: 0.8 };
        let q = w.to_conservative(&g);
        let h = g.total_enthalpy(q[0], q[3], w.p);
        // H = e + p/rho where e is specific total energy
        assert!((h - (q[3] / q[0] + w.p / w.rho)).abs() < 1e-13);
    }

    #[test]
    fn mach_number_of_centerline_state() {
        let g = gas();
        let p = g.pressure(1.0, 1.0);
        let w = Primitive { rho: 1.0, u: 1.5, v: 0.0, p };
        assert!((w.mach(&g) - 1.5).abs() < 1e-12);
    }
}
