//! One-sided and central difference stencils used by the 2-4 MacCormack
//! scheme and by the viscous-stress evaluation.
//!
//! The Gottlieb–Turkel "2-4" operators use the second-order one-sided
//! differences
//!
//! ```text
//! forward:  D+ f_i = [ 7 (f_{i+1} - f_i) - (f_{i+2} - f_{i+1}) ] / (6 h)
//! backward: D- f_i = [ 7 (f_i - f_{i-1}) - (f_{i-1} - f_{i-2}) ] / (6 h)
//! ```
//!
//! which become fourth-order accurate in space when the predictor/corrector
//! pairs are alternated (Gottlieb & Turkel 1976).

/// Forward one-sided 2-4 difference: needs `f_i, f_{i+1}, f_{i+2}`.
#[inline(always)]
pub fn d_forward(fi: f64, fip1: f64, fip2: f64, h: f64) -> f64 {
    (7.0 * (fip1 - fi) - (fip2 - fip1)) / (6.0 * h)
}

/// Backward one-sided 2-4 difference: needs `f_{i-2}, f_{i-1}, f_i`.
#[inline(always)]
pub fn d_backward(fim2: f64, fim1: f64, fi: f64, h: f64) -> f64 {
    (7.0 * (fi - fim1) - (fim1 - fim2)) / (6.0 * h)
}

/// Second-order central difference.
#[inline(always)]
pub fn d_central(fm1: f64, fp1: f64, h: f64) -> f64 {
    (fp1 - fm1) / (2.0 * h)
}

/// Second-order one-sided difference at a left boundary (`f_0, f_1, f_2`).
#[inline(always)]
pub fn d_one_sided_left(f0: f64, f1: f64, f2: f64, h: f64) -> f64 {
    (-3.0 * f0 + 4.0 * f1 - f2) / (2.0 * h)
}

/// Second-order one-sided difference at a right boundary (`f_{n-3..n-1}`).
#[inline(always)]
pub fn d_one_sided_right(fm2: f64, fm1: f64, f0: f64, h: f64) -> f64 {
    (3.0 * f0 - 4.0 * fm1 + fm2) / (2.0 * h)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The central and classic one-sided stencils are exact on quadratics.
    /// The 2-4 one-sided pair is exact only on linears individually — each
    /// carries a `+-h f''/3` bias by design — but their *average* is exact on
    /// quadratics (the biases cancel; that is the point of alternation).
    #[test]
    fn exact_on_quadratics() {
        let f = |x: f64| 3.0 * x * x - 2.0 * x + 1.0;
        let df = |x: f64| 6.0 * x - 2.0;
        let h = 0.1;
        let x = 0.7;
        let tol = 1e-12;
        assert!((d_central(f(x - h), f(x + h), h) - df(x)).abs() < tol);
        assert!((d_one_sided_left(f(x), f(x + h), f(x + 2.0 * h), h) - df(x)).abs() < tol);
        assert!((d_one_sided_right(f(x - 2.0 * h), f(x - h), f(x), h) - df(x)).abs() < tol);
        let fwd = d_forward(f(x), f(x + h), f(x + 2.0 * h), h);
        let bwd = d_backward(f(x - 2.0 * h), f(x - h), f(x), h);
        // individual bias is +-h f''/3 = +-0.2 here
        assert!((fwd - df(x) - h * 6.0 / 3.0).abs() < tol);
        assert!((bwd - df(x) + h * 6.0 / 3.0).abs() < tol);
        assert!((0.5 * (fwd + bwd) - df(x)).abs() < tol);
    }

    /// 2-4 one-sided differences are exact on linear functions.
    #[test]
    fn one_sided_24_exact_on_linears() {
        let f = |x: f64| 4.0 * x - 7.0;
        let h = 0.3;
        let x = 1.1;
        assert!((d_forward(f(x), f(x + h), f(x + 2.0 * h), h) - 4.0).abs() < 1e-12);
        assert!((d_backward(f(x - 2.0 * h), f(x - h), f(x), h) - 4.0).abs() < 1e-12);
    }

    /// The averaged forward/backward 2-4 pair must be fourth-order: the
    /// leading error terms cancel, so on a quartic the average is much more
    /// accurate than either one-sided difference alone.
    #[test]
    fn alternation_cancels_third_order_error() {
        let f = |x: f64| x.powi(4);
        let df = |x: f64| 4.0 * x.powi(3);
        let h = 0.05;
        let x = 1.0;
        let fwd = d_forward(f(x), f(x + h), f(x + 2.0 * h), h);
        let bwd = d_backward(f(x - 2.0 * h), f(x - h), f(x), h);
        let avg = 0.5 * (fwd + bwd);
        let err_fwd = (fwd - df(x)).abs();
        let err_avg = (avg - df(x)).abs();
        assert!(err_avg < err_fwd / 50.0, "avg err {err_avg} vs fwd err {err_fwd}");
    }

    /// Convergence-rate check: halving h must reduce the averaged error ~16x.
    #[test]
    fn averaged_pair_is_fourth_order() {
        let f = |x: f64| (1.3 * x).sin();
        let df = |x: f64| 1.3 * (1.3 * x).cos();
        let x = 0.4;
        let err = |h: f64| {
            let fwd = d_forward(f(x), f(x + h), f(x + 2.0 * h), h);
            let bwd = d_backward(f(x - 2.0 * h), f(x - h), f(x), h);
            (0.5 * (fwd + bwd) - df(x)).abs()
        };
        let e1 = err(0.02);
        let e2 = err(0.01);
        let rate = (e1 / e2).log2();
        assert!(rate > 3.7, "observed rate {rate}");
    }
}
