//! Discrete norms and field comparisons, used by the verification tests
//! (order-of-accuracy studies, serial-vs-parallel agreement).

use crate::array::Array2;

/// Discrete L1 norm (mean absolute value).
pub fn l1(a: &Array2) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    a.as_slice().iter().map(|v| v.abs()).sum::<f64>() / a.len() as f64
}

/// Discrete L2 norm (root mean square).
pub fn l2(a: &Array2) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    (a.as_slice().iter().map(|v| v * v).sum::<f64>() / a.len() as f64).sqrt()
}

/// L-infinity norm (max absolute value).
pub fn linf(a: &Array2) -> f64 {
    a.max_abs()
}

/// L2 norm of the difference of two same-shaped fields.
pub fn l2_diff(a: &Array2, b: &Array2) -> f64 {
    assert_eq!((a.ni(), a.nj()), (b.ni(), b.nj()), "shape mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let s: f64 = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum();
    (s / a.len() as f64).sqrt()
}

/// Max absolute difference of two same-shaped fields.
pub fn linf_diff(a: &Array2, b: &Array2) -> f64 {
    assert_eq!((a.ni(), a.nj()), (b.ni(), b.nj()), "shape mismatch");
    a.as_slice().iter().zip(b.as_slice()).fold(0.0_f64, |m, (x, y)| m.max((x - y).abs()))
}

/// Observed order of accuracy from two errors at resolutions `h` and `h/2`.
pub fn observed_order(err_coarse: f64, err_fine: f64) -> f64 {
    (err_coarse / err_fine).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_of_simple_field() {
        let a = Array2::from_fn(2, 2, |i, j| if (i, j) == (1, 1) { -2.0 } else { 0.0 });
        assert!((l1(&a) - 0.5).abs() < 1e-15);
        assert!((l2(&a) - 1.0).abs() < 1e-15);
        assert_eq!(linf(&a), 2.0);
    }

    #[test]
    fn diff_norms_are_zero_for_identical() {
        let a = Array2::from_fn(3, 3, |i, j| (i * j) as f64);
        assert_eq!(l2_diff(&a, &a), 0.0);
        assert_eq!(linf_diff(&a, &a), 0.0);
    }

    #[test]
    fn diff_norms_detect_single_perturbation() {
        let a = Array2::zeros(3, 3);
        let mut b = Array2::zeros(3, 3);
        b[(2, 1)] = 3.0;
        assert!((l2_diff(&a, &b) - 1.0).abs() < 1e-15);
        assert_eq!(linf_diff(&a, &b), 3.0);
    }

    #[test]
    fn observed_order_recovers_power_law() {
        // err ~ C h^4 => halving h divides err by 16
        assert!((observed_order(16.0, 1.0) - 4.0).abs() < 1e-12);
        assert!((observed_order(4.0, 1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_field_norms() {
        let a = Array2::zeros(0, 5);
        assert_eq!(l1(&a), 0.0);
        assert_eq!(l2(&a), 0.0);
    }
}
