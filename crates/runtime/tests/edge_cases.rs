//! Runtime edge cases: degenerate single-rank universes, grid splits that
//! do not divide evenly, zero-step runs, and collective corner cases.
//! These are the boundaries of the decomposition and protocol machinery
//! that the main oracle matrix (which runs "nice" shapes) does not pin.

use ns_core::config::{Regime, SolverConfig};
use ns_core::driver::Solver;
use ns_core::field::{FluxField, Patch, PrimField};
use ns_numerics::Grid;
use ns_runtime::collectives::{allreduce_max, allreduce_sum, barrier};
use ns_runtime::comm::universe;
use ns_runtime::{run_parallel, run_parallel_chaos, ChaosOptions, CommVersion, FaultPlan, ThreadHalo};
use std::thread;

#[test]
fn single_rank_run_is_bitwise_serial_and_sends_nothing() {
    // P=1: both neighbours are None, every exchange must be a no-op
    let cfg = SolverConfig::paper(Grid::small(), Regime::NavierStokes);
    let mut serial = Solver::new(cfg.clone());
    serial.run(6);
    let run = run_parallel(&cfg, 1, 6, CommVersion::V5);
    assert_eq!(serial.field.max_diff(&run.gather_field()), 0.0);
    assert_eq!(run.ranks[0].stats.sends, 0, "a lone rank has nobody to talk to");
    assert_eq!(run.ranks[0].stats.recvs, 0);
}

#[test]
fn non_divisible_splits_are_bitwise_serial() {
    // nx = 67 over 3 and 5 ranks: every remainder-handling branch of the
    // block decomposition is exercised
    let cfg = SolverConfig::paper(Grid::new(67, 24, 50.0, 5.0), Regime::Euler);
    let mut serial = Solver::new(cfg.clone());
    serial.run(4);
    for p in [3, 5] {
        let run = run_parallel(&cfg, p, 4, CommVersion::V5);
        let widths: Vec<usize> = run.ranks.iter().map(|r| r.field.patch.nxl).collect();
        assert_eq!(widths.iter().sum::<usize>(), 67, "p={p}: columns lost or duplicated");
        assert_eq!(serial.field.max_diff(&run.gather_field()), 0.0, "p={p}");
    }
}

#[test]
fn zero_step_runs_leave_the_initial_condition_untouched() {
    let cfg = SolverConfig::paper(Grid::small(), Regime::Euler);
    let serial = Solver::new(cfg.clone());
    let run = run_parallel(&cfg, 4, 0, CommVersion::V5);
    assert_eq!(serial.field.max_diff(&run.gather_field()), 0.0);
    let t = run.total_stats();
    assert_eq!(t.sends, t.recvs, "even an empty run must balance its messages");

    // the chaos driver with nothing to do must also be a no-op
    let chaos = run_parallel_chaos(
        &cfg,
        4,
        0,
        CommVersion::V5,
        &ChaosOptions { plan: FaultPlan::none(7), ..Default::default() },
    );
    assert_eq!(serial.field.max_diff(&chaos.gather_field()), 0.0);
}

#[test]
fn halo_with_no_neighbours_is_a_no_op() {
    let patch = Patch::whole(Grid::small());
    let nr = patch.grid.nr;
    let mut eps = universe(1);
    let mut prim = PrimField::zeros(&patch);
    let mut flux = FluxField::zeros(&patch);
    {
        use ns_core::scheme::XHalo;
        let mut halo = ThreadHalo::new(&mut eps[0], None, None, patch.nxl, nr, CommVersion::V7);
        halo.begin_step(0);
        halo.exchange_prims(&mut prim);
        halo.exchange_flux(&mut flux);
        assert_eq!(halo.reduce_max(2.5), 2.5, "P=1 reduction is the identity");
    }
    assert_eq!(eps[0].stats.sends, 0);
    assert_eq!(eps[0].stats.recvs, 0);
}

#[test]
fn collectives_handle_negative_values_and_many_epochs() {
    // max over all-negative inputs (a naive 0-initialised accumulator would
    // get this wrong) and interleaved sum/max/barrier epochs on two ranks
    let eps = universe(2);
    let results: Vec<(f64, f64)> = thread::scope(|s| {
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                s.spawn(move || {
                    let mine = -(ep.rank() as f64 + 1.0); // -1, -2
                    let mx = allreduce_max(&mut ep, mine, 0).unwrap();
                    barrier(&mut ep, 1).unwrap();
                    let mut sum = 0.0;
                    for epoch in 2..30 {
                        sum = allreduce_sum(&mut ep, mine, epoch).unwrap();
                    }
                    (mx, sum)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (mx, sum) in results {
        assert_eq!(mx, -1.0, "max of negatives must not be clamped to zero");
        assert_eq!(sum, -3.0);
    }
}

#[test]
fn more_ranks_than_make_sense_still_gathers_exactly() {
    // 16 ranks on a 66-column grid: 4-column patches, ghost width 2 == half
    // a patch — the narrowest split the stencil supports
    let cfg = SolverConfig::paper(Grid::new(66, 24, 50.0, 5.0), Regime::Euler);
    let mut serial = Solver::new(cfg.clone());
    serial.run(2);
    let run = run_parallel(&cfg, 16, 2, CommVersion::V5);
    assert_eq!(run.ranks.len(), 16);
    assert_eq!(serial.field.max_diff(&run.gather_field()), 0.0);
}
