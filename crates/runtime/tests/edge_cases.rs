//! Runtime edge cases: degenerate single-rank universes, grid splits that
//! do not divide evenly, zero-step runs, and collective corner cases.
//! These are the boundaries of the decomposition and protocol machinery
//! that the main oracle matrix (which runs "nice" shapes) does not pin.

use ns_core::config::{Regime, SolverConfig};
use ns_core::driver::Solver;
use ns_core::field::{FluxField, Patch, PrimField};
use ns_numerics::Grid;
use ns_runtime::collectives::{allreduce_max, allreduce_sum, barrier};
use ns_runtime::comm::universe;
use ns_runtime::{
    run_parallel, run_parallel_cart, run_parallel_chaos, run_parallel_chaos_cart, CartTopology, ChaosOptions,
    CommVersion, CrashSpec, FaultPlan, ReliableConfig, ThreadHalo,
};
use std::thread;
use std::time::Duration;

#[test]
fn single_rank_run_is_bitwise_serial_and_sends_nothing() {
    // P=1: both neighbours are None, every exchange must be a no-op
    let cfg = SolverConfig::paper(Grid::small(), Regime::NavierStokes);
    let mut serial = Solver::new(cfg.clone());
    serial.run(6);
    let run = run_parallel(&cfg, 1, 6, CommVersion::V5);
    assert_eq!(serial.field.max_diff(&run.gather_field()), 0.0);
    assert_eq!(run.ranks[0].stats.sends, 0, "a lone rank has nobody to talk to");
    assert_eq!(run.ranks[0].stats.recvs, 0);
}

#[test]
fn non_divisible_splits_are_bitwise_serial() {
    // nx = 67 over 3 and 5 ranks: every remainder-handling branch of the
    // block decomposition is exercised
    let cfg = SolverConfig::paper(Grid::new(67, 24, 50.0, 5.0), Regime::Euler);
    let mut serial = Solver::new(cfg.clone());
    serial.run(4);
    for p in [3, 5] {
        let run = run_parallel(&cfg, p, 4, CommVersion::V5);
        let widths: Vec<usize> = run.ranks.iter().map(|r| r.field.patch.nxl).collect();
        assert_eq!(widths.iter().sum::<usize>(), 67, "p={p}: columns lost or duplicated");
        assert_eq!(serial.field.max_diff(&run.gather_field()), 0.0, "p={p}");
    }
}

#[test]
fn zero_step_runs_leave_the_initial_condition_untouched() {
    let cfg = SolverConfig::paper(Grid::small(), Regime::Euler);
    let serial = Solver::new(cfg.clone());
    let run = run_parallel(&cfg, 4, 0, CommVersion::V5);
    assert_eq!(serial.field.max_diff(&run.gather_field()), 0.0);
    let t = run.total_stats();
    assert_eq!(t.sends, t.recvs, "even an empty run must balance its messages");

    // the chaos driver with nothing to do must also be a no-op
    let chaos = run_parallel_chaos(
        &cfg,
        4,
        0,
        CommVersion::V5,
        &ChaosOptions { plan: FaultPlan::none(7), ..Default::default() },
    );
    assert_eq!(serial.field.max_diff(&chaos.gather_field()), 0.0);
}

#[test]
fn halo_with_no_neighbours_is_a_no_op() {
    let patch = Patch::whole(Grid::small());
    let nr = patch.grid.nr;
    let mut eps = universe(1);
    let mut prim = PrimField::zeros(&patch);
    let mut flux = FluxField::zeros(&patch);
    {
        use ns_core::scheme::XHalo;
        let mut halo = ThreadHalo::new(&mut eps[0], None, None, patch.nxl, nr, CommVersion::V7);
        halo.begin_step(0);
        halo.exchange_prims(&mut prim);
        halo.exchange_flux(&mut flux);
        assert_eq!(halo.reduce_max(2.5), 2.5, "P=1 reduction is the identity");
    }
    assert_eq!(eps[0].stats.sends, 0);
    assert_eq!(eps[0].stats.recvs, 0);
}

#[test]
fn collectives_handle_negative_values_and_many_epochs() {
    // max over all-negative inputs (a naive 0-initialised accumulator would
    // get this wrong) and interleaved sum/max/barrier epochs on two ranks
    let eps = universe(2);
    let results: Vec<(f64, f64)> = thread::scope(|s| {
        let handles: Vec<_> = eps
            .into_iter()
            .map(|mut ep| {
                s.spawn(move || {
                    let mine = -(ep.rank() as f64 + 1.0); // -1, -2
                    let mx = allreduce_max(&mut ep, mine, 0).unwrap();
                    barrier(&mut ep, 1).unwrap();
                    let mut sum = 0.0;
                    for epoch in 2..30 {
                        sum = allreduce_sum(&mut ep, mine, epoch).unwrap();
                    }
                    (mx, sum)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (mx, sum) in results {
        assert_eq!(mx, -1.0, "max of negatives must not be clamped to zero");
        assert_eq!(sum, -3.0);
    }
}

#[test]
fn pencil_non_divisible_on_both_axes_is_bitwise_serial() {
    // 67 x 26 over a 3 x 2 rank grid: the remainder-handling branches of
    // the block decomposition fire on both axes at once
    let cfg = SolverConfig::paper(Grid::new(67, 26, 50.0, 5.0), Regime::Euler);
    let mut serial = Solver::new(cfg.clone());
    serial.run(4);
    let run = run_parallel_cart(&cfg, CartTopology::new(3, 2).unwrap(), 4, CommVersion::V5).unwrap();
    let cols: usize = run.ranks.iter().filter(|r| r.field.patch.j0 == 0).map(|r| r.field.patch.nxl).sum();
    let rows: usize = run.ranks.iter().filter(|r| r.field.patch.i0 == 0).map(|r| r.field.patch.nrl).sum();
    assert_eq!(cols, 67, "columns lost or duplicated across the bottom rank row");
    assert_eq!(rows, 26, "rows lost or duplicated across the left rank column");
    assert_eq!(serial.field.max_diff(&run.gather_field()), 0.0);
}

#[test]
fn one_by_one_pencil_is_a_true_no_op() {
    // the 1 x 1 topology must behave exactly like the lone axial rank:
    // bitwise serial, and not a single message on the wire
    let cfg = SolverConfig::paper(Grid::small(), Regime::NavierStokes);
    let mut serial = Solver::new(cfg.clone());
    serial.run(4);
    let run = run_parallel_cart(&cfg, CartTopology::new(1, 1).unwrap(), 4, CommVersion::V5).unwrap();
    assert_eq!(serial.field.max_diff(&run.gather_field()), 0.0);
    assert_eq!(run.ranks[0].stats.sends, 0, "a 1x1 pencil has nobody to talk to");
    assert_eq!(run.ranks[0].stats.recvs, 0);
}

#[test]
fn degenerate_pencils_match_the_axial_and_serial_paths() {
    // P x 1 must BE the 1-D axial decomposition, message for message
    let cfg = SolverConfig::paper(Grid::small(), Regime::Euler);
    let axial = run_parallel(&cfg, 4, 4, CommVersion::V5);
    let cart = run_parallel_cart(&cfg, CartTopology::new(4, 1).unwrap(), 4, CommVersion::V5).unwrap();
    assert_eq!(axial.gather_field().max_diff(&cart.gather_field()), 0.0);
    assert_eq!(axial.total_stats().sends, cart.total_stats().sends, "same protocol, same message count");

    // 1 x P keeps every axial stencil whole, so even Navier-Stokes (whose
    // axial splits are only tolerance-equal) must be bitwise vs serial
    let ns = SolverConfig::paper(Grid::small(), Regime::NavierStokes);
    let mut serial = Solver::new(ns.clone());
    serial.run(4);
    let radial = run_parallel_cart(&ns, CartTopology::new(1, 4).unwrap(), 4, CommVersion::V5).unwrap();
    assert_eq!(serial.field.max_diff(&radial.gather_field()), 0.0);
}

#[test]
fn pencil_chaos_with_faults_replays_corner_strips_bitwise() {
    // message drops plus a mid-run crash on a 2 x 2 pencil: rollback and
    // replay must reproduce the fault-free pencil run bitwise, radial
    // corner-strip exchanges included
    let cfg = SolverConfig::paper(Grid::new(66, 24, 50.0, 5.0), Regime::NavierStokes);
    let topo = CartTopology::new(2, 2).unwrap();
    let reference = run_parallel_cart(&cfg, topo, 6, CommVersion::V5).unwrap();
    let opts = ChaosOptions {
        plan: FaultPlan {
            seed: 1995,
            drop_rate: 0.03,
            crash: Some(CrashSpec { rank: 3, step: 4 }),
            ..FaultPlan::default()
        },
        reliable: ReliableConfig { retry_timeout: Duration::from_millis(2), max_retries: 5 },
        checkpoint_every: 2,
        max_rollbacks: 8,
        recv_timeout: Duration::from_millis(250),
    };
    let chaos = run_parallel_chaos_cart(&cfg, topo, 6, CommVersion::V5, &opts).unwrap();
    assert_eq!(reference.gather_field().max_diff(&chaos.gather_field()), 0.0);
    let rep = chaos.recovery.unwrap();
    assert_eq!(rep.crashes, 1, "the planned crash must have fired");
    assert!(rep.rollbacks >= 1, "recovery must have rolled back at least once");
}

#[test]
fn more_ranks_than_make_sense_still_gathers_exactly() {
    // 16 ranks on a 66-column grid: 4-column patches, ghost width 2 == half
    // a patch — the narrowest split the stencil supports
    let cfg = SolverConfig::paper(Grid::new(66, 24, 50.0, 5.0), Regime::Euler);
    let mut serial = Solver::new(cfg.clone());
    serial.run(2);
    let run = run_parallel(&cfg, 16, 2, CommVersion::V5);
    assert_eq!(run.ranks.len(), 16);
    assert_eq!(serial.field.max_diff(&run.gather_field()), 0.0);
}
