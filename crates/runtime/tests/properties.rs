//! Property-based tests of the message-passing runtime: pack/unpack
//! round-trips, tag matching under arbitrary interleavings, collectives.

use ns_runtime::collectives;
use ns_runtime::comm::{universe, MsgKind, Tag};
use ns_runtime::pack::{PackBuf, UnpackBuf};
use proptest::prelude::*;

proptest! {
    /// Pack/unpack round-trips arbitrary f64 vectors exactly (bit pattern).
    #[test]
    fn pack_roundtrip_bits(vals in prop::collection::vec(prop::num::f64::ANY, 0..256)) {
        let mut p = PackBuf::with_capacity_f64(vals.len());
        p.pack_f64_slice(&vals);
        prop_assert_eq!(p.len(), vals.len() * 8);
        let mut u = UnpackBuf::new(p.freeze());
        let mut out = vec![0.0f64; vals.len()];
        u.unpack_f64_slice(&mut out).unwrap();
        u.finish().unwrap();
        for (a, b) in vals.iter().zip(&out) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Splitting a payload into arbitrary chunk sequences unpacks to the
    /// same values.
    #[test]
    fn chunked_unpack_equals_bulk(vals in prop::collection::vec(-1e6f64..1e6, 1..64), cut in 0usize..64) {
        let cut = cut % vals.len();
        let mut p = PackBuf::new();
        p.pack_f64_slice(&vals);
        let mut u = UnpackBuf::new(p.freeze());
        let mut head = vec![0.0; cut];
        let mut tail = vec![0.0; vals.len() - cut];
        u.unpack_f64_slice(&mut head).unwrap();
        u.unpack_f64_slice(&mut tail).unwrap();
        u.finish().unwrap();
        head.extend(tail);
        prop_assert_eq!(head, vals);
    }

    /// Requesting more items than available always errors and never panics.
    #[test]
    fn over_read_is_an_error(n in 0usize..32, extra in 1usize..16) {
        let mut p = PackBuf::new();
        p.pack_f64_slice(&vec![1.0; n]);
        let mut u = UnpackBuf::new(p.freeze());
        let mut out = vec![0.0; n + extra];
        prop_assert!(u.unpack_f64_slice(&mut out).is_err());
    }

    /// Messages delivered in any order are matched correctly by
    /// (source, tag): the receiver sees exactly what each send carried.
    #[test]
    fn tag_matching_handles_any_permutation(perm in prop::sample::subsequence((0..6usize).collect::<Vec<_>>(), 6)) {
        // build 6 messages with distinct tags, send them in natural order,
        // receive them in `perm` order (a permutation prefix) then the rest
        let kinds = [MsgKind::Prims1, MsgKind::Flux1, MsgKind::Prims2, MsgKind::Flux2, MsgKind::FluxSplit, MsgKind::Gather];
        let mut eps = universe(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        for (k, kind) in kinds.iter().enumerate() {
            let mut p = PackBuf::new();
            p.pack_f64(k as f64);
            a.send(1, Tag { kind: *kind, seq: 9 }, p).unwrap();
        }
        let mut order: Vec<usize> = perm.clone();
        for k in 0..6 {
            if !order.contains(&k) {
                order.push(k);
            }
        }
        for k in order {
            let payload = b.recv(0, Tag { kind: kinds[k], seq: 9 }).unwrap();
            let mut u = UnpackBuf::new(payload);
            prop_assert_eq!(u.unpack_f64().unwrap(), k as f64);
        }
        prop_assert_eq!(b.stats.recvs, 6);
    }

    /// All-reduce computes the true max/sum for any rank count and values.
    #[test]
    fn allreduce_correct_for_any_size(vals in prop::collection::vec(-1e3f64..1e3, 1..9)) {
        let n = vals.len();
        let eps = universe(n);
        let results: Vec<(f64, f64)> = std::thread::scope(|s| {
            let handles: Vec<_> = eps
                .into_iter()
                .map(|mut ep| {
                    let mine = vals[ep.rank()];
                    s.spawn(move || {
                        let mx = collectives::allreduce_max(&mut ep, mine, 0).unwrap();
                        let sm = collectives::allreduce_sum(&mut ep, mine, 1).unwrap();
                        (mx, sm)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let true_max = vals.iter().cloned().fold(f64::MIN, f64::max);
        let true_sum: f64 = vals.iter().sum();
        for (mx, sm) in results {
            prop_assert_eq!(mx, true_max);
            prop_assert!((sm - true_sum).abs() < 1e-9 * (1.0 + true_sum.abs()));
        }
    }

    /// Statistics account every byte exactly: after any sequence of sends
    /// between two endpoints, bytes_sent == sum of payload lengths.
    #[test]
    fn stats_account_every_byte(sizes in prop::collection::vec(0usize..512, 1..20)) {
        let mut eps = universe(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let mut total = 0u64;
        for (k, &n) in sizes.iter().enumerate() {
            let mut p = PackBuf::new();
            p.pack_f64_slice(&vec![0.0; n]);
            total += (n * 8) as u64;
            a.send(1, Tag { kind: MsgKind::Flux1, seq: k as u64 }, p).unwrap();
        }
        prop_assert_eq!(a.stats.bytes_sent, total);
        prop_assert_eq!(a.stats.sends, sizes.len() as u64);
        for (k, &n) in sizes.iter().enumerate() {
            let payload = b.recv(0, Tag { kind: MsgKind::Flux1, seq: k as u64 }).unwrap();
            prop_assert_eq!(payload.len(), n * 8);
        }
        prop_assert_eq!(b.stats.bytes_recvd, total);
    }
}
