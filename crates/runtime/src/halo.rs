//! The paper's halo protocol as an [`XHalo`] implementation.
//!
//! Per axial-operator application each rank exchanges with its left/right
//! neighbours (paper Section 5):
//!
//! 1. the grouped primitive columns — "first, all the velocity and
//!    temperature values along a boundary are calculated and then packaged
//!    into a single send";
//! 2. the two-column flux packet — "the two 'flux columns' nearest each
//!    boundary are combined into a single send";
//! 3. (N-S only) a second grouped primitive exchange before the corrector;
//! 4. the predictor-flux packet.
//!
//! Version 7 ("avoid bursty communication") splits each two-column flux
//! packet into two single-column sends, doubling the start-ups — supported
//! here with [`CommVersion::V7`] so its cost shows up in the live runtime,
//! not just the simulator.

use crate::comm::{CommError, Endpoint, MsgKind, Tag};
use crate::pack::{BufPool, PackBuf, UnpackBuf};
use crate::topology::CartNeighbors;
use ns_core::field::{FluxField, PrimField, NG};
use ns_core::scheme::XHalo;

/// Communication protocol variant (paper Versions 5-7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommVersion {
    /// Grouped sends, exchange-then-compute (the production protocol).
    V5,
    /// Overlap: post the boundary primitive columns, let the solver compute
    /// the interior flux while they are in flight, complete the receives,
    /// then finish the edge columns (paper Section 6).
    V6,
    /// Split flux packets into single-column sends (less bursty, more
    /// start-ups).
    V7,
}

/// Thread-backed halo exchanger for one rank.
pub struct ThreadHalo<'a> {
    ep: &'a mut Endpoint,
    left: Option<usize>,
    right: Option<usize>,
    /// Radial predecessor (towards the axis); `None` for axial-only layouts.
    down: Option<usize>,
    /// Radial successor (towards the far field).
    up: Option<usize>,
    nxl: usize,
    nr: usize,
    version: CommVersion,
    step: u64,
    /// Recovery generation (0 outside chaos runs); minted into the causal
    /// span so a re-executed step gets a fresh span, distinct from the one
    /// the crashed generation used.
    generation: u64,
    prim_calls: u8,
    flux_calls: u8,
    prim_r_calls: u8,
    flux_r_calls: u8,
    /// Kind of a posted-but-unreceived split-phase prim exchange (V6).
    pending_prims: Option<Tag>,
    /// Strict mode (the default) panics on comm errors, as a PVM task dies
    /// with its virtual machine. Lenient mode records the first failure and
    /// turns every further exchange into a no-op, so the step loop can
    /// unwind cleanly and the recovery driver can roll back.
    strict: bool,
    /// First communication failure seen in lenient mode.
    failure: Option<CommError>,
    /// Reusable send-buffer pool; received payloads are recycled into it,
    /// so steady-state exchanges allocate nothing.
    pool: BufPool,
    /// Persistent column scratch for unpacking (one radial line).
    scratch: Vec<f64>,
    /// Persistent row scratch for radial unpacking (one padded axial line).
    row_scratch: Vec<f64>,
}

impl<'a> ThreadHalo<'a> {
    /// Create the halo for a rank of the paper's 1-D axial decomposition.
    pub fn new(
        ep: &'a mut Endpoint,
        left: Option<usize>,
        right: Option<usize>,
        nxl: usize,
        nr: usize,
        version: CommVersion,
    ) -> Self {
        Self::new_cart(ep, CartNeighbors { left, right, down: None, up: None }, nxl, nr, version)
    }

    /// Create the halo for a pencil with the given face neighbours.
    pub fn new_cart(ep: &'a mut Endpoint, nb: CartNeighbors, nxl: usize, nr: usize, version: CommVersion) -> Self {
        let mut pool = BufPool::new();
        // Per step each axial link carries at most six sends: two grouped
        // primitive columns (3*nr doubles) plus up to four flux columns
        // (two two-column packets, or four single-column packets under the
        // split V7 protocol). The largest is the 8*nr two-column flux
        // packet. Each radial link carries at most six sends too (up to
        // four primitive rows plus two two-row flux packets), the largest
        // being the 8*(nxl + 2 NG) flux packet. Warming the pool to that
        // working set makes every pack a pool hit from the first step — the
        // cold pool used to allocate once per send until recycled receives
        // refilled it.
        let ax = usize::from(nb.left.is_some()) + usize::from(nb.right.is_some());
        let rad = usize::from(nb.down.is_some()) + usize::from(nb.up.is_some());
        let width = nxl + 2 * NG;
        let cap = if rad > 0 { (8 * nr).max(8 * width) } else { 8 * nr };
        pool.warm(6 * (ax + rad), cap);
        Self {
            ep,
            left: nb.left,
            right: nb.right,
            down: nb.down,
            up: nb.up,
            nxl,
            nr,
            version,
            step: 0,
            generation: 0,
            prim_calls: 0,
            flux_calls: 0,
            prim_r_calls: 0,
            flux_r_calls: 0,
            pending_prims: None,
            strict: true,
            failure: None,
            pool,
            scratch: vec![0.0; nr],
            row_scratch: vec![0.0; width],
        }
    }

    /// Switch to lenient error handling: comm failures are recorded in
    /// [`ThreadHalo::failure`] instead of panicking, and all subsequent
    /// exchanges become no-ops. Used by the chaos/recovery driver.
    pub fn set_lenient(&mut self) {
        self.strict = false;
    }

    /// The first communication failure, if this (lenient) halo has failed.
    pub fn failure(&self) -> Option<&CommError> {
        self.failure.as_ref()
    }

    /// Record a failure (lenient) or die (strict).
    fn fail(&mut self, ctx: &'static str, e: CommError) {
        if self.strict {
            panic!("{ctx}: {e}");
        }
        if self.failure.is_none() {
            self.failure = Some(e);
        }
    }

    /// Set the recovery generation minted into the causal span (see
    /// [`ThreadHalo::begin_step`]).
    pub fn set_generation(&mut self, generation: u64) {
        self.generation = generation;
    }

    /// Mark the start of a time step (resets the per-step phase counters
    /// that map exchange calls onto protocol tags) and mint the step's
    /// causal span: every frame the endpoint seals until the next
    /// `begin_step` carries it, which is what stitches this rank's sends
    /// into its neighbours' traces.
    pub fn begin_step(&mut self, step: u64) {
        assert!(self.pending_prims.is_none() || self.failure.is_some(), "split-phase exchange left dangling");
        self.pending_prims = None;
        self.step = step;
        self.prim_calls = 0;
        self.flux_calls = 0;
        self.prim_r_calls = 0;
        self.flux_r_calls = 0;
        let span = ns_metrics::span_id(self.generation, step);
        self.ep.set_span(span);
        self.ep.flight.record("step", "begin", None, None, Some(span), 0);
    }

    /// Borrow the endpoint (stats inspection).
    pub fn endpoint(&self) -> &Endpoint {
        self.ep
    }

    /// Mutably borrow the endpoint (out-of-band collectives between steps,
    /// e.g. the health monitor's abort reduction).
    pub fn endpoint_mut(&mut self) -> &mut Endpoint {
        self.ep
    }

    /// `(acquired, reused)` counters of the send-buffer pool — equal except
    /// for the warm-up step once the exchange loop reaches steady state.
    pub fn pool_stats(&self) -> (u64, u64) {
        self.pool.stats()
    }

    fn pack_prim_col(&mut self, prim: &PrimField, i_local: usize) -> PackBuf {
        let mut b = self.pool.acquire_f64(3 * self.nr);
        let ii = i_local + NG;
        for plane in [&prim.u, &prim.v, &prim.t] {
            for j in 0..self.nr {
                b.pack_f64(plane.at(ii, j + NG));
            }
        }
        b
    }

    /// Unpack a received primitive column. A payload that does not match
    /// this rank's geometry (a peer in an inconsistent state) is a recorded
    /// [`CommError::Malformed`] failure in lenient mode — not a panic — so
    /// the no-op contract holds even against a misbehaving peer.
    fn unpack_prim_col(&mut self, prim: &mut PrimField, ii: usize, payload: bytes::Bytes) {
        let mut u = UnpackBuf::new(payload);
        for plane in [&mut prim.u, &mut prim.v, &mut prim.t] {
            if u.unpack_f64_slice(&mut self.scratch).is_err() {
                self.fail("prim halo payload", CommError::Malformed);
                return;
            }
            for (j, &v) in self.scratch.iter().enumerate() {
                plane.set(ii, j + NG, v);
            }
        }
        match u.finish() {
            Ok(b) => self.pool.recycle(b),
            Err(_) => self.fail("prim halo framing", CommError::Malformed),
        }
    }

    fn pack_flux_cols(&mut self, flux: &FluxField, cols: &[usize]) -> PackBuf {
        let mut b = self.pool.acquire_f64(4 * cols.len() * self.nr);
        for c in 0..4 {
            for &i_local in cols {
                for j in 0..self.nr {
                    b.pack_f64(flux.at(c, i_local as isize, j as isize));
                }
            }
        }
        b
    }

    /// Send unless already failed; strict mode panics on error.
    fn try_send(&mut self, to: usize, tag: Tag, b: PackBuf, ctx: &'static str) {
        if self.failure.is_some() {
            return;
        }
        if let Err(e) = self.ep.send(to, tag, b) {
            self.fail(ctx, e);
        }
    }

    /// Receive unless already failed; strict mode panics on error.
    fn try_recv(&mut self, from: usize, tag: Tag, ctx: &'static str) -> Option<bytes::Bytes> {
        if self.failure.is_some() {
            return None;
        }
        match self.ep.recv(from, tag) {
            Ok(p) => Some(p),
            Err(e) => {
                self.fail(ctx, e);
                None
            }
        }
    }

    fn receive_prims(&mut self, prim: &mut PrimField, tag: Tag) {
        if let Some(l) = self.left {
            if let Some(payload) = self.try_recv(l, tag, "prim halo recv left") {
                self.unpack_prim_col(prim, NG - 1, payload);
            }
        }
        if let Some(r) = self.right {
            if let Some(payload) = self.try_recv(r, tag, "prim halo recv right") {
                self.unpack_prim_col(prim, NG + self.nxl, payload);
            }
        }
    }

    /// Unpack received ghost flux columns; malformed payloads are recorded
    /// failures in lenient mode (see [`ThreadHalo::unpack_prim_col`]).
    fn unpack_flux_cols(&mut self, flux: &mut FluxField, ghost_cols: &[isize], payload: bytes::Bytes) {
        let mut u = UnpackBuf::new(payload);
        for c in 0..4 {
            for &gi in ghost_cols {
                if u.unpack_f64_slice(&mut self.scratch).is_err() {
                    self.fail("flux halo payload", CommError::Malformed);
                    return;
                }
                for (j, &v) in self.scratch.iter().enumerate() {
                    flux.set(c, gi, j as isize, v);
                }
            }
        }
        match u.finish() {
            Ok(b) => self.pool.recycle(b),
            Err(_) => self.fail("flux halo framing", CommError::Malformed),
        }
    }

    /// Pack one primitive ghost row (3 planes) across the *full padded
    /// width* — the axial ghost columns at the row's ends are the corner
    /// strips, delivered to the radial neighbour in the same message.
    fn pack_prim_row(&mut self, prim: &PrimField, j_local: usize) -> PackBuf {
        let width = self.nxl + 2 * NG;
        let mut b = self.pool.acquire_f64(3 * width);
        let jj = j_local + NG;
        for plane in [&prim.u, &prim.v, &prim.t] {
            for ii in 0..width {
                b.pack_f64(plane.at(ii, jj));
            }
        }
        b
    }

    /// Unpack a received primitive ghost row into raw row `jj`.
    fn unpack_prim_row(&mut self, prim: &mut PrimField, jj: usize, payload: bytes::Bytes) {
        let mut u = UnpackBuf::new(payload);
        for plane in [&mut prim.u, &mut prim.v, &mut prim.t] {
            if u.unpack_f64_slice(&mut self.row_scratch).is_err() {
                self.fail("prim row halo payload", CommError::Malformed);
                return;
            }
            for (ii, &v) in self.row_scratch.iter().enumerate() {
                plane.set(ii, jj, v);
            }
        }
        match u.finish() {
            Ok(b) => self.pool.recycle(b),
            Err(_) => self.fail("prim row halo framing", CommError::Malformed),
        }
    }

    /// Pack flux rows (4 components, padded width, corner strips included).
    fn pack_flux_rows(&mut self, flux: &FluxField, rows: &[usize]) -> PackBuf {
        let width = self.nxl + 2 * NG;
        let mut b = self.pool.acquire_f64(4 * rows.len() * width);
        for c in 0..4 {
            for &j_local in rows {
                for ii in 0..width {
                    b.pack_f64(flux.at(c, ii as isize - NG as isize, j_local as isize));
                }
            }
        }
        b
    }

    /// Unpack received ghost flux rows (signed local row indices).
    fn unpack_flux_rows(&mut self, flux: &mut FluxField, ghost_rows: &[isize], payload: bytes::Bytes) {
        let mut u = UnpackBuf::new(payload);
        for c in 0..4 {
            for &gj in ghost_rows {
                if u.unpack_f64_slice(&mut self.row_scratch).is_err() {
                    self.fail("flux row halo payload", CommError::Malformed);
                    return;
                }
                for (ii, &v) in self.row_scratch.iter().enumerate() {
                    flux.set(c, ii as isize - NG as isize, gj, v);
                }
            }
        }
        match u.finish() {
            Ok(b) => self.pool.recycle(b),
            Err(_) => self.fail("flux row halo framing", CommError::Malformed),
        }
    }
}

impl XHalo for ThreadHalo<'_> {
    fn reduce_max(&mut self, x: f64) -> f64 {
        if self.failure.is_some() {
            return x;
        }
        // one reduction per step; the step number is the collective epoch
        match crate::collectives::allreduce_max(self.ep, x, self.step) {
            Ok(v) => v,
            Err(e) => {
                self.fail("adaptive-dt reduction", e);
                x
            }
        }
    }

    fn post_prims(&mut self, prim: &mut PrimField) {
        let kind = if self.prim_calls == 0 { MsgKind::Prims1 } else { MsgKind::Prims2 };
        self.prim_calls += 1;
        let tag = Tag { kind, seq: self.step };
        if self.failure.is_some() {
            return;
        }
        // post sends first (buffered, deadlock free)
        if let Some(l) = self.left {
            let b = self.pack_prim_col(prim, 0);
            self.try_send(l, tag, b, "prim halo send left");
        }
        if let Some(r) = self.right {
            let b = self.pack_prim_col(prim, self.nxl - 1);
            self.try_send(r, tag, b, "prim halo send right");
        }
        if self.version == CommVersion::V6 {
            // Version 6: let the caller compute the interior while the
            // boundary columns are in flight
            self.pending_prims = Some(tag);
        } else {
            self.receive_prims(prim, tag);
        }
    }

    fn finish_prims(&mut self, prim: &mut PrimField) {
        let Some(tag) = self.pending_prims.take() else {
            return;
        };
        // post-failure exchanges are true no-ops: drop the pending phase
        // without touching the endpoint
        if self.failure.is_some() {
            return;
        }
        self.receive_prims(prim, tag);
    }

    fn exchange_prims(&mut self, prim: &mut PrimField) {
        self.post_prims(prim);
        self.finish_prims(prim);
    }

    fn exchange_flux(&mut self, flux: &mut FluxField) {
        let kind = if self.flux_calls == 0 { MsgKind::Flux1 } else { MsgKind::Flux2 };
        self.flux_calls += 1;
        let tag = Tag { kind, seq: self.step };
        let split_tag = Tag { kind: MsgKind::FluxSplit, seq: self.step * 2 + u64::from(self.flux_calls) };
        let n = self.nxl;
        if self.failure.is_some() {
            return;
        }
        match self.version {
            // flux packets are never overlapped (the predictor needs them
            // whole), so V6 sends them exactly like V5
            CommVersion::V5 | CommVersion::V6 => {
                if let Some(l) = self.left {
                    let b = self.pack_flux_cols(flux, &[0, 1]);
                    self.try_send(l, tag, b, "flux halo send left");
                }
                if let Some(r) = self.right {
                    let b = self.pack_flux_cols(flux, &[n - 2, n - 1]);
                    self.try_send(r, tag, b, "flux halo send right");
                }
                if let Some(l) = self.left {
                    if let Some(payload) = self.try_recv(l, tag, "flux halo recv left") {
                        self.unpack_flux_cols(flux, &[-2, -1], payload);
                    }
                }
                if let Some(r) = self.right {
                    if let Some(payload) = self.try_recv(r, tag, "flux halo recv right") {
                        self.unpack_flux_cols(flux, &[n as isize, n as isize + 1], payload);
                    }
                }
            }
            CommVersion::V7 => {
                // one column per message: twice the start-ups, half the burst
                // (unreachable for radial pencils, which validation restricts
                // to the grouped V5 protocol)
                if let Some(l) = self.left {
                    let b = self.pack_flux_cols(flux, &[1]);
                    self.try_send(l, tag, b, "flux send");
                    let b = self.pack_flux_cols(flux, &[0]);
                    self.try_send(l, split_tag, b, "flux send");
                }
                if let Some(r) = self.right {
                    let b = self.pack_flux_cols(flux, &[n - 2]);
                    self.try_send(r, tag, b, "flux send");
                    let b = self.pack_flux_cols(flux, &[n - 1]);
                    self.try_send(r, split_tag, b, "flux send");
                }
                if let Some(l) = self.left {
                    if let Some(p1) = self.try_recv(l, tag, "flux recv") {
                        self.unpack_flux_cols(flux, &[-2], p1);
                    }
                    if let Some(p2) = self.try_recv(l, split_tag, "flux recv") {
                        self.unpack_flux_cols(flux, &[-1], p2);
                    }
                }
                if let Some(r) = self.right {
                    if let Some(p1) = self.try_recv(r, tag, "flux recv") {
                        self.unpack_flux_cols(flux, &[n as isize + 1], p1);
                    }
                    if let Some(p2) = self.try_recv(r, split_tag, "flux recv") {
                        self.unpack_flux_cols(flux, &[n as isize], p2);
                    }
                }
            }
        }
    }

    fn exchange_prims_r(&mut self, prim: &mut PrimField) {
        if self.down.is_none() && self.up.is_none() {
            return;
        }
        // up to four per step (both stages of both operators, viscous runs);
        // the call index disambiguates them within the step
        let call = self.prim_r_calls;
        self.prim_r_calls += 1;
        let tag = Tag { kind: MsgKind::PrimsR, seq: self.step * 4 + u64::from(call) };
        if self.failure.is_some() {
            return;
        }
        if let Some(d) = self.down {
            let b = self.pack_prim_row(prim, 0);
            self.try_send(d, tag, b, "prim row halo send down");
        }
        if let Some(u) = self.up {
            let b = self.pack_prim_row(prim, self.nr - 1);
            self.try_send(u, tag, b, "prim row halo send up");
        }
        if let Some(d) = self.down {
            if let Some(payload) = self.try_recv(d, tag, "prim row halo recv down") {
                self.unpack_prim_row(prim, NG - 1, payload);
            }
        }
        if let Some(u) = self.up {
            if let Some(payload) = self.try_recv(u, tag, "prim row halo recv up") {
                self.unpack_prim_row(prim, NG + self.nr, payload);
            }
        }
    }

    fn exchange_flux_r(&mut self, flux: &mut FluxField) {
        if self.down.is_none() && self.up.is_none() {
            return;
        }
        let call = self.flux_r_calls;
        self.flux_r_calls += 1;
        let tag = Tag { kind: MsgKind::FluxR, seq: self.step * 2 + u64::from(call) };
        let n = self.nr;
        if self.failure.is_some() {
            return;
        }
        if let Some(d) = self.down {
            let b = self.pack_flux_rows(flux, &[0, 1]);
            self.try_send(d, tag, b, "flux row halo send down");
        }
        if let Some(u) = self.up {
            let b = self.pack_flux_rows(flux, &[n - 2, n - 1]);
            self.try_send(u, tag, b, "flux row halo send up");
        }
        if let Some(d) = self.down {
            if let Some(payload) = self.try_recv(d, tag, "flux row halo recv down") {
                self.unpack_flux_rows(flux, &[-2, -1], payload);
            }
        }
        if let Some(u) = self.up {
            if let Some(payload) = self.try_recv(u, tag, "flux row halo recv up") {
                self.unpack_flux_rows(flux, &[n as isize, n as isize + 1], payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::universe;
    use ns_core::field::Patch;
    use ns_numerics::Grid;
    use std::thread;

    /// Two ranks exchange hand-built planes; each side must see exactly the
    /// other's edge columns in its ghosts.
    #[test]
    fn prim_exchange_moves_edge_columns() {
        let grid = Grid::small();
        let p0 = Patch::block(grid.clone(), 0, 2);
        let p1 = Patch::block(grid.clone(), 1, 2);
        let last_of_rank0 = (p0.nxl - 1) as f64;
        let eps = universe(2);
        let nr = grid.nr;
        let results: Vec<(f64, f64)> = thread::scope(|s| {
            let handles: Vec<_> = eps
                .into_iter()
                .zip([p0, p1])
                .map(|(mut ep, patch)| {
                    s.spawn(move || {
                        let rank = ep.rank();
                        let (left, right) = if rank == 0 { (None, Some(1)) } else { (Some(0), None) };
                        let mut prim = PrimField::zeros(&patch);
                        // mark every interior point with rank*1000 + i_local
                        for i in 0..patch.nxl {
                            for j in 0..nr {
                                prim.u.set(i + NG, j + NG, (rank * 1000 + i) as f64);
                            }
                        }
                        let mut halo = ThreadHalo::new(&mut ep, left, right, patch.nxl, nr, CommVersion::V5);
                        halo.begin_step(0);
                        halo.exchange_prims(&mut prim);
                        if rank == 0 {
                            // ghost col nxl must hold rank 1's column 0
                            (prim.u.at(NG + patch.nxl, NG), f64::NAN)
                        } else {
                            // ghost col -1 must hold rank 0's last column
                            (f64::NAN, prim.u.at(NG - 1, NG))
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(results[0].0, 1000.0, "rank 0 sees rank 1 col 0");
        assert_eq!(results[1].1, last_of_rank0, "rank 1 sees rank 0 last col");
    }

    /// V5 and V7 must deliver identical ghost flux columns; V7 just uses
    /// twice as many messages.
    #[test]
    fn v7_split_matches_v5_values_with_more_startups() {
        let grid = Grid::small();
        let run = |version: CommVersion| {
            let p0 = Patch::block(grid.clone(), 0, 2);
            let p1 = Patch::block(grid.clone(), 1, 2);
            let eps = universe(2);
            let nr = grid.nr;
            thread::scope(|s| {
                let handles: Vec<_> = eps
                    .into_iter()
                    .zip([p0, p1])
                    .map(|(mut ep, patch)| {
                        s.spawn(move || {
                            let rank = ep.rank();
                            let (left, right) = if rank == 0 { (None, Some(1)) } else { (Some(0), None) };
                            let mut flux = FluxField::zeros(&patch);
                            for c in 0..4 {
                                for i in 0..patch.nxl {
                                    for j in 0..nr {
                                        flux.set(
                                            c,
                                            i as isize,
                                            j as isize,
                                            (c * 100 + rank * 10 + i) as f64 + j as f64 * 0.001,
                                        );
                                    }
                                }
                            }
                            let mut halo = ThreadHalo::new(&mut ep, left, right, patch.nxl, nr, version);
                            halo.begin_step(3);
                            halo.exchange_flux(&mut flux);
                            let ghosts = if rank == 0 {
                                let n = patch.nxl as isize;
                                (0..4).map(|c| (flux.at(c, n, 5), flux.at(c, n + 1, 5))).collect::<Vec<_>>()
                            } else {
                                (0..4).map(|c| (flux.at(c, -2, 5), flux.at(c, -1, 5))).collect::<Vec<_>>()
                            };
                            (ghosts, halo.endpoint().stats)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
            })
        };
        let v5 = run(CommVersion::V5);
        let v7 = run(CommVersion::V7);
        assert_eq!(v5[0].0, v7[0].0, "rank 0 ghost values agree");
        assert_eq!(v5[1].0, v7[1].0, "rank 1 ghost values agree");
        assert_eq!(v7[0].1.sends, 2 * v5[0].1.sends, "V7 doubles flux start-ups");
        assert_eq!(v5[0].1.bytes_sent, v7[0].1.bytes_sent, "same total volume");
    }

    /// Once a lenient halo has failed, every later exchange must be a true
    /// no-op: no sends, no receives, no blocking — and the recorded error
    /// stays the *first* one even if a later attempt would have failed
    /// differently.
    #[test]
    fn lenient_failure_makes_later_exchanges_true_noops() {
        let grid = Grid::small();
        let patch = Patch::block(grid.clone(), 0, 2);
        let mut eps = universe(2);
        let mut ep = eps.remove(0); // rank 1's endpoint dropped: silent peer
        ep.timeout = std::time::Duration::from_millis(20);
        let mut prim = PrimField::zeros(&patch);
        let mut flux = FluxField::zeros(&patch);
        let mut halo = ThreadHalo::new(&mut ep, None, Some(1), patch.nxl, grid.nr, CommVersion::V5);
        halo.set_lenient();
        halo.begin_step(0);
        halo.exchange_prims(&mut prim);
        assert_eq!(halo.failure(), Some(&CommError::Timeout), "silent peer must surface as Timeout");
        let stats = halo.endpoint().stats;

        // point the halo at a nonexistent rank: if any later exchange still
        // attempted a send it would now fail with NoSuchRank, overwriting
        // the first error and bumping no counters is impossible
        halo.right = Some(7);
        let t0 = std::time::Instant::now();
        halo.begin_step(1);
        halo.exchange_prims(&mut prim);
        halo.exchange_flux(&mut flux);
        halo.exchange_prims(&mut prim);
        halo.exchange_flux(&mut flux);
        assert_eq!(halo.reduce_max(3.5), 3.5, "post-failure reduction is identity");
        assert_eq!(halo.endpoint().stats, stats, "no sends or recvs after the first failure");
        assert!(t0.elapsed() < std::time::Duration::from_millis(10), "no blocking after the first failure");
        assert_eq!(halo.failure(), Some(&CommError::Timeout), "first error is kept");
    }

    /// A V6 split-phase exchange posted before the failure must be dropped,
    /// not completed, once the halo has failed.
    #[test]
    fn lenient_failure_drops_pending_split_phase() {
        let grid = Grid::small();
        let patch = Patch::block(grid.clone(), 0, 2);
        let mut eps = universe(2);
        let mut ep = eps.remove(0);
        ep.timeout = std::time::Duration::from_millis(20);
        let mut prim = PrimField::zeros(&patch);
        let mut halo = ThreadHalo::new(&mut ep, None, Some(1), patch.nxl, grid.nr, CommVersion::V6);
        halo.set_lenient();
        halo.begin_step(0);
        halo.post_prims(&mut prim); // send posted, receive pending
        halo.finish_prims(&mut prim); // silent peer -> Timeout recorded
        assert_eq!(halo.failure(), Some(&CommError::Timeout));
        let stats = halo.endpoint().stats;
        halo.begin_step(1);
        halo.post_prims(&mut prim); // no-op: nothing sent, nothing pending
        let t0 = std::time::Instant::now();
        halo.finish_prims(&mut prim); // must not block on the dead receive
        assert!(t0.elapsed() < std::time::Duration::from_millis(10));
        assert_eq!(halo.endpoint().stats, stats);
    }

    /// Regression: a payload that does not match the receiver's geometry
    /// used to panic (`expect`) even in lenient mode; it must be a recorded
    /// `Malformed` failure, after which exchanges are no-ops as usual.
    #[test]
    fn malformed_payload_is_a_recorded_failure_in_lenient_mode() {
        let grid = Grid::small();
        let patch = Patch::block(grid.clone(), 0, 2);
        let mut eps = universe(2);
        let mut peer = eps.pop().unwrap();
        let mut ep = eps.pop().unwrap();
        // the peer sends a one-double "prim column" — far short of the
        // 3 * nr doubles this rank's geometry expects
        let mut b = PackBuf::new();
        b.pack_f64(1.0);
        peer.send(0, Tag { kind: MsgKind::Prims1, seq: 0 }, b).unwrap();
        let mut prim = PrimField::zeros(&patch);
        let mut halo = ThreadHalo::new(&mut ep, None, Some(1), patch.nxl, grid.nr, CommVersion::V5);
        halo.set_lenient();
        halo.begin_step(0);
        halo.exchange_prims(&mut prim);
        assert_eq!(halo.failure(), Some(&CommError::Malformed));
        let stats = halo.endpoint().stats;
        halo.exchange_prims(&mut prim);
        assert_eq!(halo.endpoint().stats, stats, "exchanges after a malformed payload are no-ops");
    }

    /// Strict mode keeps the fail-fast contract on malformed payloads.
    #[test]
    #[should_panic(expected = "prim halo payload")]
    fn malformed_payload_panics_in_strict_mode() {
        let grid = Grid::small();
        let patch = Patch::block(grid.clone(), 0, 2);
        let mut eps = universe(2);
        let mut peer = eps.pop().unwrap();
        let mut ep = eps.pop().unwrap();
        let mut b = PackBuf::new();
        b.pack_f64(1.0);
        peer.send(0, Tag { kind: MsgKind::Prims1, seq: 0 }, b).unwrap();
        let mut prim = PrimField::zeros(&patch);
        let mut halo = ThreadHalo::new(&mut ep, None, Some(1), patch.nxl, grid.nr, CommVersion::V5);
        halo.begin_step(0);
        halo.exchange_prims(&mut prim);
    }

    /// The pool is pre-warmed to the halo working set, so *every* pooled
    /// pack — the first step included — must be a pool hit: the exchange
    /// loop never takes the allocation path.
    #[test]
    fn exchange_loop_never_allocates_pack_buffers() {
        let grid = Grid::small();
        let p0 = Patch::block(grid.clone(), 0, 2);
        let p1 = Patch::block(grid.clone(), 1, 2);
        let eps = universe(2);
        let nr = grid.nr;
        let stats: Vec<(u64, u64)> = thread::scope(|s| {
            let handles: Vec<_> = eps
                .into_iter()
                .zip([p0, p1])
                .map(|(mut ep, patch)| {
                    s.spawn(move || {
                        let rank = ep.rank();
                        let (left, right) = if rank == 0 { (None, Some(1)) } else { (Some(0), None) };
                        let mut prim = PrimField::zeros(&patch);
                        let mut flux = FluxField::zeros(&patch);
                        let mut halo = ThreadHalo::new(&mut ep, left, right, patch.nxl, nr, CommVersion::V5);
                        let steps = 8;
                        for step in 0..steps {
                            halo.begin_step(step);
                            halo.exchange_prims(&mut prim);
                            halo.exchange_flux(&mut flux);
                            halo.exchange_prims(&mut prim);
                            halo.exchange_flux(&mut flux);
                        }
                        halo.pool_stats()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for &(acquired, reused) in &stats {
            // 4 sends per step to the single neighbour, pre-warmed pool:
            // every single pack runs on pooled storage
            assert_eq!(acquired, 4 * 8);
            assert_eq!(reused, acquired, "pre-warmed pool must never allocate: acquired {acquired}, reused {reused}");
        }
    }
}
