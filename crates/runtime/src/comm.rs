//! Message endpoints: tagged point-to-point communication over in-process
//! channels, with the accounting the paper's Tables 1-2 need.
//!
//! Each rank owns an [`Endpoint`]: senders to every peer and one inbox.
//! Receives match on `(source, tag)`; out-of-order arrivals are stashed, so
//! the protocol layers above never see interleaving. Every send and receive
//! increments the start-up counters — the paper counts both sides, which is
//! how 8 messages per step per neighbour pair become "16 start-ups per
//! step".
//!
//! ## Reliability layer
//!
//! With [`Endpoint::enable_reliability`] armed, every data payload is sealed
//! into a frame (body + per-link sequence number + checksum, see
//! [`crate::pack::open_frame`]) and the endpoint self-heals the link:
//!
//! * **corruption** — a frame failing checksum validation is discarded and a
//!   NACK is sent back immediately;
//! * **loss** — a receive that waits longer than the retry interval NACKs
//!   the sender and backs off exponentially, up to a retry budget;
//! * **duplication** — frames are deduplicated by their per-link sequence
//!   number, so a NACK racing the original delivery is harmless;
//! * **resend** — every sender keeps a bounded retransmit cache of recent
//!   frames and services peers' NACKs from inside its own blocking
//!   receives (both sides of a halo exchange block in `recv`, so the NACK
//!   path needs no background thread).
//!
//! The healing work is visible in [`CommStats`] (`retries`, `resends`,
//! `corrupt_frames`, `dup_frames`) and, when tracing is armed, as
//! `EventKind::Fault` events on the shared timeline. The fault-free path is
//! untouched: reliability off costs one `Option` check per call.

use crate::fault::{FaultAction, FaultInjector};
use crate::pack::{open_frame, peek_span, PackBuf, UnpackBuf};
use bytes::Bytes;
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use ns_metrics::{Counter, FlightRecorder, Registry};
use ns_telemetry::{EventKind, Tracer};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Registry handles for the comm-layer counters, resolved once per endpoint
/// so the hot path is one relaxed atomic add per update (the registry lock
/// is touched only here).
#[derive(Debug)]
struct CommMetrics {
    sends: Arc<Counter>,
    recvs: Arc<Counter>,
    bytes_sent: Arc<Counter>,
    bytes_recvd: Arc<Counter>,
    retries: Arc<Counter>,
    resends: Arc<Counter>,
    corrupt_frames: Arc<Counter>,
    dup_frames: Arc<Counter>,
    spanless_frames: Arc<Counter>,
}

impl CommMetrics {
    fn new() -> Self {
        let r = Registry::global();
        Self {
            sends: r.counter("ns_comm_sends_total"),
            recvs: r.counter("ns_comm_recvs_total"),
            bytes_sent: r.counter("ns_comm_bytes_sent_total"),
            bytes_recvd: r.counter("ns_comm_bytes_recvd_total"),
            retries: r.counter("ns_comm_retries_total"),
            resends: r.counter("ns_comm_resends_total"),
            corrupt_frames: r.counter("ns_comm_corrupt_frames_total"),
            dup_frames: r.counter("ns_comm_dup_frames_total"),
            spanless_frames: r.counter("ns_comm_spanless_frames_total"),
        }
    }
}

/// `0` means "no span"; everything else is a minted span id.
#[inline]
fn span_opt(span: u64) -> Option<u64> {
    (span != 0).then_some(span)
}

/// Message kinds of the solver protocol plus collective plumbing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// Grouped primitive columns (`u, v, T`) before the predictor.
    Prims1,
    /// Two-column flux packet after the stage-1 flux evaluation.
    Flux1,
    /// Grouped primitive columns before the corrector (N-S only).
    Prims2,
    /// Two-column flux packet after the stage-2 flux evaluation.
    Flux2,
    /// Second half of a split flux packet (Version 7 burst avoidance).
    FluxSplit,
    /// Gather leg of a collective.
    Gather,
    /// Broadcast leg of a collective.
    Bcast,
    /// Control: negative acknowledgement requesting a frame resend (the
    /// payload names the wanted tag). Never framed, never stashed, never
    /// counted as an application start-up.
    Nack,
    /// Primitive ghost-row exchange with a radial neighbour (2-D pencil
    /// decomposition; the sequence number encodes step and call index).
    PrimsR,
    /// Two-row flux packet exchanged with a radial neighbour.
    FluxR,
}

impl MsgKind {
    /// The kind's name, used as the label of trace events.
    pub fn name(&self) -> &'static str {
        match self {
            MsgKind::Prims1 => "Prims1",
            MsgKind::Flux1 => "Flux1",
            MsgKind::Prims2 => "Prims2",
            MsgKind::Flux2 => "Flux2",
            MsgKind::FluxSplit => "FluxSplit",
            MsgKind::Gather => "Gather",
            MsgKind::Bcast => "Bcast",
            MsgKind::Nack => "Nack",
            MsgKind::PrimsR => "PrimsR",
            MsgKind::FluxR => "FluxR",
        }
    }

    /// Stable wire code (NACK payloads name the tag they want resent).
    pub fn code(&self) -> u64 {
        match self {
            MsgKind::Prims1 => 0,
            MsgKind::Flux1 => 1,
            MsgKind::Prims2 => 2,
            MsgKind::Flux2 => 3,
            MsgKind::FluxSplit => 4,
            MsgKind::Gather => 5,
            MsgKind::Bcast => 6,
            MsgKind::Nack => 7,
            MsgKind::PrimsR => 8,
            MsgKind::FluxR => 9,
        }
    }

    /// Inverse of [`MsgKind::code`].
    pub fn from_code(code: u64) -> Option<MsgKind> {
        Some(match code {
            0 => MsgKind::Prims1,
            1 => MsgKind::Flux1,
            2 => MsgKind::Prims2,
            3 => MsgKind::Flux2,
            4 => MsgKind::FluxSplit,
            5 => MsgKind::Gather,
            6 => MsgKind::Bcast,
            7 => MsgKind::Nack,
            8 => MsgKind::PrimsR,
            9 => MsgKind::FluxR,
            _ => return None,
        })
    }
}

/// Full message tag: protocol kind plus a sequence number (the step for
/// solver messages, a collective epoch for collectives).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Tag {
    /// Protocol kind.
    pub kind: MsgKind,
    /// Sequence number disambiguating steps/epochs.
    pub seq: u64,
}

/// A tagged message.
#[derive(Clone, Debug)]
pub struct Message {
    /// Sending rank.
    pub src: usize,
    /// Tag.
    pub tag: Tag,
    /// Causal span the message belongs to (0 = none). On the reliable path
    /// this is recovered from the frame trailer on receive, so it survives
    /// the wire, the retransmit cache and the stash.
    pub span: u64,
    /// Payload bytes.
    pub payload: Bytes,
}

/// Per-rank communication statistics (start-ups, volume, and the healing
/// work of the reliability layer).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Messages sent.
    pub sends: u64,
    /// Messages received.
    pub recvs: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Payload bytes received.
    pub bytes_recvd: u64,
    /// NACKs this rank issued while waiting for an overdue or corrupt
    /// frame (receiver-side retries).
    pub retries: u64,
    /// Cached frames this rank retransmitted in answer to a peer's NACK.
    pub resends: u64,
    /// Received frames discarded for checksum failure.
    pub corrupt_frames: u64,
    /// Received frames discarded as duplicates.
    pub dup_frames: u64,
    /// Cached frames whose span trailer could not be parsed when serving a
    /// resend; their trace events carry no span instead of a fabricated
    /// span 0.
    pub spanless_frames: u64,
}

impl CommStats {
    /// Total start-ups, counting each send and each receive (the paper's
    /// convention). Control traffic (NACKs, resends) is excluded: Tables 1-2
    /// count the application protocol, not the healing layer.
    pub fn startups(&self) -> u64 {
        self.sends + self.recvs
    }

    /// Merge another rank's (or generation's) counters into this one.
    pub fn merge(&mut self, o: &CommStats) {
        self.sends += o.sends;
        self.recvs += o.recvs;
        self.bytes_sent += o.bytes_sent;
        self.bytes_recvd += o.bytes_recvd;
        self.retries += o.retries;
        self.resends += o.resends;
        self.corrupt_frames += o.corrupt_frames;
        self.dup_frames += o.dup_frames;
        self.spanless_frames += o.spanless_frames;
    }
}

/// Tuning of the self-healing receive path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReliableConfig {
    /// How long a receive waits before its first NACK.
    pub retry_timeout: Duration,
    /// How many NACKs a single receive may issue (exponential backoff
    /// between them). After the budget, the receive waits out the hard
    /// [`Endpoint::timeout`] and fails.
    pub max_retries: u32,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        Self { retry_timeout: Duration::from_millis(5), max_retries: 6 }
    }
}

/// Retransmit-cache capacity (frames). Old entries are evicted FIFO; a NACK
/// for an evicted frame goes unanswered and surfaces as the requester's
/// timeout, which the recovery layer turns into a rollback.
const RETRANSMIT_CACHE: usize = 256;

/// Dedup window per source: sequence numbers this far below the newest seen
/// are considered already delivered.
const DEDUP_WINDOW: usize = 512;

/// Per-endpoint state of the reliability layer (boxed off the fault-free
/// hot path: a disabled endpoint pays one `Option` check per send/recv).
#[derive(Debug)]
struct Reliability {
    cfg: ReliableConfig,
    /// Next frame sequence number per destination link.
    next_seq: Vec<u64>,
    /// Recently sent frames, per `(dest, tag)`, for NACK-driven resend.
    cache: HashMap<(usize, Tag), Bytes>,
    /// FIFO eviction order of the retransmit cache.
    cache_order: VecDeque<(usize, Tag)>,
    /// Per-source dedup floor: sequences below it count as delivered.
    seen_floor: Vec<u64>,
    /// Per-source delivered sequences at or above the floor.
    seen: Vec<BTreeSet<u64>>,
    /// Deterministic fault injector (tests and chaos runs only).
    injector: Option<FaultInjector>,
}

impl Reliability {
    fn new(size: usize, cfg: ReliableConfig) -> Self {
        Self {
            cfg,
            next_seq: vec![0; size],
            cache: HashMap::new(),
            cache_order: VecDeque::new(),
            seen_floor: vec![0; size],
            seen: vec![BTreeSet::new(); size],
            injector: None,
        }
    }

    /// Record a delivered frame sequence. Returns `false` when the frame is
    /// a duplicate that must be discarded.
    fn accept(&mut self, src: usize, seq: u64) -> bool {
        if seq < self.seen_floor[src] || !self.seen[src].insert(seq) {
            return false;
        }
        while self.seen[src].len() > DEDUP_WINDOW {
            if let Some(min) = self.seen[src].pop_first() {
                self.seen_floor[src] = min + 1;
            }
        }
        true
    }

    /// Cache a sealed frame for possible retransmission.
    fn remember(&mut self, dest: usize, tag: Tag, frame: Bytes) {
        if self.cache.insert((dest, tag), frame).is_none() {
            self.cache_order.push_back((dest, tag));
        }
        while self.cache.len() > RETRANSMIT_CACHE {
            if let Some(old) = self.cache_order.pop_front() {
                self.cache.remove(&old);
            }
        }
    }
}

/// Errors from endpoint operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// Destination rank does not exist.
    NoSuchRank(usize),
    /// The peer hung up (its endpoint was dropped, e.g. after a panic).
    Disconnected,
    /// No matching message arrived within the deadline.
    Timeout,
    /// A matched payload failed to unpack (wrong framing or length for the
    /// receiver's geometry) — the peer is in an inconsistent state.
    Malformed,
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::NoSuchRank(r) => write!(f, "no such rank {r}"),
            CommError::Disconnected => write!(f, "peer disconnected"),
            CommError::Timeout => write!(f, "receive timed out"),
            CommError::Malformed => write!(f, "malformed payload"),
        }
    }
}

impl std::error::Error for CommError {}

/// A rank's communication endpoint.
pub struct Endpoint {
    rank: usize,
    txs: Vec<Sender<Message>>,
    rx: Receiver<Message>,
    stash: Vec<Message>,
    reliability: Option<Box<Reliability>>,
    /// Current causal span: stamped into every frame this endpoint seals
    /// (0 = outside any step). Set per step by the halo layer.
    span: u64,
    metrics: CommMetrics,
    /// Flight recorder: a bounded ring of recent comm events, dumped as the
    /// rank's black box when something goes wrong.
    pub flight: FlightRecorder,
    /// Accumulated statistics.
    pub stats: CommStats,
    /// Accumulated blocking time inside `recv` (the "non-overlapped
    /// communication" component of the paper's time breakdown).
    pub wait_time: Duration,
    /// Receive deadline; a hung peer surfaces as [`CommError::Timeout`].
    pub timeout: Duration,
    /// Message-trace recorder (disabled by default; enable with a shared
    /// origin to get timestamped send/recv events).
    pub tracer: Tracer,
}

impl Endpoint {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the universe.
    pub fn size(&self) -> usize {
        self.txs.len()
    }

    /// Arm the reliability layer: outgoing payloads are sealed into
    /// checksummed frames, receives validate/dedup them and heal losses with
    /// NACK-driven resends. All endpoints of a universe must agree on the
    /// mode (see [`universe_reliable`]).
    pub fn enable_reliability(&mut self, cfg: ReliableConfig) {
        let size = self.txs.len();
        self.reliability = Some(Box::new(Reliability::new(size, cfg)));
    }

    /// Is the reliability layer armed?
    pub fn reliable(&self) -> bool {
        self.reliability.is_some()
    }

    /// Set the current causal span (0 = none). Every frame sealed after
    /// this call carries the span in its trailer, so receives, NACKs and
    /// resends of the step's traffic stitch into one cross-rank trace.
    pub fn set_span(&mut self, span: u64) {
        self.span = span;
    }

    /// The current causal span (0 = none).
    pub fn current_span(&self) -> u64 {
        self.span
    }

    /// Attach a deterministic fault injector (requires reliability — an
    /// unframed endpoint cannot recover from what the injector does).
    pub fn set_fault_injector(&mut self, inj: FaultInjector) {
        let r = self.reliability.as_mut().expect("fault injection requires enable_reliability");
        r.injector = Some(inj);
    }

    /// Committed-fault counters of the attached injector, if any.
    pub fn fault_stats(&self) -> Option<crate::fault::FaultStats> {
        self.reliability.as_ref().and_then(|r| r.injector.as_ref()).map(|i| i.stats)
    }

    /// Send a packed buffer to `to` (non-blocking; channels are unbounded,
    /// like PVM's buffered sends).
    pub fn send(&mut self, to: usize, tag: Tag, buf: PackBuf) -> Result<(), CommError> {
        if self.reliability.is_some() {
            return self.send_reliable(to, tag, buf);
        }
        let start = Instant::now();
        let span = self.span;
        let payload = buf.freeze();
        let bytes = payload.len() as u64;
        let tx = self.txs.get(to).ok_or(CommError::NoSuchRank(to))?;
        tx.send(Message { src: self.rank, tag, span, payload }).map_err(|_| CommError::Disconnected)?;
        // count only delivered hand-offs: a Disconnected error is not a
        // start-up, and Tables 1-2 must not credit it as one
        self.stats.sends += 1;
        self.stats.bytes_sent += bytes;
        self.metrics.sends.inc();
        self.metrics.bytes_sent.add(bytes);
        self.flight.record("send", tag.kind.name(), Some(to), None, span_opt(span), bytes);
        if self.tracer.enabled() {
            self.tracer.record_spanned(
                EventKind::Send,
                self.rank,
                tag.kind.name(),
                Some(to),
                bytes,
                start,
                start.elapsed(),
                span_opt(span),
            );
        }
        Ok(())
    }

    /// Framed send: seal, cache for retransmission, then pass the wire copy
    /// through the fault injector (which may drop, corrupt, duplicate or
    /// delay it). The pristine frame stays in the cache, so every injected
    /// fault is recoverable via NACK.
    fn send_reliable(&mut self, to: usize, tag: Tag, mut buf: PackBuf) -> Result<(), CommError> {
        let start = Instant::now();
        if to >= self.txs.len() {
            return Err(CommError::NoSuchRank(to));
        }
        let span = self.span;
        let r = self.reliability.as_mut().expect("checked by caller");
        let seq = r.next_seq[to];
        r.next_seq[to] += 1;
        buf.seal_frame(seq, span);
        let payload = buf.freeze();
        let bytes = payload.len() as u64;
        r.remember(to, tag, payload.clone());
        let action = r.injector.as_mut().map_or(FaultAction::Deliver, |i| i.decide());
        let src = self.rank;
        let outcome = match action {
            FaultAction::Deliver => self.txs[to].send(Message { src, tag, span, payload }).is_ok(),
            FaultAction::Drop => {
                self.trace_fault("fault:drop", Some(to), Some(seq), bytes, start);
                true // the network ate it; the app's send succeeded
            }
            FaultAction::Corrupt { byte, bit } => {
                let mut wire = payload.to_vec();
                let idx = (byte % wire.len() as u64) as usize;
                wire[idx] ^= 1 << bit;
                self.trace_fault("fault:corrupt", Some(to), Some(seq), bytes, start);
                self.txs[to].send(Message { src, tag, span, payload: Bytes::from(wire) }).is_ok()
            }
            FaultAction::Duplicate => {
                self.trace_fault("fault:dup", Some(to), Some(seq), bytes, start);
                let first = self.txs[to].send(Message { src, tag, span, payload: payload.clone() }).is_ok();
                first && self.txs[to].send(Message { src, tag, span, payload }).is_ok()
            }
            FaultAction::Delay(d) => {
                self.trace_fault("fault:delay", Some(to), Some(seq), bytes, start);
                std::thread::sleep(d);
                self.txs[to].send(Message { src, tag, span, payload }).is_ok()
            }
        };
        if !outcome {
            return Err(CommError::Disconnected);
        }
        self.stats.sends += 1;
        self.stats.bytes_sent += bytes;
        self.metrics.sends.inc();
        self.metrics.bytes_sent.add(bytes);
        self.flight.record("send", tag.kind.name(), Some(to), Some(seq), span_opt(span), bytes);
        if self.tracer.enabled() {
            self.tracer.record_spanned(
                EventKind::Send,
                self.rank,
                tag.kind.name(),
                Some(to),
                bytes,
                start,
                start.elapsed(),
                span_opt(span),
            );
        }
        Ok(())
    }

    fn trace_fault(&mut self, label: &'static str, peer: Option<usize>, seq: Option<u64>, bytes: u64, start: Instant) {
        self.flight.record("fault", label, peer, seq, span_opt(self.span), bytes);
        if self.tracer.enabled() {
            self.tracer.record_spanned(
                EventKind::Fault,
                self.rank,
                label,
                peer,
                bytes,
                start,
                start.elapsed(),
                span_opt(self.span),
            );
        }
    }

    /// Fire-and-forget control send (never framed, never counted as an
    /// application start-up). Errors are ignored: a NACK to a dead peer
    /// changes nothing.
    fn send_nack(&mut self, to: usize, wanted: Tag) {
        let mut b = PackBuf::new();
        b.pack_u64(wanted.kind.code());
        b.pack_u64(wanted.seq);
        let payload = b.freeze();
        if let Some(tx) = self.txs.get(to) {
            let _ =
                tx.send(Message { src: self.rank, tag: Tag { kind: MsgKind::Nack, seq: 0 }, span: self.span, payload });
        }
        self.stats.retries += 1;
        self.metrics.retries.inc();
        self.trace_fault("fault:nack", Some(to), None, 0, Instant::now());
    }

    /// Service a peer's NACK from the retransmit cache. A cache miss (frame
    /// never sent, or evicted) is ignored — the requester's budget will
    /// expire and the recovery layer takes over.
    fn serve_nack(&mut self, m: Message) {
        let mut u = UnpackBuf::new(m.payload);
        let (Ok(code), Ok(seq)) = (u.unpack_u64(), u.unpack_u64()) else {
            return;
        };
        let Some(kind) = MsgKind::from_code(code) else {
            return;
        };
        let wanted = Tag { kind, seq };
        let cached = self.reliability.as_ref().and_then(|r| r.cache.get(&(m.src, wanted)).cloned());
        if let Some(frame) = cached {
            let src = self.rank;
            // the resend serves the cached sealed bytes, so the frame's
            // original span rides along; label the resend with it too. A
            // frame too short to carry a trailer has no span to stitch —
            // count it and record the events spanless rather than inventing
            // span 0.
            let frame_span = match peek_span(&frame) {
                Some(span) => span,
                None => {
                    self.stats.spanless_frames += 1;
                    self.metrics.spanless_frames.inc();
                    0
                }
            };
            if let Some(tx) = self.txs.get(m.src) {
                let _ = tx.send(Message { src, tag: wanted, span: frame_span, payload: frame });
            }
            self.stats.resends += 1;
            self.metrics.resends.inc();
            self.flight.record("fault", "fault:resend", Some(m.src), None, span_opt(frame_span), 0);
            if self.tracer.enabled() {
                let now = Instant::now();
                self.tracer.record_spanned(
                    EventKind::Fault,
                    self.rank,
                    "fault:resend",
                    Some(m.src),
                    0,
                    now,
                    now.elapsed(),
                    span_opt(frame_span),
                );
            }
        }
    }

    /// Validate, dedup and deframe an incoming data message. Returns the
    /// deframed message to deliver or stash, or `None` when the frame was
    /// discarded (corrupt — NACKed immediately — or duplicate).
    fn admit_frame(&mut self, m: Message) -> Option<Message> {
        let (src, tag) = (m.src, m.tag);
        match open_frame(m.payload) {
            Ok(frame) => {
                let fresh = self.reliability.as_mut().expect("reliable path").accept(src, frame.seq);
                if !fresh {
                    self.stats.dup_frames += 1;
                    self.metrics.dup_frames.inc();
                    self.trace_fault(
                        "fault:dup-discard",
                        Some(src),
                        Some(frame.seq),
                        frame.body.len() as u64,
                        Instant::now(),
                    );
                    return None;
                }
                Some(Message { src, tag, span: frame.span, payload: frame.body })
            }
            Err(_) => {
                self.stats.corrupt_frames += 1;
                self.metrics.corrupt_frames.inc();
                self.trace_fault("fault:checksum", Some(src), None, 0, Instant::now());
                self.send_nack(src, tag);
                None
            }
        }
    }

    /// Absolute deadline for a receive that started at `start`. `start +
    /// timeout` overflows `Instant` for effectively-infinite timeouts
    /// (`Duration::MAX` as "wait forever"), which used to panic before the
    /// channel was even polled; saturate to a deadline ~136 years out
    /// instead. Both receive paths derive their deadline here and compare
    /// it with `saturating_duration_since`, so an already-expired deadline
    /// is a clean `Timeout` on either path, never Duration arithmetic
    /// underflow.
    fn recv_deadline(&self, start: Instant) -> Instant {
        start.checked_add(self.timeout).unwrap_or_else(|| start + Duration::from_secs(u32::MAX as u64))
    }

    /// Blocking receive matching `(from, tag)`; non-matching arrivals are
    /// stashed for later receives.
    pub fn recv(&mut self, from: usize, tag: Tag) -> Result<Bytes, CommError> {
        if self.reliability.is_some() {
            return self.recv_reliable(from, tag);
        }
        let start = Instant::now();
        // check the stash first
        if let Some(pos) = self.stash.iter().position(|m| m.src == from && m.tag == tag) {
            let m = self.stash.swap_remove(pos);
            return Ok(self.deliver(m, start));
        }
        let deadline = self.recv_deadline(start);
        loop {
            let now = Instant::now();
            let left = deadline.saturating_duration_since(now);
            if left.is_zero() {
                self.wait_time += now - start;
                return Err(CommError::Timeout);
            }
            match self.rx.recv_timeout(left) {
                Ok(m) if m.src == from && m.tag == tag => {
                    self.wait_time += start.elapsed();
                    return Ok(self.deliver(m, start));
                }
                Ok(m) => self.stash.push(m),
                Err(RecvTimeoutError::Timeout) => {
                    self.wait_time += start.elapsed();
                    return Err(CommError::Timeout);
                }
                Err(RecvTimeoutError::Disconnected) => {
                    self.wait_time += start.elapsed();
                    return Err(CommError::Disconnected);
                }
            }
        }
    }

    /// Count and trace a matched message, returning its payload. The trace
    /// and flight events carry the *sender's* span (recovered from the
    /// frame trailer), which is what stitches the two rank timelines into
    /// one causal trace.
    fn deliver(&mut self, m: Message, start: Instant) -> Bytes {
        let bytes = m.payload.len() as u64;
        self.stats.recvs += 1;
        self.stats.bytes_recvd += bytes;
        self.metrics.recvs.inc();
        self.metrics.bytes_recvd.add(bytes);
        self.flight.record("recv", m.tag.kind.name(), Some(m.src), None, span_opt(m.span), bytes);
        if self.tracer.enabled() {
            self.tracer.record_spanned(
                EventKind::Recv,
                self.rank,
                m.tag.kind.name(),
                Some(m.src),
                bytes,
                start,
                start.elapsed(),
                span_opt(m.span),
            );
        }
        m.payload
    }

    /// Self-healing receive: services NACKs while blocked, validates and
    /// dedups frames, and escalates an overdue match into NACK-driven
    /// resend requests with bounded exponential backoff.
    fn recv_reliable(&mut self, from: usize, tag: Tag) -> Result<Bytes, CommError> {
        let start = Instant::now();
        if let Some(pos) = self.stash.iter().position(|m| m.src == from && m.tag == tag) {
            let m = self.stash.swap_remove(pos);
            return Ok(self.deliver(m, start));
        }
        let deadline = self.recv_deadline(start);
        let cfg = self.reliability.as_ref().expect("reliable path").cfg;
        let mut retries = 0u32;
        let mut interval = cfg.retry_timeout;
        let mut retry_at = start.checked_add(interval).unwrap_or(deadline);
        loop {
            let now = Instant::now();
            if deadline.saturating_duration_since(now).is_zero() {
                self.wait_time += now - start;
                return Err(CommError::Timeout);
            }
            // wake at whichever comes first: hard deadline or next retry
            let wake = if retries < cfg.max_retries { deadline.min(retry_at) } else { deadline };
            match self.rx.recv_timeout(wake.saturating_duration_since(now)) {
                Ok(m) if m.tag.kind == MsgKind::Nack => self.serve_nack(m),
                Ok(m) => {
                    if let Some(m) = self.admit_frame(m) {
                        if m.src == from && m.tag == tag {
                            self.wait_time += start.elapsed();
                            return Ok(self.deliver(m, start));
                        }
                        self.stash.push(m);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if Instant::now() >= deadline {
                        self.wait_time += start.elapsed();
                        return Err(CommError::Timeout);
                    }
                    if retries < cfg.max_retries {
                        // the frame is overdue: ask the sender to retransmit
                        retries += 1;
                        self.send_nack(from, tag);
                        interval = interval.saturating_mul(2);
                        retry_at = Instant::now().checked_add(interval).unwrap_or(deadline);
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    self.wait_time += start.elapsed();
                    return Err(CommError::Disconnected);
                }
            }
        }
    }
}

/// Create a fully connected universe of `size` endpoints.
pub fn universe(size: usize) -> Vec<Endpoint> {
    assert!(size >= 1);
    let mut txs = Vec::with_capacity(size);
    let mut rxs = Vec::with_capacity(size);
    for _ in 0..size {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }
    rxs.into_iter()
        .enumerate()
        .map(|(rank, rx)| Endpoint {
            rank,
            txs: txs.clone(),
            rx,
            stash: Vec::new(),
            reliability: None,
            span: 0,
            metrics: CommMetrics::new(),
            flight: FlightRecorder::default(),
            stats: CommStats::default(),
            wait_time: Duration::ZERO,
            timeout: Duration::from_secs(30),
            tracer: Tracer::default(),
        })
        .collect()
}

/// Create a universe with the reliability layer armed on every endpoint and,
/// optionally, a deterministic fault injector per rank (generation 0; the
/// recovery driver builds later generations itself).
pub fn universe_reliable(size: usize, cfg: ReliableConfig, plan: Option<&crate::fault::FaultPlan>) -> Vec<Endpoint> {
    let mut eps = universe(size);
    for (rank, ep) in eps.iter_mut().enumerate() {
        ep.enable_reliability(cfg);
        if let Some(plan) = plan {
            ep.set_fault_injector(FaultInjector::for_rank(plan, rank, 0));
        }
    }
    eps
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn tag(kind: MsgKind, seq: u64) -> Tag {
        Tag { kind, seq }
    }

    fn buf(vals: &[f64]) -> PackBuf {
        let mut p = PackBuf::new();
        p.pack_f64_slice(vals);
        p
    }

    /// Unpack a payload of exactly `n` doubles.
    fn vals(payload: Bytes, n: usize) -> Vec<f64> {
        let mut u = UnpackBuf::new(payload);
        let mut out = vec![0.0; n];
        u.unpack_f64_slice(&mut out).unwrap();
        u.finish().unwrap();
        out
    }

    #[test]
    fn ping_pong_between_threads() {
        let mut eps = universe(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        thread::scope(|s| {
            s.spawn(move || {
                a.send(1, tag(MsgKind::Flux1, 0), buf(&[1.0, 2.0])).unwrap();
                let got = a.recv(1, tag(MsgKind::Flux2, 0)).unwrap();
                assert_eq!(got.len(), 8);
            });
            s.spawn(move || {
                let got = b.recv(0, tag(MsgKind::Flux1, 0)).unwrap();
                assert_eq!(got.len(), 16);
                b.send(0, tag(MsgKind::Flux2, 0), buf(&[9.0])).unwrap();
            });
        });
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        let mut eps = universe(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(1, tag(MsgKind::Prims1, 7), buf(&[1.0])).unwrap();
        a.send(1, tag(MsgKind::Flux1, 7), buf(&[2.0, 3.0])).unwrap();
        // receive in the opposite order
        let f = b.recv(0, tag(MsgKind::Flux1, 7)).unwrap();
        assert_eq!(f.len(), 16);
        let p = b.recv(0, tag(MsgKind::Prims1, 7)).unwrap();
        assert_eq!(p.len(), 8);
        assert_eq!(b.stats.recvs, 2);
    }

    #[test]
    fn stats_count_both_sides() {
        let mut eps = universe(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(1, tag(MsgKind::Prims1, 0), buf(&[0.0; 10])).unwrap();
        let _ = b.recv(0, tag(MsgKind::Prims1, 0)).unwrap();
        assert_eq!(a.stats.sends, 1);
        assert_eq!(a.stats.startups(), 1);
        assert_eq!(b.stats.recvs, 1);
        assert_eq!(a.stats.bytes_sent, 80);
        assert_eq!(b.stats.bytes_recvd, 80);
    }

    #[test]
    fn tracer_records_sends_and_receives() {
        let t0 = Instant::now();
        let mut eps = universe(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.tracer.enable(t0);
        b.tracer.enable(t0);
        a.send(1, tag(MsgKind::Prims1, 3), buf(&[0.0; 5])).unwrap();
        let _ = b.recv(0, tag(MsgKind::Prims1, 3)).unwrap();
        assert_eq!(a.tracer.events.len(), 1);
        let s = &a.tracer.events[0];
        assert_eq!(s.kind, ns_telemetry::EventKind::Send);
        assert_eq!(s.label, "Prims1");
        assert_eq!(s.peer, Some(1));
        assert_eq!(s.bytes, 40);
        let r = &b.tracer.events[0];
        assert_eq!(r.kind, ns_telemetry::EventKind::Recv);
        assert_eq!((r.rank, r.peer), (1, Some(0)));
        assert_eq!(r.bytes, 40);
    }

    #[test]
    fn send_to_missing_rank_errors() {
        let mut eps = universe(2);
        let mut a = eps.remove(0);
        let err = a.send(5, tag(MsgKind::Prims1, 0), buf(&[1.0])).unwrap_err();
        assert_eq!(err, CommError::NoSuchRank(5));
    }

    #[test]
    fn recv_times_out_when_peer_is_silent() {
        let mut eps = universe(2);
        let mut a = eps.remove(0);
        a.timeout = Duration::from_millis(20);
        let err = a.recv(1, tag(MsgKind::Prims1, 0)).unwrap_err();
        assert_eq!(err, CommError::Timeout);
        assert!(a.wait_time >= Duration::from_millis(15));
    }

    #[test]
    fn infinite_timeout_recv_does_not_panic() {
        // regression: `start + self.timeout` overflowed (panicked) for
        // effectively-infinite timeouts like `Duration::MAX` before the
        // inbox was even polled, on both the plain and reliable paths
        let mut eps = universe(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(1, tag(MsgKind::Prims1, 0), buf(&[4.0])).unwrap();
        b.timeout = Duration::MAX;
        let got = b.recv(0, tag(MsgKind::Prims1, 0)).unwrap();
        assert_eq!(vals(got, 1), vec![4.0]);

        let mut eps = universe_reliable(2, ReliableConfig::default(), None);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(1, tag(MsgKind::Prims1, 0), buf(&[7.0])).unwrap();
        b.timeout = Duration::MAX;
        let got = b.recv(0, tag(MsgKind::Prims1, 0)).unwrap();
        assert_eq!(vals(got, 1), vec![7.0]);
    }

    #[test]
    fn expired_deadline_recv_times_out_cleanly() {
        // regression: an already-expired deadline must surface as a clean
        // `Timeout` (saturating arithmetic), never a Duration underflow —
        // exercised on both receive paths, which now share `recv_deadline`
        let mut eps = universe(2);
        let mut a = eps.remove(0);
        a.timeout = Duration::ZERO;
        assert_eq!(a.recv(1, tag(MsgKind::Prims1, 0)).unwrap_err(), CommError::Timeout);

        let mut eps = universe_reliable(2, ReliableConfig::default(), None);
        let mut a = eps.remove(0);
        a.timeout = Duration::ZERO;
        assert_eq!(a.recv(1, tag(MsgKind::Prims1, 0)).unwrap_err(), CommError::Timeout);
    }

    #[test]
    fn recv_detects_dead_peer() {
        let mut eps = universe(2);
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        drop(b); // peer "panicked"
                 // a's own sender clones keep the channel alive only for a's inbox;
                 // receiving from the dropped peer can only time out (the message
                 // will never come), while a send to it still succeeds into a's copy
                 // of the sender -> use a short timeout
        a.timeout = Duration::from_millis(10);
        let err = a.recv(1, tag(MsgKind::Prims1, 0)).unwrap_err();
        assert_eq!(err, CommError::Timeout);
    }

    #[test]
    fn failed_send_is_not_counted() {
        // satellite: a send that errors must not inflate the start-up
        // counters Tables 1-2 are built from
        let mut eps = universe(2);
        let mut a = eps.remove(0);
        let err = a.send(9, tag(MsgKind::Prims1, 0), buf(&[1.0])).unwrap_err();
        assert_eq!(err, CommError::NoSuchRank(9));
        assert_eq!(a.stats.sends, 0);
        assert_eq!(a.stats.bytes_sent, 0);
    }

    #[test]
    fn send_to_dropped_peer_disconnects_without_counting() {
        // Tear down every clone of the peer's inbox sender so the channel
        // actually disconnects (a full universe keeps self-clones alive).
        let (tx, rx_a) = unbounded();
        let (tx_b, rx_b) = unbounded();
        let mut a = Endpoint {
            rank: 0,
            txs: vec![tx, tx_b],
            rx: rx_a,
            stash: Vec::new(),
            reliability: None,
            span: 0,
            metrics: CommMetrics::new(),
            flight: FlightRecorder::default(),
            stats: CommStats::default(),
            wait_time: Duration::ZERO,
            timeout: Duration::from_secs(1),
            tracer: Tracer::default(),
        };
        drop(rx_b); // rank 1's endpoint is gone
        let err = a.send(1, tag(MsgKind::Flux1, 0), buf(&[1.0])).unwrap_err();
        assert_eq!(err, CommError::Disconnected);
        assert_eq!(a.stats.sends, 0, "Disconnected send must not count");
        assert_eq!(a.stats.bytes_sent, 0);
    }

    #[test]
    fn stash_matches_in_arrival_order_per_tag() {
        // same (src, tag) sent twice: receives must drain in FIFO order
        let mut eps = universe(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(1, tag(MsgKind::Prims1, 1), buf(&[1.0])).unwrap();
        a.send(1, tag(MsgKind::Flux1, 1), buf(&[2.0])).unwrap();
        a.send(1, tag(MsgKind::Prims1, 2), buf(&[3.0])).unwrap();
        // force all three into the stash by asking for the last first
        let p2 = b.recv(0, tag(MsgKind::Prims1, 2)).unwrap();
        assert_eq!(vals(p2, 1), vec![3.0]);
        let p1 = b.recv(0, tag(MsgKind::Prims1, 1)).unwrap();
        assert_eq!(vals(p1, 1), vec![1.0]);
        let f1 = b.recv(0, tag(MsgKind::Flux1, 1)).unwrap();
        assert_eq!(vals(f1, 1), vec![2.0]);
    }

    #[test]
    fn timeout_accrues_wait_time() {
        let mut eps = universe(2);
        let mut a = eps.remove(0);
        a.timeout = Duration::from_millis(15);
        let before = a.wait_time;
        let _ = a.recv(1, tag(MsgKind::Prims1, 0)).unwrap_err();
        let first = a.wait_time - before;
        assert!(first >= Duration::from_millis(10), "timeout must be charged to wait_time, got {first:?}");
        let _ = a.recv(1, tag(MsgKind::Prims1, 1)).unwrap_err();
        assert!(a.wait_time >= first + Duration::from_millis(10), "wait_time accumulates across receives");
    }

    // ---- reliability layer ----

    #[test]
    fn reliable_roundtrip_is_transparent() {
        let mut eps = universe_reliable(2, ReliableConfig::default(), None);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(1, tag(MsgKind::Prims1, 0), buf(&[1.5, -2.5])).unwrap();
        let got = b.recv(0, tag(MsgKind::Prims1, 0)).unwrap();
        assert_eq!(vals(got, 2), vec![1.5, -2.5]);
        // framing is invisible to the byte accounting the tables use? No:
        // the trailer rides along on the wire, and stats count wire bytes.
        assert_eq!(a.stats.bytes_sent, 16 + crate::pack::FRAME_TRAILER as u64);
        assert_eq!(a.stats.sends, 1);
        assert_eq!(b.stats.recvs, 1);
        assert_eq!(b.stats.corrupt_frames + b.stats.dup_frames, 0);
    }

    #[test]
    fn duplicated_frames_are_deduped() {
        let plan = crate::fault::FaultPlan { seed: 11, dup_rate: 1.0, ..crate::fault::FaultPlan::default() };
        let mut eps = universe_reliable(2, ReliableConfig::default(), Some(&plan));
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        for i in 0..5 {
            a.send(1, tag(MsgKind::Prims1, i), buf(&[i as f64])).unwrap();
        }
        for i in 0..5 {
            let got = b.recv(0, tag(MsgKind::Prims1, i)).unwrap();
            assert_eq!(vals(got, 1), vec![i as f64]);
        }
        // the final frame's duplicate is still in flight when the last
        // matching recv returns; drain it with one timed-out receive
        b.timeout = Duration::from_millis(40);
        let _ = b.recv(0, tag(MsgKind::Prims1, 99)).unwrap_err();
        // every frame was sent twice; the copies must all be discarded
        assert_eq!(b.stats.dup_frames, 5);
        assert_eq!(b.stats.recvs, 5);
    }

    #[test]
    fn corrupt_frame_is_nacked_and_resent() {
        // corrupt every frame once; the receiver NACKs while the sender sits
        // in its own recv servicing them
        let plan = crate::fault::FaultPlan { seed: 21, corrupt_rate: 1.0, ..crate::fault::FaultPlan::default() };
        let mut eps = universe_reliable(2, ReliableConfig::default(), Some(&plan));
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.timeout = Duration::from_secs(5);
        b.timeout = Duration::from_secs(5);
        thread::scope(|s| {
            let ha = s.spawn(move || {
                a.send(1, tag(MsgKind::Prims1, 0), buf(&[42.0])).unwrap();
                // a's own recv loop services b's NACK, then gets b's reply
                let got = a.recv(1, tag(MsgKind::Flux1, 0)).unwrap();
                assert_eq!(vals(got, 1), vec![7.0]);
                a
            });
            let hb = s.spawn(move || {
                let got = b.recv(0, tag(MsgKind::Prims1, 0)).unwrap();
                assert_eq!(vals(got, 1), vec![42.0]);
                b.send(0, tag(MsgKind::Flux1, 0), buf(&[7.0])).unwrap();
                // the reply was corrupted on the wire too: stay in a recv
                // long enough to service a's NACK before leaving
                b.timeout = Duration::from_millis(500);
                let _ = b.recv(0, tag(MsgKind::Prims2, 99)).unwrap_err();
                b
            });
            let a = ha.join().unwrap();
            let b = hb.join().unwrap();
            assert!(b.stats.corrupt_frames >= 1, "b saw the corrupted frame");
            assert!(b.stats.retries >= 1, "b NACKed it");
            assert!(a.stats.resends >= 1, "a served the NACK from its cache");
        });
    }

    #[test]
    fn unparseable_cached_frame_is_counted_spanless_not_span0() {
        // a NACK answered from a cache entry too short to carry a frame
        // trailer must be counted in `spanless_frames`, not silently
        // attributed to span 0
        let mut eps = universe_reliable(2, ReliableConfig::default(), None);
        let _b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let wanted = tag(MsgKind::Prims1, 5);
        let short = Bytes::from(vec![1u8, 2, 3]);
        a.reliability.as_mut().unwrap().remember(1, wanted, short);
        let mut pb = PackBuf::new();
        pb.pack_u64(wanted.kind.code());
        pb.pack_u64(wanted.seq);
        a.serve_nack(Message { src: 1, tag: Tag { kind: MsgKind::Nack, seq: 0 }, span: 0, payload: pb.freeze() });
        assert_eq!(a.stats.resends, 1, "the resend itself still happens");
        assert_eq!(a.stats.spanless_frames, 1, "but it is counted as spanless");
        // a healthy cached frame (with a trailer) must not be counted
        let mut sealed = PackBuf::new();
        sealed.pack_f64_slice(&[1.0, 2.0]);
        sealed.seal_frame(1, 0);
        a.reliability.as_mut().unwrap().remember(1, tag(MsgKind::Flux1, 5), sealed.freeze());
        let mut pb2 = PackBuf::new();
        pb2.pack_u64(MsgKind::Flux1.code());
        pb2.pack_u64(5);
        a.serve_nack(Message { src: 1, tag: Tag { kind: MsgKind::Nack, seq: 0 }, span: 0, payload: pb2.freeze() });
        assert_eq!(a.stats.resends, 2);
        assert_eq!(a.stats.spanless_frames, 1, "parseable frames are not spanless");
    }

    #[test]
    fn dropped_frame_is_recovered_by_retry() {
        // drop every frame: delivery happens exclusively through the
        // timeout-driven NACK/resend path (resends bypass the injector)
        let plan = crate::fault::FaultPlan { seed: 31, drop_rate: 1.0, ..crate::fault::FaultPlan::default() };
        let cfg = ReliableConfig { retry_timeout: Duration::from_millis(2), max_retries: 8 };
        let mut eps = universe_reliable(2, cfg, Some(&plan));
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.timeout = Duration::from_secs(5);
        b.timeout = Duration::from_secs(5);
        thread::scope(|s| {
            let ha = s.spawn(move || {
                a.send(1, tag(MsgKind::Prims1, 0), buf(&[3.5])).unwrap();
                let got = a.recv(1, tag(MsgKind::Flux1, 0)).unwrap();
                assert_eq!(vals(got, 1), vec![8.5]);
                a
            });
            let hb = s.spawn(move || {
                let got = b.recv(0, tag(MsgKind::Prims1, 0)).unwrap();
                assert_eq!(vals(got, 1), vec![3.5]);
                b.send(0, tag(MsgKind::Flux1, 0), buf(&[8.5])).unwrap();
                // the reply itself was dropped: serve a's retry NACKs
                b.timeout = Duration::from_millis(500);
                let _ = b.recv(0, tag(MsgKind::Prims2, 99)).unwrap_err();
                b
            });
            let a = ha.join().unwrap();
            let b = hb.join().unwrap();
            assert!(b.stats.retries >= 1, "recovery went through a NACK");
            assert!(a.stats.resends >= 1);
            assert_eq!(a.fault_stats().unwrap().dropped, 1);
        });
    }

    #[test]
    fn retry_budget_exhaustion_times_out() {
        // nobody will ever answer the NACKs: after the budget, the hard
        // deadline fires as a Timeout the recovery layer can catch
        let cfg = ReliableConfig { retry_timeout: Duration::from_millis(1), max_retries: 3 };
        let mut eps = universe_reliable(2, cfg, None);
        let mut a = eps.remove(0);
        a.timeout = Duration::from_millis(40);
        let err = a.recv(1, tag(MsgKind::Prims1, 0)).unwrap_err();
        assert_eq!(err, CommError::Timeout);
        assert_eq!(a.stats.retries, 3, "exactly the budget of NACKs went out");
    }

    #[test]
    fn control_traffic_is_excluded_from_startups() {
        let plan = crate::fault::FaultPlan { seed: 41, drop_rate: 1.0, ..crate::fault::FaultPlan::default() };
        let cfg = ReliableConfig { retry_timeout: Duration::from_millis(2), max_retries: 8 };
        let mut eps = universe_reliable(2, cfg, Some(&plan));
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.timeout = Duration::from_secs(5);
        b.timeout = Duration::from_secs(5);
        thread::scope(|s| {
            let ha = s.spawn(move || {
                a.send(1, tag(MsgKind::Prims1, 0), buf(&[1.0])).unwrap();
                let _ = a.recv(1, tag(MsgKind::Flux1, 0)).unwrap();
                a
            });
            let hb = s.spawn(move || {
                let _ = b.recv(0, tag(MsgKind::Prims1, 0)).unwrap();
                b.send(0, tag(MsgKind::Flux1, 0), buf(&[2.0])).unwrap();
                // linger to heal the dropped reply; a timed-out receive
                // delivers nothing, so it must not count as a start-up
                b.timeout = Duration::from_millis(500);
                let _ = b.recv(0, tag(MsgKind::Prims2, 99)).unwrap_err();
                b
            });
            let a = ha.join().unwrap();
            let b = hb.join().unwrap();
            // despite NACKs and resends flying, the application protocol is
            // still exactly one send and one recv per side
            assert_eq!(a.stats.startups(), 2);
            assert_eq!(b.stats.startups(), 2);
        });
    }

    // ---- causal spans & flight recorder ----

    #[test]
    fn span_rides_the_frame_trailer_to_the_receiver() {
        let t0 = Instant::now();
        let mut eps = universe_reliable(2, ReliableConfig::default(), None);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        b.tracer.enable(t0);
        let span = ns_metrics::span_id(2, 9);
        a.set_span(span);
        a.send(1, tag(MsgKind::Prims1, 9), buf(&[1.0])).unwrap();
        let _ = b.recv(0, tag(MsgKind::Prims1, 9)).unwrap();
        // the receiver never called set_span: the span crossed on the wire
        assert_eq!(b.tracer.events.len(), 1);
        assert_eq!(b.tracer.events[0].span, Some(span));
        // both flight recorders hold the same span
        let da = a.flight.dump(0, "test");
        let db = b.flight.dump(1, "test");
        assert_eq!(da.events_for_span(span).len(), 1, "sender recorded the spanned send");
        assert_eq!(db.events_for_span(span).len(), 1, "receiver recorded the spanned recv");
        assert_eq!(da.events[0].kind, "send");
        assert_eq!(db.events[0].kind, "recv");
    }

    #[test]
    fn resend_chain_under_drops_is_one_connected_span() {
        // drop every original frame: delivery goes NACK -> resend, and every
        // event of the chain — send, drop, nack, resend, recv — must carry
        // the same span on both ranks, so the cross-rank trace is connected
        let plan = crate::fault::FaultPlan { seed: 77, drop_rate: 1.0, ..crate::fault::FaultPlan::default() };
        let cfg = ReliableConfig { retry_timeout: Duration::from_millis(2), max_retries: 8 };
        let t0 = Instant::now();
        let mut eps = universe_reliable(2, cfg, Some(&plan));
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.timeout = Duration::from_secs(5);
        b.timeout = Duration::from_secs(5);
        let span = ns_metrics::span_id(1, 4);
        a.set_span(span);
        b.set_span(span);
        a.tracer.enable(t0);
        b.tracer.enable(t0);
        thread::scope(|s| {
            let ha = s.spawn(move || {
                a.send(1, tag(MsgKind::Prims1, 4), buf(&[2.25])).unwrap();
                // stay in a recv long enough to service b's NACKs
                a.timeout = Duration::from_millis(500);
                let _ = a.recv(1, tag(MsgKind::Flux1, 99)).unwrap_err();
                a
            });
            let hb = s.spawn(move || {
                let got = b.recv(0, tag(MsgKind::Prims1, 4)).unwrap();
                assert_eq!(vals(got, 1), vec![2.25]);
                b
            });
            let a = ha.join().unwrap();
            let b = hb.join().unwrap();
            // every trace event on either rank that names the chain carries
            // the one span: the trace is a single connected component
            let chain: Vec<&ns_telemetry::TraceEvent> = a
                .tracer
                .events
                .iter()
                .chain(b.tracer.events.iter())
                .filter(|e| {
                    e.label == "Prims1"
                        || e.label == "fault:drop"
                        || e.label == "fault:nack"
                        || e.label == "fault:resend"
                })
                .collect();
            assert!(chain.len() >= 4, "send + drop + nack + resend + recv, got {}", chain.len());
            assert!(chain.iter().all(|e| e.span == Some(span)), "all chain events share the span: {chain:?}");
            // the two ranks' flight dumps also stitch on the span
            let da = a.flight.dump(0, "test");
            let db = b.flight.dump(1, "test");
            assert!(da.events_for_span(span).iter().any(|e| e.label == "fault:resend"));
            assert!(db.events_for_span(span).iter().any(|e| e.label == "fault:nack"));
            assert!(db.events_for_span(span).iter().any(|e| e.kind == "recv"));
        });
    }

    #[test]
    fn comm_metrics_land_in_the_global_registry() {
        let before = Registry::global().snapshot();
        let mut eps = universe(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(1, tag(MsgKind::Prims1, 0), buf(&[0.0; 4])).unwrap();
        let _ = b.recv(0, tag(MsgKind::Prims1, 0)).unwrap();
        let delta = Registry::global().snapshot().diff(&before);
        assert!(delta.counter("ns_comm_sends_total") >= 1);
        assert!(delta.counter("ns_comm_recvs_total") >= 1);
        assert!(delta.counter("ns_comm_bytes_sent_total") >= 32);
    }
}
