//! Message endpoints: tagged point-to-point communication over in-process
//! channels, with the accounting the paper's Tables 1-2 need.
//!
//! Each rank owns an [`Endpoint`]: senders to every peer and one inbox.
//! Receives match on `(source, tag)`; out-of-order arrivals are stashed, so
//! the protocol layers above never see interleaving. Every send and receive
//! increments the start-up counters — the paper counts both sides, which is
//! how 8 messages per step per neighbour pair become "16 start-ups per
//! step".

use crate::pack::PackBuf;
use bytes::Bytes;
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use ns_telemetry::{EventKind, Tracer};
use std::time::{Duration, Instant};

/// Message kinds of the solver protocol plus collective plumbing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// Grouped primitive columns (`u, v, T`) before the predictor.
    Prims1,
    /// Two-column flux packet after the stage-1 flux evaluation.
    Flux1,
    /// Grouped primitive columns before the corrector (N-S only).
    Prims2,
    /// Two-column flux packet after the stage-2 flux evaluation.
    Flux2,
    /// Second half of a split flux packet (Version 7 burst avoidance).
    FluxSplit,
    /// Gather leg of a collective.
    Gather,
    /// Broadcast leg of a collective.
    Bcast,
}

impl MsgKind {
    /// The kind's name, used as the label of trace events.
    pub fn name(&self) -> &'static str {
        match self {
            MsgKind::Prims1 => "Prims1",
            MsgKind::Flux1 => "Flux1",
            MsgKind::Prims2 => "Prims2",
            MsgKind::Flux2 => "Flux2",
            MsgKind::FluxSplit => "FluxSplit",
            MsgKind::Gather => "Gather",
            MsgKind::Bcast => "Bcast",
        }
    }
}

/// Full message tag: protocol kind plus a sequence number (the step for
/// solver messages, a collective epoch for collectives).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Tag {
    /// Protocol kind.
    pub kind: MsgKind,
    /// Sequence number disambiguating steps/epochs.
    pub seq: u64,
}

/// A tagged message.
#[derive(Clone, Debug)]
pub struct Message {
    /// Sending rank.
    pub src: usize,
    /// Tag.
    pub tag: Tag,
    /// Payload bytes.
    pub payload: Bytes,
}

/// Per-rank communication statistics (start-ups and volume).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Messages sent.
    pub sends: u64,
    /// Messages received.
    pub recvs: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Payload bytes received.
    pub bytes_recvd: u64,
}

impl CommStats {
    /// Total start-ups, counting each send and each receive (the paper's
    /// convention).
    pub fn startups(&self) -> u64 {
        self.sends + self.recvs
    }
}

/// Errors from endpoint operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// Destination rank does not exist.
    NoSuchRank(usize),
    /// The peer hung up (its endpoint was dropped, e.g. after a panic).
    Disconnected,
    /// No matching message arrived within the deadline.
    Timeout,
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::NoSuchRank(r) => write!(f, "no such rank {r}"),
            CommError::Disconnected => write!(f, "peer disconnected"),
            CommError::Timeout => write!(f, "receive timed out"),
        }
    }
}

impl std::error::Error for CommError {}

/// A rank's communication endpoint.
pub struct Endpoint {
    rank: usize,
    txs: Vec<Sender<Message>>,
    rx: Receiver<Message>,
    stash: Vec<Message>,
    /// Accumulated statistics.
    pub stats: CommStats,
    /// Accumulated blocking time inside `recv` (the "non-overlapped
    /// communication" component of the paper's time breakdown).
    pub wait_time: Duration,
    /// Receive deadline; a hung peer surfaces as [`CommError::Timeout`].
    pub timeout: Duration,
    /// Message-trace recorder (disabled by default; enable with a shared
    /// origin to get timestamped send/recv events).
    pub tracer: Tracer,
}

impl Endpoint {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the universe.
    pub fn size(&self) -> usize {
        self.txs.len()
    }

    /// Send a packed buffer to `to` (non-blocking; channels are unbounded,
    /// like PVM's buffered sends).
    pub fn send(&mut self, to: usize, tag: Tag, buf: PackBuf) -> Result<(), CommError> {
        let start = Instant::now();
        let payload = buf.freeze();
        let bytes = payload.len() as u64;
        let tx = self.txs.get(to).ok_or(CommError::NoSuchRank(to))?;
        self.stats.sends += 1;
        self.stats.bytes_sent += bytes;
        let out = tx.send(Message { src: self.rank, tag, payload }).map_err(|_| CommError::Disconnected);
        if self.tracer.enabled() {
            self.tracer.record(EventKind::Send, self.rank, tag.kind.name(), Some(to), bytes, start, start.elapsed());
        }
        out
    }

    /// Blocking receive matching `(from, tag)`; non-matching arrivals are
    /// stashed for later receives.
    pub fn recv(&mut self, from: usize, tag: Tag) -> Result<Bytes, CommError> {
        let start = Instant::now();
        // check the stash first
        if let Some(pos) = self.stash.iter().position(|m| m.src == from && m.tag == tag) {
            let m = self.stash.swap_remove(pos);
            self.stats.recvs += 1;
            self.stats.bytes_recvd += m.payload.len() as u64;
            if self.tracer.enabled() {
                self.tracer.record(
                    EventKind::Recv,
                    self.rank,
                    tag.kind.name(),
                    Some(from),
                    m.payload.len() as u64,
                    start,
                    start.elapsed(),
                );
            }
            return Ok(m.payload);
        }
        let deadline = start + self.timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                self.wait_time += now - start;
                return Err(CommError::Timeout);
            }
            match self.rx.recv_timeout(deadline - now) {
                Ok(m) if m.src == from && m.tag == tag => {
                    self.wait_time += start.elapsed();
                    self.stats.recvs += 1;
                    self.stats.bytes_recvd += m.payload.len() as u64;
                    if self.tracer.enabled() {
                        self.tracer.record(
                            EventKind::Recv,
                            self.rank,
                            tag.kind.name(),
                            Some(from),
                            m.payload.len() as u64,
                            start,
                            start.elapsed(),
                        );
                    }
                    return Ok(m.payload);
                }
                Ok(m) => self.stash.push(m),
                Err(RecvTimeoutError::Timeout) => {
                    self.wait_time += start.elapsed();
                    return Err(CommError::Timeout);
                }
                Err(RecvTimeoutError::Disconnected) => {
                    self.wait_time += start.elapsed();
                    return Err(CommError::Disconnected);
                }
            }
        }
    }
}

/// Create a fully connected universe of `size` endpoints.
pub fn universe(size: usize) -> Vec<Endpoint> {
    assert!(size >= 1);
    let mut txs = Vec::with_capacity(size);
    let mut rxs = Vec::with_capacity(size);
    for _ in 0..size {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }
    rxs.into_iter()
        .enumerate()
        .map(|(rank, rx)| Endpoint {
            rank,
            txs: txs.clone(),
            rx,
            stash: Vec::new(),
            stats: CommStats::default(),
            wait_time: Duration::ZERO,
            timeout: Duration::from_secs(30),
            tracer: Tracer::default(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn tag(kind: MsgKind, seq: u64) -> Tag {
        Tag { kind, seq }
    }

    fn buf(vals: &[f64]) -> PackBuf {
        let mut p = PackBuf::new();
        p.pack_f64_slice(vals);
        p
    }

    #[test]
    fn ping_pong_between_threads() {
        let mut eps = universe(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        thread::scope(|s| {
            s.spawn(move || {
                a.send(1, tag(MsgKind::Flux1, 0), buf(&[1.0, 2.0])).unwrap();
                let got = a.recv(1, tag(MsgKind::Flux2, 0)).unwrap();
                assert_eq!(got.len(), 8);
            });
            s.spawn(move || {
                let got = b.recv(0, tag(MsgKind::Flux1, 0)).unwrap();
                assert_eq!(got.len(), 16);
                b.send(0, tag(MsgKind::Flux2, 0), buf(&[9.0])).unwrap();
            });
        });
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        let mut eps = universe(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(1, tag(MsgKind::Prims1, 7), buf(&[1.0])).unwrap();
        a.send(1, tag(MsgKind::Flux1, 7), buf(&[2.0, 3.0])).unwrap();
        // receive in the opposite order
        let f = b.recv(0, tag(MsgKind::Flux1, 7)).unwrap();
        assert_eq!(f.len(), 16);
        let p = b.recv(0, tag(MsgKind::Prims1, 7)).unwrap();
        assert_eq!(p.len(), 8);
        assert_eq!(b.stats.recvs, 2);
    }

    #[test]
    fn stats_count_both_sides() {
        let mut eps = universe(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(1, tag(MsgKind::Prims1, 0), buf(&[0.0; 10])).unwrap();
        let _ = b.recv(0, tag(MsgKind::Prims1, 0)).unwrap();
        assert_eq!(a.stats.sends, 1);
        assert_eq!(a.stats.startups(), 1);
        assert_eq!(b.stats.recvs, 1);
        assert_eq!(a.stats.bytes_sent, 80);
        assert_eq!(b.stats.bytes_recvd, 80);
    }

    #[test]
    fn tracer_records_sends_and_receives() {
        let t0 = Instant::now();
        let mut eps = universe(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.tracer.enable(t0);
        b.tracer.enable(t0);
        a.send(1, tag(MsgKind::Prims1, 3), buf(&[0.0; 5])).unwrap();
        let _ = b.recv(0, tag(MsgKind::Prims1, 3)).unwrap();
        assert_eq!(a.tracer.events.len(), 1);
        let s = &a.tracer.events[0];
        assert_eq!(s.kind, ns_telemetry::EventKind::Send);
        assert_eq!(s.label, "Prims1");
        assert_eq!(s.peer, Some(1));
        assert_eq!(s.bytes, 40);
        let r = &b.tracer.events[0];
        assert_eq!(r.kind, ns_telemetry::EventKind::Recv);
        assert_eq!((r.rank, r.peer), (1, Some(0)));
        assert_eq!(r.bytes, 40);
    }

    #[test]
    fn send_to_missing_rank_errors() {
        let mut eps = universe(2);
        let mut a = eps.remove(0);
        let err = a.send(5, tag(MsgKind::Prims1, 0), buf(&[1.0])).unwrap_err();
        assert_eq!(err, CommError::NoSuchRank(5));
    }

    #[test]
    fn recv_times_out_when_peer_is_silent() {
        let mut eps = universe(2);
        let mut a = eps.remove(0);
        a.timeout = Duration::from_millis(20);
        let err = a.recv(1, tag(MsgKind::Prims1, 0)).unwrap_err();
        assert_eq!(err, CommError::Timeout);
        assert!(a.wait_time >= Duration::from_millis(15));
    }

    #[test]
    fn recv_detects_dead_peer() {
        let mut eps = universe(2);
        let b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        drop(b); // peer "panicked"
                 // a's own sender clones keep the channel alive only for a's inbox;
                 // receiving from the dropped peer can only time out (the message
                 // will never come), while a send to it still succeeds into a's copy
                 // of the sender -> use a short timeout
        a.timeout = Duration::from_millis(10);
        let err = a.recv(1, tag(MsgKind::Prims1, 0)).unwrap_err();
        assert_eq!(err, CommError::Timeout);
    }
}
