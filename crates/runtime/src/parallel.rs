//! The distributed-memory parallel driver: one OS thread per rank, the
//! paper's axial block decomposition generalized to 2-D pencils over a
//! [`CartTopology`], real message passing through the in-process endpoints.
//!
//! Beyond real wall-clock speedup, the driver records the same breakdown the
//! paper plots: per-rank *processor busy time* and *non-overlapped
//! communication time* (Figures 5, 6, 13), message start-ups and volume
//! (Tables 1, 2).

use crate::collectives;
use crate::comm::{universe, CommStats};
use crate::halo::{CommVersion, ThreadHalo};
use crate::topology::{CartTopology, DecompositionError};
use ns_core::config::{Regime, SolverConfig};
use ns_core::field::{Field, Patch};
use ns_core::opcount::FlopLedger;
use ns_core::Solver;
use ns_metrics::{FlightDump, MetricsSummary, Registry};
use ns_telemetry::{
    CommTotals, EventKind, HealthConfig, HealthMonitor, HealthSample, PhaseLedger, RunSummary, TraceEvent,
    RUN_SUMMARY_SCHEMA,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cooperative cancellation handle for an in-flight parallel run. Cloning
/// shares the flag; [`CancelToken::cancel`] asks every rank to stop at the
/// next step boundary. The stop is *collective*: each step the ranks
/// max-reduce their local view of the flag (under its own epoch namespace),
/// so they always break out of the step loop together — an in-flight rank
/// team is wound down, never abandoned mid-exchange.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-fired token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request the run stop at the next step boundary.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Which telemetry instruments to arm for a parallel run. Everything is off
/// by default; the uninstrumented paths pay one branch per hook.
#[derive(Clone, Debug, Default)]
pub struct TelemetryOptions {
    /// Attribute each rank's wall time to the solver's named phases.
    pub phases: bool,
    /// Record timestamped phase/send/recv events on a shared timeline.
    pub trace: bool,
    /// Sample the watchdogs on this cadence, with a collective early abort
    /// the moment any rank's sample violates the limits.
    pub health: Option<HealthConfig>,
    /// Cooperative cancellation: when armed, every step starts with a
    /// max-reduction of the token's flag, so all ranks stop together at the
    /// same step boundary.
    pub cancel: Option<CancelToken>,
}

/// Epoch namespace for the health monitor's abort reduction, disjoint from
/// the adaptive-dt reduction (which uses the raw step number).
const HEALTH_EPOCH: u64 = 1 << 62;

/// Epoch namespace for the cancellation reduction, disjoint from the
/// adaptive-dt (raw step), health (`1 << 62`) and checkpoint (`1 << 61`)
/// namespaces.
const CANCEL_EPOCH: u64 = 3 << 60;

/// Result of one rank's run.
#[derive(Debug)]
pub struct RankResult {
    /// The rank id.
    pub rank: usize,
    /// Final local field (interior is authoritative).
    pub field: Field,
    /// Communication statistics.
    pub stats: CommStats,
    /// Time blocked in receives (non-overlapped communication).
    pub wait: Duration,
    /// Wall time minus wait (processor busy time, including message setup,
    /// exactly the paper's decomposition).
    pub busy: Duration,
    /// FLOP ledger.
    pub ledger: FlopLedger,
    /// Per-phase wall time (empty unless phases/trace telemetry was on).
    pub phases: PhaseLedger,
    /// This rank's timeline: phase spans and message events, sorted by
    /// start time (empty unless trace telemetry was on).
    pub trace: Vec<TraceEvent>,
    /// This rank's watchdog samples (empty unless health telemetry was on).
    pub health: Vec<HealthSample>,
    /// Steps this rank actually took (fewer than requested on abort).
    pub steps: u64,
    /// Why this rank stopped early, if it did.
    pub abort: Option<String>,
    /// Flight-recorder dump, taken only when this rank stopped early (a
    /// watchdog abort or cancellation freezes the ring as the black box).
    pub flight: Option<FlightDump>,
}

/// Result of a parallel run.
#[derive(Debug)]
pub struct ParallelRun {
    /// Per-rank results, index = rank.
    pub ranks: Vec<RankResult>,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Configuration used.
    pub cfg: SolverConfig,
    /// Steps taken.
    pub nsteps: u64,
    /// Rollback/recovery accounting (populated only by
    /// [`crate::recover::run_parallel_chaos`]).
    pub recovery: Option<crate::recover::RecoveryReport>,
    /// Metrics recorded during this run: the after-minus-before diff of the
    /// process-wide registry, cut around the rank threads.
    pub metrics: MetricsSummary,
}

impl ParallelRun {
    /// Assemble the distributed solution into one whole-grid field.
    pub fn gather_field(&self) -> Field {
        let whole = Patch::whole(self.cfg.grid.clone());
        let mut out = Field::zeros(whole);
        for r in &self.ranks {
            for c in 0..4 {
                for i in 0..r.field.nxl() {
                    let gi = r.field.patch.i0 + i;
                    for j in 0..r.field.nr() {
                        let gj = r.field.patch.j0 + j;
                        out.set(c, gi as isize, gj as isize, r.field.at(c, i as isize, j as isize));
                    }
                }
            }
        }
        out
    }

    /// Aggregate FLOPs over all ranks.
    pub fn total_flops(&self) -> u64 {
        self.ranks.iter().map(|r| r.ledger.total()).sum()
    }

    /// Aggregate communication statistics.
    pub fn total_stats(&self) -> CommStats {
        let mut s = CommStats::default();
        for r in &self.ranks {
            s.merge(&r.stats);
        }
        s
    }

    /// Per-rank busy times in seconds (Figure 13's bars).
    pub fn busy_seconds(&self) -> Vec<f64> {
        self.ranks.iter().map(|r| r.busy.as_secs_f64()).collect()
    }

    /// One rank's measured `label -> seconds` phase breakdown (the shape
    /// `ns_archsim::SimResult::phase_seconds` reports for the same labels).
    pub fn rank_phase_seconds(&self, rank: usize) -> BTreeMap<&'static str, f64> {
        self.ranks[rank].phases.seconds_by_label()
    }

    /// The phase breakdown summed over ranks.
    pub fn phase_seconds(&self) -> BTreeMap<&'static str, f64> {
        let mut all = PhaseLedger::default();
        for r in &self.ranks {
            all.merge(&r.phases);
        }
        all.seconds_by_label()
    }

    /// All ranks' trace events on the shared timeline, sorted by start.
    /// Borrows from the per-rank storage — the merged view costs one pointer
    /// per event, not a clone of every label/payload record.
    pub fn merged_trace(&self) -> Vec<&TraceEvent> {
        let mut evs: Vec<&TraceEvent> = self.ranks.iter().flat_map(|r| r.trace.iter()).collect();
        evs.sort_by_key(|e| (e.t_us, e.rank));
        evs
    }

    /// The watchdog series reduced over ranks: per sampled step, the max of
    /// the maxima, the min of the minima, and the sum of the integrals.
    pub fn merged_health(&self) -> Vec<HealthSample> {
        let mut by_step: BTreeMap<u64, HealthSample> = BTreeMap::new();
        for r in &self.ranks {
            for s in &r.health {
                by_step
                    .entry(s.step)
                    .and_modify(|g| {
                        g.max_mach = g.max_mach.max(s.max_mach);
                        g.max_wave_speed = g.max_wave_speed.max(s.max_wave_speed);
                        g.min_rho = g.min_rho.min(s.min_rho);
                        g.min_p = g.min_p.min(s.min_p);
                        g.mass += s.mass;
                        g.energy += s.energy;
                        g.finite &= s.finite;
                    })
                    .or_insert(*s);
            }
        }
        by_step.into_values().collect()
    }

    /// Why the run aborted early, if any rank did.
    pub fn aborted(&self) -> Option<String> {
        // prefer a rank that saw the violation itself over peers that were
        // stopped by the collective flag
        self.ranks.iter().filter_map(|r| r.abort.clone()).reduce(|a, b| if a.contains("peer") { b } else { a })
    }

    /// Steps completed by every rank (the minimum across ranks). An empty
    /// rank set cannot occur — [`CartTopology::new`] rejects zero-rank
    /// topologies at construction — so this no longer silently reports 0
    /// steps for a run that never existed.
    pub fn steps_taken(&self) -> u64 {
        self.ranks.iter().map(|r| r.steps).min().expect("a parallel run has at least one rank")
    }

    /// Flight-recorder dumps of the ranks that stopped early (empty for a
    /// clean run), plus any the recovery driver collected.
    pub fn flight_dumps(&self) -> Vec<&FlightDump> {
        let mut out: Vec<&FlightDump> = self.ranks.iter().filter_map(|r| r.flight.as_ref()).collect();
        if let Some(rec) = &self.recovery {
            out.extend(rec.flight_dumps.iter());
        }
        out
    }

    /// The machine-readable run summary the `jetns` CLI writes as JSON.
    pub fn summary(&self, case: &str) -> RunSummary {
        let stats = self.total_stats();
        let mut s = RunSummary {
            schema_version: RUN_SUMMARY_SCHEMA,
            case: case.to_string(),
            regime: match self.cfg.regime {
                Regime::Euler => "euler".to_string(),
                Regime::NavierStokes => "navier-stokes".to_string(),
            },
            nx: self.cfg.grid.nx,
            nr: self.cfg.grid.nr,
            ranks: self.ranks.len(),
            steps_requested: self.nsteps,
            steps_taken: self.steps_taken(),
            wall_seconds: self.elapsed.as_secs_f64(),
            aborted: self.aborted(),
            phase_seconds: BTreeMap::new(),
            comm: CommTotals {
                sends: stats.sends,
                recvs: stats.recvs,
                bytes_sent: stats.bytes_sent,
                bytes_recvd: stats.bytes_recvd,
                retries: stats.retries,
                resends: stats.resends,
                corrupt_frames: stats.corrupt_frames,
                dup_frames: stats.dup_frames,
            },
            recovery: self.recovery.as_ref().map(|r| r.to_summary(&stats)),
            conservation: None,
            serve: None,
            metrics: (!self.metrics.is_empty()).then(|| self.metrics.clone()),
            health: self.merged_health(),
        };
        let mut all = PhaseLedger::default();
        for r in &self.ranks {
            all.merge(&r.phases);
        }
        s.set_phases(&all);
        s
    }
}

/// Run the solver on `p` axial ranks for `nsteps` steps, starting from the
/// standard initial condition (the paper's `P × 1` layout).
///
/// Panics if the decomposition is too fine for the 2-4 stencil and the
/// cubic boundary extrapolation (every rank needs at least 4 columns).
/// [`run_parallel_cart`] is the non-panicking generalization.
pub fn run_parallel(cfg: &SolverConfig, p: usize, nsteps: u64, version: CommVersion) -> ParallelRun {
    run_parallel_from(cfg, p, nsteps, version, None)
}

/// Run the solver over a 2-D pencil topology. The decomposition plan is
/// validated up front — split fineness on both axes plus the kernel and
/// comm-protocol restrictions of radial splits — and rejected as a typed
/// [`DecompositionError`] instead of a panic mid-run.
pub fn run_parallel_cart(
    cfg: &SolverConfig,
    topo: CartTopology,
    nsteps: u64,
    version: CommVersion,
) -> Result<ParallelRun, DecompositionError> {
    topo.validate(cfg, version)?;
    Ok(run_impl(cfg, topo, nsteps, version, None, TelemetryOptions::default()))
}

/// Run the solver on `p` ranks with the requested telemetry armed: phase
/// attribution, message/phase tracing on a shared timeline, and health
/// sampling with a collective early abort (every rank stops within one
/// cadence interval of the first violation, so no rank deadlocks waiting
/// for a peer that bailed out).
pub fn run_parallel_instrumented(
    cfg: &SolverConfig,
    p: usize,
    nsteps: u64,
    version: CommVersion,
    opts: TelemetryOptions,
) -> ParallelRun {
    run_impl(cfg, CartTopology::axial(p), nsteps, version, None, opts)
}

/// Restart a distributed run from a whole-grid checkpoint: the state is
/// scattered over the ranks and the clock/step parity continue where the
/// checkpoint left off. With `restart = None` this is a fresh run.
pub fn run_parallel_from(
    cfg: &SolverConfig,
    p: usize,
    nsteps: u64,
    version: CommVersion,
    restart: Option<&ns_core::checkpoint::Checkpoint>,
) -> ParallelRun {
    run_impl(cfg, CartTopology::axial(p), nsteps, version, restart, TelemetryOptions::default())
}

/// One collective health check. Every rank samples at the same
/// (synchronized) steps and a max-reduction of the local violation flags
/// decides for all of them, so the ranks always break out together instead
/// of deadlocking on a peer that bailed out. Returns `true` while the run
/// is globally healthy.
fn health_check(solver: &Solver, halo: &mut ThreadHalo<'_>, mon: &mut HealthMonitor) -> bool {
    if !mon.due(solver.nstep) {
        return true;
    }
    let local_ok = mon.observe(solver.health_sample());
    let flag = if local_ok { 0.0 } else { 1.0 };
    let global = collectives::allreduce_max(halo.endpoint_mut(), flag, HEALTH_EPOCH + solver.nstep)
        .expect("health abort reduction failed");
    if global > 0.0 && mon.healthy() {
        mon.abort = Some(format!("stopped by peer rank abort at step {}", solver.nstep));
    }
    global == 0.0
}

/// One collective cancellation check at a step boundary. Same collective
/// shape as [`health_check`]: a max-reduction of the local flag decides for
/// every rank at once, so a token fired between two ranks' checks can never
/// split the team. Returns the abort reason once cancellation is global.
fn cancel_check(solver: &Solver, halo: &mut ThreadHalo<'_>, tok: &CancelToken) -> Option<String> {
    let flag = if tok.is_cancelled() { 1.0 } else { 0.0 };
    let global = collectives::allreduce_max(halo.endpoint_mut(), flag, CANCEL_EPOCH + solver.nstep)
        .expect("cancellation reduction failed");
    (global > 0.0).then(|| format!("cancelled at step {}", solver.nstep))
}

pub(crate) fn run_impl(
    cfg: &SolverConfig,
    topo: CartTopology,
    nsteps: u64,
    version: CommVersion,
    restart: Option<&ns_core::checkpoint::Checkpoint>,
    opts: TelemetryOptions,
) -> ParallelRun {
    let p = topo.size();
    assert!(p >= 1);
    assert_eq!(cfg.dissipation, 0.0, "dissipation is serial-only (the paper's protocol has no smoothing halo)");
    // the panicking entry points route plan errors here; run_parallel_cart
    // has already returned them as typed values
    topo.validate(cfg, version).unwrap_or_else(|e| panic!("{e}"));

    if let Some(cp) = restart {
        assert_eq!(cp.patch.grid, cfg.grid, "checkpoint grid must match");
        assert!(
            cp.patch.nxl == cfg.grid.nx && cp.patch.nrl == cfg.grid.nr,
            "distributed restart needs a whole-grid checkpoint"
        );
    }
    let endpoints = universe(p);
    // shared by reference across the rank threads (the cancel token is a
    // shared flag; cloning per rank would be equivalent but pointless)
    let opts = &opts;
    // One origin for every rank's clock, so the per-rank timelines align.
    let trace_origin = Instant::now();
    let metrics_before = Registry::global().snapshot();
    let start = Instant::now();
    let mut ranks: Vec<RankResult> = std::thread::scope(|s| {
        let handles: Vec<_> = endpoints
            .into_iter()
            .map(|mut ep| {
                let cfg = cfg.clone();
                s.spawn(move || {
                    let rank = ep.rank();
                    let patch = Patch::pencil(cfg.grid.clone(), topo.coords(rank), (topo.px, topo.pr));
                    let nb = topo.neighbors(rank);
                    let (nxl, nr) = (patch.nxl, patch.nr());
                    let mut solver = Solver::on_patch(cfg, patch);
                    if let Some(cp) = restart {
                        // scatter the whole-grid state into this rank's pencil
                        let (i0, j0) = (solver.field.patch.i0, solver.field.patch.j0);
                        for c in 0..4 {
                            for i in 0..nxl {
                                for j in 0..nr {
                                    let v = cp.q[c].at(i0 + i + ns_core::field::NG, j0 + j + ns_core::field::NG);
                                    solver.field.set(c, i as isize, j as isize, v);
                                }
                            }
                        }
                        solver.t = cp.t;
                        solver.nstep = cp.nstep;
                    }
                    if opts.trace {
                        solver.enable_phase_trace(trace_origin);
                        ep.tracer.enable(trace_origin);
                    } else if opts.phases {
                        solver.enable_phase_timing();
                    }
                    ep.flight.set_origin(trace_origin);
                    let mut mon = opts.health.map(HealthMonitor::new);
                    let mut steps = 0u64;
                    let mut cancelled: Option<String> = None;
                    let t0 = Instant::now();
                    {
                        let mut halo = ThreadHalo::new_cart(&mut ep, nb, nxl, nr, version);
                        let healthy_start = mon.as_mut().is_none_or(|m| health_check(&solver, &mut halo, m));
                        if healthy_start {
                            for _ in 0..nsteps {
                                if let Some(tok) = opts.cancel.as_ref() {
                                    cancelled = cancel_check(&solver, &mut halo, tok);
                                    if cancelled.is_some() {
                                        break;
                                    }
                                }
                                halo.begin_step(solver.nstep);
                                solver.step_with_halo(&mut halo);
                                steps += 1;
                                if let Some(m) = mon.as_mut() {
                                    if !health_check(&solver, &mut halo, m) {
                                        break;
                                    }
                                }
                            }
                        }
                    }
                    let wall = t0.elapsed();
                    let wait = ep.wait_time;
                    let (mut phases, phase_events) = solver.take_phase_telemetry();
                    let mut trace: Vec<TraceEvent> = Vec::new();
                    if opts.trace {
                        trace.extend(phase_events.iter().map(|e| TraceEvent::from_phase(rank, e)));
                        trace.append(&mut ep.tracer.take());
                        trace.sort_by_key(|e| e.t_us);
                    }
                    if opts.phases || opts.trace {
                        // The timer pauses around halo calls; blocking
                        // receive time is measured by the endpoint instead,
                        // and send packaging shows up in the trace spans.
                        phases.add("comm:recv", wait.as_secs_f64());
                        let send_secs: f64 =
                            trace.iter().filter(|e| e.kind == EventKind::Send).map(|e| e.dur_us as f64 * 1e-6).sum();
                        if send_secs > 0.0 {
                            phases.add("comm:send", send_secs);
                        }
                    }
                    let (health, abort) = mon.map_or((Vec::new(), None), |m| (m.samples, m.abort));
                    let was_cancelled = cancelled.is_some();
                    let abort = abort.or(cancelled);
                    // a rank that stopped early freezes its ring: the dump
                    // is the black box for diagnosing why
                    let flight = abort.as_ref().map(|reason| {
                        let kind = if was_cancelled { "cancelled" } else { "watchdog-abort" };
                        ep.flight.record(kind, reason.clone(), None, None, None, 0);
                        ep.flight.dump(rank, kind)
                    });
                    RankResult {
                        rank,
                        field: solver.field,
                        stats: ep.stats,
                        wait,
                        busy: wall.saturating_sub(wait),
                        ledger: solver.ledger,
                        phases,
                        trace,
                        health,
                        steps,
                        abort,
                        flight,
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
    });
    let elapsed = start.elapsed();
    ranks.sort_by_key(|r| r.rank);
    let metrics = MetricsSummary::from_snapshot(&Registry::global().snapshot().diff(&metrics_before));
    ParallelRun { ranks, elapsed, cfg: cfg.clone(), nsteps, recovery: None, metrics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ns_core::config::Regime;
    use ns_core::workload;
    use ns_numerics::Grid;

    fn cfg(regime: Regime) -> SolverConfig {
        SolverConfig::paper(Grid::small(), regime)
    }

    /// Euler exchanges everything its stencils need, so the distributed
    /// solution is bitwise identical to the serial one. Navier-Stokes uses
    /// local one-sided stencils for the radial operator's viscous
    /// cross-derivatives at internal edges (the paper's protocol carries no
    /// radial-sweep messages), which is O(dx^2 * mu)-consistent: the
    /// difference must be at viscous truncation level, orders below the
    /// solution scale.
    #[test]
    fn parallel_matches_serial() {
        for (regime, tol) in [(Regime::Euler, 0.0), (Regime::NavierStokes, 1e-9)] {
            let cfg = cfg(regime);
            let mut serial = Solver::new(cfg.clone());
            serial.run(6);
            for p in [2, 3, 5] {
                let run = run_parallel(&cfg, p, 6, CommVersion::V5);
                let gathered = run.gather_field();
                let d = serial.field.max_diff(&gathered);
                assert!(d <= tol, "{regime:?} p={p}: diff {d} exceeds {tol}");
            }
        }
    }

    #[test]
    fn v7_protocol_matches_v5_bitwise() {
        let cfg = cfg(Regime::NavierStokes);
        let a = run_parallel(&cfg, 3, 4, CommVersion::V5);
        let b = run_parallel(&cfg, 3, 4, CommVersion::V7);
        assert_eq!(a.gather_field().max_diff(&b.gather_field()), 0.0, "V7 moves the same data");
    }

    #[test]
    fn startup_counts_match_table1_protocol() {
        let nsteps = 5;
        for (regime, per_step) in [(Regime::NavierStokes, 16u64), (Regime::Euler, 12u64)] {
            let run = run_parallel(&cfg(regime), 4, nsteps, CommVersion::V5);
            // interior ranks (1, 2) have two neighbours
            for r in &run.ranks[1..3] {
                assert_eq!(
                    r.stats.startups(),
                    per_step * nsteps,
                    "{regime:?} rank {}: paper protocol start-ups",
                    r.rank
                );
            }
            // edge ranks have one neighbour: half the start-ups
            assert_eq!(run.ranks[0].stats.startups(), per_step * nsteps / 2);
            assert_eq!(run.ranks[3].stats.startups(), per_step * nsteps / 2);
        }
    }

    #[test]
    fn message_volume_matches_workload_model() {
        let nsteps = 3;
        let c = cfg(Regime::NavierStokes);
        let run = run_parallel(&c, 4, nsteps, CommVersion::V5);
        let w = workload::step_workload(Regime::NavierStokes, &c.grid, c.grid.nx / 4);
        let expected_interior = w.bytes_sent_per_step(2) * nsteps;
        assert_eq!(run.ranks[1].stats.bytes_sent, expected_interior);
        assert_eq!(run.ranks[0].stats.bytes_sent, expected_interior / 2);
    }

    #[test]
    fn ledger_total_is_close_to_serial() {
        let c = cfg(Regime::Euler);
        let mut serial = Solver::new(c.clone());
        serial.run(4);
        let run = run_parallel(&c, 4, 4, CommVersion::V5);
        let par = run.total_flops() as f64;
        let ser = serial.ledger.total() as f64;
        // parallel does a little extra boundary/ghost work; totals must be
        // within a few percent
        assert!((par - ser).abs() / ser < 0.05, "serial {ser} vs parallel {par}");
    }

    #[test]
    fn distributed_restart_is_transparent() {
        use ns_core::checkpoint::Checkpoint;
        let c = cfg(Regime::Euler);
        // uninterrupted reference: 9 steps serial
        let mut reference = Solver::new(c.clone());
        reference.run(9);
        // 4 serial steps, checkpoint, then 5 more on 3 ranks
        let mut first = Solver::new(c.clone());
        first.run(4);
        let cp = Checkpoint::capture(&first);
        let resumed = run_parallel_from(&c, 3, 5, CommVersion::V5, Some(&cp));
        assert_eq!(reference.field.max_diff(&resumed.gather_field()), 0.0, "scatter restart is bitwise");
        // the resumed ranks continued the global clock
        assert!(resumed.ranks[0].ledger.total() > 0);
    }

    #[test]
    fn instrumented_run_collects_phases_trace_and_health() {
        let c = cfg(Regime::NavierStokes);
        let opts = TelemetryOptions {
            phases: true,
            trace: true,
            health: Some(ns_telemetry::HealthConfig { cadence: 2, ..Default::default() }),
            ..Default::default()
        };
        let run = run_parallel_instrumented(&c, 3, 4, CommVersion::V5, opts);
        assert_eq!(run.steps_taken(), 4);
        assert!(run.aborted().is_none());
        // phases: the measured breakdown uses the simulator's vocabulary
        let phases = run.phase_seconds();
        for label in ["r:prims", "x:flux", "x:correct", "comm:recv"] {
            assert!(phases.contains_key(label), "missing {label}");
        }
        // per-rank breakdown exists and interior rank saw comm time
        assert!(run.rank_phase_seconds(1).contains_key("x:flux2"));
        // trace: phase spans and message events on one timeline, sorted
        let trace = run.merged_trace();
        assert!(trace.iter().any(|e| e.kind == ns_telemetry::EventKind::Phase));
        assert!(trace.iter().any(|e| e.kind == ns_telemetry::EventKind::Send));
        assert!(trace.iter().any(|e| e.kind == ns_telemetry::EventKind::Recv));
        assert!(trace.windows(2).all(|w| w[0].t_us <= w[1].t_us));
        // every rank appears on the timeline
        for rank in 0..3 {
            assert!(trace.iter().any(|e| e.rank == rank), "rank {rank} missing");
        }
        // health: sampled at steps 0, 2, 4 and merged over ranks
        let health = run.merged_health();
        assert_eq!(health.iter().map(|s| s.step).collect::<Vec<_>>(), vec![0, 2, 4]);
        assert!(health.iter().all(|s| s.finite && s.min_p > 0.0));
        // summary ties it all together and serializes
        let summary = run.summary("test-case");
        assert_eq!(summary.ranks, 3);
        assert_eq!(summary.steps_taken, 4);
        assert_eq!(summary.comm.sends, run.total_stats().sends);
        let json = summary.to_json();
        assert!(json.contains("\"phase_seconds\""));
        assert!(json.contains("navier-stokes"));
    }

    #[test]
    fn telemetry_off_leaves_results_empty_and_state_identical() {
        let c = cfg(Regime::Euler);
        let plain = run_parallel(&c, 2, 3, CommVersion::V5);
        let inst = run_parallel_instrumented(
            &c,
            2,
            3,
            CommVersion::V5,
            TelemetryOptions { phases: true, trace: true, health: Some(Default::default()), ..Default::default() },
        );
        assert!(plain.ranks.iter().all(|r| r.phases.is_empty() && r.trace.is_empty() && r.health.is_empty()));
        // instrumentation observes, never perturbs
        assert_eq!(plain.gather_field().max_diff(&inst.gather_field()), 0.0);
    }

    #[test]
    fn health_abort_stops_all_ranks_together() {
        let c = cfg(Regime::Euler);
        // jet core is Mach 1.5: violated immediately
        let limits = ns_telemetry::HealthLimits { max_mach: 0.5, ..Default::default() };
        let opts = TelemetryOptions {
            phases: false,
            trace: false,
            health: Some(ns_telemetry::HealthConfig { cadence: 2, limits }),
            ..Default::default()
        };
        let run = run_parallel_instrumented(&c, 3, 10, CommVersion::V5, opts);
        // the step-0 sample already violates, so nobody takes a step
        assert_eq!(run.steps_taken(), 0);
        let reason = run.aborted().expect("must abort");
        assert!(reason.contains("Mach"), "got: {reason}");
        // every rank stopped, none deadlocked
        assert!(run.ranks.iter().all(|r| r.abort.is_some()));
    }

    #[test]
    fn cancel_token_stops_all_ranks_together() {
        let c = cfg(Regime::Euler);
        let tok = CancelToken::new();
        let opts = TelemetryOptions { cancel: Some(tok.clone()), ..Default::default() };
        let firer = tok.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            firer.cancel();
        });
        // far more steps than fit in 30ms: without cancellation this would
        // run for minutes
        let run = run_parallel_instrumented(&c, 3, 1_000_000, CommVersion::V5, opts);
        h.join().unwrap();
        assert!(run.steps_taken() < 1_000_000, "run must stop early");
        // the collective reduction stops every rank at the same boundary
        let steps: Vec<u64> = run.ranks.iter().map(|r| r.steps).collect();
        assert!(steps.windows(2).all(|w| w[0] == w[1]), "ranks diverged: {steps:?}");
        let reason = run.aborted().expect("cancellation is an abort");
        assert!(reason.contains("cancelled"), "got: {reason}");
        assert!(run.ranks.iter().all(|r| r.abort.is_some()), "every rank records the stop");
    }

    /// An armed but never-fired token must not perturb the run: same steps,
    /// bitwise-identical field, no abort.
    #[test]
    fn armed_unfired_cancel_is_a_bitwise_noop() {
        let c = cfg(Regime::Euler);
        let plain = run_parallel(&c, 2, 4, CommVersion::V5);
        let tok = CancelToken::new();
        let opts = TelemetryOptions { cancel: Some(tok), ..Default::default() };
        let armed = run_parallel_instrumented(&c, 2, 4, CommVersion::V5, opts);
        assert_eq!(armed.steps_taken(), 4);
        assert!(armed.aborted().is_none());
        assert_eq!(plain.gather_field().max_diff(&armed.gather_field()), 0.0);
    }

    #[test]
    #[should_panic(expected = "whole-grid checkpoint")]
    fn partial_checkpoint_is_rejected_for_restart() {
        use ns_core::checkpoint::Checkpoint;
        let c = cfg(Regime::Euler);
        let partial = Solver::on_patch(c.clone(), Patch::block(c.grid.clone(), 0, 2));
        let cp = Checkpoint::capture(&partial);
        let _ = run_parallel_from(&c, 2, 1, CommVersion::V5, Some(&cp));
    }

    #[test]
    #[should_panic(expected = "fewer than 4 columns")]
    fn too_many_ranks_is_rejected() {
        let c = cfg(Regime::Euler);
        let _ = run_parallel(&c, 20, 1, CommVersion::V5);
    }

    /// Euler pencils are bitwise for every shape (point-local fluxes, all
    /// exchanged data central); Navier-Stokes pencils are bitwise for pure
    /// radial splits and viscous-truncation-close once the axial direction
    /// is split (the one-sided viscous `∂x` at internal axial edges).
    #[test]
    fn pencil_matches_serial() {
        for (regime, shapes, tol) in [
            (Regime::Euler, vec![(1, 2), (2, 2), (3, 2)], 0.0),
            (Regime::NavierStokes, vec![(1, 2), (1, 4)], 0.0),
            (Regime::NavierStokes, vec![(2, 2)], 1e-9),
        ] {
            let cfg = cfg(regime);
            let mut serial = Solver::new(cfg.clone());
            serial.run(6);
            for (px, pr) in shapes {
                let topo = CartTopology::new(px, pr).unwrap();
                let run = run_parallel_cart(&cfg, topo, 6, CommVersion::V5).unwrap();
                let d = serial.field.max_diff(&run.gather_field());
                assert!(d <= tol, "{regime:?} {px}x{pr}: diff {d} exceeds {tol}");
            }
        }
    }

    /// The degenerate pencil shapes reproduce the 1-D drivers bitwise:
    /// `P × 1` is the existing axial path by construction, `1 × 1` a true
    /// single-rank no-op.
    #[test]
    fn degenerate_pencils_reproduce_axial_path() {
        let c = cfg(Regime::NavierStokes);
        let axial = run_parallel(&c, 3, 5, CommVersion::V5);
        let cart = run_parallel_cart(&c, CartTopology::axial(3), 5, CommVersion::V5).unwrap();
        assert_eq!(axial.gather_field().max_diff(&cart.gather_field()), 0.0);
        for (a, b) in axial.ranks.iter().zip(&cart.ranks) {
            assert_eq!(a.stats.startups(), b.stats.startups(), "rank {}: same protocol", a.rank);
        }
        let single = run_parallel_cart(&c, CartTopology::axial(1), 5, CommVersion::V5).unwrap();
        assert_eq!(single.total_stats().sends, 0, "1x1 exchanges nothing");
        let mut serial = Solver::new(c);
        serial.run(5);
        assert_eq!(serial.field.max_diff(&single.gather_field()), 0.0);
    }

    /// Too-fine plans on either axis come back as typed errors from
    /// validation, not a panic (or worse, a wrong answer) mid-run.
    #[test]
    fn too_fine_decomposition_is_a_typed_error() {
        let c = cfg(Regime::Euler);
        // 1-D regression: 20 ranks over 50 columns leaves 2 columns
        let err = run_parallel_cart(&c, CartTopology::axial(20), 1, CommVersion::V5).unwrap_err();
        assert_eq!(err, DecompositionError::TooFewColumns { px: 20, nx: 50 });
        // 2-D, axial axis too fine even with a coarse radial split
        let err = run_parallel_cart(&c, CartTopology::new(16, 2).unwrap(), 1, CommVersion::V5).unwrap_err();
        assert_eq!(err, DecompositionError::TooFewColumns { px: 16, nx: 50 });
        // 2-D, radial axis too fine: 8 ranks over 20 rows leaves 2 rows
        let err = run_parallel_cart(&c, CartTopology::new(1, 8).unwrap(), 1, CommVersion::V5).unwrap_err();
        assert_eq!(err, DecompositionError::TooFewRows { pr: 8, nr: 20 });
    }

    /// Radial splits are restricted to the unfused kernels and the grouped
    /// comm protocol; both restrictions surface as typed plan errors.
    #[test]
    fn radial_split_restrictions_are_typed_errors() {
        let mut c = cfg(Regime::Euler);
        let topo = CartTopology::new(1, 2).unwrap();
        assert_eq!(run_parallel_cart(&c, topo, 1, CommVersion::V7).unwrap_err(), DecompositionError::UnsupportedComm);
        c.version = ns_core::config::Version::V6;
        assert_eq!(
            run_parallel_cart(&c, topo, 1, CommVersion::V5).unwrap_err(),
            DecompositionError::UnsupportedVersion { version: ns_core::config::Version::V6 }
        );
    }
}
