//! The distributed-memory parallel driver: one OS thread per rank, the
//! paper's axial block decomposition, real message passing through the
//! in-process endpoints.
//!
//! Beyond real wall-clock speedup, the driver records the same breakdown the
//! paper plots: per-rank *processor busy time* and *non-overlapped
//! communication time* (Figures 5, 6, 13), message start-ups and volume
//! (Tables 1, 2).

use crate::comm::{universe, CommStats};
use crate::halo::{CommVersion, ThreadHalo};
use ns_core::config::SolverConfig;
use ns_core::field::{Field, Patch};
use ns_core::opcount::FlopLedger;
use ns_core::Solver;
use std::time::{Duration, Instant};

/// Result of one rank's run.
#[derive(Debug)]
pub struct RankResult {
    /// The rank id.
    pub rank: usize,
    /// Final local field (interior is authoritative).
    pub field: Field,
    /// Communication statistics.
    pub stats: CommStats,
    /// Time blocked in receives (non-overlapped communication).
    pub wait: Duration,
    /// Wall time minus wait (processor busy time, including message setup,
    /// exactly the paper's decomposition).
    pub busy: Duration,
    /// FLOP ledger.
    pub ledger: FlopLedger,
}

/// Result of a parallel run.
#[derive(Debug)]
pub struct ParallelRun {
    /// Per-rank results, index = rank.
    pub ranks: Vec<RankResult>,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Configuration used.
    pub cfg: SolverConfig,
    /// Steps taken.
    pub nsteps: u64,
}

impl ParallelRun {
    /// Assemble the distributed solution into one whole-grid field.
    pub fn gather_field(&self) -> Field {
        let whole = Patch::whole(self.cfg.grid.clone());
        let mut out = Field::zeros(whole);
        for r in &self.ranks {
            for c in 0..4 {
                for i in 0..r.field.nxl() {
                    let gi = r.field.patch.i0 + i;
                    for j in 0..r.field.nr() {
                        out.set(c, gi as isize, j as isize, r.field.at(c, i as isize, j as isize));
                    }
                }
            }
        }
        out
    }

    /// Aggregate FLOPs over all ranks.
    pub fn total_flops(&self) -> u64 {
        self.ranks.iter().map(|r| r.ledger.total()).sum()
    }

    /// Aggregate communication statistics.
    pub fn total_stats(&self) -> CommStats {
        let mut s = CommStats::default();
        for r in &self.ranks {
            s.sends += r.stats.sends;
            s.recvs += r.stats.recvs;
            s.bytes_sent += r.stats.bytes_sent;
            s.bytes_recvd += r.stats.bytes_recvd;
        }
        s
    }

    /// Per-rank busy times in seconds (Figure 13's bars).
    pub fn busy_seconds(&self) -> Vec<f64> {
        self.ranks.iter().map(|r| r.busy.as_secs_f64()).collect()
    }
}

/// Run the solver on `p` ranks for `nsteps` steps, starting from the
/// standard initial condition.
///
/// Panics if the decomposition is too fine for the 2-4 stencil and the
/// cubic boundary extrapolation (every rank needs at least 4 columns).
pub fn run_parallel(cfg: &SolverConfig, p: usize, nsteps: u64, version: CommVersion) -> ParallelRun {
    run_parallel_from(cfg, p, nsteps, version, None)
}

/// Restart a distributed run from a whole-grid checkpoint: the state is
/// scattered over the ranks and the clock/step parity continue where the
/// checkpoint left off. With `restart = None` this is a fresh run.
pub fn run_parallel_from(
    cfg: &SolverConfig,
    p: usize,
    nsteps: u64,
    version: CommVersion,
    restart: Option<&ns_core::checkpoint::Checkpoint>,
) -> ParallelRun {
    assert!(p >= 1);
    assert_eq!(cfg.dissipation, 0.0, "dissipation is serial-only (the paper's protocol has no smoothing halo)");
    let min_cols = cfg.grid.nx / p;
    assert!(min_cols >= 4, "{p} ranks over {} columns leaves ranks with fewer than 4 columns", cfg.grid.nx);

    if let Some(cp) = restart {
        assert_eq!(cp.patch.grid, cfg.grid, "checkpoint grid must match");
        assert!(cp.patch.nxl == cfg.grid.nx, "distributed restart needs a whole-grid checkpoint");
    }
    let endpoints = universe(p);
    let start = Instant::now();
    let mut ranks: Vec<RankResult> = std::thread::scope(|s| {
        let handles: Vec<_> = endpoints
            .into_iter()
            .map(|mut ep| {
                let cfg = cfg.clone();
                s.spawn(move || {
                    let rank = ep.rank();
                    let patch = Patch::block(cfg.grid.clone(), rank, p);
                    let left = (rank > 0).then(|| rank - 1);
                    let right = (rank + 1 < p).then_some(rank + 1);
                    let (nxl, nr) = (patch.nxl, patch.nr());
                    let mut solver = Solver::on_patch(cfg, patch);
                    if let Some(cp) = restart {
                        // scatter the whole-grid state into this rank's slab
                        let i0 = solver.field.patch.i0;
                        for c in 0..4 {
                            for i in 0..nxl {
                                for j in 0..nr {
                                    let v = cp.q[c].at(i0 + i + ns_core::field::NG, j + ns_core::field::NG);
                                    solver.field.set(c, i as isize, j as isize, v);
                                }
                            }
                        }
                        solver.t = cp.t;
                        solver.nstep = cp.nstep;
                    }
                    let t0 = Instant::now();
                    {
                        let mut halo = ThreadHalo::new(&mut ep, left, right, nxl, nr, version);
                        for _ in 0..nsteps {
                            halo.begin_step(solver.nstep);
                            solver.step_with_halo(&mut halo);
                        }
                    }
                    let wall = t0.elapsed();
                    let wait = ep.wait_time;
                    RankResult {
                        rank,
                        field: solver.field,
                        stats: ep.stats,
                        wait,
                        busy: wall.saturating_sub(wait),
                        ledger: solver.ledger,
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
    });
    let elapsed = start.elapsed();
    ranks.sort_by_key(|r| r.rank);
    ParallelRun { ranks, elapsed, cfg: cfg.clone(), nsteps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ns_core::config::Regime;
    use ns_core::workload;
    use ns_numerics::Grid;

    fn cfg(regime: Regime) -> SolverConfig {
        SolverConfig::paper(Grid::small(), regime)
    }

    /// Euler exchanges everything its stencils need, so the distributed
    /// solution is bitwise identical to the serial one. Navier-Stokes uses
    /// local one-sided stencils for the radial operator's viscous
    /// cross-derivatives at internal edges (the paper's protocol carries no
    /// radial-sweep messages), which is O(dx^2 * mu)-consistent: the
    /// difference must be at viscous truncation level, orders below the
    /// solution scale.
    #[test]
    fn parallel_matches_serial() {
        for (regime, tol) in [(Regime::Euler, 0.0), (Regime::NavierStokes, 1e-9)] {
            let cfg = cfg(regime);
            let mut serial = Solver::new(cfg.clone());
            serial.run(6);
            for p in [2, 3, 5] {
                let run = run_parallel(&cfg, p, 6, CommVersion::V5);
                let gathered = run.gather_field();
                let d = serial.field.max_diff(&gathered);
                assert!(d <= tol, "{regime:?} p={p}: diff {d} exceeds {tol}");
            }
        }
    }

    #[test]
    fn v7_protocol_matches_v5_bitwise() {
        let cfg = cfg(Regime::NavierStokes);
        let a = run_parallel(&cfg, 3, 4, CommVersion::V5);
        let b = run_parallel(&cfg, 3, 4, CommVersion::V7);
        assert_eq!(a.gather_field().max_diff(&b.gather_field()), 0.0, "V7 moves the same data");
    }

    #[test]
    fn startup_counts_match_table1_protocol() {
        let nsteps = 5;
        for (regime, per_step) in [(Regime::NavierStokes, 16u64), (Regime::Euler, 12u64)] {
            let run = run_parallel(&cfg(regime), 4, nsteps, CommVersion::V5);
            // interior ranks (1, 2) have two neighbours
            for r in &run.ranks[1..3] {
                assert_eq!(
                    r.stats.startups(),
                    per_step * nsteps,
                    "{regime:?} rank {}: paper protocol start-ups",
                    r.rank
                );
            }
            // edge ranks have one neighbour: half the start-ups
            assert_eq!(run.ranks[0].stats.startups(), per_step * nsteps / 2);
            assert_eq!(run.ranks[3].stats.startups(), per_step * nsteps / 2);
        }
    }

    #[test]
    fn message_volume_matches_workload_model() {
        let nsteps = 3;
        let c = cfg(Regime::NavierStokes);
        let run = run_parallel(&c, 4, nsteps, CommVersion::V5);
        let w = workload::step_workload(Regime::NavierStokes, &c.grid, c.grid.nx / 4);
        let expected_interior = w.bytes_sent_per_step(2) * nsteps;
        assert_eq!(run.ranks[1].stats.bytes_sent, expected_interior);
        assert_eq!(run.ranks[0].stats.bytes_sent, expected_interior / 2);
    }

    #[test]
    fn ledger_total_is_close_to_serial() {
        let c = cfg(Regime::Euler);
        let mut serial = Solver::new(c.clone());
        serial.run(4);
        let run = run_parallel(&c, 4, 4, CommVersion::V5);
        let par = run.total_flops() as f64;
        let ser = serial.ledger.total() as f64;
        // parallel does a little extra boundary/ghost work; totals must be
        // within a few percent
        assert!((par - ser).abs() / ser < 0.05, "serial {ser} vs parallel {par}");
    }

    #[test]
    fn distributed_restart_is_transparent() {
        use ns_core::checkpoint::Checkpoint;
        let c = cfg(Regime::Euler);
        // uninterrupted reference: 9 steps serial
        let mut reference = Solver::new(c.clone());
        reference.run(9);
        // 4 serial steps, checkpoint, then 5 more on 3 ranks
        let mut first = Solver::new(c.clone());
        first.run(4);
        let cp = Checkpoint::capture(&first);
        let resumed = run_parallel_from(&c, 3, 5, CommVersion::V5, Some(&cp));
        assert_eq!(reference.field.max_diff(&resumed.gather_field()), 0.0, "scatter restart is bitwise");
        // the resumed ranks continued the global clock
        assert_eq!(resumed.ranks[0].ledger.total() > 0, true);
    }

    #[test]
    #[should_panic(expected = "whole-grid checkpoint")]
    fn partial_checkpoint_is_rejected_for_restart() {
        use ns_core::checkpoint::Checkpoint;
        let c = cfg(Regime::Euler);
        let partial = Solver::on_patch(c.clone(), Patch::block(c.grid.clone(), 0, 2));
        let cp = Checkpoint::capture(&partial);
        let _ = run_parallel_from(&c, 2, 1, CommVersion::V5, Some(&cp));
    }

    #[test]
    #[should_panic(expected = "fewer than 4 columns")]
    fn too_many_ranks_is_rejected() {
        let c = cfg(Regime::Euler);
        let _ = run_parallel(&c, 20, 1, CommVersion::V5);
    }
}
