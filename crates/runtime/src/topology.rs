//! Cartesian rank topology for the 2-D pencil decomposition.
//!
//! The paper decomposes "by blocks along the axial direction only" and
//! names radial blocking as future work; a `px × pr` pencil grid subsumes
//! both (`P × 1` is the paper's layout, `1 × P` the pure radial one) and
//! lets the halo surface shrink with both factors. Ranks are numbered
//! axial-fastest — `rank = cr * px + cx` — so a `P × 1` topology reproduces
//! the existing 1-D rank numbering exactly and every axial-only code path
//! is the degenerate case, not a special one.

use ns_core::config::{SolverConfig, Version};
use ns_core::field::NG;
use std::fmt;

/// Why a decomposition plan was rejected at validation time (instead of a
/// panic mid-run).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecompositionError {
    /// A zero-rank (or zero-extent) topology.
    ZeroRanks,
    /// Axial split too fine: some rank would own fewer than the minimum
    /// columns the 2-4 stencil's edge handling needs.
    TooFewColumns {
        /// Axial ranks requested.
        px: usize,
        /// Grid columns being split.
        nx: usize,
    },
    /// Radial split too fine: some rank would own fewer rows than the
    /// far-field cubic extrapolation reads.
    TooFewRows {
        /// Radial ranks requested.
        pr: usize,
        /// Grid rows being split.
        nr: usize,
    },
    /// Radial splits require the unfused kernel rungs (V1–V5): the fused
    /// V6/V7 sweeps fill the radial boundary ghosts inline on every patch.
    UnsupportedVersion {
        /// The offending kernel version.
        version: Version,
    },
    /// Radial splits require the grouped exchange-then-compute comm
    /// protocol (V5); the split-phase orderings overlap only axial traffic.
    UnsupportedComm,
}

impl fmt::Display for DecompositionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompositionError::ZeroRanks => write!(f, "decomposition has zero ranks"),
            DecompositionError::TooFewColumns { px, nx } => {
                write!(f, "{px} ranks over {nx} columns leaves ranks with fewer than {MIN_COLS} columns")
            }
            DecompositionError::TooFewRows { pr, nr } => {
                write!(f, "{pr} radial ranks over {nr} rows leaves ranks with fewer than {MIN_ROWS} rows")
            }
            DecompositionError::UnsupportedVersion { version } => {
                write!(f, "radial splits need the unfused kernel rungs (V1-V5), got {version:?}")
            }
            DecompositionError::UnsupportedComm => {
                write!(f, "radial splits need the grouped comm protocol (V5)")
            }
        }
    }
}

impl std::error::Error for DecompositionError {}

/// Minimum columns per rank (the axial edge-flux handling and the split
/// one-sided stencils need this much locally).
pub const MIN_COLS: usize = 4;
/// Minimum rows per rank (the far-field cubic extrapolation reads 4 rows,
/// and the 2-4 stencil reaches `j±2`).
pub const MIN_ROWS: usize = 4;

/// The four face neighbours of a pencil, `None` at owned global boundaries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CartNeighbors {
    /// Axial predecessor (towards the inflow).
    pub left: Option<usize>,
    /// Axial successor (towards the outflow).
    pub right: Option<usize>,
    /// Radial predecessor (towards the jet axis).
    pub down: Option<usize>,
    /// Radial successor (towards the far field).
    pub up: Option<usize>,
}

/// An `px × pr` Cartesian rank grid (axial × radial), ranks numbered
/// axial-fastest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CartTopology {
    /// Ranks along the axial direction.
    pub px: usize,
    /// Ranks along the radial direction.
    pub pr: usize,
}

impl CartTopology {
    /// Build a topology; zero extent on either axis is a constructor error
    /// (this is what turns the old "empty rank set reports 0 steps" bug
    /// into a typed failure).
    pub fn new(px: usize, pr: usize) -> Result<Self, DecompositionError> {
        if px == 0 || pr == 0 {
            return Err(DecompositionError::ZeroRanks);
        }
        Ok(Self { px, pr })
    }

    /// The paper's axial layout (`p × 1`). Panics on `p == 0`.
    pub fn axial(p: usize) -> Self {
        Self::new(p, 1).expect("axial topology needs at least one rank")
    }

    /// Total rank count.
    pub fn size(&self) -> usize {
        self.px * self.pr
    }

    /// Cartesian coordinates `(cx, cr)` of `rank`.
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        assert!(rank < self.size(), "rank {rank} outside {}x{} topology", self.px, self.pr);
        (rank % self.px, rank / self.px)
    }

    /// Rank at coordinates `(cx, cr)`.
    pub fn rank(&self, cx: usize, cr: usize) -> usize {
        assert!(cx < self.px && cr < self.pr, "({cx},{cr}) outside {}x{} topology", self.px, self.pr);
        cr * self.px + cx
    }

    /// The four face neighbours of `rank`.
    pub fn neighbors(&self, rank: usize) -> CartNeighbors {
        let (cx, cr) = self.coords(rank);
        CartNeighbors {
            left: (cx > 0).then(|| self.rank(cx - 1, cr)),
            right: (cx + 1 < self.px).then(|| self.rank(cx + 1, cr)),
            down: (cr > 0).then(|| self.rank(cx, cr - 1)),
            up: (cr + 1 < self.pr).then(|| self.rank(cx, cr + 1)),
        }
    }

    /// Validate this topology against a solver configuration: split
    /// fineness on both axes plus the kernel/protocol restrictions of
    /// radial splits. This is the admission check `ns-serve` runs before
    /// accepting a job, so a daemon never takes work it would panic on.
    pub fn validate(&self, cfg: &SolverConfig, comm: crate::halo::CommVersion) -> Result<(), DecompositionError> {
        if self.px == 0 || self.pr == 0 {
            return Err(DecompositionError::ZeroRanks);
        }
        if cfg.grid.nx / self.px < MIN_COLS {
            return Err(DecompositionError::TooFewColumns { px: self.px, nx: cfg.grid.nx });
        }
        if self.pr > 1 {
            if cfg.grid.nr / self.pr < MIN_ROWS {
                return Err(DecompositionError::TooFewRows { pr: self.pr, nr: cfg.grid.nr });
            }
            if cfg.version >= Version::V6 {
                return Err(DecompositionError::UnsupportedVersion { version: cfg.version });
            }
            if comm != crate::halo::CommVersion::V5 {
                return Err(DecompositionError::UnsupportedComm);
            }
        }
        Ok(())
    }

    /// Pick the factorization of `p` ranks that minimizes the per-rank halo
    /// surface on an `nx × nr` grid: axial halos are columns of `~nr/pr`
    /// points, radial halos padded rows of `~nx/px + 2 NG` points. Ties and
    /// infeasible radial splits fall back towards the paper's axial layout
    /// (larger `px`).
    pub fn factor(p: usize, nx: usize, nr: usize) -> Result<Self, DecompositionError> {
        if p == 0 {
            return Err(DecompositionError::ZeroRanks);
        }
        let mut best: Option<(usize, CartTopology)> = None;
        for px in (1..=p).rev() {
            if !p.is_multiple_of(px) {
                continue;
            }
            let pr = p / px;
            if nx / px < MIN_COLS || (pr > 1 && nr / pr < MIN_ROWS) {
                continue;
            }
            let surface =
                (if px > 1 { nr.div_ceil(pr) } else { 0 }) + (if pr > 1 { nx.div_ceil(px) + 2 * NG } else { 0 });
            // strictly-better only: on ties the earlier (larger-px) wins
            if best.is_none_or(|(s, _)| surface < s) {
                best = Some((surface, CartTopology { px, pr }));
            }
        }
        best.map(|(_, t)| t).ok_or(DecompositionError::TooFewColumns { px: p, nx })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axial_topology_matches_1d_numbering() {
        let t = CartTopology::axial(4);
        for rank in 0..4 {
            assert_eq!(t.coords(rank), (rank, 0));
            let nb = t.neighbors(rank);
            assert_eq!(nb.left, (rank > 0).then(|| rank - 1));
            assert_eq!(nb.right, (rank < 3).then(|| rank + 1));
            assert_eq!(nb.down, None);
            assert_eq!(nb.up, None);
        }
    }

    #[test]
    fn pencil_neighbors_are_cartesian() {
        // 3 x 2: ranks 0..2 bottom row, 3..5 top row
        let t = CartTopology::new(3, 2).unwrap();
        assert_eq!(t.rank(1, 1), 4);
        let nb = t.neighbors(4);
        assert_eq!(nb.left, Some(3));
        assert_eq!(nb.right, Some(5));
        assert_eq!(nb.down, Some(1));
        assert_eq!(nb.up, None);
        let nb0 = t.neighbors(0);
        assert_eq!((nb0.left, nb0.down), (None, None));
        assert_eq!((nb0.right, nb0.up), (Some(1), Some(3)));
    }

    #[test]
    fn zero_ranks_is_a_constructor_error() {
        assert_eq!(CartTopology::new(0, 1), Err(DecompositionError::ZeroRanks));
        assert_eq!(CartTopology::new(1, 0), Err(DecompositionError::ZeroRanks));
        assert_eq!(CartTopology::factor(0, 66, 24), Err(DecompositionError::ZeroRanks));
    }

    #[test]
    fn factor_prefers_square_when_surface_wins() {
        // 64 ranks on a large square grid: near-square beats slabs
        let t = CartTopology::factor(64, 512, 512).unwrap();
        assert_eq!((t.px, t.pr), (8, 8));
        // paper grid at P=4: axial surface 24/1=24 vs pencil 2x2 surface
        // 12 + (33+4) = 49 -> axial wins
        let t = CartTopology::factor(4, 66, 24).unwrap();
        assert_eq!((t.px, t.pr), (4, 1));
    }

    #[test]
    fn factor_respects_min_extents() {
        // 16 ranks over 66 columns: 16x1 leaves 4 columns (ok); 24 rows
        // cannot take pr=8 (3 rows each)
        let t = CartTopology::factor(16, 66, 24).unwrap();
        assert!(t.px * t.pr == 16 && 66 / t.px >= MIN_COLS);
        assert!(t.pr == 1 || 24 / t.pr >= MIN_ROWS);
        // impossible: 64 ranks over the paper grid has no feasible shape
        // (64x1 leaves 1 column, 16x4 leaves 4 cols x 6 rows -> feasible!)
        let t = CartTopology::factor(64, 66, 24).unwrap();
        assert_eq!((66 / t.px >= MIN_COLS, 24 / t.pr >= MIN_ROWS), (true, true));
    }
}
