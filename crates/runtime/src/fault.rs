//! Deterministic fault injection for the message-passing runtime.
//!
//! The paper's headline platform — LACE workstations on shared Ethernet,
//! FDDI and ATM — is exactly the environment where frames get dropped,
//! delayed, duplicated and corrupted, and where a hung workstation kills a
//! multi-hour run. A [`FaultPlan`] describes such an environment as data:
//! per-frame fault rates, an optional rank crash, and a seed. The derived
//! [`FaultInjector`] makes every decision with a counter-keyed [`SplitMix64`]
//! stream, so a plan replays *bit-identically* — the same frames are dropped
//! on every execution regardless of thread scheduling — which is what lets
//! the chaos tests assert bitwise recovery instead of "usually works".
//!
//! Injection happens on the send side of [`crate::comm::Endpoint`], behind
//! an `Option` that is `None` on the fault-free path (one branch, no
//! allocation — see the `comm_framing` group in `BENCH_faults.json`).

use std::time::Duration;

/// A tiny, high-quality 64-bit PRNG (SplitMix64). Deterministic, seedable,
/// and dependency-free — the runtime must not pull in `rand` for the hot
/// path.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Crash one rank at the start of one global step (before the step
/// executes). The recovery driver disarms the crash after it fires, so the
/// re-executed timeline survives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashSpec {
    /// Rank that dies.
    pub rank: usize,
    /// Global step at whose start it dies.
    pub step: u64,
}

/// A seeded, fully deterministic description of an unreliable network.
///
/// Rates are per *data frame* (control messages are never injected).
/// Multiple fault kinds are drawn independently per frame in a fixed order
/// (drop, then corrupt, then duplicate, then delay); a dropped frame skips
/// the later draws.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the decision stream.
    pub seed: u64,
    /// Probability a frame is silently dropped.
    pub drop_rate: f64,
    /// Probability a frame has one payload bit flipped in flight.
    pub corrupt_rate: f64,
    /// Probability a frame is delivered twice.
    pub dup_rate: f64,
    /// Probability a frame is held back by [`FaultPlan::delay`] first.
    pub delay_rate: f64,
    /// How long a delayed frame is held.
    pub delay: Duration,
    /// Optional single rank crash.
    pub crash: Option<CrashSpec>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            dup_rate: 0.0,
            delay_rate: 0.0,
            delay: Duration::from_millis(1),
            crash: None,
        }
    }
}

impl FaultPlan {
    /// A plan with every fault disabled (framing overhead only).
    pub fn none(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// Uniform message-level fault rates (drop = corrupt = dup = `rate`).
    pub fn uniform(seed: u64, rate: f64) -> Self {
        Self { seed, drop_rate: rate, corrupt_rate: rate, dup_rate: rate, ..Self::default() }
    }

    /// Does the plan inject any message-level fault at all?
    pub fn has_message_faults(&self) -> bool {
        self.drop_rate > 0.0 || self.corrupt_rate > 0.0 || self.dup_rate > 0.0 || self.delay_rate > 0.0
    }

    /// The plan with the crash removed (the recovery driver disarms a crash
    /// after it has fired once).
    pub fn disarmed(&self) -> Self {
        Self { crash: None, ..self.clone() }
    }
}

/// What the injector decided to do with one outgoing frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver untouched.
    Deliver,
    /// Silently discard.
    Drop,
    /// Flip the given bit of the given payload byte (both reduced modulo the
    /// frame length by the caller).
    Corrupt {
        /// Byte offset entropy.
        byte: u64,
        /// Bit index 0-7.
        bit: u8,
    },
    /// Deliver the frame twice.
    Duplicate,
    /// Sleep for the duration, then deliver.
    Delay(Duration),
}

/// Counters of the faults an injector actually committed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames examined.
    pub frames: u64,
    /// Frames dropped.
    pub dropped: u64,
    /// Frames with a bit flipped.
    pub corrupted: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Frames delayed.
    pub delayed: u64,
}

impl FaultStats {
    /// Total injected faults of any kind.
    pub fn total(&self) -> u64 {
        self.dropped + self.corrupted + self.duplicated + self.delayed
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, o: &FaultStats) {
        self.frames += o.frames;
        self.dropped += o.dropped;
        self.corrupted += o.corrupted;
        self.duplicated += o.duplicated;
        self.delayed += o.delayed;
    }
}

/// One rank's per-send fault decision stream.
///
/// Determinism contract: decisions depend only on `(plan.seed, rank,
/// generation, frame index)` — never on wall-clock time or scheduling — so a
/// rank sends the same faulted frame sequence on every run of the same plan.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rank: usize,
    rng: SplitMix64,
    /// Committed-fault counters.
    pub stats: FaultStats,
}

impl FaultInjector {
    /// The injector for one rank in one recovery generation. Folding the
    /// generation into the seed re-randomizes message faults after a
    /// rollback while keeping the whole timeline a pure function of the
    /// plan.
    pub fn for_rank(plan: &FaultPlan, rank: usize, generation: u32) -> Self {
        let key = plan
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((rank as u64) << 32)
            .wrapping_add(u64::from(generation));
        Self { plan: plan.clone(), rank, rng: SplitMix64::new(key), stats: FaultStats::default() }
    }

    /// The rank this injector belongs to.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Should this rank crash before executing `step`?
    pub fn crash_due(&self, step: u64) -> bool {
        self.plan.crash.is_some_and(|c| c.rank == self.rank && c.step == step)
    }

    /// Decide the fate of the next outgoing frame and count what was
    /// committed. Draws are made in a fixed order so the stream is
    /// reproducible whatever the rates are.
    pub fn decide(&mut self) -> FaultAction {
        self.stats.frames += 1;
        let p = &self.plan;
        // One draw per fault class, always consumed, so changing one rate
        // does not shift the other classes' streams.
        let (d, c, u, y) = (self.rng.next_f64(), self.rng.next_f64(), self.rng.next_f64(), self.rng.next_f64());
        let entropy = self.rng.next_u64();
        if d < p.drop_rate {
            self.stats.dropped += 1;
            return FaultAction::Drop;
        }
        if c < p.corrupt_rate {
            self.stats.corrupted += 1;
            return FaultAction::Corrupt { byte: entropy >> 8, bit: (entropy & 7) as u8 };
        }
        if u < p.dup_rate {
            self.stats.duplicated += 1;
            return FaultAction::Duplicate;
        }
        if y < p.delay_rate {
            self.stats.delayed += 1;
            return FaultAction::Delay(p.delay);
        }
        FaultAction::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let plan = FaultPlan::uniform(1234, 0.2);
        let mut a = FaultInjector::for_rank(&plan, 1, 0);
        let mut b = FaultInjector::for_rank(&plan, 1, 0);
        let sa: Vec<FaultAction> = (0..500).map(|_| a.decide()).collect();
        let sb: Vec<FaultAction> = (0..500).map(|_| b.decide()).collect();
        assert_eq!(sa, sb);
        assert_eq!(a.stats, b.stats);
        assert!(a.stats.total() > 0, "20% rates over 500 frames must fire");
    }

    #[test]
    fn ranks_and_generations_get_distinct_streams() {
        let plan = FaultPlan::uniform(7, 0.3);
        let stream = |rank, generation| {
            let mut inj = FaultInjector::for_rank(&plan, rank, generation);
            (0..200).map(|_| inj.decide()).collect::<Vec<_>>()
        };
        assert_ne!(stream(0, 0), stream(1, 0), "ranks decorrelated");
        assert_ne!(stream(0, 0), stream(0, 1), "generations decorrelated");
    }

    #[test]
    fn zero_rates_always_deliver() {
        let mut inj = FaultInjector::for_rank(&FaultPlan::none(99), 0, 0);
        for _ in 0..200 {
            assert_eq!(inj.decide(), FaultAction::Deliver);
        }
        assert_eq!(inj.stats.total(), 0);
        assert_eq!(inj.stats.frames, 200);
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let plan = FaultPlan { seed: 5, drop_rate: 0.1, ..FaultPlan::default() };
        let mut inj = FaultInjector::for_rank(&plan, 2, 0);
        for _ in 0..10_000 {
            inj.decide();
        }
        let rate = inj.stats.dropped as f64 / 10_000.0;
        assert!((rate - 0.1).abs() < 0.02, "observed drop rate {rate}");
    }

    #[test]
    fn changing_one_rate_keeps_other_streams() {
        // dup decisions must not move when the drop rate changes from 0 to a
        // value that never fires anyway — the draws are positionally fixed
        let base = FaultPlan { seed: 3, dup_rate: 0.5, ..FaultPlan::default() };
        let shifted = FaultPlan { drop_rate: 1e-12, ..base.clone() };
        let dups = |plan: &FaultPlan| {
            let mut inj = FaultInjector::for_rank(plan, 0, 0);
            (0..300).map(|_| matches!(inj.decide(), FaultAction::Duplicate)).collect::<Vec<_>>()
        };
        assert_eq!(dups(&base), dups(&shifted));
    }

    #[test]
    fn crash_spec_targets_one_rank_and_step() {
        let plan = FaultPlan { crash: Some(CrashSpec { rank: 2, step: 5 }), ..FaultPlan::none(0) };
        let victim = FaultInjector::for_rank(&plan, 2, 0);
        let bystander = FaultInjector::for_rank(&plan, 1, 0);
        assert!(victim.crash_due(5));
        assert!(!victim.crash_due(4));
        assert!(!bystander.crash_due(5));
        let disarmed = FaultInjector::for_rank(&plan.disarmed(), 2, 1);
        assert!(!disarmed.crash_due(5));
    }
}
