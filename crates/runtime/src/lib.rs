#![warn(missing_docs)]

//! # ns-runtime
//!
//! A PVM-style message-passing runtime and the distributed-memory parallel
//! driver for the jet solver.
//!
//! The paper parallelizes its application with PVM (LACE, T3D), MPL and
//! PVMe (IBM SP). This crate reproduces that programming model in-process:
//!
//! * [`pack`] — typed pack/unpack buffers (`pvm_pkdouble` workflow);
//! * [`comm`] — tagged point-to-point endpoints over crossbeam channels,
//!   with stash-based tag matching, per-rank statistics and wait-time
//!   accounting;
//! * [`collectives`] — barrier / all-reduce built from point-to-point;
//! * [`halo`] — the paper's grouped halo protocol (primitive columns,
//!   two-column flux packets), including the Version 7 burst-splitting
//!   variant;
//! * [`topology`] — the Cartesian `px × pr` pencil rank grid with typed
//!   decomposition-plan validation;
//! * [`parallel`] — the rank-per-thread driver with the paper's
//!   busy/non-overlapped time breakdown;
//! * [`fault`] — seeded, deterministic fault injection (drop / corrupt /
//!   duplicate / delay / rank crash) for chaos testing;
//! * [`recover`] — coordinated in-memory checkpoints and rollback/re-execute
//!   recovery on top of [`parallel`].
//!
//! The distributed solver is *bitwise identical* to the serial solver for
//! any processor count — asserted by tests — because the exchanged ghost
//! data are exactly the values the serial sweep would read.

pub mod collectives;
pub mod comm;
pub mod fault;
pub mod halo;
pub mod pack;
pub mod parallel;
pub mod recover;
pub mod topology;

pub use comm::{CommStats, Endpoint, ReliableConfig};
pub use fault::{CrashSpec, FaultInjector, FaultPlan, FaultStats};
pub use halo::{CommVersion, ThreadHalo};
pub use parallel::{
    run_parallel, run_parallel_cart, run_parallel_from, run_parallel_instrumented, CancelToken, ParallelRun,
    RankResult, TelemetryOptions,
};
pub use recover::{run_parallel_chaos, run_parallel_chaos_cart, ChaosOptions, RecoveryReport};
pub use topology::{CartNeighbors, CartTopology, DecompositionError};
