//! PVM-style pack/unpack buffers.
//!
//! The paper parallelizes with PVM 3.2.2, whose idiom is to *pack* values
//! into a typed send buffer (`pvm_pkdouble`), send it as one message, and
//! *unpack* on the receiving side. [`PackBuf`] reproduces that workflow over
//! [`bytes::BytesMut`]: doubles are packed little-endian, counts are
//! explicit, and unpacking is checked so a truncated or mis-tagged message
//! surfaces as an error instead of garbage.
//!
//! The hot comm path goes through a [`BufPool`]: send buffers are acquired
//! from the pool and received payloads are recycled back into it (the
//! channel hands the receiver sole ownership, so [`Bytes::try_into_mut`]
//! recovers the storage without copying). At steady state each rank's halo
//! exchanges therefore allocate nothing per step.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Errors surfaced while unpacking a message payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PackError {
    /// The payload ended before the requested items could be read.
    Truncated {
        /// Items requested.
        wanted: usize,
        /// Full f64 items remaining.
        available: usize,
    },
    /// Unpacking finished with bytes left over (protocol mismatch).
    TrailingBytes(usize),
    /// A framed payload failed validation (too short or checksum mismatch).
    CorruptFrame,
}

impl std::fmt::Display for PackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackError::Truncated { wanted, available } => {
                write!(f, "truncated payload: wanted {wanted} f64s, {available} available")
            }
            PackError::TrailingBytes(n) => write!(f, "{n} trailing bytes after unpack"),
            PackError::CorruptFrame => write!(f, "corrupt frame (short payload or checksum mismatch)"),
        }
    }
}

impl std::error::Error for PackError {}

/// A write-side pack buffer.
#[derive(Debug, Default)]
pub struct PackBuf {
    buf: BytesMut,
}

impl PackBuf {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity for `n` doubles.
    pub fn with_capacity_f64(n: usize) -> Self {
        Self { buf: BytesMut::with_capacity(n * 8) }
    }

    /// Pack one double.
    #[inline]
    pub fn pack_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Pack a slice of doubles.
    pub fn pack_f64_slice(&mut self, vs: &[f64]) {
        self.buf.reserve(vs.len() * 8);
        for &v in vs {
            self.buf.put_f64_le(v);
        }
    }

    /// Pack one unsigned 64-bit integer (frame headers, control payloads).
    #[inline]
    pub fn pack_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Append the reliability trailer: the frame sequence number, the
    /// causal span the frame was sent under (0 = none), and a checksum over
    /// the body, the sequence number and the span. The body bytes are
    /// untouched, so sealing is a 24-byte append, not a copy — the fault-free
    /// framed path stays on the zero-allocation pool.
    pub fn seal_frame(&mut self, seq: u64, span: u64) {
        let sum = frame_checksum(seq, span, &self.buf);
        self.buf.reserve(FRAME_TRAILER);
        self.buf.put_u64_le(seq);
        self.buf.put_u64_le(span);
        self.buf.put_u64_le(sum);
    }

    /// Number of packed bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been packed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Freeze into an immutable payload (zero-copy handoff to the channel).
    pub fn freeze(self) -> Bytes {
        self.buf.freeze()
    }
}

/// A read-side unpack cursor over a received payload.
#[derive(Debug)]
pub struct UnpackBuf {
    buf: Bytes,
}

impl UnpackBuf {
    /// Wrap a received payload.
    pub fn new(payload: Bytes) -> Self {
        Self { buf: payload }
    }

    /// Full f64 items remaining.
    pub fn remaining_f64(&self) -> usize {
        self.buf.remaining() / 8
    }

    /// Unpack one double.
    pub fn unpack_f64(&mut self) -> Result<f64, PackError> {
        if self.buf.remaining() < 8 {
            return Err(PackError::Truncated { wanted: 1, available: 0 });
        }
        Ok(self.buf.get_f64_le())
    }

    /// Unpack one unsigned 64-bit integer.
    pub fn unpack_u64(&mut self) -> Result<u64, PackError> {
        if self.buf.remaining() < 8 {
            return Err(PackError::Truncated { wanted: 1, available: 0 });
        }
        Ok(self.buf.get_u64_le())
    }

    /// Unpack exactly `out.len()` doubles into `out`.
    pub fn unpack_f64_slice(&mut self, out: &mut [f64]) -> Result<(), PackError> {
        if self.remaining_f64() < out.len() {
            return Err(PackError::Truncated { wanted: out.len(), available: self.remaining_f64() });
        }
        for o in out.iter_mut() {
            *o = self.buf.get_f64_le();
        }
        Ok(())
    }

    /// Assert the payload is fully consumed, handing it back so the caller
    /// can recycle its storage (see [`BufPool::recycle`]).
    pub fn finish(self) -> Result<Bytes, PackError> {
        if self.buf.has_remaining() {
            Err(PackError::TrailingBytes(self.buf.remaining()))
        } else {
            Ok(self.buf)
        }
    }
}

/// Bytes appended to a sealed frame: sequence number + span + checksum.
pub const FRAME_TRAILER: usize = 24;

/// FNV-1a (folded 8 bytes at a time for speed) over the body, seeded with
/// the frame sequence number and the causal span, so a flipped bit anywhere
/// in the frame — body, sequence, span, or checksum itself — fails
/// validation: each round is xor-then-multiply-by-odd, which is bijective on
/// the 64-bit state, so a single changed chunk always changes the digest.
/// Not cryptographic; it models the link-level CRC a real LACE-era network
/// would apply per packet.
pub fn frame_checksum(seq: u64, span: u64, body: &[u8]) -> u64 {
    const P: u64 = 0x0000_0100_0000_01b3;
    let mut h =
        0xcbf2_9ce4_8422_2325u64 ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ span.wrapping_mul(0xd6e8_feb8_6659_fd93);
    // four independent lanes give the multiplier's latency somewhere to
    // hide on halo-sized bodies; the fold passes each lane through the
    // same xor-multiply bijection, so a flipped chunk in any lane still
    // always changes the digest
    let mut lanes = [h, h ^ P, h.rotate_left(17), h.rotate_left(41)];
    let mut blocks = body.chunks_exact(32);
    for blk in &mut blocks {
        for (k, lane) in lanes.iter_mut().enumerate() {
            *lane ^= u64::from_le_bytes(blk[k * 8..k * 8 + 8].try_into().expect("8-byte chunk"));
            *lane = lane.wrapping_mul(P);
        }
    }
    for lane in lanes {
        h = (h ^ lane).wrapping_mul(P);
    }
    let mut chunks = blocks.remainder().chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(P);
    }
    for &b in chunks.remainder() {
        h ^= u64::from(b);
        h = h.wrapping_mul(P);
    }
    h
}

/// A validated frame: the sequence number, the causal span, and the body
/// with the trailer stripped.
#[derive(Debug)]
pub struct Frame {
    /// Per-link monotone sequence number (duplicate detection).
    pub seq: u64,
    /// Causal span the frame was sealed under (0 = none); a resend serves
    /// the cached sealed bytes, so the original span survives the NACK
    /// round-trip.
    pub span: u64,
    /// The original packed payload.
    pub body: Bytes,
}

/// Validate a sealed frame: strip the trailer, recompute the checksum, and
/// hand back the body. Any mismatch — truncation, a flipped payload bit, a
/// damaged trailer — returns [`PackError::CorruptFrame`] without panicking.
pub fn open_frame(payload: Bytes) -> Result<Frame, PackError> {
    if payload.len() < FRAME_TRAILER {
        return Err(PackError::CorruptFrame);
    }
    let blen = payload.len() - FRAME_TRAILER;
    let seq = u64::from_le_bytes(payload[blen..blen + 8].try_into().expect("8-byte slice"));
    let span = u64::from_le_bytes(payload[blen + 8..blen + 16].try_into().expect("8-byte slice"));
    let sum = u64::from_le_bytes(payload[blen + 16..].try_into().expect("8-byte slice"));
    if frame_checksum(seq, span, &payload[..blen]) != sum {
        return Err(PackError::CorruptFrame);
    }
    // narrowing the view hides the trailer without copying, even while the
    // sender's retransmit cache still holds a clone of the frame
    let mut body = payload;
    body.truncate(blen);
    Ok(Frame { seq, span, body })
}

/// Read the span field straight out of a sealed frame's trailer without
/// validating the checksum (trace labelling of cached frames on the resend
/// path, where the frame was already validated when it was sealed).
pub fn peek_span(payload: &[u8]) -> Option<u64> {
    if payload.len() < FRAME_TRAILER {
        return None;
    }
    let blen = payload.len() - FRAME_TRAILER;
    Some(u64::from_le_bytes(payload[blen + 8..blen + 16].try_into().expect("8-byte slice")))
}

/// A pool of reusable message buffers.
///
/// [`acquire_f64`](BufPool::acquire_f64) hands out a cleared [`PackBuf`],
/// reusing pooled storage when any is available;
/// [`recycle`](BufPool::recycle) returns a consumed payload's storage to the
/// pool when the caller holds the last reference. A pool
/// [warmed](BufPool::warm) to its caller's working set never allocates at
/// all; a cold pool allocates only during its first cycle.
///
/// Every acquire also bumps the process-wide `ns_pool_acquired_total` /
/// `ns_pool_reused_total` registry counters, so the pool hit rate is
/// visible in the live metrics window alongside the comm counters.
#[derive(Debug)]
pub struct BufPool {
    free: Vec<BytesMut>,
    acquired: u64,
    reused: u64,
    m_acquired: std::sync::Arc<ns_metrics::Counter>,
    m_reused: std::sync::Arc<ns_metrics::Counter>,
}

impl Default for BufPool {
    fn default() -> Self {
        let r = ns_metrics::Registry::global();
        Self {
            free: Vec::new(),
            acquired: 0,
            reused: 0,
            m_acquired: r.counter("ns_pool_acquired_total"),
            m_reused: r.counter("ns_pool_reused_total"),
        }
    }
}

impl BufPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-fill the pool with `slots` buffers of `f64_capacity` doubles
    /// each. A caller that knows its per-cycle working set up front (e.g.
    /// a rank's halo sends per step) warms the pool once at setup, after
    /// which every acquire — including the very first — is a pool hit.
    pub fn warm(&mut self, slots: usize, f64_capacity: usize) {
        self.free.reserve(slots);
        for _ in 0..slots {
            self.free.push(BytesMut::with_capacity(f64_capacity * 8));
        }
    }

    /// Take a cleared buffer with room for `n` doubles, reusing pooled
    /// storage when available (the `reserve` is a no-op once the recycled
    /// buffer's capacity has grown to the message size).
    pub fn acquire_f64(&mut self, n: usize) -> PackBuf {
        self.acquired += 1;
        self.m_acquired.inc();
        match self.free.pop() {
            Some(mut buf) => {
                self.reused += 1;
                self.m_reused.inc();
                buf.clear();
                buf.reserve(n * 8);
                PackBuf { buf }
            }
            None => PackBuf::with_capacity_f64(n),
        }
    }

    /// Return a payload's storage to the pool. A payload still shared with
    /// other handles is simply dropped (nothing to reuse).
    pub fn recycle(&mut self, payload: Bytes) {
        if let Ok(buf) = payload.try_into_mut() {
            self.free.push(buf);
        }
    }

    /// `(acquired, reused)` counters — `reused == acquired` over a window
    /// means the window ran allocation-free.
    pub fn stats(&self) -> (u64, u64) {
        (self.acquired, self.reused)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_slices() {
        let mut p = PackBuf::new();
        p.pack_f64(1.5);
        p.pack_f64_slice(&[2.0, -3.25, f64::MIN_POSITIVE]);
        assert_eq!(p.len(), 4 * 8);
        let mut u = UnpackBuf::new(p.freeze());
        assert_eq!(u.unpack_f64().unwrap(), 1.5);
        let mut out = [0.0; 3];
        u.unpack_f64_slice(&mut out).unwrap();
        assert_eq!(out, [2.0, -3.25, f64::MIN_POSITIVE]);
        u.finish().unwrap();
    }

    #[test]
    fn truncation_is_detected() {
        let mut p = PackBuf::new();
        p.pack_f64_slice(&[1.0, 2.0]);
        let mut u = UnpackBuf::new(p.freeze());
        let mut out = [0.0; 3];
        let err = u.unpack_f64_slice(&mut out).unwrap_err();
        assert_eq!(err, PackError::Truncated { wanted: 3, available: 2 });
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut p = PackBuf::new();
        p.pack_f64(7.0);
        p.pack_f64(8.0);
        let mut u = UnpackBuf::new(p.freeze());
        u.unpack_f64().unwrap();
        let err = u.finish().unwrap_err();
        assert_eq!(err, PackError::TrailingBytes(8));
    }

    #[test]
    fn nan_and_inf_survive() {
        let mut p = PackBuf::new();
        p.pack_f64_slice(&[f64::NAN, f64::INFINITY, f64::NEG_INFINITY]);
        let mut u = UnpackBuf::new(p.freeze());
        assert!(u.unpack_f64().unwrap().is_nan());
        assert_eq!(u.unpack_f64().unwrap(), f64::INFINITY);
        assert_eq!(u.unpack_f64().unwrap(), f64::NEG_INFINITY);
    }

    #[test]
    fn capacity_constructor_packs_without_growth() {
        let mut p = PackBuf::with_capacity_f64(100);
        p.pack_f64_slice(&vec![1.0; 100]);
        assert_eq!(p.len(), 800);
    }

    #[test]
    fn sealed_frame_roundtrips() {
        let mut p = PackBuf::new();
        p.pack_f64_slice(&[1.0, -2.5, f64::NAN]);
        let body_len = p.len();
        p.seal_frame(42, 9001);
        assert_eq!(p.len(), body_len + FRAME_TRAILER);
        let frame = open_frame(p.freeze()).unwrap();
        assert_eq!(frame.seq, 42);
        assert_eq!(frame.span, 9001);
        let mut u = UnpackBuf::new(frame.body);
        assert_eq!(u.unpack_f64().unwrap(), 1.0);
        assert_eq!(u.unpack_f64().unwrap(), -2.5);
        assert!(u.unpack_f64().unwrap().is_nan());
        u.finish().unwrap();
    }

    #[test]
    fn empty_body_frames_are_valid() {
        let mut p = PackBuf::new();
        p.seal_frame(7, 0);
        let frame = open_frame(p.freeze()).unwrap();
        assert_eq!(frame.seq, 7);
        assert_eq!(frame.span, 0);
        assert!(frame.body.is_empty());
    }

    #[test]
    fn peek_span_reads_the_trailer_without_validation() {
        let mut p = PackBuf::new();
        p.pack_f64(4.0);
        p.seal_frame(3, 777);
        let payload = p.freeze();
        assert_eq!(peek_span(&payload), Some(777));
        assert_eq!(peek_span(b"tiny"), None);
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let mut p = PackBuf::new();
        // 48-byte body: one 32-byte lane block plus two 8-byte tail
        // chunks, so both checksum paths a packed message can hit are
        // exercised
        p.pack_f64_slice(&[3.25, 9.5, -1.0, 0.0, 2.5e-3, 7.75]);
        p.seal_frame(11, 13);
        let pristine = p.freeze();
        // flip every bit position in turn: body, seq, span and checksum
        // bytes all must trip validation
        for byte in 0..pristine.len() {
            for bit in 0..8u8 {
                let mut corrupted = pristine.to_vec();
                corrupted[byte] ^= 1 << bit;
                let got = open_frame(Bytes::from(corrupted));
                assert!(matches!(got, Err(PackError::CorruptFrame)), "flip at byte {byte} bit {bit} undetected");
            }
        }
    }

    #[test]
    fn checksum_detects_flips_at_ragged_lengths() {
        // bodies that are not a multiple of 8 exercise the byte-tail path
        for n in [0usize, 1, 7, 31, 33, 45] {
            let body: Vec<u8> = (0..n as u8).collect();
            let pristine = frame_checksum(5, 0, &body);
            for byte in 0..n {
                for bit in 0..8u8 {
                    let mut c = body.clone();
                    c[byte] ^= 1 << bit;
                    assert_ne!(frame_checksum(5, 0, &c), pristine, "flip at byte {byte} bit {bit} of {n}");
                }
            }
            assert_ne!(frame_checksum(6, 0, &body), pristine, "seq must perturb the digest (len {n})");
            assert_ne!(frame_checksum(5, 1, &body), pristine, "span must perturb the digest (len {n})");
        }
    }

    #[test]
    fn short_frames_are_corrupt_not_panics() {
        assert!(matches!(open_frame(Bytes::copy_from_slice(b"tiny")), Err(PackError::CorruptFrame)));
        assert!(matches!(open_frame(Bytes::new()), Err(PackError::CorruptFrame)));
    }

    #[test]
    fn u64_roundtrip() {
        let mut p = PackBuf::new();
        p.pack_u64(u64::MAX);
        p.pack_u64(3);
        let mut u = UnpackBuf::new(p.freeze());
        assert_eq!(u.unpack_u64().unwrap(), u64::MAX);
        assert_eq!(u.unpack_u64().unwrap(), 3);
        u.finish().unwrap();
    }

    #[test]
    fn pool_recycles_consumed_payloads() {
        let mut pool = BufPool::new();
        for round in 0..3 {
            let mut p = pool.acquire_f64(50);
            p.pack_f64_slice(&[0.25; 50]);
            let mut u = UnpackBuf::new(p.freeze());
            let mut out = [0.0; 50];
            u.unpack_f64_slice(&mut out).unwrap();
            pool.recycle(u.finish().unwrap());
            let (acquired, reused) = pool.stats();
            assert_eq!(acquired, round + 1);
            // every round after the first runs on recycled storage
            assert_eq!(reused, round);
        }
    }

    #[test]
    fn warmed_pool_hits_from_the_first_acquire() {
        let before = ns_metrics::Registry::global().snapshot();
        let mut pool = BufPool::new();
        pool.warm(2, 50);
        for round in 1..=4u64 {
            let mut p = pool.acquire_f64(50);
            p.pack_f64_slice(&[1.5; 50]);
            let mut u = UnpackBuf::new(p.freeze());
            let mut out = [0.0; 50];
            u.unpack_f64_slice(&mut out).unwrap();
            pool.recycle(u.finish().unwrap());
            assert_eq!(pool.stats(), (round, round), "warmed pool must never allocate");
        }
        // the hit-rate counters land in the global registry (other tests
        // may bump them concurrently, so only lower-bound the delta)
        let delta = ns_metrics::Registry::global().snapshot().diff(&before);
        assert!(delta.counter("ns_pool_acquired_total") >= 4);
        assert!(delta.counter("ns_pool_reused_total") >= 4);
    }

    #[test]
    fn pool_drops_shared_payloads() {
        let mut pool = BufPool::new();
        let mut p = pool.acquire_f64(4);
        p.pack_f64(1.0);
        let payload = p.freeze();
        let _clone = payload.clone();
        pool.recycle(payload); // shared -> dropped, not pooled
        let _p2 = pool.acquire_f64(4);
        assert_eq!(pool.stats(), (2, 0));
    }
}
