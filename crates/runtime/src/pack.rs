//! PVM-style pack/unpack buffers.
//!
//! The paper parallelizes with PVM 3.2.2, whose idiom is to *pack* values
//! into a typed send buffer (`pvm_pkdouble`), send it as one message, and
//! *unpack* on the receiving side. [`PackBuf`] reproduces that workflow over
//! [`bytes::BytesMut`]: doubles are packed little-endian, counts are
//! explicit, and unpacking is checked so a truncated or mis-tagged message
//! surfaces as an error instead of garbage.
//!
//! The hot comm path goes through a [`BufPool`]: send buffers are acquired
//! from the pool and received payloads are recycled back into it (the
//! channel hands the receiver sole ownership, so [`Bytes::try_into_mut`]
//! recovers the storage without copying). At steady state each rank's halo
//! exchanges therefore allocate nothing per step.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Errors surfaced while unpacking a message payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PackError {
    /// The payload ended before the requested items could be read.
    Truncated {
        /// Items requested.
        wanted: usize,
        /// Full f64 items remaining.
        available: usize,
    },
    /// Unpacking finished with bytes left over (protocol mismatch).
    TrailingBytes(usize),
}

impl std::fmt::Display for PackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackError::Truncated { wanted, available } => {
                write!(f, "truncated payload: wanted {wanted} f64s, {available} available")
            }
            PackError::TrailingBytes(n) => write!(f, "{n} trailing bytes after unpack"),
        }
    }
}

impl std::error::Error for PackError {}

/// A write-side pack buffer.
#[derive(Debug, Default)]
pub struct PackBuf {
    buf: BytesMut,
}

impl PackBuf {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity for `n` doubles.
    pub fn with_capacity_f64(n: usize) -> Self {
        Self { buf: BytesMut::with_capacity(n * 8) }
    }

    /// Pack one double.
    #[inline]
    pub fn pack_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Pack a slice of doubles.
    pub fn pack_f64_slice(&mut self, vs: &[f64]) {
        self.buf.reserve(vs.len() * 8);
        for &v in vs {
            self.buf.put_f64_le(v);
        }
    }

    /// Number of packed bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been packed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Freeze into an immutable payload (zero-copy handoff to the channel).
    pub fn freeze(self) -> Bytes {
        self.buf.freeze()
    }
}

/// A read-side unpack cursor over a received payload.
#[derive(Debug)]
pub struct UnpackBuf {
    buf: Bytes,
}

impl UnpackBuf {
    /// Wrap a received payload.
    pub fn new(payload: Bytes) -> Self {
        Self { buf: payload }
    }

    /// Full f64 items remaining.
    pub fn remaining_f64(&self) -> usize {
        self.buf.remaining() / 8
    }

    /// Unpack one double.
    pub fn unpack_f64(&mut self) -> Result<f64, PackError> {
        if self.buf.remaining() < 8 {
            return Err(PackError::Truncated { wanted: 1, available: 0 });
        }
        Ok(self.buf.get_f64_le())
    }

    /// Unpack exactly `out.len()` doubles into `out`.
    pub fn unpack_f64_slice(&mut self, out: &mut [f64]) -> Result<(), PackError> {
        if self.remaining_f64() < out.len() {
            return Err(PackError::Truncated { wanted: out.len(), available: self.remaining_f64() });
        }
        for o in out.iter_mut() {
            *o = self.buf.get_f64_le();
        }
        Ok(())
    }

    /// Assert the payload is fully consumed, handing it back so the caller
    /// can recycle its storage (see [`BufPool::recycle`]).
    pub fn finish(self) -> Result<Bytes, PackError> {
        if self.buf.has_remaining() {
            Err(PackError::TrailingBytes(self.buf.remaining()))
        } else {
            Ok(self.buf)
        }
    }
}

/// A pool of reusable message buffers.
///
/// [`acquire_f64`](BufPool::acquire_f64) hands out a cleared [`PackBuf`],
/// reusing pooled storage when any is available;
/// [`recycle`](BufPool::recycle) returns a consumed payload's storage to the
/// pool when the caller holds the last reference. Once buffer capacities
/// have warmed up (one step), acquire/recycle cycles neither allocate nor
/// copy.
#[derive(Debug, Default)]
pub struct BufPool {
    free: Vec<BytesMut>,
    acquired: u64,
    reused: u64,
}

impl BufPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a cleared buffer with room for `n` doubles, reusing pooled
    /// storage when available (the `reserve` is a no-op once the recycled
    /// buffer's capacity has grown to the message size).
    pub fn acquire_f64(&mut self, n: usize) -> PackBuf {
        self.acquired += 1;
        match self.free.pop() {
            Some(mut buf) => {
                self.reused += 1;
                buf.clear();
                buf.reserve(n * 8);
                PackBuf { buf }
            }
            None => PackBuf::with_capacity_f64(n),
        }
    }

    /// Return a payload's storage to the pool. A payload still shared with
    /// other handles is simply dropped (nothing to reuse).
    pub fn recycle(&mut self, payload: Bytes) {
        if let Ok(buf) = payload.try_into_mut() {
            self.free.push(buf);
        }
    }

    /// `(acquired, reused)` counters — `reused == acquired` over a window
    /// means the window ran allocation-free.
    pub fn stats(&self) -> (u64, u64) {
        (self.acquired, self.reused)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_slices() {
        let mut p = PackBuf::new();
        p.pack_f64(1.5);
        p.pack_f64_slice(&[2.0, -3.25, f64::MIN_POSITIVE]);
        assert_eq!(p.len(), 4 * 8);
        let mut u = UnpackBuf::new(p.freeze());
        assert_eq!(u.unpack_f64().unwrap(), 1.5);
        let mut out = [0.0; 3];
        u.unpack_f64_slice(&mut out).unwrap();
        assert_eq!(out, [2.0, -3.25, f64::MIN_POSITIVE]);
        u.finish().unwrap();
    }

    #[test]
    fn truncation_is_detected() {
        let mut p = PackBuf::new();
        p.pack_f64_slice(&[1.0, 2.0]);
        let mut u = UnpackBuf::new(p.freeze());
        let mut out = [0.0; 3];
        let err = u.unpack_f64_slice(&mut out).unwrap_err();
        assert_eq!(err, PackError::Truncated { wanted: 3, available: 2 });
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut p = PackBuf::new();
        p.pack_f64(7.0);
        p.pack_f64(8.0);
        let mut u = UnpackBuf::new(p.freeze());
        u.unpack_f64().unwrap();
        let err = u.finish().unwrap_err();
        assert_eq!(err, PackError::TrailingBytes(8));
    }

    #[test]
    fn nan_and_inf_survive() {
        let mut p = PackBuf::new();
        p.pack_f64_slice(&[f64::NAN, f64::INFINITY, f64::NEG_INFINITY]);
        let mut u = UnpackBuf::new(p.freeze());
        assert!(u.unpack_f64().unwrap().is_nan());
        assert_eq!(u.unpack_f64().unwrap(), f64::INFINITY);
        assert_eq!(u.unpack_f64().unwrap(), f64::NEG_INFINITY);
    }

    #[test]
    fn capacity_constructor_packs_without_growth() {
        let mut p = PackBuf::with_capacity_f64(100);
        p.pack_f64_slice(&vec![1.0; 100]);
        assert_eq!(p.len(), 800);
    }

    #[test]
    fn pool_recycles_consumed_payloads() {
        let mut pool = BufPool::new();
        for round in 0..3 {
            let mut p = pool.acquire_f64(50);
            p.pack_f64_slice(&[0.25; 50]);
            let mut u = UnpackBuf::new(p.freeze());
            let mut out = [0.0; 50];
            u.unpack_f64_slice(&mut out).unwrap();
            pool.recycle(u.finish().unwrap());
            let (acquired, reused) = pool.stats();
            assert_eq!(acquired, round + 1);
            // every round after the first runs on recycled storage
            assert_eq!(reused, round);
        }
    }

    #[test]
    fn pool_drops_shared_payloads() {
        let mut pool = BufPool::new();
        let mut p = pool.acquire_f64(4);
        p.pack_f64(1.0);
        let payload = p.freeze();
        let _clone = payload.clone();
        pool.recycle(payload); // shared -> dropped, not pooled
        let _p2 = pool.acquire_f64(4);
        assert_eq!(pool.stats(), (2, 0));
    }
}
