//! Minimal collectives over the point-to-point endpoints: barrier and
//! all-reduce, built as gather-to-root plus broadcast (what PVM programs of
//! the period typically hand-rolled).

use crate::comm::{CommError, Endpoint, MsgKind, Tag};
use crate::pack::{PackBuf, UnpackBuf};

/// Gather one double from every rank to rank 0, reduce, broadcast the
/// result. `epoch` must be identical and strictly increasing across calls on
/// all ranks.
pub fn allreduce(ep: &mut Endpoint, x: f64, epoch: u64, op: impl Fn(f64, f64) -> f64) -> Result<f64, CommError> {
    let size = ep.size();
    if size == 1 {
        return Ok(x);
    }
    let gtag = Tag { kind: MsgKind::Gather, seq: epoch };
    let btag = Tag { kind: MsgKind::Bcast, seq: epoch };
    if ep.rank() == 0 {
        let mut acc = x;
        for src in 1..size {
            let payload = ep.recv(src, gtag)?;
            let mut u = UnpackBuf::new(payload);
            acc = op(acc, u.unpack_f64().map_err(|_| CommError::Disconnected)?);
        }
        for dst in 1..size {
            let mut b = PackBuf::new();
            b.pack_f64(acc);
            ep.send(dst, btag, b)?;
        }
        Ok(acc)
    } else {
        let mut b = PackBuf::new();
        b.pack_f64(x);
        ep.send(0, gtag, b)?;
        let payload = ep.recv(0, btag)?;
        let mut u = UnpackBuf::new(payload);
        u.unpack_f64().map_err(|_| CommError::Disconnected)
    }
}

/// All-reduce with max.
pub fn allreduce_max(ep: &mut Endpoint, x: f64, epoch: u64) -> Result<f64, CommError> {
    allreduce(ep, x, epoch, f64::max)
}

/// All-reduce with sum.
pub fn allreduce_sum(ep: &mut Endpoint, x: f64, epoch: u64) -> Result<f64, CommError> {
    allreduce(ep, x, epoch, |a, b| a + b)
}

/// Barrier: an all-reduce whose value is discarded.
pub fn barrier(ep: &mut Endpoint, epoch: u64) -> Result<(), CommError> {
    allreduce(ep, 0.0, epoch, |a, _| a).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::universe;
    use std::thread;

    #[test]
    fn allreduce_max_and_sum_across_ranks() {
        let eps = universe(4);
        let results: Vec<(f64, f64)> = thread::scope(|s| {
            let handles: Vec<_> = eps
                .into_iter()
                .map(|mut ep| {
                    s.spawn(move || {
                        let mine = ep.rank() as f64 + 1.0;
                        let mx = allreduce_max(&mut ep, mine, 0).unwrap();
                        let sm = allreduce_sum(&mut ep, mine, 1).unwrap();
                        (mx, sm)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (mx, sm) in results {
            assert_eq!(mx, 4.0);
            assert_eq!(sm, 10.0);
        }
    }

    #[test]
    fn barrier_completes_on_all_ranks() {
        let eps = universe(3);
        thread::scope(|s| {
            for mut ep in eps {
                s.spawn(move || {
                    for epoch in 0..5 {
                        barrier(&mut ep, epoch).unwrap();
                    }
                });
            }
        });
    }

    #[test]
    fn single_rank_is_trivial() {
        let mut eps = universe(1);
        let ep = &mut eps[0];
        assert_eq!(allreduce_max(ep, 3.0, 0).unwrap(), 3.0);
        barrier(ep, 1).unwrap();
        assert_eq!(ep.stats.sends, 0);
    }
}
