//! Coordinated checkpoints and rollback/re-execute recovery for the
//! parallel driver.
//!
//! The recovery model is the classical one for the paper's workstation
//! cluster: every `checkpoint_every` steps the universe agrees (via a
//! barrier) that it is intact and each rank snapshots its *local* state
//! with [`ns_core::checkpoint::Checkpoint`]. When a rank crashes or a
//! communication failure survives the reliability layer's retry budget, the
//! whole universe is torn down and re-executed — a fresh *generation* with
//! fresh channels — from the latest checkpoint step every rank holds.
//!
//! Determinism: a rank's local checkpoint is bitwise the state a fault-free
//! run has at that step (the reliability layer delivers exactly the sent
//! bytes, and ghosts are captured with the patch), and re-execution from a
//! bitwise state is bitwise — so the final gathered field of a chaos run is
//! **identical** to the fault-free run, which the tests assert.

use crate::collectives;
use crate::comm::{universe, CommError, CommStats, ReliableConfig};
use crate::fault::{FaultInjector, FaultPlan, FaultStats};
use crate::halo::{CommVersion, ThreadHalo};
use crate::parallel::{ParallelRun, RankResult};
use crate::topology::{CartTopology, DecompositionError};
use ns_core::checkpoint::Checkpoint;
use ns_core::config::SolverConfig;
use ns_core::field::{Field, Patch};
use ns_core::opcount::FlopLedger;
use ns_core::Solver;
use ns_metrics::{FlightDump, MetricsSummary, Registry};
use ns_telemetry::{PhaseLedger, RecoverySummary};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// Epoch namespace for the coordinated-checkpoint barriers, disjoint from
/// the adaptive-dt (raw step) and health (`1 << 62`) namespaces.
const CHECKPOINT_EPOCH: u64 = 1 << 61;

/// Tuning of a chaos/recovery run.
#[derive(Clone, Debug)]
pub struct ChaosOptions {
    /// The (deterministic) faults to inject.
    pub plan: FaultPlan,
    /// Reliability-layer tuning (retry interval and budget).
    pub reliable: ReliableConfig,
    /// Steps between coordinated checkpoints (>= 1; step 0 is always
    /// checkpointed, so a universe can always roll back somewhere).
    pub checkpoint_every: u64,
    /// Rollback budget: exceeding it panics, as an unrecoverable run should
    /// be loud, not livelocked.
    pub max_rollbacks: u32,
    /// Hard receive deadline; this is the failure detector for dead ranks,
    /// so it bounds how long a generation takes to notice a crash.
    pub recv_timeout: Duration,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        Self {
            plan: FaultPlan::default(),
            reliable: ReliableConfig::default(),
            checkpoint_every: 4,
            max_rollbacks: 8,
            recv_timeout: Duration::from_millis(400),
        }
    }
}

/// What recovery did over a whole chaos run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryReport {
    /// Execution generations (1 = the first attempt survived).
    pub generations: u32,
    /// Rollbacks to the last consistent checkpoint.
    pub rollbacks: u32,
    /// Global steps re-executed because of rollbacks.
    pub recomputed_steps: u64,
    /// Coordinated checkpoints captured (rank-0 count, all generations).
    pub checkpoints: u64,
    /// Rank crashes that fired.
    pub crashes: u32,
    /// Faults the plan actually injected, summed over ranks and
    /// generations.
    pub faults: FaultStats,
    /// Flight-recorder dumps frozen by failing generations: the crashed
    /// rank's ring (reason `"rank-crash"`) plus every rank that rolled back
    /// on a comm failure (reason `"rollback"`).
    pub flight_dumps: Vec<FlightDump>,
}

impl RecoveryReport {
    /// The serializable summary block, joined with the run's aggregated
    /// comm statistics (retry totals live there).
    pub fn to_summary(&self, comm: &CommStats) -> RecoverySummary {
        RecoverySummary {
            generations: self.generations,
            rollbacks: self.rollbacks,
            recomputed_steps: self.recomputed_steps,
            checkpoints: self.checkpoints,
            crashes: self.crashes,
            retries: comm.retries,
            faults_injected: self.faults.total(),
        }
    }
}

/// One rank's result from one generation.
struct GenOutcome {
    rank: usize,
    field: Field,
    ledger: FlopLedger,
    cps: Vec<Checkpoint>,
    reached: u64,
    crashed: bool,
    failure: Option<CommError>,
    stats: CommStats,
    wait: Duration,
    busy: Duration,
    faults: Option<FaultStats>,
    flight: Option<FlightDump>,
}

/// Run the solver on `p` ranks under an unreliable network, surviving it.
///
/// Faults from `opts.plan` are injected into every data frame; the
/// reliability layer heals what it can (drops, corruption, duplication,
/// delay) and the generation loop here rolls the universe back to the last
/// coordinated checkpoint for what it cannot (a rank crash, an exhausted
/// retry budget). The returned run carries a populated
/// [`ParallelRun::recovery`] block and a final field bitwise identical to
/// the fault-free [`crate::parallel::run_parallel`] result.
pub fn run_parallel_chaos(
    cfg: &SolverConfig,
    p: usize,
    nsteps: u64,
    version: CommVersion,
    opts: &ChaosOptions,
) -> ParallelRun {
    assert!(p >= 1);
    chaos_impl(cfg, CartTopology::axial(p), nsteps, version, opts)
}

/// [`run_parallel_chaos`] over a 2-D pencil topology, with the
/// decomposition plan validated up front as a typed
/// [`DecompositionError`] — the same admission check as
/// [`crate::parallel::run_parallel_cart`].
pub fn run_parallel_chaos_cart(
    cfg: &SolverConfig,
    topo: CartTopology,
    nsteps: u64,
    version: CommVersion,
    opts: &ChaosOptions,
) -> Result<ParallelRun, DecompositionError> {
    topo.validate(cfg, version)?;
    Ok(chaos_impl(cfg, topo, nsteps, version, opts))
}

fn chaos_impl(
    cfg: &SolverConfig,
    topo: CartTopology,
    nsteps: u64,
    version: CommVersion,
    opts: &ChaosOptions,
) -> ParallelRun {
    let p = topo.size();
    assert!(opts.checkpoint_every >= 1, "checkpoint cadence must be at least 1");
    assert_eq!(cfg.dissipation, 0.0, "dissipation is serial-only (the paper's protocol has no smoothing halo)");
    topo.validate(cfg, version).unwrap_or_else(|e| panic!("{e}"));
    if let Some(c) = opts.plan.crash {
        assert!(c.rank < p, "crash rank {} does not exist in a universe of {p}", c.rank);
    }

    let start = Instant::now();
    let metrics_before = Registry::global().snapshot();
    let mut plan = opts.plan.clone();
    let mut resume: Option<Vec<Checkpoint>> = None;
    let mut resume_step = 0u64;
    let mut report = RecoveryReport::default();
    let mut agg: Vec<(CommStats, Duration, Duration)> = vec![(CommStats::default(), Duration::ZERO, Duration::ZERO); p];

    loop {
        let generation = report.generations;
        report.generations += 1;
        let outcomes = run_generation(cfg, topo, nsteps, version, opts, &plan, generation, resume.as_deref());
        for o in &outcomes {
            let a = &mut agg[o.rank];
            a.0.merge(&o.stats);
            a.1 += o.wait;
            a.2 += o.busy;
            if let Some(f) = &o.faults {
                report.faults.merge(f);
            }
            if let Some(d) = &o.flight {
                report.flight_dumps.push(d.clone());
            }
        }
        report.checkpoints += outcomes[0].cps.len() as u64;
        let crashed = outcomes.iter().any(|o| o.crashed);
        if !crashed && outcomes.iter().all(|o| o.failure.is_none() && o.reached == nsteps) {
            let ranks: Vec<RankResult> = outcomes
                .into_iter()
                .map(|o| {
                    let (stats, wait, busy) = agg[o.rank];
                    RankResult {
                        rank: o.rank,
                        field: o.field,
                        stats,
                        wait,
                        busy,
                        ledger: o.ledger,
                        phases: PhaseLedger::default(),
                        trace: Vec::new(),
                        health: Vec::new(),
                        steps: o.reached,
                        abort: None,
                        flight: None,
                    }
                })
                .collect();
            // recovery accounting lands in the registry before the run's
            // metrics window is cut, so the summary shows it
            let m = Registry::global();
            m.counter("ns_recover_generations_total").add(u64::from(report.generations));
            m.counter("ns_recover_rollbacks_total").add(u64::from(report.rollbacks));
            m.counter("ns_recover_recomputed_steps_total").add(report.recomputed_steps);
            m.counter("ns_recover_checkpoints_total").add(report.checkpoints);
            m.counter("ns_recover_crashes_total").add(u64::from(report.crashes));
            let metrics = MetricsSummary::from_snapshot(&m.snapshot().diff(&metrics_before));
            return ParallelRun {
                ranks,
                elapsed: start.elapsed(),
                cfg: cfg.clone(),
                nsteps,
                recovery: Some(report),
                metrics,
            };
        }
        // the generation died: roll the universe back
        report.rollbacks += 1;
        if crashed {
            report.crashes += 1;
            // a workstation that died once is replaced, not re-crashed: the
            // re-executed timeline must be able to pass the crash step
            plan = plan.disarmed();
        }
        assert!(
            report.rollbacks <= opts.max_rollbacks,
            "chaos run exceeded its rollback budget of {} (plan: {:?})",
            opts.max_rollbacks,
            opts.plan
        );
        let furthest = outcomes.iter().map(|o| o.reached).max().unwrap_or(resume_step);
        // the newest checkpoint step EVERY rank holds from this generation;
        // a partially-committed newer checkpoint (some rank's barrier died
        // mid-capture) is ignored by the intersection
        let mut common: Option<BTreeSet<u64>> = None;
        for o in &outcomes {
            let steps: BTreeSet<u64> = o.cps.iter().map(|c| c.nstep).collect();
            common = Some(match common {
                None => steps,
                Some(prev) => prev.intersection(&steps).copied().collect(),
            });
        }
        if let Some(best) = common.and_then(|s| s.into_iter().max()) {
            resume = Some(
                outcomes
                    .into_iter()
                    .map(|o| o.cps.into_iter().find(|c| c.nstep == best).expect("step is in the intersection"))
                    .collect(),
            );
            resume_step = best;
        }
        // else: keep the previous resume point (or scratch) — the failed
        // generation committed nothing new
        //
        // re-executed work, on the global timeline: the furthest any rank
        // got minus where the next generation restarts
        report.recomputed_steps += furthest.saturating_sub(resume_step);
    }
}

#[allow(clippy::too_many_arguments)]
fn run_generation(
    cfg: &SolverConfig,
    topo: CartTopology,
    nsteps: u64,
    version: CommVersion,
    opts: &ChaosOptions,
    plan: &FaultPlan,
    generation: u32,
    resume: Option<&[Checkpoint]>,
) -> Vec<GenOutcome> {
    let mut endpoints = universe(topo.size());
    for (rank, ep) in endpoints.iter_mut().enumerate() {
        ep.enable_reliability(opts.reliable);
        if plan.has_message_faults() {
            ep.set_fault_injector(FaultInjector::for_rank(plan, rank, generation));
        }
        ep.timeout = opts.recv_timeout;
    }
    let mut outs: Vec<GenOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = endpoints
            .into_iter()
            .map(|mut ep| {
                let cfg = cfg.clone();
                s.spawn(move || {
                    let rank = ep.rank();
                    let patch = Patch::pencil(cfg.grid.clone(), topo.coords(rank), (topo.px, topo.pr));
                    let nb = topo.neighbors(rank);
                    let (nxl, nr) = (patch.nxl, patch.nr());
                    let mut solver = match resume {
                        Some(cps) => cps[rank].clone().restore(),
                        None => Solver::on_patch(cfg, patch),
                    };
                    let mut cps: Vec<Checkpoint> = Vec::new();
                    let mut crashed = false;
                    let mut failure: Option<CommError> = None;
                    let t0 = Instant::now();
                    {
                        let mut halo = ThreadHalo::new_cart(&mut ep, nb, nxl, nr, version);
                        halo.set_lenient();
                        halo.set_generation(u64::from(generation));
                        while solver.nstep < nsteps {
                            if solver.nstep.is_multiple_of(opts.checkpoint_every) {
                                // coordinated: agree the universe is intact,
                                // then snapshot locally (bitwise, ghosts
                                // included)
                                match collectives::barrier(halo.endpoint_mut(), CHECKPOINT_EPOCH + solver.nstep) {
                                    Ok(()) => cps.push(Checkpoint::capture(&solver)),
                                    Err(e) => {
                                        failure = Some(e);
                                        break;
                                    }
                                }
                            }
                            if plan.crash.is_some_and(|c| c.rank == rank && c.step == solver.nstep) {
                                // die silently, like a hung workstation: the
                                // peers find out through their timeouts. The
                                // crash is the last thing the black box sees.
                                halo.endpoint_mut().flight.record(
                                    "crash",
                                    format!("rank {rank} dead at step {}", solver.nstep),
                                    None,
                                    None,
                                    Some(ns_metrics::span_id(u64::from(generation), solver.nstep)),
                                    0,
                                );
                                crashed = true;
                                break;
                            }
                            halo.begin_step(solver.nstep);
                            solver.step_with_halo(&mut halo);
                            if halo.failure().is_some() {
                                failure = halo.failure().cloned();
                                break;
                            }
                        }
                        if failure.is_none() {
                            failure = halo.failure().cloned();
                        }
                    }
                    let wall = t0.elapsed();
                    let wait = ep.wait_time;
                    // a failing generation freezes its ring: the crashed
                    // rank's dump reconstructs the steps leading to the
                    // crash, the rolled-back peers' dumps show the healing
                    // attempts that preceded the rollback
                    let flight = if crashed {
                        Some(ep.flight.dump(rank, "rank-crash"))
                    } else {
                        failure.as_ref().map(|_| ep.flight.dump(rank, "rollback"))
                    };
                    GenOutcome {
                        rank,
                        reached: solver.nstep,
                        crashed,
                        failure,
                        stats: ep.stats,
                        wait,
                        busy: wall.saturating_sub(wait),
                        faults: ep.fault_stats(),
                        field: solver.field,
                        ledger: solver.ledger,
                        cps,
                        flight,
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("chaos rank panicked")).collect()
    });
    outs.sort_by_key(|o| o.rank);
    outs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::CrashSpec;
    use crate::parallel::run_parallel;
    use ns_core::config::Regime;
    use ns_numerics::Grid;

    fn cfg(regime: Regime) -> SolverConfig {
        SolverConfig::paper(Grid::small(), regime)
    }

    fn fast_opts(plan: FaultPlan) -> ChaosOptions {
        ChaosOptions {
            plan,
            reliable: ReliableConfig { retry_timeout: Duration::from_millis(2), max_retries: 5 },
            checkpoint_every: 2,
            max_rollbacks: 8,
            recv_timeout: Duration::from_millis(250),
        }
    }

    #[test]
    fn faultless_chaos_run_is_one_generation_and_bitwise() {
        let c = cfg(Regime::Euler);
        let reference = run_parallel(&c, 3, 6, CommVersion::V5);
        let chaos = run_parallel_chaos(&c, 3, 6, CommVersion::V5, &fast_opts(FaultPlan::none(7)));
        assert_eq!(reference.gather_field().max_diff(&chaos.gather_field()), 0.0);
        let rep = chaos.recovery.expect("chaos runs always report recovery");
        assert_eq!(rep.generations, 1);
        assert_eq!(rep.rollbacks, 0);
        assert_eq!(rep.crashes, 0);
        assert!(rep.checkpoints >= 3, "steps 0, 2, 4 at least; got {}", rep.checkpoints);
    }

    #[test]
    fn message_faults_are_healed_without_rollback() {
        let c = cfg(Regime::Euler);
        let reference = run_parallel(&c, 3, 6, CommVersion::V5);
        let plan = FaultPlan { seed: 42, drop_rate: 0.05, corrupt_rate: 0.03, dup_rate: 0.03, ..FaultPlan::default() };
        let chaos = run_parallel_chaos(&c, 3, 6, CommVersion::V5, &fast_opts(plan));
        assert_eq!(
            reference.gather_field().max_diff(&chaos.gather_field()),
            0.0,
            "healed run must be bitwise identical"
        );
        let rep = chaos.recovery.clone().unwrap();
        assert!(rep.faults.total() > 0, "5%/3%/3% over hundreds of frames must fire");
        let stats = chaos.total_stats();
        assert!(stats.retries > 0 || stats.dup_frames > 0 || stats.corrupt_frames > 0, "healing left traces");
    }

    #[test]
    fn rank_crash_rolls_back_and_recovers_bitwise() {
        let c = cfg(Regime::Euler);
        let nsteps = 8;
        let reference = run_parallel(&c, 3, nsteps, CommVersion::V5);
        // drop >= 1% AND a mid-run crash, per the acceptance criteria
        let plan = FaultPlan {
            seed: 1234,
            drop_rate: 0.02,
            crash: Some(CrashSpec { rank: 1, step: 5 }),
            ..FaultPlan::default()
        };
        let chaos = run_parallel_chaos(&c, 3, nsteps, CommVersion::V5, &fast_opts(plan));
        assert_eq!(
            reference.gather_field().max_diff(&chaos.gather_field()),
            0.0,
            "crash + rollback must reproduce the fault-free field bitwise"
        );
        let rep = chaos.recovery.clone().unwrap();
        assert_eq!(rep.crashes, 1, "the crash fired exactly once");
        assert!(rep.rollbacks >= 1);
        assert!(rep.generations >= 2);
        assert!(rep.recomputed_steps >= 1, "the rollback redid work");
        // the summary block is populated end to end
        let summary = chaos.summary("chaos-test");
        let rec = summary.recovery.expect("recovery block present");
        assert_eq!(rec.crashes, 1);
        assert!(summary.to_json().contains("\"recovery\""));
    }

    #[test]
    fn crash_works_at_every_processor_count() {
        let c = cfg(Regime::NavierStokes);
        let nsteps = 6;
        for p in [2usize, 3] {
            let reference = run_parallel(&c, p, nsteps, CommVersion::V5);
            let plan = FaultPlan {
                seed: 9,
                drop_rate: 0.01,
                crash: Some(CrashSpec { rank: p - 1, step: 3 }),
                ..FaultPlan::default()
            };
            let chaos = run_parallel_chaos(&c, p, nsteps, CommVersion::V5, &fast_opts(plan));
            assert_eq!(reference.gather_field().max_diff(&chaos.gather_field()), 0.0, "p={p}");
        }
    }

    #[test]
    fn crash_dump_reconstructs_the_failing_generation() {
        let c = cfg(Regime::Euler);
        let plan = FaultPlan { seed: 5, crash: Some(CrashSpec { rank: 1, step: 5 }), ..FaultPlan::default() };
        let chaos = run_parallel_chaos(&c, 3, 8, CommVersion::V5, &fast_opts(plan));
        let rep = chaos.recovery.clone().expect("chaos runs report recovery");
        let dump = rep.flight_dumps.iter().find(|d| d.reason == "rank-crash").expect("crashed rank froze its ring");
        assert_eq!(dump.rank, 1);
        // the final event is the crash itself, stamped with the span of the
        // step the rank died on, in generation 0
        let crash = dump.events.last().expect("ring is not empty");
        assert_eq!(crash.kind, "crash");
        let span = crash.span.expect("crash event carries the step span");
        assert_eq!(ns_metrics::span_generation(span), 0);
        assert_eq!(ns_metrics::span_step(span), 5);
        // the retained step-begin events walk the failing generation in
        // order, ending at the last step completed before the crash
        let steps: Vec<u64> = dump
            .events
            .iter()
            .filter(|e| e.kind == "step")
            .map(|e| ns_metrics::span_step(e.span.expect("step events are spanned")))
            .collect();
        assert!(!steps.is_empty(), "the ring holds the steps before the crash");
        assert!(steps.windows(2).all(|w| w[1] == w[0] + 1), "steps reconstruct in order: {steps:?}");
        assert_eq!(*steps.last().unwrap(), 4, "last step begun before the step-5 crash");
        // the dead rank's halo traffic for its last step is in the ring,
        // spanned so it stitches with the peers' recorders
        assert!(dump.events.iter().any(|e| e.kind == "send" && e.span == Some(ns_metrics::span_id(0, 4))));
        // the surviving peers of the dead generation froze rollback dumps,
        // and the run-level accessor surfaces all of them
        assert!(rep.flight_dumps.iter().any(|d| d.reason == "rollback"));
        assert!(chaos.flight_dumps().iter().any(|d| d.reason == "rank-crash"));
        // recovery counters landed in the run's metrics window
        assert!(chaos.metrics.counters.get("ns_recover_crashes_total").copied().unwrap_or(0) >= 1);
        assert!(chaos.metrics.counters.get("ns_recover_rollbacks_total").copied().unwrap_or(0) >= 1);
    }

    /// A 2-D pencil universe heals drops and survives a mid-run crash of an
    /// interior pencil (which has axial *and* radial neighbours), landing on
    /// the same bits as the fault-free pencil run.
    #[test]
    fn pencil_chaos_recovers_bitwise() {
        let c = cfg(Regime::Euler);
        let topo = CartTopology::new(2, 2).unwrap();
        let reference = crate::parallel::run_parallel_cart(&c, topo, 6, CommVersion::V5).unwrap();
        let plan = FaultPlan {
            seed: 77,
            drop_rate: 0.02,
            crash: Some(CrashSpec { rank: 2, step: 3 }),
            ..FaultPlan::default()
        };
        let chaos = run_parallel_chaos_cart(&c, topo, 6, CommVersion::V5, &fast_opts(plan)).unwrap();
        assert_eq!(
            reference.gather_field().max_diff(&chaos.gather_field()),
            0.0,
            "pencil crash + rollback must reproduce the fault-free field bitwise"
        );
        let rep = chaos.recovery.unwrap();
        assert_eq!(rep.crashes, 1);
        assert!(rep.rollbacks >= 1);
    }

    #[test]
    #[should_panic(expected = "crash rank")]
    fn crash_outside_the_universe_is_rejected() {
        let c = cfg(Regime::Euler);
        let plan = FaultPlan { crash: Some(CrashSpec { rank: 7, step: 1 }), ..FaultPlan::none(0) };
        let _ = run_parallel_chaos(&c, 2, 2, CommVersion::V5, &fast_opts(plan));
    }
}
