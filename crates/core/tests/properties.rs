//! Property-based tests of the solver core: version equivalence on random
//! fields, decomposition invariants, parity symmetries, workload linearity.

use ns_core::checkpoint::Checkpoint;
use ns_core::config::{Regime, SchemeOrder, SolverConfig, Version};
use ns_core::field::{Field, FluxField, Patch, PrimField, NG};
use ns_core::kernels::{self, EdgeFlags, FluxDir};
use ns_core::opcount::FlopLedger;
use ns_core::workload::Decomposition;
use ns_core::{bc, workload};
use ns_numerics::gas::Primitive;
use ns_numerics::{Array2, Grid};
use proptest::prelude::*;

fn small_patch() -> Patch {
    Patch::whole(Grid::new(16, 10, 8.0, 2.0))
}

/// Build a random-but-physical field from four Fourier coefficients.
fn random_field(patch: &Patch, gas: &ns_numerics::GasModel, seed: [f64; 4]) -> Field {
    Field::from_primitives(patch.clone(), gas, |x, r| Primitive {
        rho: 1.0 + 0.2 * (seed[0] * x + r).sin() * 0.5,
        u: 0.5 + 0.3 * (seed[1] * r).cos() * 0.5,
        v: 0.1 * (seed[2] * x).sin() * (r - patch.grid.lr).min(0.0).abs() / patch.grid.lr,
        p: 0.714 + 0.1 * (seed[3] * (x - r)).sin() * 0.5,
    })
}

fn prepare_prims(field: &Field, gas: &ns_numerics::GasModel, version: Version) -> PrimField {
    let mut prim = PrimField::zeros(&field.patch);
    let mut ledger = FlopLedger::default();
    kernels::compute_prims(version, field, &mut prim, gas, &mut ledger);
    bc::mirror_prims_axis(&mut prim);
    bc::extrap_prims_top(&mut prim, field.nr());
    prim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every optimization version recovers the same primitives (to rounding)
    /// on arbitrary smooth fields.
    #[test]
    fn versions_agree_on_random_fields(
        s0 in 0.1f64..2.0, s1 in 0.1f64..2.0, s2 in 0.1f64..2.0, s3 in 0.1f64..2.0,
        viscous in prop::bool::ANY,
    ) {
        let cfg = SolverConfig::paper(
            Grid::new(16, 10, 8.0, 2.0),
            if viscous { Regime::NavierStokes } else { Regime::Euler },
        );
        let gas = cfg.effective_gas();
        let patch = small_patch();
        let field = random_field(&patch, &gas, [s0, s1, s2, s3]);
        let reference = prepare_prims(&field, &gas, Version::V5);
        for v in Version::ALL {
            let prim = prepare_prims(&field, &gas, v);
            for i in 0..patch.nxl {
                for j in 0..patch.nr() {
                    let (ii, jj) = (i + NG, j + NG);
                    prop_assert!((prim.p.at(ii, jj) - reference.p.at(ii, jj)).abs() < 1e-11, "{v:?} p at ({i},{j})");
                    prop_assert!((prim.t.at(ii, jj) - reference.t.at(ii, jj)).abs() < 1e-11, "{v:?} t at ({i},{j})");
                }
            }
        }
    }

    /// The flux kernels agree across versions on arbitrary fields.
    #[test]
    fn flux_versions_agree_on_random_fields(
        s0 in 0.1f64..2.0, s1 in 0.1f64..2.0, s2 in 0.1f64..2.0, s3 in 0.1f64..2.0,
    ) {
        let cfg = SolverConfig::paper(Grid::new(16, 10, 8.0, 2.0), Regime::NavierStokes);
        let gas = cfg.effective_gas();
        let patch = small_patch();
        let field = random_field(&patch, &gas, [s0, s1, s2, s3]);
        let prim = prepare_prims(&field, &gas, Version::V5);
        let edges = EdgeFlags::of(&patch);
        let mut reference = FluxField::zeros(&patch);
        let mut ledger = FlopLedger::default();
        kernels::compute_flux(Version::V5, FluxDir::X, &prim, &patch, edges, &gas, &mut reference, None, &mut ledger);
        for v in [Version::V1, Version::V3, Version::V6, Version::V7] {
            let mut flux = FluxField::zeros(&patch);
            kernels::compute_flux(v, FluxDir::X, &prim, &patch, edges, &gas, &mut flux, None, &mut ledger);
            for c in 0..4 {
                for i in 0..patch.nxl {
                    for j in 0..patch.nr() {
                        let d = (flux.at(c, i as isize, j as isize) - reference.at(c, i as isize, j as isize)).abs();
                        prop_assert!(d < 1e-10, "{v:?} c={c} ({i},{j}): {d}");
                    }
                }
            }
        }
    }

    // The former `v6_solver_is_bitwise_v5_with_identical_ledger` whole-run
    // equivalence test was promoted into the ns-verify differential oracle
    // (`crates/verify/src/oracle.rs`: the V6-vs-V5 serial cell asserts
    // bitwise identity plus an identical FLOP ledger), which `jetns verify`
    // and `tests/verify_oracle.rs` run in CI.

    /// Block decomposition covers every column exactly once, for any grid
    /// size and processor count.
    #[test]
    fn decomposition_partition_properties(nx in 8usize..400, p in 1usize..32) {
        prop_assume!(nx / p >= 1);
        let grid = Grid::new(nx.max(8), 8, 10.0, 2.0);
        let mut covered = vec![0u8; grid.nx];
        for rank in 0..p {
            let patch = Patch::block(grid.clone(), rank, p);
            for c in &mut covered[patch.i0..patch.i0 + patch.nxl] {
                *c += 1;
            }
            // contiguity + ordering
            if rank > 0 {
                let prev = Patch::block(grid.clone(), rank - 1, p);
                prop_assert_eq!(prev.i0 + prev.nxl, patch.i0);
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1), "every column covered once");
    }

    /// Workload compute flops are additive over a decomposition: the sum of
    /// per-rank work equals the whole-grid work.
    #[test]
    fn workload_is_additive_over_ranks(p in 1usize..16, viscous in prop::bool::ANY) {
        let grid = Grid::paper();
        let regime = if viscous { Regime::NavierStokes } else { Regime::Euler };
        let whole = workload::step_workload(regime, &grid, grid.nx).compute_flops();
        let mut sum = 0u64;
        for rank in 0..p {
            let patch = Patch::block(grid.clone(), rank, p);
            sum += workload::step_workload(regime, &grid, patch.nxl).compute_flops();
        }
        prop_assert_eq!(sum, whole);
    }

    /// Both decomposition directions describe the same total computation,
    /// and the radial halo really carries nx points against nr axially.
    #[test]
    fn decompositions_agree_on_compute_and_differ_on_halo(p in 1usize..16, viscous in prop::bool::ANY) {
        let grid = Grid::paper();
        let regime = if viscous { Regime::NavierStokes } else { Regime::Euler };
        let sum = |d: Decomposition, n: usize| -> u64 {
            (0..p).map(|r| {
                let local = workload::block_len(n, r, p);
                let owns_top = d == Decomposition::Axial || r + 1 == p;
                workload::step_workload_decomposed(regime, &grid, local, d, owns_top).compute_flops()
            }).sum()
        };
        let ax = sum(Decomposition::Axial, grid.nx);
        let ra = sum(Decomposition::Radial, grid.nr);
        prop_assert_eq!(ax, ra, "identical total computation either way");
        // halo volume ratio = nx / nr
        let wa = workload::step_workload_decomposed(regime, &grid, 10, Decomposition::Axial, true);
        let wr = workload::step_workload_decomposed(regime, &grid, 10, Decomposition::Radial, false);
        let va = wa.bytes_sent_per_step(2) as f64;
        let vr = wr.bytes_sent_per_step(2) as f64;
        prop_assert!((vr / va - grid.nx as f64 / grid.nr as f64).abs() < 1e-12);
        // start-up counts are decomposition independent
        prop_assert_eq!(wa.startups_per_step(2), wr.startups_per_step(2));
    }

    /// Checkpoint/restore is bitwise transparent at any point in a run,
    /// for either regime and scheme order.
    #[test]
    fn checkpoint_is_transparent_anywhere(
        pre in 1u64..8, post in 1u64..8,
        viscous in prop::bool::ANY, two_two in prop::bool::ANY,
    ) {
        let mut cfg = SolverConfig::paper(Grid::new(20, 12, 8.0, 2.0), if viscous { Regime::NavierStokes } else { Regime::Euler });
        cfg.scheme = if two_two { SchemeOrder::TwoTwo } else { SchemeOrder::TwoFour };
        let mut reference = ns_core::Solver::new(cfg.clone());
        reference.run(pre + post);
        let mut first = ns_core::Solver::new(cfg);
        first.run(pre);
        let bytes = Checkpoint::capture(&first).to_bytes().unwrap();
        let mut resumed = Checkpoint::from_bytes(&bytes).unwrap().restore();
        resumed.run(post);
        prop_assert_eq!(resumed.field.max_diff(&reference.field), 0.0);
        prop_assert_eq!(resumed.t.to_bits(), reference.t.to_bits());
    }

    /// The DFT amplitude of a sampled sinusoid is independent of its phase.
    #[test]
    fn spectrum_amplitude_is_phase_invariant(phase in 0.0f64..std::f64::consts::TAU) {
        use ns_core::probe::{amplitude_spectrum, dominant_frequency};
        let n = 128;
        let dt = 0.1;
        let f0 = 8.0 / (n as f64 * dt);
        let t: Vec<f64> = (0..n).map(|k| k as f64 * dt).collect();
        let x: Vec<f64> = t.iter().map(|&tt| (2.0 * std::f64::consts::PI * f0 * tt + phase).sin()).collect();
        let peak = dominant_frequency(&amplitude_spectrum(&t, &x)).unwrap();
        prop_assert!((peak.amplitude - 1.0).abs() < 1e-6, "amplitude {}", peak.amplitude);
        prop_assert!((peak.frequency - f0).abs() < 1e-9);
    }

    /// The radial-flux axis mirror parity is self-consistent: mirroring
    /// twice is the identity on random flux planes.
    #[test]
    fn rflux_ghost_mirror_is_involutive(vals in prop::collection::vec(-5.0f64..5.0, 64)) {
        let patch = small_patch();
        let mut flux = FluxField::zeros(&patch);
        let mut k = 0;
        for c in 0..4 {
            for i in 0..patch.nxl.min(4) {
                for j in 0..patch.nr().min(4) {
                    flux.set(c, i as isize, j as isize, vals[k % vals.len()]);
                    k += 1;
                }
            }
        }
        let mut ledger = FlopLedger::default();
        bc::fill_rflux_ghosts(&mut flux, patch.nxl, patch.nr(), &mut ledger);
        for (c, s) in bc::G_PARITY.iter().enumerate() {
            for i in 0..patch.nxl as isize {
                for g in 0..2isize {
                    let ghost = flux.at(c, i, -1 - g);
                    let interior = flux.at(c, i, g);
                    prop_assert!((ghost - s * interior).abs() < 1e-14);
                    // parity is an involution: s * s == 1
                    prop_assert!((s * s - 1.0).abs() < 1e-15);
                }
            }
        }
    }

    /// The FLOP ledger is exactly linear in the number of steps for any
    /// (small) grid and regime.
    #[test]
    fn ledger_linearity(nx in 12usize..40, nr in 8usize..20, viscous in prop::bool::ANY) {
        let grid = Grid::new(nx, nr, 10.0, 2.0);
        let regime = if viscous { Regime::NavierStokes } else { Regime::Euler };
        let mut s = ns_core::Solver::new(SolverConfig::paper(grid, regime));
        s.run(1);
        let a = s.ledger.total();
        s.run(2);
        let b = s.ledger.total();
        s.run(2);
        let c = s.ledger.total();
        prop_assert_eq!(c - b, b - a, "steady per-step cost");
    }

    /// `Field::integral` is linear: doubling the density doubles the mass.
    #[test]
    fn integral_linearity(rho in 0.2f64..4.0) {
        let gas = ns_numerics::GasModel::air(1e6, 1.5);
        let patch = small_patch();
        let mk = |r: f64| {
            Field::from_primitives(patch.clone(), &gas, |_, _| Primitive { rho: r, u: 0.0, v: 0.0, p: 0.7 })
        };
        let m1 = mk(rho).integral(0);
        let m2 = mk(2.0 * rho).integral(0);
        prop_assert!((m2 / m1 - 2.0).abs() < 1e-12);
    }

    /// Dissipation is monotone in eps on a rough field (more smoothing,
    /// smaller fourth difference), and vanishes for eps = 0.
    #[test]
    fn dissipation_monotone(e1 in 0.001f64..0.02, scale in 1.1f64..4.0) {
        let e2 = (e1 * scale).min(0.06);
        let patch = Patch::whole(Grid::new(16, 12, 8.0, 2.0));
        let rough = |_: usize, j: usize| if j.is_multiple_of(2) { 1.0 } else { -1.0 };
        let mk = || {
            let mut f = Field::zeros(patch.clone());
            for i in 0..f.nxl() {
                for j in 0..f.nr() {
                    f.set(3, i as isize, j as isize, 10.0 + rough(i, j));
                }
            }
            f
        };
        let roughness = |f: &Field| {
            let mut s = 0.0;
            for i in 2..f.nxl() - 2 {
                for j in 2..f.nr() - 4 {
                    let (si, sj) = (i as isize, j as isize);
                    s += (f.at(3, si, sj + 1) - f.at(3, si, sj)).abs();
                }
            }
            s
        };
        let mut ledger = FlopLedger::default();
        let mut fa = mk();
        ns_core::dissipation::apply(&mut fa, e1, &mut ledger);
        let mut fb = mk();
        ns_core::dissipation::apply(&mut fb, e2, &mut ledger);
        let base = roughness(&mk());
        let ra = roughness(&fa);
        let rb = roughness(&fb);
        prop_assert!(ra < base, "smoothing reduces roughness");
        prop_assert!(rb <= ra + 1e-9, "more eps, more smoothing: {rb} vs {ra}");
    }

    /// `max_diff` is a metric: symmetric and zero iff equal (on these data).
    #[test]
    fn max_diff_is_symmetric(seed in 0.1f64..2.0) {
        let gas = ns_numerics::GasModel::air(1e6, 1.5);
        let patch = small_patch();
        let a = random_field(&patch, &gas, [seed, 1.0, 1.0, 1.0]);
        let b = random_field(&patch, &gas, [seed + 0.5, 1.0, 1.0, 1.0]);
        prop_assert_eq!(a.max_diff(&b), b.max_diff(&a));
        prop_assert_eq!(a.max_diff(&a), 0.0);
    }

    /// Source plane: for the Euler equations the source is exactly the
    /// pressure, everywhere, whatever the field.
    #[test]
    fn euler_source_is_pressure(s0 in 0.1f64..2.0, s3 in 0.1f64..2.0) {
        let cfg = SolverConfig::paper(Grid::new(16, 10, 8.0, 2.0), Regime::Euler);
        let gas = cfg.effective_gas();
        let patch = small_patch();
        let field = random_field(&patch, &gas, [s0, 1.0, 1.0, s3]);
        let prim = prepare_prims(&field, &gas, Version::V5);
        let mut flux = FluxField::zeros(&patch);
        let mut src = Array2::zeros(patch.nxl + 2 * NG, patch.nr() + 2 * NG);
        let mut ledger = FlopLedger::default();
        kernels::compute_flux(Version::V5, FluxDir::R, &prim, &patch, EdgeFlags::of(&patch), &gas, &mut flux, Some(&mut src), &mut ledger);
        for i in 0..patch.nxl {
            for j in 0..patch.nr() {
                let p = prim.p.at(i + NG, j + NG);
                prop_assert!((src.at(i + NG, j + NG) - p).abs() < 1e-13);
            }
        }
    }

    /// AoS -> SoA -> AoS is a bitwise round trip for arbitrary bit
    /// patterns — ghost cells and non-canonical NaN payloads included.
    /// The V7 staging boundary must never canonicalize, flush, or
    /// renormalize anything it copies.
    #[test]
    fn aos_soa_roundtrip_is_bitwise(words in prop::collection::vec(prop::num::f64::ANY, 64)) {
        use ns_core::soa::SoaField;
        let patch = small_patch();
        let mut field = Field::zeros(patch.clone());
        let (ni, nj) = (field.nxl() + 2 * NG, field.nr() + 2 * NG);
        let mut k = 0usize;
        for c in 0..4 {
            for ii in 0..ni {
                for jj in 0..nj {
                    let bits = words[k % words.len()].to_bits().rotate_left((k % 63) as u32);
                    field.q[c].row_mut(ii)[jj] = f64::from_bits(bits);
                    k += 1;
                }
            }
        }
        let soa = SoaField::from_field(&field);
        let mut back = Field::zeros(patch.clone());
        soa.to_field(&mut back);
        for c in 0..4 {
            for ii in 0..ni {
                for jj in 0..nj {
                    prop_assert_eq!(
                        back.q[c].row(ii)[jj].to_bits(),
                        field.q[c].row(ii)[jj].to_bits(),
                        "c={} ii={} jj={}", c, ii, jj
                    );
                }
            }
        }
    }

    /// Any valid radial tile size yields a bitwise-identical V7 sweep
    /// (fluxes, source plane, and FLOP ledger): the cache-blocking knob is
    /// pure scheduling, never arithmetic.
    #[test]
    fn v7_tile_size_is_bitwise_invariant(
        s0 in 0.1f64..2.0, s1 in 0.1f64..2.0, s2 in 0.1f64..2.0, s3 in 0.1f64..2.0,
        tile in 1usize..24, viscous in prop::bool::ANY, xdir in prop::bool::ANY,
    ) {
        use ns_core::soa::SoaWs;
        let cfg = SolverConfig::paper(
            Grid::new(16, 10, 8.0, 2.0),
            if viscous { Regime::NavierStokes } else { Regime::Euler },
        );
        let gas = cfg.effective_gas();
        let patch = small_patch();
        let field = random_field(&patch, &gas, [s0, s1, s2, s3]);
        let edges = EdgeFlags::of(&patch);
        let dir = if xdir { FluxDir::X } else { FluxDir::R };
        let sweep = |tile_r: usize| {
            let mut prim = PrimField::zeros(&patch);
            let mut flux = FluxField::zeros(&patch);
            let mut src = Array2::zeros(patch.nxl + 2 * NG, patch.nr() + 2 * NG);
            let mut ws = SoaWs::new(&patch);
            let mut ledger = FlopLedger::default();
            ns_core::soa::fused_sweep(
                dir,
                &field,
                &mut prim,
                edges,
                &gas,
                &mut flux,
                if xdir { None } else { Some(&mut src) },
                0..patch.nxl,
                0..patch.nxl,
                None,
                &[],
                &mut ws,
                tile_r,
                &mut ledger,
            );
            (flux, src, ledger)
        };
        let (f_ref, src_ref, l_ref) = sweep(ns_core::config::DEFAULT_TILE_R);
        let (f, src, l) = sweep(tile);
        prop_assert_eq!(l, l_ref, "ledger must not depend on tile size");
        let (lo, hi) = (-(NG as isize), (patch.nr() + NG) as isize);
        for c in 0..4 {
            for i in 0..patch.nxl as isize {
                for j in lo..hi {
                    prop_assert_eq!(
                        f.at(c, i, j).to_bits(),
                        f_ref.at(c, i, j).to_bits(),
                        "flux c={} ({},{}) tile={}", c, i, j, tile
                    );
                }
            }
        }
        if !xdir {
            for ii in 0..patch.nxl + 2 * NG {
                for jj in 0..patch.nr() + 2 * NG {
                    prop_assert_eq!(
                        src.at(ii, jj).to_bits(),
                        src_ref.at(ii, jj).to_bits(),
                        "src ({},{}) tile={}", ii, jj, tile
                    );
                }
            }
        }
    }
}
