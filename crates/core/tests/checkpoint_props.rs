//! Property-based tests of the checkpoint format: round-trips are bitwise
//! for any grid/regime/step count, and corrupted bytes are rejected with a
//! [`CheckpointError`] — never a panic and never a silently-wrong solver.
//! The recovery layer in `ns-runtime` leans on both properties.

use ns_core::checkpoint::{Checkpoint, CheckpointError, FORMAT};
use ns_core::config::{Regime, SolverConfig};
use ns_core::Solver;
use ns_numerics::Grid;
use proptest::prelude::*;

fn solver_after(nx: usize, nr: usize, steps: u64, viscous: bool) -> Solver {
    let regime = if viscous { Regime::NavierStokes } else { Regime::Euler };
    let mut s = Solver::new(SolverConfig::paper(Grid::new(nx, nr, 10.0, 2.0), regime));
    s.run(steps);
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// capture → to_bytes → from_bytes → restore reproduces the solver
    /// bitwise, and the restored solver keeps stepping exactly like the
    /// original (same workspace-independent trajectory).
    #[test]
    fn roundtrip_through_bytes_is_bitwise(
        nx in 12usize..28, nr in 8usize..16, steps in 0u64..5, viscous in prop::bool::ANY,
    ) {
        let mut original = solver_after(nx, nr, steps, viscous);
        let bytes = Checkpoint::capture(&original).to_bytes().unwrap();
        let mut restored = Checkpoint::from_bytes(&bytes).unwrap().restore();
        prop_assert_eq!(original.field.max_diff(&restored.field), 0.0);
        prop_assert_eq!(original.t.to_bits(), restored.t.to_bits());
        prop_assert_eq!(original.nstep, restored.nstep);
        prop_assert_eq!(&original.ledger, &restored.ledger);
        original.run(2);
        restored.run(2);
        prop_assert_eq!(original.field.max_diff(&restored.field), 0.0, "trajectories diverged after restore");
        prop_assert_eq!(&original.ledger, &restored.ledger);
    }

    /// Truncating the serialized bytes anywhere must fail cleanly.
    #[test]
    fn truncated_bytes_are_rejected(cut in 0.0f64..1.0) {
        let bytes = Checkpoint::capture(&solver_after(12, 8, 1, false)).to_bytes().unwrap();
        let keep = ((bytes.len() - 1) as f64 * cut) as usize;
        let err = Checkpoint::from_bytes(&bytes[..keep]).unwrap_err();
        prop_assert!(matches!(err, CheckpointError::Json(_)), "{err}");
    }

    /// Flipping one bit anywhere in the bytes must never panic: the result
    /// is either a clean [`CheckpointError`] or — when the flip lands in a
    /// numeric literal and stays parseable — a checkpoint that still passes
    /// the shape/finiteness validation.
    #[test]
    fn single_bit_flips_never_panic(pos in 0.0f64..1.0, bit in 0u8..8) {
        let mut bytes = Checkpoint::capture(&solver_after(12, 8, 1, true)).to_bytes().unwrap();
        let idx = ((bytes.len() - 1) as f64 * pos) as usize;
        bytes[idx] ^= 1 << bit;
        if let Ok(cp) = Checkpoint::from_bytes(&bytes) {
            // validation let it through: it must still restore to a
            // finite, well-shaped solver
            let s = cp.restore();
            prop_assert!(s.field.q.iter().all(|p| p.all_finite()));
        }
    }
}

#[test]
fn foreign_format_version_is_rejected() {
    let mut cp = Checkpoint::capture(&solver_after(12, 8, 0, false));
    cp.format = FORMAT + 1;
    let bytes = cp.to_bytes().unwrap();
    let err = Checkpoint::from_bytes(&bytes).unwrap_err();
    assert!(matches!(err, CheckpointError::BadFormat(v) if v == FORMAT + 1), "{err}");
}

#[test]
fn non_finite_state_is_rejected() {
    let mut cp = Checkpoint::capture(&solver_after(12, 8, 0, false));
    cp.q[0].set(1, 1, f64::NAN);
    let bytes = cp.to_bytes().unwrap();
    // NaN serializes to JSON null, which refuses to parse back as a number
    // — so the rejection arrives as a Json error before the finiteness
    // validation even runs. Either way, the bytes must not restore.
    let err = Checkpoint::from_bytes(&bytes).unwrap_err();
    assert!(matches!(err, CheckpointError::Json(_) | CheckpointError::Corrupt(_)), "{err}");
}
