//! Inviscid flux Jacobian and its characteristic decomposition.
//!
//! The Hayder–Turkel outflow condition (paper Section 3, [`crate::bc`])
//! rests on the eigenstructure of the axial flux Jacobian
//! `A = dF/dQ`: the wave speeds `u - c, u, u, u + c` and the
//! characteristic variables they carry. This module provides the Jacobian,
//! its analytic eigenvalues and (right/left) eigenvectors, primarily as a
//! verified foundation — the tests check `A R = R diag(lambda)`,
//! `L = R^{-1}` and that `A dQ` matches the finite-difference flux
//! derivative — and secondarily for downstream users building implicit or
//! flux-split variants (the Gottlieb–Turkel paper's own context).

use ns_numerics::gas::Primitive;
use ns_numerics::GasModel;

/// A dense 4x4 matrix (row-major).
pub type Mat4 = [[f64; 4]; 4];

/// Matrix-vector product.
pub fn matvec(a: &Mat4, x: [f64; 4]) -> [f64; 4] {
    std::array::from_fn(|i| (0..4).map(|k| a[i][k] * x[k]).sum())
}

/// Matrix-matrix product.
pub fn matmul(a: &Mat4, b: &Mat4) -> Mat4 {
    std::array::from_fn(|i| std::array::from_fn(|j| (0..4).map(|k| a[i][k] * b[k][j]).sum()))
}

/// Axial inviscid flux of the unweighted conservative state.
pub fn flux_x(q: [f64; 4], gas: &GasModel) -> [f64; 4] {
    let w = Primitive::from_conservative(q, gas);
    let e = q[3];
    [q[1], q[1] * w.u + w.p, q[1] * w.v, (e + w.p) * w.u]
}

/// Analytic Jacobian `A = dF_x/dQ` for a perfect gas.
pub fn jacobian_x(w: &Primitive, gas: &GasModel) -> Mat4 {
    let g = gas.gamma;
    let gm1 = g - 1.0;
    let (u, v) = (w.u, w.v);
    let q2 = u * u + v * v;
    let e = gas.total_energy(w.rho, u, v, w.p);
    let h = (e + w.p) / w.rho; // total specific enthalpy
    [
        [0.0, 1.0, 0.0, 0.0],
        [0.5 * gm1 * q2 - u * u, (3.0 - g) * u, -gm1 * v, gm1],
        [-u * v, v, u, 0.0],
        [u * (0.5 * gm1 * q2 - h), h - gm1 * u * u, -gm1 * u * v, g * u],
    ]
}

/// Eigenvalues of the axial Jacobian: `(u - c, u, u, u + c)`.
pub fn eigenvalues_x(w: &Primitive, gas: &GasModel) -> [f64; 4] {
    let c = w.sound_speed(gas);
    [w.u - c, w.u, w.u, w.u + c]
}

/// Right eigenvectors (columns of `R`), ordered as [`eigenvalues_x`].
pub fn right_eigenvectors_x(w: &Primitive, gas: &GasModel) -> Mat4 {
    let c = w.sound_speed(gas);
    let (u, v) = (w.u, w.v);
    let q2h = 0.5 * (u * u + v * v);
    let e = gas.total_energy(w.rho, u, v, w.p);
    let h = (e + w.p) / w.rho;
    // columns: acoustic-, entropy, shear, acoustic+
    let cols = [[1.0, u - c, v, h - u * c], [1.0, u, v, q2h], [0.0, 0.0, 1.0, v], [1.0, u + c, v, h + u * c]];
    // transpose columns into a row-major matrix
    std::array::from_fn(|i| std::array::from_fn(|j| cols[j][i]))
}

/// Left eigenvectors (rows of `L = R^{-1}`), same ordering.
pub fn left_eigenvectors_x(w: &Primitive, gas: &GasModel) -> Mat4 {
    let c = w.sound_speed(gas);
    let gm1 = gas.gamma - 1.0;
    let (u, v) = (w.u, w.v);
    let q2h = 0.5 * (u * u + v * v);
    let b1 = gm1 / (c * c);
    let b2 = b1 * q2h;
    [
        // acoustic minus
        [0.5 * (b2 + u / c), 0.5 * (-b1 * u - 1.0 / c), 0.5 * (-b1 * v), 0.5 * b1],
        // entropy
        [1.0 - b2, b1 * u, b1 * v, -b1],
        // shear
        [-v, 0.0, 1.0, 0.0],
        // acoustic plus
        [0.5 * (b2 - u / c), 0.5 * (-b1 * u + 1.0 / c), 0.5 * (-b1 * v), 0.5 * b1],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gas() -> GasModel {
        GasModel::air(1.2e6, 1.5)
    }

    fn state() -> Primitive {
        Primitive { rho: 1.3, u: 0.9, v: -0.25, p: 0.64 }
    }

    fn max_abs(m: &Mat4) -> f64 {
        m.iter().flatten().fold(0.0f64, |a, &x| a.max(x.abs()))
    }

    /// `A` must be the derivative of the flux: compare against central
    /// finite differences of `flux_x` in each conservative component.
    #[test]
    fn jacobian_matches_finite_difference() {
        let g = gas();
        let w = state();
        let q0 = w.to_conservative(&g);
        let a = jacobian_x(&w, &g);
        let h = 1e-6;
        for k in 0..4 {
            let mut qp = q0;
            let mut qm = q0;
            qp[k] += h;
            qm[k] -= h;
            let fp = flux_x(qp, &g);
            let fm = flux_x(qm, &g);
            for i in 0..4 {
                let fd = (fp[i] - fm[i]) / (2.0 * h);
                assert!((a[i][k] - fd).abs() < 1e-5, "A[{i}][{k}] = {} vs fd {fd}", a[i][k]);
            }
        }
    }

    /// `A R = R diag(lambda)` column by column.
    #[test]
    fn eigen_decomposition_satisfies_definition() {
        let g = gas();
        let w = state();
        let a = jacobian_x(&w, &g);
        let r = right_eigenvectors_x(&w, &g);
        let lam = eigenvalues_x(&w, &g);
        for j in 0..4 {
            let col: [f64; 4] = std::array::from_fn(|i| r[i][j]);
            let ar = matvec(&a, col);
            for i in 0..4 {
                assert!(
                    (ar[i] - lam[j] * col[i]).abs() < 1e-10,
                    "column {j}: (A r)[{i}] = {} vs {}",
                    ar[i],
                    lam[j] * col[i]
                );
            }
        }
    }

    /// `L R = I`.
    #[test]
    fn left_inverts_right() {
        let g = gas();
        let w = state();
        let l = left_eigenvectors_x(&w, &g);
        let r = right_eigenvectors_x(&w, &g);
        let lr = matmul(&l, &r);
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((lr[i][j] - expect).abs() < 1e-10, "LR[{i}][{j}] = {}", lr[i][j]);
            }
        }
    }

    /// Reconstruction: `R diag(lambda) L == A`.
    #[test]
    fn reconstruction_recovers_jacobian() {
        let g = gas();
        let w = state();
        let a = jacobian_x(&w, &g);
        let r = right_eigenvectors_x(&w, &g);
        let l = left_eigenvectors_x(&w, &g);
        let lam = eigenvalues_x(&w, &g);
        let dl: Mat4 = std::array::from_fn(|i| std::array::from_fn(|j| if i == j { lam[i] } else { 0.0 }));
        let rebuilt = matmul(&matmul(&r, &dl), &l);
        let mut diff: Mat4 = [[0.0; 4]; 4];
        for i in 0..4 {
            for j in 0..4 {
                diff[i][j] = rebuilt[i][j] - a[i][j];
            }
        }
        assert!(max_abs(&diff) < 1e-10, "max |R L L - A| = {}", max_abs(&diff));
    }

    /// Subsonic outflow has exactly one negative eigenvalue (one incoming
    /// characteristic — the basis of the paper's boundary treatment);
    /// supersonic outflow has none.
    #[test]
    fn characteristic_counts_match_bc_theory() {
        let g = gas();
        let subsonic = Primitive { rho: 1.0, u: 0.5, v: 0.0, p: g.pressure(1.0, 1.0) };
        let lam = eigenvalues_x(&subsonic, &g);
        assert_eq!(lam.iter().filter(|&&l| l < 0.0).count(), 1);
        let supersonic = Primitive { rho: 1.0, u: 1.5, v: 0.0, p: g.pressure(1.0, 1.0) };
        let lam = eigenvalues_x(&supersonic, &g);
        assert_eq!(lam.iter().filter(|&&l| l < 0.0).count(), 0);
    }

    /// The characteristic projection of a pure pressure/velocity
    /// perturbation puts all its energy in the acoustic fields.
    #[test]
    fn acoustic_perturbations_project_onto_acoustic_modes() {
        let g = gas();
        let w = state();
        let c = w.sound_speed(&g);
        // right-going simple wave: dp = rho c du, drho = dp / c^2, dv = 0
        let du = 1e-3;
        let dp = w.rho * c * du;
        let drho = dp / (c * c);
        let q0 = w.to_conservative(&g);
        let wp = Primitive { rho: w.rho + drho, u: w.u + du, v: w.v, p: w.p + dp };
        let q1 = wp.to_conservative(&g);
        let dq: [f64; 4] = std::array::from_fn(|k| q1[k] - q0[k]);
        let l = left_eigenvectors_x(&w, &g);
        let alpha = matvec(&l, dq);
        // dominant component is the (+) acoustic one, the (-) one is ~0
        assert!(alpha[3].abs() > 100.0 * alpha[0].abs(), "alpha = {alpha:?}");
        assert!(alpha[2].abs() < 1e-9, "no shear content");
    }
}
